/**
 * @file
 * Configuration-space exploration of the Entangling prefetcher: sweeps the
 * Entangled-table size, the merge distance, and the History-buffer depth
 * on one workload, using the EntanglingConfig API directly (rather than
 * the factory presets). Shows how a downstream user would tune the
 * prefetcher for their own budget.
 *
 *   ./build/examples/prefetcher_tuning
 */

#include <cstdio>

#include "core/entangling.hh"
#include "sim/cpu.hh"
#include "trace/workloads.hh"
#include "util/table_printer.hh"

namespace {

using namespace eip;

/** Run one config on the shared workload; returns (ipc, coverage, KB). */
struct Outcome
{
    double ipc;
    double coverage;
    double storage_kb;
};

Outcome
evaluate(const trace::Workload &workload, const core::EntanglingConfig &cfg)
{
    core::EntanglingPrefetcher pf(cfg);
    sim::SimConfig sim_cfg;
    sim::Cpu cpu(sim_cfg);
    cpu.attachL1iPrefetcher(&pf);
    trace::Program prog = trace::buildProgram(workload.program);
    trace::Executor exec(prog, workload.exec);
    sim::SimStats stats = cpu.run(exec, 500000, 300000);
    return {stats.ipc(), stats.l1i.coverage(),
            pf.storageBits() / 8.0 / 1024.0};
}

} // namespace

int
main()
{
    using namespace eip;

    trace::Workload workload = trace::cvpSuite(1)[3]; // one srv workload

    std::printf("Sweep 1: Entangled-table size (merge distance at the\n"
                "paper's per-size setting)\n");
    TablePrinter t1;
    t1.newRow();
    t1.cell(std::string("entries"));
    t1.cell(std::string("storage-KB"));
    t1.cell(std::string("IPC"));
    t1.cell(std::string("coverage"));
    for (uint32_t entries : {1024u, 2048u, 4096u, 8192u}) {
        core::EntanglingConfig cfg = core::EntanglingConfig::preset4K();
        cfg.tableEntries = entries;
        cfg.mergeDistance = entries <= 2048 ? 15 : entries <= 4096 ? 6 : 5;
        Outcome o = evaluate(workload, cfg);
        t1.newRow();
        t1.cell(uint64_t{entries});
        t1.cell(o.storage_kb, 2);
        t1.cell(o.ipc, 3);
        t1.cell(o.coverage, 3);
    }
    t1.print();

    std::printf("\nSweep 2: merge distance (4K-entry table)\n");
    TablePrinter t2;
    t2.newRow();
    t2.cell(std::string("merge-distance"));
    t2.cell(std::string("IPC"));
    t2.cell(std::string("coverage"));
    for (uint32_t dist : {0u, 3u, 6u, 10u, 15u}) {
        core::EntanglingConfig cfg = core::EntanglingConfig::preset4K();
        cfg.mergeDistance = dist;
        Outcome o = evaluate(workload, cfg);
        t2.newRow();
        t2.cell(uint64_t{dist});
        t2.cell(o.ipc, 3);
        t2.cell(o.coverage, 3);
    }
    t2.print();

    std::printf("\nSweep 3: History-buffer depth (4K-entry table; the\n"
                "paper's cost-effective point is 16, EPI uses 1024)\n");
    TablePrinter t3;
    t3.newRow();
    t3.cell(std::string("history"));
    t3.cell(std::string("storage-KB"));
    t3.cell(std::string("IPC"));
    t3.cell(std::string("coverage"));
    for (uint32_t depth : {8u, 16u, 64u, 256u}) {
        core::EntanglingConfig cfg = core::EntanglingConfig::preset4K();
        cfg.historyEntries = depth;
        Outcome o = evaluate(workload, cfg);
        t3.newRow();
        t3.cell(uint64_t{depth});
        t3.cell(o.storage_kb, 2);
        t3.cell(o.ipc, 3);
        t3.cell(o.coverage, 3);
    }
    t3.print();

    std::printf("\nTake-away: the 16-entry history and 4K-entry table are\n"
                "near the knee of both curves — the paper's cost-effective\n"
                "design point.\n");
    return 0;
}
