/**
 * @file
 * Quickstart: simulate a small synthetic workload without a prefetcher and
 * with the Entangling prefetcher, and print the headline metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "harness/runner.hh"
#include "trace/workloads.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace eip;

    // 1. Pick a workload. The catalogue offers CVP-like categories
    //    (crypto/int/fp/srv) and CloudSuite-like applications; tiny is a
    //    fast demo workload.
    trace::Workload workload = trace::tinyWorkload();
    workload.program.numFunctions = 400; // give the L1I something to miss

    // 2. Describe the runs: a no-prefetch baseline, the paper's
    //    cost-effective Entangling prefetcher (4K entries, 40.74KB), and
    //    the ideal L1I as the upper bound.
    const char *configs[] = {"none", "nextline", "entangling-4k", "ideal"};

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    table.cell(std::string("IPC"));
    table.cell(std::string("L1I MPKI"));
    table.cell(std::string("coverage"));
    table.cell(std::string("accuracy"));
    table.cell(std::string("storage KB"));

    double base_ipc = 0.0;
    for (const char *id : configs) {
        harness::RunSpec spec;
        spec.configId = id;
        spec.instructions = 400000;
        spec.warmup = 200000;
        harness::RunResult r = harness::runOne(workload, spec);
        if (base_ipc == 0.0)
            base_ipc = r.stats.ipc();

        table.newRow();
        table.cell(r.configName);
        table.cell(r.stats.ipc(), 3);
        table.cell(r.stats.l1iMpki(), 2);
        table.cell(r.stats.l1i.coverage(), 3);
        table.cell(r.stats.l1i.accuracy(), 3);
        table.cell(r.storageKB, 2);

        std::printf("%-14s speedup over baseline: %+5.1f%%\n",
                    r.configName.c_str(),
                    (r.stats.ipc() / base_ipc - 1.0) * 100.0);
    }
    std::printf("\n");
    table.print();
    return 0;
}
