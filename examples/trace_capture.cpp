/**
 * @file
 * Trace capture and replay: record a synthetic workload to a binary trace
 * file, then drive two simulations from the *same* file — the workflow for
 * evaluating prefetchers on a fixed instruction stream (and the adoption
 * path for users converting their own traces into this format).
 *
 *   ./build/examples/trace_capture [path.trc]
 */

#include <cstdio>
#include <string>

#include "prefetch/factory.hh"
#include "sim/cpu.hh"
#include "trace/executor.hh"
#include "trace/trace_file.hh"
#include "trace/workloads.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace eip;

    std::string path = argc > 1 ? argv[1] : "/tmp/eip_example.trc";

    // 1. Capture: run the synthetic generator once and persist the stream.
    trace::Workload workload = trace::cvpSuite(1)[3]; // one srv workload
    trace::Program program = trace::buildProgram(workload.program);
    {
        trace::Executor exec(program, workload.exec);
        uint64_t n = trace::captureTrace(path, exec, 900000);
        std::printf("captured %lu instructions to %s (%.1f MB)\n",
                    static_cast<unsigned long>(n), path.c_str(),
                    n * 27.0 / 1e6);
    }

    // 2. Replay the identical stream under different prefetchers.
    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    table.cell(std::string("IPC"));
    table.cell(std::string("L1I MPKI"));
    table.cell(std::string("coverage"));

    for (const char *id : {"none", "nextline", "entangling-4k"}) {
        trace::TraceReplayer replay(path);
        auto pf = prefetch::makePrefetcher(id);
        sim::SimConfig cfg;
        sim::Cpu cpu(cfg);
        if (pf != nullptr)
            cpu.attachL1iPrefetcher(pf.get());
        sim::SimStats stats = cpu.run(replay, 500000, 300000);

        table.newRow();
        table.cell(pf != nullptr ? pf->name() : std::string("no"));
        table.cell(stats.ipc(), 3);
        table.cell(stats.l1iMpki(), 2);
        table.cell(stats.l1i.coverage(), 3);
    }
    table.print();

    std::remove(path.c_str());
    std::printf("\nEvery run consumed the identical instruction stream —\n"
                "differences are purely the prefetcher's doing.\n");
    return 0;
}
