/**
 * @file
 * Extending the framework: implement a custom instruction prefetcher
 * against the sim::Prefetcher hook API and evaluate it next to the
 * built-in ones. The example implements a "targets" prefetcher that
 * remembers the last taken-branch target per source line and prefetches
 * it together with the next line — a minimal discontinuity+next-line
 * hybrid in ~40 lines.
 *
 *   ./build/examples/custom_prefetcher
 */

#include <cstdio>
#include <unordered_map>

#include "harness/runner.hh"
#include "prefetch/factory.hh"
#include "sim/cache.hh"
#include "sim/cpu.hh"
#include "trace/workloads.hh"
#include "util/table_printer.hh"

namespace {

using namespace eip;

/**
 * The custom prefetcher: on every access, prefetch the next line and the
 * last observed discontinuity target out of this line.
 */
class TargetsPrefetcher : public sim::Prefetcher
{
  public:
    std::string name() const override { return "Targets(custom)"; }

    uint64_t
    storageBits() const override
    {
        // One 58-bit target per table slot plus a 12-bit tag.
        return kEntries * (58 + 12);
    }

    void
    onBranch(sim::Addr pc, trace::BranchType type, sim::Addr target) override
    {
        (void)type;
        if (target != 0)
            table[index(sim::lineAddr(pc))] = sim::lineAddr(target);
    }

    void
    onCacheOperate(const sim::CacheOperateInfo &info) override
    {
        owner->enqueuePrefetch(info.line + 1);
        sim::Addr target = table[index(info.line)];
        if (target != 0 && target != info.line)
            owner->enqueuePrefetch(target);
    }

  private:
    static constexpr size_t kEntries = 4096;

    size_t index(sim::Addr line) const { return line % kEntries; }

    std::unordered_map<size_t, sim::Addr> table;
};

/** Run a workload with an externally-owned prefetcher. */
sim::SimStats
runWith(const trace::Workload &w, sim::Prefetcher *pf)
{
    sim::SimConfig cfg;
    sim::Cpu cpu(cfg);
    if (pf != nullptr)
        cpu.attachL1iPrefetcher(pf);
    trace::Program prog = trace::buildProgram(w.program);
    trace::Executor exec(prog, w.exec);
    return cpu.run(exec, 500000, 300000);
}

} // namespace

int
main()
{
    using namespace eip;

    trace::Workload workload = trace::cvpSuite(1)[1]; // one int workload

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    table.cell(std::string("IPC"));
    table.cell(std::string("MPKI"));
    table.cell(std::string("coverage"));
    table.cell(std::string("accuracy"));

    auto report = [&](const std::string &name, const sim::SimStats &stats) {
        table.newRow();
        table.cell(name);
        table.cell(stats.ipc(), 3);
        table.cell(stats.l1iMpki(), 2);
        table.cell(stats.l1i.coverage(), 3);
        table.cell(stats.l1i.accuracy(), 3);
    };

    report("no", runWith(workload, nullptr));

    auto nextline = prefetch::makePrefetcher("nextline");
    report(nextline->name(), runWith(workload, nextline.get()));

    TargetsPrefetcher custom;
    report(custom.name(), runWith(workload, &custom));

    auto entangling = prefetch::makePrefetcher("entangling-4k");
    report(entangling->name(), runWith(workload, entangling.get()));

    table.print();

    std::printf(
        "\nThe custom discontinuity+next-line hybrid beats plain NextLine\n"
        "but not the latency-aware Entangling prefetcher: knowing *what*\n"
        "to prefetch is not enough — the paper's point is knowing *when*.\n");
    return 0;
}
