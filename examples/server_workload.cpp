/**
 * @file
 * Server-workload study: the scenario that motivates the paper — a
 * server-class instruction footprint that thrashes the L1I. Compares the
 * sub-64KB prefetcher line-up on one srv workload, reporting performance,
 * misses, traffic, energy and front-end stall attribution.
 *
 *   ./build/examples/server_workload
 */

#include <cstdio>

#include "energy/energy_model.hh"
#include "harness/runner.hh"
#include "trace/workloads.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace eip;

    // A srv-category workload: ~1.5MB of recurring code behind dispatch
    // loops, far beyond the 32KB L1I.
    trace::Workload workload;
    workload.name = "frontend-server";
    workload.category = "srv";
    workload.program = trace::categoryConfig("srv");
    workload.program.seed = 2026;
    workload.exec.seed = 7;

    energy::EnergyModel energy_model;

    const char *configs[] = {"none",    "nextline",      "sn4l",
                             "mana-4k", "rdip",          "entangling-2k",
                             "entangling-4k", "ideal"};

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    table.cell(std::string("IPC"));
    table.cell(std::string("MPKI"));
    table.cell(std::string("cov"));
    table.cell(std::string("acc"));
    table.cell(std::string("L2-traffic"));
    table.cell(std::string("energy-nJ"));
    table.cell(std::string("fetch-stall%"));

    for (const char *id : configs) {
        harness::RunSpec spec = harness::RunSpec::defaultSpec();
        spec.configId = id;
        harness::RunResult r = harness::runOne(workload, spec);
        auto energy = energy_model.evaluate(r.stats);

        table.newRow();
        table.cell(r.configName);
        table.cell(r.stats.ipc(), 3);
        table.cell(r.stats.l1iMpki(), 2);
        table.cell(r.stats.l1i.coverage(), 3);
        table.cell(r.stats.l1i.accuracy(), 3);
        table.cell(r.stats.l2.demandAccesses);
        table.cell(energy.total(), 0);
        table.cell(100.0 * r.stats.fetchStallLineMiss / r.stats.cycles, 1);
    }
    table.print();

    std::printf(
        "\nReading guide: the Entangling prefetcher converts most\n"
        "instruction misses into timely hits (high coverage at high\n"
        "accuracy), cutting both the fetch-stall share and the L2/LLC\n"
        "energy versus the spatial-only prefetchers.\n");
    return 0;
}
