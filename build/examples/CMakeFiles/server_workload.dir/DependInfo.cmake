
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/server_workload.cpp" "examples/CMakeFiles/server_workload.dir/server_workload.cpp.o" "gcc" "examples/CMakeFiles/server_workload.dir/server_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/eip_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/eip_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/eip_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eip_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eip_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
