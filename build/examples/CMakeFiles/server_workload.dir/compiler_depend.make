# Empty compiler generated dependencies file for server_workload.
# This may be replaced when dependencies are built.
