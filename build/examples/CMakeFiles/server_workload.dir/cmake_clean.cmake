file(REMOVE_RECURSE
  "CMakeFiles/server_workload.dir/server_workload.cpp.o"
  "CMakeFiles/server_workload.dir/server_workload.cpp.o.d"
  "server_workload"
  "server_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
