file(REMOVE_RECURSE
  "CMakeFiles/eipsim.dir/eipsim.cc.o"
  "CMakeFiles/eipsim.dir/eipsim.cc.o.d"
  "eipsim"
  "eipsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eipsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
