# Empty compiler generated dependencies file for eipsim.
# This may be replaced when dependencies are built.
