# Empty dependencies file for eip_util.
# This may be replaced when dependencies are built.
