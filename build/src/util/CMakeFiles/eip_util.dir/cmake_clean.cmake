file(REMOVE_RECURSE
  "CMakeFiles/eip_util.dir/table_printer.cc.o"
  "CMakeFiles/eip_util.dir/table_printer.cc.o.d"
  "libeip_util.a"
  "libeip_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eip_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
