file(REMOVE_RECURSE
  "libeip_util.a"
)
