file(REMOVE_RECURSE
  "CMakeFiles/eip_energy.dir/energy_model.cc.o"
  "CMakeFiles/eip_energy.dir/energy_model.cc.o.d"
  "libeip_energy.a"
  "libeip_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eip_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
