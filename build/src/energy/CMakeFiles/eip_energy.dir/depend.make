# Empty dependencies file for eip_energy.
# This may be replaced when dependencies are built.
