file(REMOVE_RECURSE
  "libeip_energy.a"
)
