# Empty compiler generated dependencies file for eip_prefetch.
# This may be replaced when dependencies are built.
