
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/djolt.cc" "src/prefetch/CMakeFiles/eip_prefetch.dir/djolt.cc.o" "gcc" "src/prefetch/CMakeFiles/eip_prefetch.dir/djolt.cc.o.d"
  "/root/repo/src/prefetch/factory.cc" "src/prefetch/CMakeFiles/eip_prefetch.dir/factory.cc.o" "gcc" "src/prefetch/CMakeFiles/eip_prefetch.dir/factory.cc.o.d"
  "/root/repo/src/prefetch/fnl_mma.cc" "src/prefetch/CMakeFiles/eip_prefetch.dir/fnl_mma.cc.o" "gcc" "src/prefetch/CMakeFiles/eip_prefetch.dir/fnl_mma.cc.o.d"
  "/root/repo/src/prefetch/mana.cc" "src/prefetch/CMakeFiles/eip_prefetch.dir/mana.cc.o" "gcc" "src/prefetch/CMakeFiles/eip_prefetch.dir/mana.cc.o.d"
  "/root/repo/src/prefetch/pif.cc" "src/prefetch/CMakeFiles/eip_prefetch.dir/pif.cc.o" "gcc" "src/prefetch/CMakeFiles/eip_prefetch.dir/pif.cc.o.d"
  "/root/repo/src/prefetch/rdip.cc" "src/prefetch/CMakeFiles/eip_prefetch.dir/rdip.cc.o" "gcc" "src/prefetch/CMakeFiles/eip_prefetch.dir/rdip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/eip_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eip_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
