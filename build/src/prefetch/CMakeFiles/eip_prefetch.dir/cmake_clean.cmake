file(REMOVE_RECURSE
  "CMakeFiles/eip_prefetch.dir/djolt.cc.o"
  "CMakeFiles/eip_prefetch.dir/djolt.cc.o.d"
  "CMakeFiles/eip_prefetch.dir/factory.cc.o"
  "CMakeFiles/eip_prefetch.dir/factory.cc.o.d"
  "CMakeFiles/eip_prefetch.dir/fnl_mma.cc.o"
  "CMakeFiles/eip_prefetch.dir/fnl_mma.cc.o.d"
  "CMakeFiles/eip_prefetch.dir/mana.cc.o"
  "CMakeFiles/eip_prefetch.dir/mana.cc.o.d"
  "CMakeFiles/eip_prefetch.dir/pif.cc.o"
  "CMakeFiles/eip_prefetch.dir/pif.cc.o.d"
  "CMakeFiles/eip_prefetch.dir/rdip.cc.o"
  "CMakeFiles/eip_prefetch.dir/rdip.cc.o.d"
  "libeip_prefetch.a"
  "libeip_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eip_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
