file(REMOVE_RECURSE
  "libeip_prefetch.a"
)
