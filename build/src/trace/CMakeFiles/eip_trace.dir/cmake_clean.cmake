file(REMOVE_RECURSE
  "CMakeFiles/eip_trace.dir/executor.cc.o"
  "CMakeFiles/eip_trace.dir/executor.cc.o.d"
  "CMakeFiles/eip_trace.dir/program_builder.cc.o"
  "CMakeFiles/eip_trace.dir/program_builder.cc.o.d"
  "CMakeFiles/eip_trace.dir/trace_file.cc.o"
  "CMakeFiles/eip_trace.dir/trace_file.cc.o.d"
  "CMakeFiles/eip_trace.dir/workloads.cc.o"
  "CMakeFiles/eip_trace.dir/workloads.cc.o.d"
  "libeip_trace.a"
  "libeip_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eip_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
