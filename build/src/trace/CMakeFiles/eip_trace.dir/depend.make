# Empty dependencies file for eip_trace.
# This may be replaced when dependencies are built.
