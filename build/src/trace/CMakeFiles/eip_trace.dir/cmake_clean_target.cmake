file(REMOVE_RECURSE
  "libeip_trace.a"
)
