
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/executor.cc" "src/trace/CMakeFiles/eip_trace.dir/executor.cc.o" "gcc" "src/trace/CMakeFiles/eip_trace.dir/executor.cc.o.d"
  "/root/repo/src/trace/program_builder.cc" "src/trace/CMakeFiles/eip_trace.dir/program_builder.cc.o" "gcc" "src/trace/CMakeFiles/eip_trace.dir/program_builder.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/trace/CMakeFiles/eip_trace.dir/trace_file.cc.o" "gcc" "src/trace/CMakeFiles/eip_trace.dir/trace_file.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/trace/CMakeFiles/eip_trace.dir/workloads.cc.o" "gcc" "src/trace/CMakeFiles/eip_trace.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
