file(REMOVE_RECURSE
  "libeip_sim.a"
)
