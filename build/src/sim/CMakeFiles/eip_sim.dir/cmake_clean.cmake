file(REMOVE_RECURSE
  "CMakeFiles/eip_sim.dir/branch.cc.o"
  "CMakeFiles/eip_sim.dir/branch.cc.o.d"
  "CMakeFiles/eip_sim.dir/cache.cc.o"
  "CMakeFiles/eip_sim.dir/cache.cc.o.d"
  "CMakeFiles/eip_sim.dir/config.cc.o"
  "CMakeFiles/eip_sim.dir/config.cc.o.d"
  "CMakeFiles/eip_sim.dir/cpu.cc.o"
  "CMakeFiles/eip_sim.dir/cpu.cc.o.d"
  "libeip_sim.a"
  "libeip_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eip_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
