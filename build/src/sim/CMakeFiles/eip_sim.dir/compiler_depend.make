# Empty compiler generated dependencies file for eip_sim.
# This may be replaced when dependencies are built.
