# Empty dependencies file for eip_sim.
# This may be replaced when dependencies are built.
