
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/branch.cc" "src/sim/CMakeFiles/eip_sim.dir/branch.cc.o" "gcc" "src/sim/CMakeFiles/eip_sim.dir/branch.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/eip_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/eip_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/eip_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/eip_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/cpu.cc" "src/sim/CMakeFiles/eip_sim.dir/cpu.cc.o" "gcc" "src/sim/CMakeFiles/eip_sim.dir/cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eip_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eip_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
