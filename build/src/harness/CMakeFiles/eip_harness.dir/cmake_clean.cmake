file(REMOVE_RECURSE
  "CMakeFiles/eip_harness.dir/cli.cc.o"
  "CMakeFiles/eip_harness.dir/cli.cc.o.d"
  "CMakeFiles/eip_harness.dir/report.cc.o"
  "CMakeFiles/eip_harness.dir/report.cc.o.d"
  "CMakeFiles/eip_harness.dir/runner.cc.o"
  "CMakeFiles/eip_harness.dir/runner.cc.o.d"
  "libeip_harness.a"
  "libeip_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eip_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
