# Empty compiler generated dependencies file for eip_harness.
# This may be replaced when dependencies are built.
