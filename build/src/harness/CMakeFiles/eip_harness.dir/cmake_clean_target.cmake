file(REMOVE_RECURSE
  "libeip_harness.a"
)
