
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dest_compression.cc" "src/core/CMakeFiles/eip_core.dir/dest_compression.cc.o" "gcc" "src/core/CMakeFiles/eip_core.dir/dest_compression.cc.o.d"
  "/root/repo/src/core/entangled_table.cc" "src/core/CMakeFiles/eip_core.dir/entangled_table.cc.o" "gcc" "src/core/CMakeFiles/eip_core.dir/entangled_table.cc.o.d"
  "/root/repo/src/core/entangling.cc" "src/core/CMakeFiles/eip_core.dir/entangling.cc.o" "gcc" "src/core/CMakeFiles/eip_core.dir/entangling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/eip_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eip_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
