file(REMOVE_RECURSE
  "CMakeFiles/eip_core.dir/dest_compression.cc.o"
  "CMakeFiles/eip_core.dir/dest_compression.cc.o.d"
  "CMakeFiles/eip_core.dir/entangled_table.cc.o"
  "CMakeFiles/eip_core.dir/entangled_table.cc.o.d"
  "CMakeFiles/eip_core.dir/entangling.cc.o"
  "CMakeFiles/eip_core.dir/entangling.cc.o.d"
  "libeip_core.a"
  "libeip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
