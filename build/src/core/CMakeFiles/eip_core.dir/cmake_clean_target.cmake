file(REMOVE_RECURSE
  "libeip_core.a"
)
