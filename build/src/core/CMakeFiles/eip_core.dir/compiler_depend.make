# Empty compiler generated dependencies file for eip_core.
# This may be replaced when dependencies are built.
