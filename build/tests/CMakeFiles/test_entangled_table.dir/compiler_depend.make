# Empty compiler generated dependencies file for test_entangled_table.
# This may be replaced when dependencies are built.
