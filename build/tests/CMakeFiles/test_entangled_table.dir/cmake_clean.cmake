file(REMOVE_RECURSE
  "CMakeFiles/test_entangled_table.dir/test_entangled_table.cc.o"
  "CMakeFiles/test_entangled_table.dir/test_entangled_table.cc.o.d"
  "test_entangled_table"
  "test_entangled_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entangled_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
