file(REMOVE_RECURSE
  "CMakeFiles/test_prefetchers.dir/test_prefetchers.cc.o"
  "CMakeFiles/test_prefetchers.dir/test_prefetchers.cc.o.d"
  "test_prefetchers"
  "test_prefetchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
