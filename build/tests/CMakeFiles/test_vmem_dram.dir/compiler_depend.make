# Empty compiler generated dependencies file for test_vmem_dram.
# This may be replaced when dependencies are built.
