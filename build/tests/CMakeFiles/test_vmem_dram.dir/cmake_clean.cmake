file(REMOVE_RECURSE
  "CMakeFiles/test_vmem_dram.dir/test_vmem_dram.cc.o"
  "CMakeFiles/test_vmem_dram.dir/test_vmem_dram.cc.o.d"
  "test_vmem_dram"
  "test_vmem_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmem_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
