# Empty compiler generated dependencies file for test_entangling.
# This may be replaced when dependencies are built.
