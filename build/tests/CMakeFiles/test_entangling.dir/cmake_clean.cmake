file(REMOVE_RECURSE
  "CMakeFiles/test_entangling.dir/test_entangling.cc.o"
  "CMakeFiles/test_entangling.dir/test_entangling.cc.o.d"
  "test_entangling"
  "test_entangling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entangling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
