# Empty compiler generated dependencies file for test_wrongpath.
# This may be replaced when dependencies are built.
