file(REMOVE_RECURSE
  "CMakeFiles/test_wrongpath.dir/test_wrongpath.cc.o"
  "CMakeFiles/test_wrongpath.dir/test_wrongpath.cc.o.d"
  "test_wrongpath"
  "test_wrongpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wrongpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
