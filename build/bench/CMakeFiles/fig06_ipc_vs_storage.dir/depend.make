# Empty dependencies file for fig06_ipc_vs_storage.
# This may be replaced when dependencies are built.
