file(REMOVE_RECURSE
  "CMakeFiles/fig06_ipc_vs_storage.dir/fig06_ipc_vs_storage.cc.o"
  "CMakeFiles/fig06_ipc_vs_storage.dir/fig06_ipc_vs_storage.cc.o.d"
  "fig06_ipc_vs_storage"
  "fig06_ipc_vs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ipc_vs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
