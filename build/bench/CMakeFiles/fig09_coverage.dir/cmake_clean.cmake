file(REMOVE_RECURSE
  "CMakeFiles/fig09_coverage.dir/fig09_coverage.cc.o"
  "CMakeFiles/fig09_coverage.dir/fig09_coverage.cc.o.d"
  "fig09_coverage"
  "fig09_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
