# Empty dependencies file for fig09_coverage.
# This may be replaced when dependencies are built.
