# Empty compiler generated dependencies file for fig12_compression.
# This may be replaced when dependencies are built.
