file(REMOVE_RECURSE
  "CMakeFiles/tab04_energy.dir/tab04_energy.cc.o"
  "CMakeFiles/tab04_energy.dir/tab04_energy.cc.o.d"
  "tab04_energy"
  "tab04_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
