# Empty dependencies file for tab04_energy.
# This may be replaced when dependencies are built.
