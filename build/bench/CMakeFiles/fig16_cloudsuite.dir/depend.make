# Empty dependencies file for fig16_cloudsuite.
# This may be replaced when dependencies are built.
