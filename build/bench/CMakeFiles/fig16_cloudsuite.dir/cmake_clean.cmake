file(REMOVE_RECURSE
  "CMakeFiles/fig16_cloudsuite.dir/fig16_cloudsuite.cc.o"
  "CMakeFiles/fig16_cloudsuite.dir/fig16_cloudsuite.cc.o.d"
  "fig16_cloudsuite"
  "fig16_cloudsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cloudsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
