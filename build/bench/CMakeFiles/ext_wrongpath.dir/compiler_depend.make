# Empty compiler generated dependencies file for ext_wrongpath.
# This may be replaced when dependencies are built.
