file(REMOVE_RECURSE
  "CMakeFiles/ext_wrongpath.dir/ext_wrongpath.cc.o"
  "CMakeFiles/ext_wrongpath.dir/ext_wrongpath.cc.o.d"
  "ext_wrongpath"
  "ext_wrongpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_wrongpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
