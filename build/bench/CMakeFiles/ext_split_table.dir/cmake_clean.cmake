file(REMOVE_RECURSE
  "CMakeFiles/ext_split_table.dir/ext_split_table.cc.o"
  "CMakeFiles/ext_split_table.dir/ext_split_table.cc.o.d"
  "ext_split_table"
  "ext_split_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_split_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
