# Empty dependencies file for ext_split_table.
# This may be replaced when dependencies are built.
