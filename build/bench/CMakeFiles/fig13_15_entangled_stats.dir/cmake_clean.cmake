file(REMOVE_RECURSE
  "CMakeFiles/fig13_15_entangled_stats.dir/fig13_15_entangled_stats.cc.o"
  "CMakeFiles/fig13_15_entangled_stats.dir/fig13_15_entangled_stats.cc.o.d"
  "fig13_15_entangled_stats"
  "fig13_15_entangled_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_15_entangled_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
