# Empty dependencies file for fig13_15_entangled_stats.
# This may be replaced when dependencies are built.
