# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig13_15_entangled_stats.
