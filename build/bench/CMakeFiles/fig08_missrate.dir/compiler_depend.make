# Empty compiler generated dependencies file for fig08_missrate.
# This may be replaced when dependencies are built.
