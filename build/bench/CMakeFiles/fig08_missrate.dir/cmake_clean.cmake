file(REMOVE_RECURSE
  "CMakeFiles/fig08_missrate.dir/fig08_missrate.cc.o"
  "CMakeFiles/fig08_missrate.dir/fig08_missrate.cc.o.d"
  "fig08_missrate"
  "fig08_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
