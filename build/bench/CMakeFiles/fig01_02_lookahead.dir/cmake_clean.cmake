file(REMOVE_RECURSE
  "CMakeFiles/fig01_02_lookahead.dir/fig01_02_lookahead.cc.o"
  "CMakeFiles/fig01_02_lookahead.dir/fig01_02_lookahead.cc.o.d"
  "fig01_02_lookahead"
  "fig01_02_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_02_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
