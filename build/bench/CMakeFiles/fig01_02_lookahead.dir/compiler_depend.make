# Empty compiler generated dependencies file for fig01_02_lookahead.
# This may be replaced when dependencies are built.
