# Empty dependencies file for sec4e_physical.
# This may be replaced when dependencies are built.
