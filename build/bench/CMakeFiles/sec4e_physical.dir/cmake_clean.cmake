file(REMOVE_RECURSE
  "CMakeFiles/sec4e_physical.dir/sec4e_physical.cc.o"
  "CMakeFiles/sec4e_physical.dir/sec4e_physical.cc.o.d"
  "sec4e_physical"
  "sec4e_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4e_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
