file(REMOVE_RECURSE
  "CMakeFiles/fig07_ipc_curves.dir/fig07_ipc_curves.cc.o"
  "CMakeFiles/fig07_ipc_curves.dir/fig07_ipc_curves.cc.o.d"
  "fig07_ipc_curves"
  "fig07_ipc_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ipc_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
