# Empty compiler generated dependencies file for fig07_ipc_curves.
# This may be replaced when dependencies are built.
