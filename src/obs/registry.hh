/**
 * @file
 * Counter registry — the core of the observability layer. Components
 * (Cpu, Cache, every Prefetcher) register their live event counters,
 * derived gauges and histograms under hierarchical dotted names
 * ("l1i.demand_misses", "entangling.pairs_created"); the registry can
 * then be sampled repeatedly (interval time-series) or dumped once
 * (run artifact) without the components knowing who is watching.
 *
 * Registrations are non-owning views: a registered closure reads the
 * component's live storage on every sample, so the registry must not
 * outlive the components it watches (in practice both live on the
 * runner's stack for the duration of one run).
 */

#ifndef EIP_OBS_REGISTRY_HH
#define EIP_OBS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/histogram.hh"

namespace eip::obs {

class JsonWriter;

/** Value snapshot of one histogram (used by the JSON artifact). */
struct HistogramDump
{
    std::vector<uint64_t> buckets;
    uint64_t overflow = 0;
    uint64_t total = 0;
    double mean = 0.0;
};

/** Full value snapshot of a registry, detached from the live sources. */
struct CounterDump
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramDump>> histograms;

    /** Counter value by name (tests, report code). */
    std::optional<uint64_t> counter(const std::string &name) const;
    /** Gauge value by name. */
    std::optional<double> gauge(const std::string &name) const;
};

/**
 * Registry of named live statistics. Names must be unique across all
 * three kinds; registration order is preserved (it defines the column
 * order of interval samples and the key order of the JSON artifact, so
 * artifacts are byte-stable run to run).
 */
class CounterRegistry
{
  public:
    using IntFn = std::function<uint64_t()>;
    using RealFn = std::function<double()>;

    /** Register an integer event counter read through @p fn. */
    void counter(const std::string &name, IntFn fn);
    /** Convenience: register a counter backed by live storage at @p value. */
    void counter(const std::string &name, const uint64_t *value);
    /** Register a derived metric (ratio, rate) read through @p fn. */
    void gauge(const std::string &name, RealFn fn);
    /** Register a histogram backed by live storage at @p h. */
    void histogram(const std::string &name, const Histogram *h);

    size_t counterCount() const { return counters_.size(); }
    const std::vector<std::string> &counterNames() const { return names_; }

    /** Read every integer counter, in registration order. */
    std::vector<uint64_t> sampleCounters() const;

    /** Read everything into a detached snapshot. */
    CounterDump dump() const;

  private:
    void claimName(const std::string &name);

    std::vector<std::pair<std::string, IntFn>> counters_;
    std::vector<std::string> names_; ///< counter names, registration order
    std::vector<std::pair<std::string, RealFn>> gauges_;
    std::vector<std::pair<std::string, const Histogram *>> histograms_;
    std::unordered_set<std::string> used_;
};

/** Emit @p h as a JSON object: total/overflow/mean plus a sparse
 *  [bucket, count] pair list (full bucket arrays would bloat documents
 *  with zeros without adding information). */
void writeHistogramDump(JsonWriter &json, const HistogramDump &h);

/**
 * Emit @p dump as three keyed sections — "counters", "gauges",
 * "histograms" — into an open JSON object. This is the one serializer
 * for registry snapshots: eip-run/v1 artifacts and the eip-serve/v1
 * stats endpoint both use it, so their sections stay byte-compatible.
 */
void writeCounterSections(JsonWriter &json, const CounterDump &dump);

} // namespace eip::obs

#endif // EIP_OBS_REGISTRY_HH
