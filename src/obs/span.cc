#include "obs/span.hh"

#include <time.h>

#include "obs/json.hh"

namespace eip::obs {

uint64_t
monotonicMicros()
{
    // steady_clock is CLOCK_MONOTONIC on Linux: system-wide, so values
    // taken in a forked worker line up with the parent's.
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000ull +
           static_cast<uint64_t>(ts.tv_nsec) / 1000ull;
}

SpanCollector::SpanCollector(size_t limit)
    : limit_(limit == 0 ? 1 : limit), epochUs_(monotonicMicros())
{
}

uint64_t
SpanCollector::newTrace()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ++nextTraceId_;
}

void
SpanCollector::record(SpanRecord span)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++recorded_;
    if (span.name == "request")
        ++terminals_[span.state];
    if (ring_.size() < limit_) {
        ring_.push_back(std::move(span));
        return;
    }
    ring_[head_] = std::move(span);
    head_ = (head_ + 1) % limit_;
    wrapped_ = true;
}

void
SpanCollector::recordChild(uint64_t trace_id,
                           const std::vector<SpanRecord> &spans)
{
    for (SpanRecord span : spans) {
        span.traceId = trace_id;
        record(std::move(span));
    }
}

uint64_t
SpanCollector::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
}

uint64_t
SpanCollector::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_ - ring_.size();
}

size_t
SpanCollector::retained() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::map<std::string, uint64_t>
SpanCollector::terminals() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return terminals_;
}

namespace {

void
writeSpanEvent(JsonWriter &json, const SpanRecord &span, uint64_t epoch_us)
{
    const uint64_t ts = span.startUs > epoch_us ? span.startUs - epoch_us : 0;
    json.beginObject()
        .kv("name", span.name)
        .kv("cat", "serve")
        .kv("ph", "X")
        .kv("ts", ts)
        .kv("dur", span.durUs)
        .kv("pid", 1)
        .kv("tid", span.traceId);
    json.key("args").beginObject();
    if (!span.state.empty())
        json.kv("state", span.state);
    json.endObject();
    json.endObject();
}

} // namespace

std::string
SpanCollector::toJson(
    const std::vector<std::pair<std::string, std::string>> &meta) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter json;
    json.beginObject();
    json.kv("schema", "eip-trace/v1");
    json.kv("kind", "serve");
    json.kv("displayTimeUnit", "ms");

    json.key("meta").beginObject();
    json.kv("clock", "us");
    json.kv("limit", static_cast<uint64_t>(limit_));
    json.kv("recorded", recorded_);
    json.kv("retained", static_cast<uint64_t>(ring_.size()));
    json.kv("wrapped", wrapped_);
    for (const auto &[key, value] : meta)
        json.kv(key, value);
    json.endObject();

    // Exact roll-ups: terminal counts survive ring wrap, so eiptrace
    // reconciles them 1:1 against the daemon's serve.* counters.
    json.key("serve").beginObject();
    json.kv("traces", nextTraceId_);
    json.kv("span_dropped", recorded_ - ring_.size());
    json.key("terminals").beginObject();
    for (const auto &[state, count] : terminals_)
        json.kv(state, count);
    json.endObject();
    json.endObject();

    json.key("traceEvents").beginArray();
    json.beginObject()
        .kv("name", "process_name")
        .kv("ph", "M")
        .kv("pid", 1);
    json.key("args").beginObject().kv("name", "eipd").endObject();
    json.endObject();
    // One named track per request that still has spans in the ring.
    std::vector<uint64_t> tids;
    auto forEachOldestFirst = [&](auto &&fn) {
        for (size_t i = head_; i < ring_.size(); ++i)
            fn(ring_[i]);
        for (size_t i = 0; i < head_; ++i)
            fn(ring_[i]);
    };
    forEachOldestFirst([&](const SpanRecord &span) {
        for (uint64_t tid : tids)
            if (tid == span.traceId)
                return;
        tids.push_back(span.traceId);
    });
    for (uint64_t tid : tids) {
        json.beginObject()
            .kv("name", "thread_name")
            .kv("ph", "M")
            .kv("pid", 1)
            .kv("tid", tid);
        json.key("args")
            .beginObject()
            .kv("name", "request " + std::to_string(tid))
            .endObject();
        json.endObject();
    }
    forEachOldestFirst(
        [&](const SpanRecord &span) { writeSpanEvent(json, span, epochUs_); });
    json.endArray();

    json.endObject();
    std::string out = json.str();
    out.push_back('\n');
    return out;
}

std::string
spanPreambleJson(const std::vector<SpanRecord> &spans)
{
    JsonWriter json;
    json.beginObject().kv("schema", "eip-span/v1");
    json.key("spans").beginArray();
    for (const SpanRecord &span : spans) {
        json.beginObject()
            .kv("name", span.name)
            .kv("start_us", span.startUs)
            .kv("dur_us", span.durUs)
            .endObject();
    }
    json.endArray().endObject();
    std::string out = json.str();
    out.push_back('\n');
    return out;
}

bool
parseSpanPreamble(const std::string &line, std::vector<SpanRecord> &out)
{
    auto doc = parseJson(line);
    if (!doc)
        return false;
    const JsonValue *schema = doc->find("schema");
    if (schema == nullptr || schema->string != "eip-span/v1")
        return false;
    const JsonValue *spans = doc->find("spans");
    if (spans == nullptr || spans->type != JsonValue::Type::Array)
        return false;
    for (const JsonValue &item : spans->array) {
        const JsonValue *name = item.find("name");
        const JsonValue *start = item.find("start_us");
        const JsonValue *dur = item.find("dur_us");
        if (name == nullptr || start == nullptr || dur == nullptr ||
            !start->isNumber() || !dur->isNumber())
            return false;
        SpanRecord span;
        span.name = name->string;
        span.startUs = start->asU64();
        span.durUs = dur->asU64();
        out.push_back(std::move(span));
    }
    return true;
}

bool
splitWorkerPayload(const std::string &payload, std::string &artifact,
                   std::string &preamble)
{
    const size_t nl = payload.find('\n');
    if (nl == std::string::npos)
        return false;
    artifact = payload.substr(0, nl + 1);
    preamble = payload.substr(nl + 1);
    if (!preamble.empty() && preamble.back() == '\n')
        preamble.pop_back();
    return true;
}

} // namespace eip::obs
