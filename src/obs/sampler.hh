/**
 * @file
 * Interval sampler: snapshots every registered counter each time the
 * measured-instruction count crosses a sample boundary (default every
 * 100k instructions, `--sample-interval`), producing a per-run
 * time-series. Cumulative values are stored; per-interval deltas are
 * derived on demand, so both phase behaviour (warm-up tail, steady
 * state) and end-of-run totals are visible from one series.
 *
 * Sampling is read-only — it never perturbs simulation state — so runs
 * with and without a sampler attached retire the identical instruction
 * stream and produce identical statistics.
 */

#ifndef EIP_OBS_SAMPLER_HH
#define EIP_OBS_SAMPLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hh"

namespace eip::obs {

/** Default sampling interval in retired instructions. */
inline constexpr uint64_t kDefaultSampleInterval = 100000;

/** One snapshot of all registered counters. */
struct Sample
{
    uint64_t instructions = 0; ///< measured instructions at snapshot time
    uint64_t cycles = 0;       ///< measured cycles at snapshot time
    std::vector<uint64_t> values; ///< registry counter order
};

/** A detached, copyable time-series (what RunResult carries around). */
struct SampleSeries
{
    uint64_t interval = 0;
    std::vector<std::string> names; ///< column names (registry order)
    std::vector<Sample> rows;
};

class IntervalSampler
{
  public:
    /** @p registry must outlive the sampler. @p interval is in retired
     *  instructions and must be positive. */
    IntervalSampler(const CounterRegistry &registry, uint64_t interval);

    /**
     * Called by the simulator once per cycle during the measured phase
     * with the current measured instruction/cycle counts; takes a
     * snapshot whenever @p instructions has crossed the next boundary.
     */
    void
    tick(uint64_t instructions, uint64_t cycles)
    {
        if (instructions >= next_)
            take(instructions, cycles);
    }

    uint64_t interval() const { return interval_; }
    const std::vector<Sample> &samples() const { return rows; }

    /** Counter deltas of sample @p i against sample i-1 (or zero). */
    std::vector<uint64_t> deltas(size_t i) const;

    /** Detach the collected series (column names included). */
    SampleSeries series() const;

  private:
    void take(uint64_t instructions, uint64_t cycles);

    const CounterRegistry &registry;
    uint64_t interval_;
    uint64_t next_;
    std::vector<Sample> rows;
};

} // namespace eip::obs

#endif // EIP_OBS_SAMPLER_HH
