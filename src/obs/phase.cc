#include "obs/phase.hh"

#include "obs/span.hh"

namespace eip::obs {

void
PhaseProfiler::transition(const std::string &name)
{
    const uint64_t now = monotonicMicros();
    if (!current_.empty())
        intervals_.push_back({current_, currentStartUs_, now});
    current_ = name;
    currentStartUs_ = now;
}

std::vector<std::pair<std::string, double>>
PhaseProfiler::totalsMs() const
{
    std::vector<std::pair<std::string, double>> totals;
    for (const PhaseInterval &iv : intervals_) {
        const double ms =
            static_cast<double>(iv.endUs - iv.startUs) / 1000.0;
        bool found = false;
        for (auto &[name, total] : totals) {
            if (name == iv.name) {
                total += ms;
                found = true;
                break;
            }
        }
        if (!found)
            totals.emplace_back(iv.name, ms);
    }
    return totals;
}

} // namespace eip::obs
