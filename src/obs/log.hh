/**
 * @file
 * Structured NDJSON logger (`eip-log/v1`). One log call renders one
 * self-describing JSON line — level, monotonic timestamp, component
 * tag, event name, and typed key/value fields — so service logs can be
 * grepped, validated (scripts/validate_stats_json.py) and post-
 * processed with the same tooling as the other eip artifact schemas.
 *
 * The logger is deliberately cheap when quiet: `enabled()` is a single
 * relaxed atomic load and compare, and the `EIP_LOG_*` macros evaluate
 * their field arguments only after that check passes, so a disabled
 * level costs one predictable branch on the caller side. The global
 * level comes from `EIP_LOG` (debug|info|warn|error|off, default warn)
 * and can be overridden per tool (`eipd --log-level`).
 */

#ifndef EIP_OBS_LOG_HH
#define EIP_OBS_LOG_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace eip::obs {

enum class LogLevel : int
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/** "debug"/"info"/"warn"/"error"/"off". */
const char *logLevelName(LogLevel level);

/** Parse a level name (as accepted by EIP_LOG / --log-level). */
std::optional<LogLevel> parseLogLevel(const std::string &text);

/** One typed key/value pair attached to a log line. */
struct LogField
{
    enum class Kind
    {
        Str,
        U64,
        I64,
        F64,
        Bool,
    };

    LogField(std::string k, const std::string &v)
        : key(std::move(k)), kind(Kind::Str), str(v)
    {
    }
    LogField(std::string k, const char *v)
        : key(std::move(k)), kind(Kind::Str), str(v)
    {
    }
    LogField(std::string k, uint64_t v)
        : key(std::move(k)), kind(Kind::U64), u64(v)
    {
    }
    LogField(std::string k, int v) : key(std::move(k)), kind(Kind::I64), i64(v)
    {
    }
    LogField(std::string k, double v)
        : key(std::move(k)), kind(Kind::F64), f64(v)
    {
    }
    LogField(std::string k, bool v)
        : key(std::move(k)), kind(Kind::Bool), boolean(v)
    {
    }

    std::string key;
    Kind kind;
    std::string str;
    uint64_t u64 = 0;
    int64_t i64 = 0;
    double f64 = 0.0;
    bool boolean = false;
};

/**
 * Process-wide leveled logger. Thread-safe: the level is an atomic and
 * line emission is serialized under a mutex (one fwrite per line, so
 * concurrent workers never interleave partial lines). The sink is
 * stderr by default; tests capture lines in-process via setCapture.
 */
class Logger
{
  public:
    /** The process logger. First use parses EIP_LOG (default warn). */
    static Logger &global();

    LogLevel level() const
    {
        return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
    }
    void setLevel(LogLevel level)
    {
        level_.store(static_cast<int>(level), std::memory_order_relaxed);
    }

    /** The one hot check: is @p level currently emitted? */
    bool enabled(LogLevel level) const
    {
        return static_cast<int>(level) >=
               level_.load(std::memory_order_relaxed);
    }

    /** Redirect lines to @p sink (default stderr). */
    void setSink(std::FILE *sink);
    /** Capture lines into @p lines instead of the FILE sink (tests);
     *  nullptr restores the FILE sink. */
    void setCapture(std::vector<std::string> *lines);

    /** Render and emit one eip-log/v1 line. Call through the EIP_LOG_*
     *  macros so disabled levels skip field construction entirely. */
    void emit(LogLevel level, const char *component, const char *event,
              std::initializer_list<LogField> fields);

    /** Render one line without emitting it (tests, the validator). */
    static std::string renderLine(LogLevel level, const char *component,
                                  const char *event,
                                  std::initializer_list<LogField> fields);

  private:
    Logger();

    std::atomic<int> level_;
    std::mutex sinkMutex_;
    std::FILE *sink_ = stderr;
    std::vector<std::string> *capture_ = nullptr;
};

/** Monotonic microseconds since process start (log timestamps). */
uint64_t logElapsedUs();

} // namespace eip::obs

#define EIP_LOG_AT(lvl, component, event, ...)                                \
    do {                                                                      \
        if (::eip::obs::Logger::global().enabled(lvl))                        \
            ::eip::obs::Logger::global().emit(lvl, component, event,          \
                                              {__VA_ARGS__});                 \
    } while (0)

#define EIP_LOG_DEBUG(component, event, ...)                                  \
    EIP_LOG_AT(::eip::obs::LogLevel::Debug, component, event, __VA_ARGS__)
#define EIP_LOG_INFO(component, event, ...)                                   \
    EIP_LOG_AT(::eip::obs::LogLevel::Info, component, event, __VA_ARGS__)
#define EIP_LOG_WARN(component, event, ...)                                   \
    EIP_LOG_AT(::eip::obs::LogLevel::Warn, component, event, __VA_ARGS__)
#define EIP_LOG_ERROR(component, event, ...)                                  \
    EIP_LOG_AT(::eip::obs::LogLevel::Error, component, event, __VA_ARGS__)

#endif // EIP_OBS_LOG_HH
