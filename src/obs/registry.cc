#include "obs/registry.hh"

#include "obs/json.hh"
#include "util/panic.hh"

namespace eip::obs {

std::optional<uint64_t>
CounterDump::counter(const std::string &name) const
{
    for (const auto &[n, v] : counters) {
        if (n == name)
            return v;
    }
    return std::nullopt;
}

std::optional<double>
CounterDump::gauge(const std::string &name) const
{
    for (const auto &[n, v] : gauges) {
        if (n == name)
            return v;
    }
    return std::nullopt;
}

void
CounterRegistry::claimName(const std::string &name)
{
    EIP_ASSERT(!name.empty(), "statistic needs a name");
    EIP_ASSERT(used_.insert(name).second,
               "statistic name registered twice");
}

void
CounterRegistry::counter(const std::string &name, IntFn fn)
{
    claimName(name);
    EIP_ASSERT(fn != nullptr, "counter needs a read function");
    counters_.emplace_back(name, std::move(fn));
    names_.push_back(name);
}

void
CounterRegistry::counter(const std::string &name, const uint64_t *value)
{
    EIP_ASSERT(value != nullptr, "counter needs live storage");
    counter(name, [value]() { return *value; });
}

void
CounterRegistry::gauge(const std::string &name, RealFn fn)
{
    claimName(name);
    EIP_ASSERT(fn != nullptr, "gauge needs a read function");
    gauges_.emplace_back(name, std::move(fn));
}

void
CounterRegistry::histogram(const std::string &name, const Histogram *h)
{
    claimName(name);
    EIP_ASSERT(h != nullptr, "histogram registration needs live storage");
    histograms_.emplace_back(name, h);
}

std::vector<uint64_t>
CounterRegistry::sampleCounters() const
{
    std::vector<uint64_t> values;
    values.reserve(counters_.size());
    for (const auto &[name, fn] : counters_)
        values.push_back(fn());
    return values;
}

CounterDump
CounterRegistry::dump() const
{
    CounterDump out;
    out.counters.reserve(counters_.size());
    for (const auto &[name, fn] : counters_)
        out.counters.emplace_back(name, fn());
    out.gauges.reserve(gauges_.size());
    for (const auto &[name, fn] : gauges_)
        out.gauges.emplace_back(name, fn());
    out.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_) {
        HistogramDump d;
        d.buckets.reserve(h->buckets());
        for (size_t b = 0; b < h->buckets(); ++b)
            d.buckets.push_back(h->count(b));
        d.overflow = h->overflow();
        d.total = h->total();
        d.mean = h->average();
        out.histograms.emplace_back(name, std::move(d));
    }
    return out;
}

void
writeHistogramDump(JsonWriter &json, const HistogramDump &h)
{
    json.beginObject();
    json.kv("total", h.total);
    json.kv("overflow", h.overflow);
    json.kv("mean", h.mean);
    json.key("buckets").beginArray();
    for (size_t b = 0; b < h.buckets.size(); ++b) {
        if (h.buckets[b] == 0)
            continue;
        json.beginArray();
        json.value(static_cast<uint64_t>(b));
        json.value(h.buckets[b]);
        json.endArray();
    }
    json.endArray();
    json.endObject();
}

void
writeCounterSections(JsonWriter &json, const CounterDump &dump)
{
    json.key("counters").beginObject();
    for (const auto &[name, value] : dump.counters)
        json.kv(name, value);
    json.endObject();

    json.key("gauges").beginObject();
    for (const auto &[name, value] : dump.gauges)
        json.kv(name, value);
    json.endObject();

    json.key("histograms").beginObject();
    for (const auto &[name, h] : dump.histograms) {
        json.key(name);
        writeHistogramDump(json, h);
    }
    json.endObject();
}

} // namespace eip::obs
