#include "obs/trace.hh"

#include <cinttypes>
#include <cstdio>

#include "obs/json.hh"

namespace eip::obs {

const char *
pfDropReasonName(PfDropReason reason)
{
    switch (reason) {
    case PfDropReason::QueueFull: return "queue_full";
    case PfDropReason::DupQueued: return "dup_queued";
    case PfDropReason::DupCached: return "dup_cached";
    case PfDropReason::DupInflight: return "dup_inflight";
    case PfDropReason::CrossPage: return "cross_page";
    }
    return "unknown";
}

const char *
stallReasonName(StallReason reason)
{
    switch (reason) {
    case StallReason::LineMiss: return "line_miss";
    case StallReason::FtqEmptyMispredict: return "ftq_empty_mispredict";
    case StallReason::FtqEmptyStarved: return "ftq_empty_starved";
    case StallReason::BackendFull: return "backend_full";
    }
    return "unknown";
}

std::optional<uint32_t>
parseTraceFamilies(const std::string &spec)
{
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        if (name == "pf")
            mask |= kTracePf;
        else if (name == "stall")
            mask |= kTraceStall;
        else if (name == "cache")
            mask |= kTraceCache;
        else
            return std::nullopt;
        pos = comma + 1;
    }
    return mask;
}

uint64_t
LifecycleCounts::droppedTotal() const
{
    return dropQueueFull + dropDupQueued + dropDupCached + dropDupInflight +
           dropCrossPage;
}

int64_t
LifecycleCounts::inQueue() const
{
    return static_cast<int64_t>(queued) - static_cast<int64_t>(issued) -
           static_cast<int64_t>(dropDupCached) -
           static_cast<int64_t>(dropDupInflight);
}

int64_t
LifecycleCounts::inFlight() const
{
    return static_cast<int64_t>(issued) - static_cast<int64_t>(filled);
}

int64_t
LifecycleCounts::residentUnused() const
{
    return static_cast<int64_t>(filled) -
           static_cast<int64_t>(filledAfterDemand) -
           static_cast<int64_t>(firstUse) -
           static_cast<int64_t>(evictedUnused);
}

EventTracer::EventTracer(const TraceConfig &cfg_) : cfg(cfg_)
{
    if (cfg.limit == 0)
        cfg.limit = 1;
}

void
EventTracer::record(TraceEvent ev, uint32_t family)
{
    if ((cfg.families & family) == 0)
        return;
    ++recorded;
    if (ring.size() < cfg.limit) {
        ring.push_back(ev);
        return;
    }
    ring[head] = ev;
    head = (head + 1) % cfg.limit;
    didWrap = true;
}

void
EventTracer::pfRequested(uint64_t line, uint64_t cycle)
{
    ++life.requested;
    record({cycle, line, 0,
            static_cast<uint8_t>(TraceEventKind::PfRequested), 0},
           kTracePf);
}

void
EventTracer::pfQueued(uint64_t line, uint64_t cycle)
{
    ++life.queued;
    record({cycle, line, 0, static_cast<uint8_t>(TraceEventKind::PfQueued),
            0},
           kTracePf);
}

void
EventTracer::pfDropped(uint64_t line, uint64_t cycle, PfDropReason reason)
{
    switch (reason) {
    case PfDropReason::QueueFull: ++life.dropQueueFull; break;
    case PfDropReason::DupQueued: ++life.dropDupQueued; break;
    case PfDropReason::DupCached: ++life.dropDupCached; break;
    case PfDropReason::DupInflight: ++life.dropDupInflight; break;
    case PfDropReason::CrossPage: ++life.dropCrossPage; break;
    }
    record({cycle, line, 0, static_cast<uint8_t>(TraceEventKind::PfDropped),
            static_cast<uint8_t>(reason)},
           kTracePf);
}

void
EventTracer::pfMshrDefer(uint64_t line, uint64_t cycle)
{
    ++life.mshrDeferrals;
    record({cycle, line, 0,
            static_cast<uint8_t>(TraceEventKind::PfMshrDefer), 0},
           kTracePf);
}

void
EventTracer::pfIssued(uint64_t line, uint64_t cycle)
{
    ++life.issued;
    record({cycle, line, 0, static_cast<uint8_t>(TraceEventKind::PfIssued),
            0},
           kTracePf);
}

void
EventTracer::pfFilled(uint64_t line, uint64_t cycle, bool demand_touched)
{
    ++life.filled;
    if (demand_touched)
        ++life.filledAfterDemand;
    record({cycle, line, 0, static_cast<uint8_t>(TraceEventKind::PfFilled),
            static_cast<uint8_t>(demand_touched ? 1 : 0)},
           kTracePf);
}

void
EventTracer::pfFirstUse(uint64_t line, uint64_t cycle)
{
    ++life.firstUse;
    record({cycle, line, 0,
            static_cast<uint8_t>(TraceEventKind::PfFirstUse), 0},
           kTracePf);
}

void
EventTracer::pfLateUse(uint64_t line, uint64_t cycle, uint64_t wait)
{
    ++life.lateUse;
    record({cycle, line, wait,
            static_cast<uint8_t>(TraceEventKind::PfLateUse), 0},
           kTracePf);
}

void
EventTracer::pfEvictedUnused(uint64_t line, uint64_t cycle)
{
    ++life.evictedUnused;
    record({cycle, line, 0,
            static_cast<uint8_t>(TraceEventKind::PfEvictedUnused), 0},
           kTracePf);
}

void
EventTracer::stallCycle(StallReason reason, uint64_t cycle)
{
    ++stalls[static_cast<size_t>(reason)];
    ++idle;
    if (stallOpen && stallReason == reason && cycle == stallEnd) {
        stallEnd = cycle + 1;
        return;
    }
    closeStallSpan();
    stallOpen = true;
    stallReason = reason;
    stallStart = cycle;
    stallEnd = cycle + 1;
}

void
EventTracer::fetchActive()
{
    if (stallOpen)
        closeStallSpan();
}

void
EventTracer::closeStallSpan()
{
    if (!stallOpen)
        return;
    stallOpen = false;
    record({stallStart, 0, stallEnd - stallStart,
            static_cast<uint8_t>(TraceEventKind::StallSpan),
            static_cast<uint8_t>(stallReason)},
           kTraceStall);
}

void
EventTracer::demandMiss(uint64_t line, uint64_t cycle, uint64_t wait)
{
    record({cycle, line, wait,
            static_cast<uint8_t>(TraceEventKind::DemandMiss), 0},
           kTraceCache);
}

void
EventTracer::measurementBoundary(uint64_t cycle)
{
    closeStallSpan();
    life = LifecycleCounts{};
    stalls.fill(0);
    idle = 0;
    record({cycle, 0, 0,
            static_cast<uint8_t>(TraceEventKind::MeasureStart), 0},
           ~0u);
}

void
EventTracer::finish()
{
    closeStallSpan();
}

namespace {

/** Per-kind rendering table: trace_event name, category and tid. */
struct EventStyle
{
    const char *name;
    const char *cat;
    int tid;
};

EventStyle
styleFor(const TraceEvent &ev)
{
    switch (static_cast<TraceEventKind>(ev.kind)) {
    case TraceEventKind::PfRequested:
        return {"pf_requested", "pf", 1};
    case TraceEventKind::PfQueued:
        return {"pf_queued", "pf", 1};
    case TraceEventKind::PfDropped:
        return {"pf_dropped", "pf", 1};
    case TraceEventKind::PfMshrDefer:
        return {"pf_mshr_defer", "pf", 1};
    case TraceEventKind::PfIssued:
        return {"pf_issued", "pf", 1};
    case TraceEventKind::PfFilled:
        return {"pf_filled", "pf", 1};
    case TraceEventKind::PfFirstUse:
        return {"pf_first_use", "pf", 1};
    case TraceEventKind::PfLateUse:
        return {"pf_late_use", "pf", 1};
    case TraceEventKind::PfEvictedUnused:
        return {"pf_evicted_unused", "pf", 1};
    case TraceEventKind::StallSpan:
        return {stallReasonName(static_cast<StallReason>(ev.sub)), "stall",
                2};
    case TraceEventKind::DemandMiss:
        return {"l1i_demand_miss", "cache", 3};
    case TraceEventKind::MeasureStart:
        return {"measure_start", "meta", 1};
    }
    return {"unknown", "meta", 1};
}

std::string
hexLine(uint64_t line)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64, line);
    return buf;
}

void
writeThreadName(JsonWriter &json, int tid, const char *name)
{
    json.beginObject()
        .kv("name", "thread_name")
        .kv("ph", "M")
        .kv("pid", 1)
        .kv("tid", tid);
    json.key("args").beginObject().kv("name", name).endObject();
    json.endObject();
}

void
writeEvent(JsonWriter &json, const TraceEvent &ev)
{
    const EventStyle style = styleFor(ev);
    const auto kind = static_cast<TraceEventKind>(ev.kind);
    const bool span = kind == TraceEventKind::StallSpan;

    json.beginObject()
        .kv("name", style.name)
        .kv("cat", style.cat)
        .kv("ph", span ? "X" : "i")
        .kv("ts", ev.cycle)
        .kv("pid", 1)
        .kv("tid", style.tid);
    if (span)
        json.kv("dur", ev.arg);
    else
        json.kv("s", "t");
    json.key("args").beginObject();
    switch (kind) {
    case TraceEventKind::PfDropped:
        json.kv("line", hexLine(ev.line))
            .kv("reason",
                pfDropReasonName(static_cast<PfDropReason>(ev.sub)));
        break;
    case TraceEventKind::PfFilled:
        json.kv("line", hexLine(ev.line))
            .kv("demand_touched", ev.sub != 0);
        break;
    case TraceEventKind::PfLateUse:
        json.kv("line", hexLine(ev.line)).kv("wait", ev.arg);
        break;
    case TraceEventKind::DemandMiss:
        json.kv("line", hexLine(ev.line)).kv("wait", ev.arg);
        break;
    case TraceEventKind::StallSpan:
    case TraceEventKind::MeasureStart:
        break;
    default:
        json.kv("line", hexLine(ev.line));
        break;
    }
    json.endObject();
    json.endObject();
}

} // namespace

std::string
EventTracer::toJson(
    const std::vector<std::pair<std::string, std::string>> &meta) const
{
    JsonWriter json;
    json.beginObject();
    json.kv("schema", kTraceSchema);
    // One simulated cycle maps to one trace_event microsecond; viewers
    // display it as time, we read it as cycles.
    json.kv("displayTimeUnit", "ms");

    json.key("meta").beginObject();
    json.kv("clock", "cycles");
    json.kv("limit", static_cast<uint64_t>(cfg.limit));
    json.kv("recorded", recorded);
    json.kv("retained", static_cast<uint64_t>(ring.size()));
    json.kv("wrapped", didWrap);
    // Which event families fed the ring; readers need this to know
    // whether an absent family means "filtered" or "never happened"
    // (reconcileEvents only trusts pf event counts when "pf" is here).
    std::string families;
    if ((cfg.families & kTracePf) != 0)
        families += "pf";
    if ((cfg.families & kTraceStall) != 0)
        families += families.empty() ? "stall" : ",stall";
    if ((cfg.families & kTraceCache) != 0)
        families += families.empty() ? "cache" : ",cache";
    json.kv("families", families);
    for (const auto &[key, value] : meta)
        json.kv(key, value);
    json.endObject();

    json.key("lifecycle").beginObject();
    json.kv("requested", life.requested);
    json.kv("queued", life.queued);
    json.kv("drop_queue_full", life.dropQueueFull);
    json.kv("drop_dup_queued", life.dropDupQueued);
    json.kv("drop_dup_cached", life.dropDupCached);
    json.kv("drop_dup_inflight", life.dropDupInflight);
    json.kv("drop_cross_page", life.dropCrossPage);
    json.kv("mshr_deferrals", life.mshrDeferrals);
    json.kv("issued", life.issued);
    json.kv("filled", life.filled);
    json.kv("filled_after_demand", life.filledAfterDemand);
    json.kv("first_use", life.firstUse);
    json.kv("late_use", life.lateUse);
    json.kv("evicted_unused", life.evictedUnused);
    json.endObject();

    json.key("stalls").beginObject();
    for (size_t i = 0; i < kStallReasons; ++i)
        json.kv(stallReasonName(static_cast<StallReason>(i)), stalls[i]);
    json.kv("idle_cycles", idle);
    json.endObject();

    json.key("traceEvents").beginArray();
    json.beginObject()
        .kv("name", "process_name")
        .kv("ph", "M")
        .kv("pid", 1);
    json.key("args").beginObject().kv("name", "eipsim").endObject();
    json.endObject();
    writeThreadName(json, 1, "prefetch lifecycle");
    writeThreadName(json, 2, "fetch stalls");
    writeThreadName(json, 3, "l1i demand misses");
    // Oldest first: [head, end) then [0, head) once wrapped.
    for (size_t i = head; i < ring.size(); ++i)
        writeEvent(json, ring[i]);
    for (size_t i = 0; i < head; ++i)
        writeEvent(json, ring[i]);
    json.endArray();

    json.endObject();
    std::string out = json.str();
    out.push_back('\n');
    return out;
}

} // namespace eip::obs
