/**
 * @file
 * Reader side of the tracing subsystem: parse an `eip-trace/v1`
 * document back into roll-up counts plus the raw event array, render
 * the human-readable analyses (lifecycle funnel, drop-reason table,
 * stall table, per-interval lateness), and reconcile the lifecycle
 * terminals against the counters of the matching `eip-run/v1`
 * artifact. Library code so the tests can drive it directly; the
 * `eiptrace` tool is a thin main over these functions.
 */

#ifndef EIP_OBS_TRACE_READER_HH
#define EIP_OBS_TRACE_READER_HH

#include <optional>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/trace.hh"

namespace eip::obs {

/** Parsed trace artifact. */
struct TraceDoc
{
    LifecycleCounts lifecycle;
    std::array<uint64_t, kStallReasons> stalls{};
    uint64_t idleCycles = 0;
    uint64_t limit = 0;
    uint64_t recorded = 0;
    uint64_t retained = 0;
    bool wrapped = false;
    /** Extra meta strings (workload, prefetcher, ...). */
    std::vector<std::pair<std::string, std::string>> meta;
    /** The raw traceEvents array (metadata events included). */
    JsonValue events;
};

/** Parse @p text as an eip-trace/v1 document. Returns nullopt on
 *  malformed JSON or schema violations (description in @p error). */
std::optional<TraceDoc> parseTrace(const std::string &text,
                                   std::string *error = nullptr);

/** Lifecycle funnel: stage counts with window-relative residuals. */
std::string funnelReport(const TraceDoc &doc);

/** Drop-reason table (reason, count, share of requests). */
std::string dropReport(const TraceDoc &doc);

/** Stall attribution table (reason, cycles, share of idle cycles). */
std::string stallReport(const TraceDoc &doc);

/** Per-interval lateness: bucket pf_late_use events by ts/@p interval
 *  and report count plus mean/max demand wait per bucket. Events that
 *  wrapped out of the ring are absent (note emitted when wrapped). */
std::string latenessReport(const TraceDoc &doc, uint64_t interval);

/**
 * Cross-check the trace roll-ups against the counters of the run's
 * eip-run/v1 document: lifecycle terminals vs the coverage/accuracy
 * counters (useful/late/wrong prefetches), the drop counters, and the
 * stall taxonomy. Returns one message per mismatch; empty means the
 * two artifacts describe the same run.
 */
std::vector<std::string> reconcileWithRun(const TraceDoc &trace,
                                          const JsonValue &run);

} // namespace eip::obs

#endif // EIP_OBS_TRACE_READER_HH
