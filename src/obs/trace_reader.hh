/**
 * @file
 * Reader side of the tracing subsystem: parse an `eip-trace/v1`
 * document back into roll-up counts plus the raw event array, render
 * the human-readable analyses (lifecycle funnel, drop-reason table,
 * stall table, per-interval lateness), and reconcile the lifecycle
 * terminals against the counters of the matching `eip-run/v1`
 * artifact. Library code so the tests can drive it directly; the
 * `eiptrace` tool is a thin main over these functions.
 */

#ifndef EIP_OBS_TRACE_READER_HH
#define EIP_OBS_TRACE_READER_HH

#include <optional>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/trace.hh"

namespace eip::obs {

/** Parsed trace artifact. */
struct TraceDoc
{
    LifecycleCounts lifecycle;
    std::array<uint64_t, kStallReasons> stalls{};
    uint64_t idleCycles = 0;
    uint64_t limit = 0;
    uint64_t recorded = 0;
    uint64_t retained = 0;
    bool wrapped = false;
    /** Extra meta strings (workload, prefetcher, ...). */
    std::vector<std::pair<std::string, std::string>> meta;
    /** The raw traceEvents array (metadata events included). */
    JsonValue events;
};

/** Parse @p text as an eip-trace/v1 document. Returns nullopt on
 *  malformed JSON or schema violations (description in @p error). */
std::optional<TraceDoc> parseTrace(const std::string &text,
                                   std::string *error = nullptr);

/** Lifecycle funnel: stage counts with window-relative residuals. */
std::string funnelReport(const TraceDoc &doc);

/** Drop-reason table (reason, count, share of requests). */
std::string dropReport(const TraceDoc &doc);

/** Stall attribution table (reason, cycles, share of idle cycles). */
std::string stallReport(const TraceDoc &doc);

/** Per-interval lateness: bucket pf_late_use events by ts/@p interval
 *  and report count plus mean/max demand wait per bucket. Events that
 *  wrapped out of the ring are absent (note emitted when wrapped). */
std::string latenessReport(const TraceDoc &doc, uint64_t interval);

/**
 * Cross-check the trace roll-ups against the counters of the run's
 * eip-run/v1 document: lifecycle terminals vs the coverage/accuracy
 * counters (useful/late/wrong prefetches), the drop counters, and the
 * stall taxonomy. Returns one message per mismatch; empty means the
 * two artifacts describe the same run.
 */
std::vector<std::string> reconcileWithRun(const TraceDoc &trace,
                                          const JsonValue &run);

/**
 * Cross-check the retained pf_first_use / pf_late_use event counts
 * (after the last measure_start marker, matching the roll-ups' warm
 * boundary reset) against the lifecycle roll-ups of the same document.
 * Exact only when
 * the ring never wrapped (every recorded event was retained) and the
 * "pf" family fed the ring (per the meta "families" key); otherwise
 * the check is vacuous and the result is empty. Returns one
 * field-level message per mismatch — a non-empty result means the
 * writer lost or double-counted events, not a malformed input.
 */
std::vector<std::string> reconcileEvents(const TraceDoc &trace);

/** One request-phase span of a serve trace (ts relative to the
 *  collector epoch, both in microseconds). */
struct ServeSpan
{
    uint64_t traceId = 0;
    std::string name;
    uint64_t ts = 0;
    uint64_t dur = 0;
    std::string state; ///< terminal state on root "request" spans
};

/** Parsed serve-side trace (eip-trace/v1, kind "serve") produced by
 *  the eipd span collector (obs::SpanCollector::toJson). */
struct ServeTraceDoc
{
    uint64_t limit = 0;
    uint64_t recorded = 0;
    uint64_t retained = 0;
    bool wrapped = false;
    /** Exact roll-ups (survive ring wrap). */
    uint64_t traces = 0;
    uint64_t spanDropped = 0;
    std::vector<std::pair<std::string, uint64_t>> terminals;
    std::vector<std::pair<std::string, std::string>> meta;
    /** Retained spans, oldest first (metadata events excluded). */
    std::vector<ServeSpan> spans;
};

/** Does @p root look like a serve trace (kind "serve")? Used by
 *  eiptrace to dispatch between the run-trace and serve-trace paths. */
bool isServeTrace(const JsonValue &root);

/** Parse @p text as a serve trace. Returns nullopt on malformed JSON
 *  or schema violations (description in @p error). */
std::optional<ServeTraceDoc> parseServeTrace(const std::string &text,
                                             std::string *error = nullptr);

/** Per-request timeline plus the queue-wait / fork / simulate /
 *  cache-lookup latency breakdown of the retained spans. */
std::string serveReport(const ServeTraceDoc &doc);

/**
 * Cross-check the serve trace's terminal-state roll-ups against the
 * daemon's counters (an eip-serve/v1 stats response): cache vs
 * serve.served_cache, done vs serve.simulated, rejected vs
 * serve.rejected_queue_full, crashed vs serve.worker_crashes, and
 * failed+crashed vs serve.failed. Exact — terminal counts survive
 * ring wrap. Returns one message per mismatch.
 */
std::vector<std::string> reconcileServe(const ServeTraceDoc &trace,
                                        const JsonValue &stats);

} // namespace eip::obs

#endif // EIP_OBS_TRACE_READER_HH
