/**
 * @file
 * Request-scoped spans for the serve layer. Every `eipd` request gets
 * a trace id; the daemon and its forked workers record named phase
 * spans against it (queued, cache_lookup, forked, simulated,
 * serialized, plus one root "request" span carrying the terminal
 * state). The collector keeps a bounded ring of spans and exact
 * terminal-state roll-ups, and renders the lot as an `eip-trace/v1`
 * Perfetto document (`kind:"serve"`) — one track per request, so a
 * trace viewer shows the per-request timeline and `eiptrace serve`
 * can break latency down by phase.
 *
 * Spans cross the fork boundary as a one-line `eip-span/v1` preamble
 * the worker child appends after its artifact line on the existing
 * pipe; `splitWorkerPayload`/`parseSpanPreamble` do the framing.
 *
 * Timestamps are absolute CLOCK_MONOTONIC microseconds — on Linux the
 * monotonic clock is system-wide, so parent- and child-recorded spans
 * share one timeline; the exporter normalizes to the collector epoch.
 */

#ifndef EIP_OBS_SPAN_HH
#define EIP_OBS_SPAN_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace eip::obs {

/** Absolute CLOCK_MONOTONIC now, in microseconds. */
uint64_t monotonicMicros();

/** One closed span. Root "request" spans carry a terminal @p state
 *  (done|cache|failed|crashed|rejected); phase spans leave it empty. */
struct SpanRecord
{
    uint64_t traceId = 0;
    std::string name;
    uint64_t startUs = 0;
    uint64_t durUs = 0;
    std::string state;
};

/**
 * Thread-safe bounded span store. Retains at most @p limit spans
 * (oldest dropped first, with a drop count), but terminal-state
 * roll-ups count every root span ever recorded — so reconciliation
 * against the daemon's counters stays exact no matter how small the
 * ring is.
 */
class SpanCollector
{
  public:
    explicit SpanCollector(size_t limit);

    /** Allocate the next trace id (1-based, monotonically increasing). */
    uint64_t newTrace();

    /** Record one closed span. */
    void record(SpanRecord span);
    /** Record a batch relayed from a worker child, stamping @p traceId. */
    void recordChild(uint64_t trace_id,
                     const std::vector<SpanRecord> &spans);

    size_t limit() const { return limit_; }
    uint64_t recorded() const;
    uint64_t dropped() const;
    size_t retained() const;
    /** Terminal-state counts over all root "request" spans. */
    std::map<std::string, uint64_t> terminals() const;

    /** Render the eip-trace/v1 serve document (one line + '\n').
     *  @p meta pairs land in the meta section (e.g. tool provenance). */
    std::string
    toJson(const std::vector<std::pair<std::string, std::string>> &meta =
               {}) const;

  private:
    const size_t limit_;
    mutable std::mutex mutex_;
    std::vector<SpanRecord> ring_; ///< insertion order with head_ cursor
    size_t head_ = 0;              ///< next overwrite slot once full
    bool wrapped_ = false;
    uint64_t recorded_ = 0;
    uint64_t nextTraceId_ = 0;
    uint64_t epochUs_; ///< collector construction time (ts normalization)
    std::map<std::string, uint64_t> terminals_;
};

/** Render @p spans as the one-line eip-span/v1 worker preamble
 *  (trailing '\n' included). traceId/state are not transmitted — the
 *  parent stamps the trace id and owns the terminal state. */
std::string spanPreambleJson(const std::vector<SpanRecord> &spans);

/** Parse an eip-span/v1 line back into span records. */
bool parseSpanPreamble(const std::string &line,
                       std::vector<SpanRecord> &out);

/** Split a worker pipe payload into the artifact line and an optional
 *  eip-span/v1 preamble line that follows it. Returns false when the
 *  payload has no newline at all (truncated artifact — the caller
 *  keeps its existing error handling). */
bool splitWorkerPayload(const std::string &payload, std::string &artifact,
                        std::string &preamble);

} // namespace eip::obs

#endif // EIP_OBS_SPAN_HH
