#include "obs/trace_reader.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace eip::obs {

namespace {

bool
readU64(const JsonValue &obj, const char *key, uint64_t *out,
        std::string *error)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isNumber()) {
        if (error)
            *error = std::string("missing or non-numeric key '") + key + "'";
        return false;
    }
    *out = v->asU64();
    return true;
}

std::string
line(const char *label, uint64_t value)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  %-26s %12" PRIu64 "\n", label, value);
    return buf;
}

std::string
lineSigned(const char *label, int64_t value)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  %-26s %12" PRId64 "\n", label, value);
    return buf;
}

std::string
lineShare(const char *label, uint64_t value, uint64_t total)
{
    char buf[96];
    const double share = total ? 100.0 * static_cast<double>(value) /
                                     static_cast<double>(total)
                               : 0.0;
    std::snprintf(buf, sizeof(buf), "  %-26s %12" PRIu64 "  %6.2f%%\n",
                  label, value, share);
    return buf;
}

} // namespace

std::optional<TraceDoc>
parseTrace(const std::string &text, std::string *error)
{
    std::optional<JsonValue> root = parseJson(text, error);
    if (!root)
        return std::nullopt;
    const JsonValue *schema = root->find("schema");
    if (schema == nullptr || schema->string != kTraceSchema) {
        if (error)
            *error = std::string("schema is not ") + kTraceSchema;
        return std::nullopt;
    }

    TraceDoc doc;
    const JsonValue *meta = root->find("meta");
    if (meta == nullptr || meta->type != JsonValue::Type::Object) {
        if (error)
            *error = "missing 'meta' object";
        return std::nullopt;
    }
    if (!readU64(*meta, "limit", &doc.limit, error) ||
        !readU64(*meta, "recorded", &doc.recorded, error) ||
        !readU64(*meta, "retained", &doc.retained, error))
        return std::nullopt;
    const JsonValue *wrapped = meta->find("wrapped");
    doc.wrapped = wrapped != nullptr && wrapped->boolean;
    for (const auto &[key, value] : meta->object) {
        if (value.type == JsonValue::Type::String)
            doc.meta.emplace_back(key, value.string);
    }

    const JsonValue *life = root->find("lifecycle");
    if (life == nullptr || life->type != JsonValue::Type::Object) {
        if (error)
            *error = "missing 'lifecycle' object";
        return std::nullopt;
    }
    LifecycleCounts &l = doc.lifecycle;
    const struct {
        const char *key;
        uint64_t *slot;
    } lifeKeys[] = {
        {"requested", &l.requested},
        {"queued", &l.queued},
        {"drop_queue_full", &l.dropQueueFull},
        {"drop_dup_queued", &l.dropDupQueued},
        {"drop_dup_cached", &l.dropDupCached},
        {"drop_dup_inflight", &l.dropDupInflight},
        {"drop_cross_page", &l.dropCrossPage},
        {"mshr_deferrals", &l.mshrDeferrals},
        {"issued", &l.issued},
        {"filled", &l.filled},
        {"filled_after_demand", &l.filledAfterDemand},
        {"first_use", &l.firstUse},
        {"late_use", &l.lateUse},
        {"evicted_unused", &l.evictedUnused},
    };
    for (const auto &entry : lifeKeys) {
        if (!readU64(*life, entry.key, entry.slot, error))
            return std::nullopt;
    }

    const JsonValue *stalls = root->find("stalls");
    if (stalls == nullptr || stalls->type != JsonValue::Type::Object) {
        if (error)
            *error = "missing 'stalls' object";
        return std::nullopt;
    }
    for (size_t i = 0; i < kStallReasons; ++i) {
        const char *key = stallReasonName(static_cast<StallReason>(i));
        if (!readU64(*stalls, key, &doc.stalls[i], error))
            return std::nullopt;
    }
    if (!readU64(*stalls, "idle_cycles", &doc.idleCycles, error))
        return std::nullopt;

    const JsonValue *events = root->find("traceEvents");
    if (events == nullptr || events->type != JsonValue::Type::Array) {
        if (error)
            *error = "missing 'traceEvents' array";
        return std::nullopt;
    }
    doc.events = *events;
    return doc;
}

std::string
funnelReport(const TraceDoc &doc)
{
    const LifecycleCounts &l = doc.lifecycle;
    std::string out = "prefetch lifecycle funnel\n";
    out += line("requested", l.requested);
    out += line("  queued", l.queued);
    out += line("  dropped at request", l.dropQueueFull + l.dropDupQueued);
    out += line("issued", l.issued);
    out += line("  dropped at issue", l.dropDupCached + l.dropDupInflight);
    out += lineSigned("  in queue (residual)", l.inQueue());
    out += line("filled", l.filled);
    out += lineSigned("  in flight (residual)", l.inFlight());
    out += "terminal states\n";
    out += line("  first use (timely)", l.firstUse);
    out += line("  late use (in flight)", l.lateUse);
    out += line("  filled after demand", l.filledAfterDemand);
    out += line("  evicted unused", l.evictedUnused);
    out += lineSigned("  resident unused (resid)", l.residentUnused());
    out += "not part of the funnel\n";
    out += line("  mshr deferrals (retried)", l.mshrDeferrals);
    out += line("  cross-page candidates", l.dropCrossPage);
    if (l.inQueue() < 0 || l.inFlight() < 0 || l.residentUnused() < 0)
        out += "  note: negative residuals are prefetches that crossed "
               "the warm-up boundary\n";
    return out;
}

std::string
dropReport(const TraceDoc &doc)
{
    const LifecycleCounts &l = doc.lifecycle;
    std::string out = "drop reasons (share of requests)\n";
    const uint64_t total = l.requested ? l.requested : 1;
    out += lineShare("queue_full", l.dropQueueFull, total);
    out += lineShare("dup_queued", l.dropDupQueued, total);
    out += lineShare("dup_cached", l.dropDupCached, total);
    out += lineShare("dup_inflight", l.dropDupInflight, total);
    out += lineShare("cross_page", l.dropCrossPage, total);
    return out;
}

std::string
stallReport(const TraceDoc &doc)
{
    std::string out = "fetch stall attribution (zero-fetch cycles)\n";
    for (size_t i = 0; i < kStallReasons; ++i) {
        out += lineShare(stallReasonName(static_cast<StallReason>(i)),
                         doc.stalls[i], doc.idleCycles);
    }
    out += line("idle cycles total", doc.idleCycles);
    uint64_t sum = 0;
    for (uint64_t s : doc.stalls)
        sum += s;
    if (sum != doc.idleCycles)
        out += "  WARNING: buckets do not partition idle cycles\n";
    return out;
}

std::string
latenessReport(const TraceDoc &doc, uint64_t interval)
{
    if (interval == 0)
        interval = 1;
    struct Bucket
    {
        uint64_t count = 0;
        uint64_t waitSum = 0;
        uint64_t waitMax = 0;
    };
    std::map<uint64_t, Bucket> buckets;
    for (const JsonValue &ev : doc.events.array) {
        const JsonValue *name = ev.find("name");
        if (name == nullptr || name->string != "pf_late_use")
            continue;
        const JsonValue *ts = ev.find("ts");
        const JsonValue *args = ev.find("args");
        const JsonValue *wait =
            args != nullptr ? args->find("wait") : nullptr;
        if (ts == nullptr || wait == nullptr)
            continue;
        Bucket &b = buckets[ts->asU64() / interval];
        ++b.count;
        b.waitSum += wait->asU64();
        b.waitMax = std::max(b.waitMax, wait->asU64());
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "late prefetches per %" PRIu64 "-cycle interval\n",
                  interval);
    std::string out = buf;
    if (buckets.empty()) {
        out += "  (no pf_late_use events retained)\n";
        return out;
    }
    out += "  cycle-start         count    mean-wait     max-wait\n";
    for (const auto &[idx, b] : buckets) {
        std::snprintf(buf, sizeof(buf),
                      "  %-15" PRIu64 " %9" PRIu64 " %12.1f %12" PRIu64 "\n",
                      idx * interval, b.count,
                      static_cast<double>(b.waitSum) /
                          static_cast<double>(b.count),
                      b.waitMax);
        out += buf;
    }
    if (doc.wrapped)
        out += "  note: ring wrapped; early intervals are incomplete\n";
    return out;
}

bool
isServeTrace(const JsonValue &root)
{
    const JsonValue *kind = root.find("kind");
    return kind != nullptr && kind->string == "serve";
}

std::optional<ServeTraceDoc>
parseServeTrace(const std::string &text, std::string *error)
{
    std::optional<JsonValue> root = parseJson(text, error);
    if (!root)
        return std::nullopt;
    const JsonValue *schema = root->find("schema");
    if (schema == nullptr || schema->string != kTraceSchema) {
        if (error)
            *error = std::string("schema is not ") + kTraceSchema;
        return std::nullopt;
    }
    if (!isServeTrace(*root)) {
        if (error)
            *error = "trace kind is not 'serve'";
        return std::nullopt;
    }

    ServeTraceDoc doc;
    const JsonValue *meta = root->find("meta");
    if (meta == nullptr || meta->type != JsonValue::Type::Object) {
        if (error)
            *error = "missing 'meta' object";
        return std::nullopt;
    }
    if (!readU64(*meta, "limit", &doc.limit, error) ||
        !readU64(*meta, "recorded", &doc.recorded, error) ||
        !readU64(*meta, "retained", &doc.retained, error))
        return std::nullopt;
    const JsonValue *wrapped = meta->find("wrapped");
    doc.wrapped = wrapped != nullptr && wrapped->boolean;
    for (const auto &[key, value] : meta->object) {
        if (value.type == JsonValue::Type::String)
            doc.meta.emplace_back(key, value.string);
    }

    const JsonValue *serve = root->find("serve");
    if (serve == nullptr || serve->type != JsonValue::Type::Object) {
        if (error)
            *error = "missing 'serve' object";
        return std::nullopt;
    }
    if (!readU64(*serve, "traces", &doc.traces, error) ||
        !readU64(*serve, "span_dropped", &doc.spanDropped, error))
        return std::nullopt;
    const JsonValue *terminals = serve->find("terminals");
    if (terminals == nullptr ||
        terminals->type != JsonValue::Type::Object) {
        if (error)
            *error = "missing 'serve.terminals' object";
        return std::nullopt;
    }
    for (const auto &[state, count] : terminals->object) {
        if (!count.isNumber()) {
            if (error)
                *error = "non-numeric terminal count '" + state + "'";
            return std::nullopt;
        }
        doc.terminals.emplace_back(state, count.asU64());
    }

    const JsonValue *events = root->find("traceEvents");
    if (events == nullptr || events->type != JsonValue::Type::Array) {
        if (error)
            *error = "missing 'traceEvents' array";
        return std::nullopt;
    }
    for (const JsonValue &ev : events->array) {
        const JsonValue *ph = ev.find("ph");
        if (ph == nullptr || ph->string != "X")
            continue; // metadata events
        const JsonValue *name = ev.find("name");
        const JsonValue *ts = ev.find("ts");
        const JsonValue *dur = ev.find("dur");
        const JsonValue *tid = ev.find("tid");
        if (name == nullptr || ts == nullptr || dur == nullptr ||
            tid == nullptr || !ts->isNumber() || !dur->isNumber() ||
            !tid->isNumber()) {
            if (error)
                *error = "malformed span event";
            return std::nullopt;
        }
        ServeSpan span;
        span.traceId = tid->asU64();
        span.name = name->string;
        span.ts = ts->asU64();
        span.dur = dur->asU64();
        const JsonValue *args = ev.find("args");
        const JsonValue *state =
            args != nullptr ? args->find("state") : nullptr;
        if (state != nullptr)
            span.state = state->string;
        doc.spans.push_back(std::move(span));
    }
    return doc;
}

std::string
serveReport(const ServeTraceDoc &doc)
{
    std::string out = "request terminal states (exact; survive ring wrap)\n";
    uint64_t roots = 0;
    for (const auto &[state, count] : doc.terminals)
        roots += count;
    for (const auto &[state, count] : doc.terminals)
        out += lineShare(state.c_str(), count, roots);
    out += line("requests total", roots);
    out += line("trace ids allocated", doc.traces);

    // Phase latency breakdown over the retained spans.
    struct Phase
    {
        uint64_t count = 0;
        uint64_t sum = 0;
        uint64_t max = 0;
    };
    std::map<std::string, Phase> phases;
    for (const ServeSpan &span : doc.spans) {
        Phase &p = phases[span.name];
        ++p.count;
        p.sum += span.dur;
        p.max = std::max(p.max, span.dur);
    }
    out += "\nphase latency over retained spans";
    if (doc.wrapped)
        out += " (ring wrapped; oldest spans missing)";
    out += "\n  phase                     count      mean-ms       max-ms\n";
    for (const auto &[name, p] : phases) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "  %-24s %7" PRIu64 " %12.3f %12.3f\n", name.c_str(),
                      p.count,
                      static_cast<double>(p.sum) /
                          (1000.0 * static_cast<double>(p.count)),
                      static_cast<double>(p.max) / 1000.0);
        out += buf;
    }

    // Per-request timeline, oldest first (span order within a request
    // follows recording order: child phases land before the root).
    out += "\nper-request timeline (ts relative to collector start)\n";
    std::vector<uint64_t> order;
    for (const ServeSpan &span : doc.spans) {
        bool seen = false;
        for (uint64_t tid : order)
            seen = seen || tid == span.traceId;
        if (!seen)
            order.push_back(span.traceId);
    }
    for (uint64_t tid : order) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "  request %" PRIu64 "\n", tid);
        out += buf;
        for (const ServeSpan &span : doc.spans) {
            if (span.traceId != tid)
                continue;
            char row[160];
            std::snprintf(row, sizeof(row),
                          "    %-22s @%10.3fms  %10.3fms%s%s\n",
                          span.name.c_str(),
                          static_cast<double>(span.ts) / 1000.0,
                          static_cast<double>(span.dur) / 1000.0,
                          span.state.empty() ? "" : "  -> ",
                          span.state.c_str());
            out += row;
        }
    }
    if (doc.spans.empty())
        out += "  (no spans retained)\n";
    return out;
}

std::vector<std::string>
reconcileServe(const ServeTraceDoc &trace, const JsonValue &stats)
{
    std::vector<std::string> mismatches;
    const JsonValue *counters = stats.find("counters");
    if (counters == nullptr ||
        counters->type != JsonValue::Type::Object) {
        mismatches.push_back("stats document has no 'counters' object");
        return mismatches;
    }

    auto terminal = [&](const char *state) {
        for (const auto &[name, count] : trace.terminals)
            if (name == state)
                return count;
        return uint64_t{0};
    };
    const struct {
        const char *counter;
        uint64_t traceValue;
    } pairs[] = {
        {"serve.served_cache", terminal("cache")},
        {"serve.simulated", terminal("done")},
        {"serve.rejected_queue_full", terminal("rejected")},
        {"serve.worker_crashes", terminal("crashed")},
        // A crashed worker is one way a request fails; the daemon counts
        // both under serve.failed.
        {"serve.failed", terminal("failed") + terminal("crashed")},
    };
    for (const auto &pair : pairs) {
        const JsonValue *counter = counters->find(pair.counter);
        if (counter == nullptr || !counter->isNumber()) {
            mismatches.push_back(std::string("counter '") + pair.counter +
                                 "' missing from stats document");
            continue;
        }
        if (counter->asU64() != pair.traceValue) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "%s: stats=%" PRIu64 " trace=%" PRIu64,
                          pair.counter, counter->asU64(), pair.traceValue);
            mismatches.push_back(buf);
        }
    }
    return mismatches;
}

std::vector<std::string>
reconcileWithRun(const TraceDoc &trace, const JsonValue &run)
{
    std::vector<std::string> mismatches;
    const JsonValue *counters = run.find("counters");
    if (counters == nullptr ||
        counters->type != JsonValue::Type::Object) {
        mismatches.push_back("run document has no 'counters' object");
        return mismatches;
    }

    const LifecycleCounts &l = trace.lifecycle;
    const struct {
        const char *counter;
        uint64_t traceValue;
    } pairs[] = {
        {"l1i.prefetch_requested", l.requested},
        {"l1i.prefetch_issued", l.issued},
        {"l1i.prefetch_dropped_full", l.dropQueueFull},
        {"l1i.prefetch_filtered",
         l.dropDupQueued + l.dropDupCached + l.dropDupInflight},
        {"l1i.prefetch_drop_dup_queued", l.dropDupQueued},
        {"l1i.prefetch_drop_dup_cached", l.dropDupCached},
        {"l1i.prefetch_drop_dup_inflight", l.dropDupInflight},
        {"l1i.prefetch_mshr_deferrals", l.mshrDeferrals},
        {"l1i.useful_prefetches", l.firstUse},
        {"l1i.late_prefetches", l.lateUse},
        {"l1i.wrong_prefetches", l.evictedUnused},
        {"cpu.fetch_stall_line_miss",
         trace.stalls[static_cast<size_t>(StallReason::LineMiss)]},
        {"cpu.fetch_stall_ftq_empty_mispredict",
         trace.stalls[static_cast<size_t>(
             StallReason::FtqEmptyMispredict)]},
        {"cpu.fetch_stall_ftq_empty_starved",
         trace.stalls[static_cast<size_t>(StallReason::FtqEmptyStarved)]},
        {"cpu.fetch_stall_rob_full",
         trace.stalls[static_cast<size_t>(StallReason::BackendFull)]},
        {"cpu.fetch_idle_cycles", trace.idleCycles},
    };
    for (const auto &pair : pairs) {
        const JsonValue *counter = counters->find(pair.counter);
        if (counter == nullptr || !counter->isNumber()) {
            mismatches.push_back(std::string("counter '") + pair.counter +
                                 "' missing from run document");
            continue;
        }
        if (counter->asU64() != pair.traceValue) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "%s: run=%" PRIu64 " trace=%" PRIu64,
                          pair.counter, counter->asU64(), pair.traceValue);
            mismatches.push_back(buf);
        }
    }
    return mismatches;
}

std::vector<std::string>
reconcileEvents(const TraceDoc &trace)
{
    std::vector<std::string> mismatches;
    // A wrapped ring lost its oldest events, so the retained count is a
    // lower bound and nothing exact can be asserted.
    if (trace.wrapped)
        return mismatches;
    // Honor the family mask: when "pf" was filtered out of the ring the
    // roll-ups still count every event but the array has none. Traces
    // from writers predating the "families" meta key carried every
    // family by default, so an absent key means "pf" was live.
    for (const auto &[key, value] : trace.meta) {
        if (key == "families" &&
            value.find("pf") == std::string::npos)
            return mismatches;
    }

    // The roll-ups reset at the measurement boundary (warm-up excluded)
    // but the ring keeps warm-up events, so only events after the last
    // measure_start marker count. The array is in record order, which
    // makes the split exact even when boundary and measured events
    // share a cycle.
    uint64_t first_use = 0;
    uint64_t late_use = 0;
    for (const JsonValue &ev : trace.events.array) {
        const JsonValue *name = ev.find("name");
        if (name == nullptr)
            continue;
        if (name->string == "measure_start") {
            first_use = 0;
            late_use = 0;
        } else if (name->string == "pf_first_use") {
            ++first_use;
        } else if (name->string == "pf_late_use") {
            ++late_use;
        }
    }

    const struct {
        const char *event;
        const char *rollup;
        uint64_t eventCount;
        uint64_t rollupCount;
    } pairs[] = {
        {"pf_first_use", "lifecycle.first_use", first_use,
         trace.lifecycle.firstUse},
        {"pf_late_use", "lifecycle.late_use", late_use,
         trace.lifecycle.lateUse},
    };
    for (const auto &pair : pairs) {
        if (pair.eventCount == pair.rollupCount)
            continue;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s: events=%" PRIu64 " %s=%" PRIu64,
                      pair.event, pair.eventCount, pair.rollup,
                      pair.rollupCount);
        mismatches.push_back(buf);
    }
    return mismatches;
}

} // namespace eip::obs
