#include "obs/sampler.hh"

#include "util/panic.hh"

namespace eip::obs {

IntervalSampler::IntervalSampler(const CounterRegistry &registry,
                                 uint64_t interval)
    : registry(registry), interval_(interval), next_(interval)
{
    EIP_ASSERT(interval > 0, "sample interval must be positive");
}

void
IntervalSampler::take(uint64_t instructions, uint64_t cycles)
{
    Sample s;
    s.instructions = instructions;
    s.cycles = cycles;
    s.values = registry.sampleCounters();
    rows.push_back(std::move(s));
    // Advance past the current count: a cycle that retires several
    // instructions may step over a boundary, and a boundary is sampled
    // at most once.
    while (next_ <= instructions)
        next_ += interval_;
}

std::vector<uint64_t>
IntervalSampler::deltas(size_t i) const
{
    EIP_ASSERT(i < rows.size(), "sample index out of range");
    std::vector<uint64_t> out = rows[i].values;
    if (i == 0)
        return out;
    const std::vector<uint64_t> &prev = rows[i - 1].values;
    for (size_t k = 0; k < out.size(); ++k)
        out[k] -= prev[k];
    return out;
}

SampleSeries
IntervalSampler::series() const
{
    SampleSeries out;
    out.interval = interval_;
    out.names = registry.counterNames();
    out.rows = rows;
    return out;
}

} // namespace eip::obs
