/**
 * @file
 * Minimal JSON support for the observability layer: a comma-tracking
 * writer that produces byte-deterministic documents (fixed key order,
 * `%.17g` doubles so every value round-trips exactly), and a small
 * recursive-descent parser used by the tests (round-trip checks) and
 * the artifact validation tooling. No external dependencies.
 */

#ifndef EIP_OBS_JSON_HH
#define EIP_OBS_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace eip::obs {

/** Escape @p text for use inside a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &text);

/**
 * Streaming JSON writer. Call begin/end and key/value in document order;
 * commas are inserted automatically. The writer does not validate
 * grammar beyond comma placement — callers emit well-formed documents
 * by construction (and the tests parse them back).
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    JsonWriter &key(const std::string &name);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(double v);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(bool v);

    /** Splice @p text — a complete, pre-serialized JSON value — into
     *  the document where a value is expected (comma handling as for
     *  any other value). Used to embed an already-rendered eip-run/v1
     *  artifact into an eip-serve/v1 response without re-parsing it. */
    JsonWriter &raw(const std::string &text);

    /** Shorthand for key(name).value(v). */
    template <typename T>
    JsonWriter &
    kv(const std::string &name, T v)
    {
        return key(name).value(v);
    }

    const std::string &str() const { return out; }

  private:
    void separate();

    std::string out;
    std::vector<bool> needComma; ///< per open container
    bool afterKey = false;
};

/** One parsed JSON value (object keys keep document order). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    /** Numbers are doubles: exact for integers up to 2^53, far beyond
     *  any counter this simulator produces in one run. */
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Object member by key, or nullptr. */
    const JsonValue *find(const std::string &name) const;
    bool isNumber() const { return type == Type::Number; }
    uint64_t asU64() const { return static_cast<uint64_t>(number); }
};

/**
 * Parse @p text as one JSON document. Returns nullopt on malformed
 * input (the error description lands in @p error when given).
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

} // namespace eip::obs

#endif // EIP_OBS_JSON_HH
