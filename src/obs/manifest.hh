/**
 * @file
 * Run manifest: the self-describing header of every machine-readable
 * artifact — what was simulated (workload, seeds, config), under which
 * prefetcher (name, storage), by which build (git describe), and how
 * (instruction budgets, sample interval, scale knob).
 *
 * Timing fields (wall-clock, jobs) describe the execution environment,
 * not the experiment; they are emitted in single-run artifacts but
 * omitted from suite roll-ups so a roll-up is byte-identical for any
 * worker count (the determinism contract of exec::runBatch extends to
 * the artifacts).
 */

#ifndef EIP_OBS_MANIFEST_HH
#define EIP_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace eip::obs {

class JsonWriter;

/** Schema identifiers stamped into every artifact. */
inline constexpr const char *kRunSchema = "eip-run/v1";
inline constexpr const char *kSuiteSchema = "eip-suite/v1";
inline constexpr const char *kBenchSchema = "eip-bench/v1";
/** Request/response/stats documents of the eipd job server (src/serve). */
inline constexpr const char *kServeSchema = "eip-serve/v1";

struct RunManifest
{
    std::string tool = "eipsim";
    std::string workload;
    std::string category;
    std::string configId;      ///< requested prefetcher/config id
    std::string configName;    ///< pretty name (Prefetcher::name())
    std::string dataPrefetcher = "none";
    uint64_t storageBits = 0;  ///< prefetcher hardware cost
    uint64_t programSeed = 0;  ///< synthetic-program generator seed
    uint64_t execSeed = 0;     ///< executor (CFG walker) seed
    uint64_t instructions = 0; ///< measured instruction budget
    uint64_t warmup = 0;
    uint64_t sampleInterval = 0; ///< 0 = interval sampling off
    double simScale = 1.0;       ///< EIP_SIM_SCALE at run time
    std::string gitDescribe;     ///< build provenance (set by default)

    /** Trace provenance (trace-backed workloads only; all three fields
     *  appear together, or — for synthetic workloads — not at all, so
     *  pre-existing artifacts stay byte-identical). The digest pins the
     *  trace content: two different traces at the same path can never
     *  produce artifacts that alias. */
    std::string traceKind;   ///< "eip-trace" | "champsim" | "" (synthetic)
    uint64_t traceBytes = 0; ///< trace file size as stored
    std::string traceDigest; ///< 16-hex FNV-1a of the trace file bytes

    /** Sampled-simulation spec echo (periodic runs only; like the trace
     *  triple the fields appear together or not at all, keeping full-run
     *  artifacts byte-identical to before sampling existed). */
    std::string sampleMode;    ///< "periodic" | "" (full run)
    uint64_t sampleWindow = 0; ///< detailed instructions per window
    uint64_t samplePeriod = 0; ///< instructions per sampling period
    uint64_t sampleSeed = 0;   ///< systematic-offset seed
    uint64_t sampleWarm = 0;   ///< warming bound per gap (0 = whole gap)

    // Environment-dependent timing (see file comment).
    double wallClockSeconds = 0.0;
    unsigned jobs = 0;
    /** Host-side simulation speed of the run: wall-clock milliseconds and
     *  simulated (warm-up + measured) instructions per host microsecond.
     *  Excluded together with the other timing fields, so simulation
     *  results stay byte-comparable across hosts and skip modes. */
    double hostWallMs = 0.0;
    double hostMips = 0.0;
    /** Host wall time per run phase (obs::PhaseProfiler::totalsMs),
     *  first-seen order. Timing field like hostWallMs: single-run
     *  artifacts only, omitted when empty. */
    std::vector<std::pair<std::string, double>> phaseMs;

    RunManifest();
};

/** `git describe --always --dirty` of the source tree this binary was
 *  built from ("unknown" outside a git checkout). */
std::string buildGitDescribe();

/** Emit @p m as the value of a "manifest" key (object, fixed key
 *  order). @p include_timing gates the environment-dependent fields. */
void writeManifest(JsonWriter &json, const RunManifest &m,
                   bool include_timing);

} // namespace eip::obs

#endif // EIP_OBS_MANIFEST_HH
