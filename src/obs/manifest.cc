#include "obs/manifest.hh"

#include "obs/json.hh"

#ifndef EIP_GIT_DESCRIBE
#define EIP_GIT_DESCRIBE "unknown"
#endif

namespace eip::obs {

RunManifest::RunManifest()
    : gitDescribe(buildGitDescribe())
{}

std::string
buildGitDescribe()
{
    return EIP_GIT_DESCRIBE;
}

void
writeManifest(JsonWriter &json, const RunManifest &m, bool include_timing)
{
    json.key("manifest").beginObject();
    json.kv("tool", m.tool);
    json.kv("workload", m.workload);
    json.kv("category", m.category);
    json.kv("config_id", m.configId);
    json.kv("config_name", m.configName);
    json.kv("data_prefetcher", m.dataPrefetcher);
    json.kv("storage_bits", m.storageBits);
    json.kv("program_seed", m.programSeed);
    json.kv("exec_seed", m.execSeed);
    json.kv("instructions", m.instructions);
    json.kv("warmup", m.warmup);
    json.kv("sample_interval", m.sampleInterval);
    json.kv("sim_scale", m.simScale);
    json.kv("git_describe", m.gitDescribe);
    if (!m.traceKind.empty()) {
        json.kv("trace_kind", m.traceKind);
        json.kv("trace_bytes", m.traceBytes);
        json.kv("trace_digest", m.traceDigest);
    }
    if (!m.sampleMode.empty()) {
        json.kv("sample_mode", m.sampleMode);
        json.kv("sample_window", m.sampleWindow);
        json.kv("sample_period", m.samplePeriod);
        json.kv("sample_seed", m.sampleSeed);
        json.kv("sample_warm", m.sampleWarm);
    }
    if (include_timing) {
        json.kv("wall_clock_seconds", m.wallClockSeconds);
        json.kv("jobs", m.jobs);
        json.kv("host_wall_ms", m.hostWallMs);
        json.kv("host_mips", m.hostMips);
        if (!m.phaseMs.empty()) {
            json.key("phase_ms").beginObject();
            for (const auto &[phase, ms] : m.phaseMs)
                json.kv(phase, ms);
            json.endObject();
        }
    }
    json.endObject();
}

} // namespace eip::obs
