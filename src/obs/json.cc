#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eip::obs {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (!needComma.empty()) {
        if (needComma.back())
            out += ',';
        needComma.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out += '{';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out += '}';
    needComma.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out += '[';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out += ']';
    needComma.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separate();
    out += '"';
    out += jsonEscape(name);
    out += "\":";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &text)
{
    separate();
    out += text;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separate();
    out += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<uint64_t>(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; derived ratios can produce them only on
        // degenerate runs. Encode as null rather than corrupt the doc.
        out += "null";
        return *this;
    }
    char buf[40];
    // %.17g: shortest-is-nice but exactness matters more — every double
    // round-trips bit-exactly, keeping artifacts byte-deterministic.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    out += '"';
    out += jsonEscape(v);
    out += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out += v ? "true" : "false";
    return *this;
}

const JsonValue *
JsonValue::find(const std::string &name) const
{
    for (const auto &[key, val] : object) {
        if (key == name)
            return &val;
    }
    return nullptr;
}

namespace {

/** Recursive-descent parser state over the input text. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text(text), err(error)
    {}

    std::optional<JsonValue>
    document()
    {
        auto v = parseValue();
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos != text.size())
            return fail("trailing characters after document");
        return v;
    }

  private:
    std::optional<JsonValue>
    fail(const std::string &what)
    {
        if (err != nullptr)
            *err = what + " at offset " + std::to_string(pos);
        return std::nullopt;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t len = 0;
        while (word[len] != '\0')
            ++len;
        if (text.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                break;
            char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return std::nullopt;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return std::nullopt;
                }
                // The writer only emits \u for control characters; a
                // byte-wide append covers everything we produce.
                out += static_cast<char>(code & 0xFF);
                break;
              }
              default:
                return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<JsonValue>
    parseValue()
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        JsonValue v;
        if (c == '{') {
            ++pos;
            v.type = JsonValue::Type::Object;
            skipWs();
            if (consume('}'))
                return v;
            while (true) {
                skipWs();
                auto key = parseString();
                if (!key)
                    return fail("expected object key");
                if (!consume(':'))
                    return fail("expected ':'");
                auto member = parseValue();
                if (!member)
                    return std::nullopt;
                v.object.emplace_back(std::move(*key), std::move(*member));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return v;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            v.type = JsonValue::Type::Array;
            skipWs();
            if (consume(']'))
                return v;
            while (true) {
                auto element = parseValue();
                if (!element)
                    return std::nullopt;
                v.array.push_back(std::move(*element));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return v;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            auto s = parseString();
            if (!s)
                return fail("malformed string");
            v.type = JsonValue::Type::String;
            v.string = std::move(*s);
            return v;
        }
        if (c == 't') {
            if (!literal("true"))
                return fail("malformed literal");
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
        }
        if (c == 'f') {
            if (!literal("false"))
                return fail("malformed literal");
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return v;
        }
        if (c == 'n') {
            if (!literal("null"))
                return fail("malformed literal");
            v.type = JsonValue::Type::Null;
            return v;
        }
        // Number.
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        double num = std::strtod(start, &end);
        if (end == start)
            return fail("expected a value");
        pos += static_cast<size_t>(end - start);
        v.type = JsonValue::Type::Number;
        v.number = num;
        return v;
    }

    const std::string &text;
    std::string *err;
    size_t pos = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    return Parser(text, error).document();
}

} // namespace eip::obs
