/**
 * @file
 * Miss-attribution ledger: shadow-state classification, counter
 * registration, the eip-why/v1 artifact section and the `eipwhy`
 * report renderer.
 */

#include "obs/why.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/json.hh"
#include "obs/registry.hh"

namespace eip::obs {

namespace {

/** Per-line cause flags (cleared when the episode resolves). */
enum ShadowFlag : uint8_t
{
    kPredicted = 1u << 0,        ///< some prefetch targeted the line
    kDroppedQueueFull = 1u << 1, ///< last request died on a full queue
    kDroppedCrossPage = 1u << 2, ///< last candidate died at a page bound
    kEvictedBeforeUse = 1u << 3, ///< prefetched line evicted untouched
    kWrongPathEvicted = 1u << 4, ///< evicted by a wrong-path fill
};

constexpr uint8_t kDropFlags = kDroppedQueueFull | kDroppedCrossPage;

std::string
fmt(const char *format, ...)
{
    char buf[160];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof(buf), format, ap);
    va_end(ap);
    return buf;
}

} // namespace

const char *
missBlameName(MissBlame blame)
{
    switch (blame) {
    case MissBlame::None:
        return "none";
    case MissBlame::NeverPredicted:
        return "never_predicted";
    case MissBlame::NotYetLearned:
        return "not_yet_learned";
    case MissBlame::DroppedQueueFull:
        return "dropped_queue_full";
    case MissBlame::DroppedCrossPage:
        return "dropped_cross_page";
    case MissBlame::LatePartial:
        return "late_partial";
    case MissBlame::EvictedBeforeUse:
        return "evicted_before_use";
    case MissBlame::PairEvicted:
        return "pair_evicted";
    case MissBlame::WrongPathPollution:
        return "wrong_path_pollution";
    }
    return "unknown";
}

uint64_t
WhyDump::total() const
{
    uint64_t sum = 0;
    for (uint64_t v : blame)
        sum += v;
    return sum;
}

void
MissAttribution::prefetchQueued(uint64_t line)
{
    // A live prefetch supersedes any earlier drop of the same line.
    uint8_t &f = flags_[line];
    f = static_cast<uint8_t>((f | kPredicted) & ~kDropFlags);
}

void
MissAttribution::prefetchDropped(uint64_t line, PfDropReason reason)
{
    uint8_t &f = flags_[line];
    f |= kPredicted;
    switch (reason) {
    case PfDropReason::QueueFull:
        f |= kDroppedQueueFull;
        break;
    case PfDropReason::CrossPage:
        f |= kDroppedCrossPage;
        break;
    default:
        // Duplicate drops (already queued / cached / in flight) mean
        // another copy of the prediction is still live — no cause.
        break;
    }
}

void
MissAttribution::prefetchFilled(uint64_t line)
{
    // The line is resident again: earlier drops and evictions are no
    // longer the proximate cause of a future miss.
    uint8_t &f = flags_[line];
    f = static_cast<uint8_t>(
        (f | kPredicted) &
        ~(kDropFlags | kEvictedBeforeUse | kWrongPathEvicted));
}

void
MissAttribution::lineEvicted(uint64_t line, bool prefetchedUnused,
                             bool byWrongPath)
{
    if (!prefetchedUnused && !byWrongPath)
        return; // a plain demand-line capacity eviction carries no blame
    uint8_t &f = flags_[line];
    if (byWrongPath)
        f |= kWrongPathEvicted;
    if (prefetchedUnused)
        f |= kEvictedBeforeUse;
}

void
MissAttribution::demandHit(uint64_t line)
{
    seen_.insert(line);
    flags_.erase(line); // episode resolved well — judge the next fresh
}

MissBlame
MissAttribution::classifyShadow(uint64_t line) const
{
    auto it = flags_.find(line);
    if (it == flags_.end())
        return MissBlame::None;
    const uint8_t f = it->second;
    if (f & kWrongPathEvicted)
        return MissBlame::WrongPathPollution;
    if (f & kEvictedBeforeUse)
        return MissBlame::EvictedBeforeUse;
    if (f & kDroppedQueueFull)
        return MissBlame::DroppedQueueFull;
    if (f & kDroppedCrossPage)
        return MissBlame::DroppedCrossPage;
    return MissBlame::None;
}

bool
MissAttribution::seenBefore(uint64_t line) const
{
    return seen_.count(line) != 0;
}

void
MissAttribution::recordMiss(MissBlame blame, uint64_t line, uint64_t pc)
{
    const size_t idx = blameIndex(blame);
    ++counts_[idx];
    ++perPc_[pc][idx];
    flags_.erase(line); // the cause has been charged — fresh episode
    seen_.insert(line);
}

void
MissAttribution::measurementBoundary()
{
    counts_.fill(0);
    perPc_.clear();
    // flags_/seen_ persist: warm-up-learned state explains measured
    // misses (a line first seen in warm-up is not "not yet learned").
}

void
MissAttribution::registerCounters(CounterRegistry &reg) const
{
    for (size_t i = 0; i < kMissBlameCount; ++i) {
        reg.counter(std::string("why.") +
                        missBlameName(static_cast<MissBlame>(i + 1)),
                    &counts_[i]);
    }
}

uint64_t
MissAttribution::count(MissBlame blame) const
{
    return counts_[blameIndex(blame)];
}

uint64_t
MissAttribution::total() const
{
    uint64_t sum = 0;
    for (uint64_t v : counts_)
        sum += v;
    return sum;
}

WhyDump
MissAttribution::dump() const
{
    WhyDump out;
    out.enabled = true;
    out.top = top_;
    out.blame = counts_;
    out.topPcs.reserve(perPc_.size());
    for (const auto &[pc, blame] : perPc_) {
        WhyDump::PcEntry entry;
        entry.pc = pc;
        entry.blame = blame;
        for (uint64_t v : blame)
            entry.total += v;
        out.topPcs.push_back(entry);
    }
    std::sort(out.topPcs.begin(), out.topPcs.end(),
              [](const WhyDump::PcEntry &a, const WhyDump::PcEntry &b) {
                  if (a.total != b.total)
                      return a.total > b.total;
                  return a.pc < b.pc;
              });
    if (out.topPcs.size() > top_)
        out.topPcs.resize(top_);
    return out;
}

void
writeWhySection(JsonWriter &json, const WhyDump &dump)
{
    json.beginObject();
    json.kv("schema", kWhySchema);
    json.kv("top", dump.top);
    json.key("blame").beginObject();
    for (size_t i = 0; i < kMissBlameCount; ++i)
        json.kv(missBlameName(static_cast<MissBlame>(i + 1)),
                dump.blame[i]);
    json.endObject();
    json.key("top_pcs").beginArray();
    for (const auto &entry : dump.topPcs) {
        json.beginObject();
        json.kv("pc", fmt("0x%" PRIx64, entry.pc));
        json.kv("total", entry.total);
        // Non-zero categories only (canonical order) — the zero rows
        // carry no information and the order is still deterministic.
        json.key("blame").beginObject();
        for (size_t i = 0; i < kMissBlameCount; ++i) {
            if (entry.blame[i] != 0)
                json.kv(missBlameName(static_cast<MissBlame>(i + 1)),
                        entry.blame[i]);
        }
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

namespace {

std::optional<uint64_t>
docCounter(const JsonValue &doc, const std::string &name)
{
    const JsonValue *counters = doc.find("counters");
    if (counters == nullptr)
        return std::nullopt;
    const JsonValue *v = counters->find(name);
    if (v == nullptr || !v->isNumber())
        return std::nullopt;
    return v->asU64();
}

std::string
manifestString(const JsonValue &doc, const std::string &key)
{
    const JsonValue *manifest = doc.find("manifest");
    const JsonValue *v =
        manifest != nullptr ? manifest->find(key) : nullptr;
    return v != nullptr && v->type == JsonValue::Type::String ? v->string
                                                              : "?";
}

/** Append @p text to @p error ("; "-separated). */
void
addError(std::string *error, const std::string &text)
{
    if (error == nullptr)
        return;
    if (!error->empty())
        *error += "; ";
    *error += text;
}

/** Blame breakdown + partition identity for one eip-run/v1 document. */
std::string
whyRunReport(const JsonValue &doc, uint64_t top, std::string *error)
{
    std::string out;
    const std::string workload = manifestString(doc, "workload");
    const std::string config = manifestString(doc, "config_name");
    out += fmt("workload %s  config %s\n", workload.c_str(),
               config.c_str());

    const JsonValue *why = doc.find("why");
    if (why == nullptr || why->type != JsonValue::Type::Object) {
        addError(error, workload + ": no 'why' section (run without "
                                   "--why?)");
        return out;
    }
    const JsonValue *blame = why->find("blame");
    if (blame == nullptr || blame->type != JsonValue::Type::Object) {
        addError(error, workload + ": 'why' section lacks 'blame'");
        return out;
    }

    std::array<uint64_t, kMissBlameCount> counts{};
    uint64_t sum = 0;
    for (size_t i = 0; i < kMissBlameCount; ++i) {
        const char *name = missBlameName(static_cast<MissBlame>(i + 1));
        const JsonValue *v = blame->find(name);
        counts[i] = v != nullptr && v->isNumber() ? v->asU64() : 0;
        sum += counts[i];
    }

    const uint64_t demand =
        docCounter(doc, "l1i.demand_misses").value_or(0);
    const uint64_t late =
        docCounter(doc, "l1i.late_prefetches").value_or(0);
    const uint64_t denom = demand != 0 ? demand : 1;

    out += "  blame breakdown (share of demand misses)\n";
    for (size_t i = 0; i < kMissBlameCount; ++i) {
        out += fmt("    %-22s %12" PRIu64 "  %6.2f%%\n",
                   missBlameName(static_cast<MissBlame>(i + 1)),
                   counts[i], 100.0 * counts[i] / denom);
    }
    out += fmt("    %-22s %12" PRIu64 "\n", "total", sum);

    // The partition identity the ledger promises.
    const uint64_t latePartial =
        counts[blameIndex(MissBlame::LatePartial)];
    if (sum != demand) {
        out += fmt("  PARTITION BROKEN: blame sums to %" PRIu64
                   ", l1i.demand_misses is %" PRIu64 "\n",
                   sum, demand);
        addError(error, workload + ": blame does not partition the "
                                   "demand misses");
    } else if (latePartial != late) {
        out += fmt("  PARTITION BROKEN: late_partial %" PRIu64
                   " != l1i.late_prefetches %" PRIu64 "\n",
                   latePartial, late);
        addError(error, workload + ": late_partial diverges from "
                                   "l1i.late_prefetches");
    } else {
        out += fmt("  partition: %" PRIu64 " late + %" PRIu64
                   " uncovered == %" PRIu64 " demand misses  OK\n",
                   late, sum - latePartial, demand);
    }

    // Per-PC drill-down.
    const JsonValue *pcs = why->find("top_pcs");
    if (pcs != nullptr && pcs->type == JsonValue::Type::Array &&
        !pcs->array.empty()) {
        out += "  hot miss PCs\n";
        uint64_t rows = 0;
        for (const JsonValue &entry : pcs->array) {
            if (rows++ >= top)
                break;
            const JsonValue *pc = entry.find("pc");
            const JsonValue *total = entry.find("total");
            out += fmt("    %-18s %10" PRIu64 "  ",
                       pc != nullptr ? pc->string.c_str() : "?",
                       total != nullptr ? total->asU64() : 0);
            const JsonValue *pcBlame = entry.find("blame");
            if (pcBlame != nullptr) {
                bool first = true;
                for (const auto &[name, v] : pcBlame->object) {
                    out += fmt("%s%s=%" PRIu64, first ? "" : " ",
                               name.c_str(), v.asU64());
                    first = false;
                }
            }
            out += "\n";
        }
    }
    return out;
}

/** Entangled-table churn timeline from the interval samples (present
 *  only when the run sampled an entangling configuration). */
std::string
whyChurnReport(const JsonValue &doc)
{
    const JsonValue *samples = doc.find("samples");
    const JsonValue *columns =
        samples != nullptr ? samples->find("columns") : nullptr;
    const JsonValue *rows =
        samples != nullptr ? samples->find("rows") : nullptr;
    if (columns == nullptr || rows == nullptr || rows->array.empty())
        return "";

    auto column = [&](const char *name) -> int {
        for (size_t i = 0; i < columns->array.size(); ++i) {
            if (columns->array[i].string == name)
                return static_cast<int>(i);
        }
        return -1;
    };
    const int inserts = column("entangling.table.inserts");
    const int evictions = column("entangling.table.evictions");
    const int relocEv = column("entangling.table.relocation_evictions");
    const int pairs = column("entangling.table.pairs_added");
    if (inserts < 0 || evictions < 0)
        return "";

    std::string out = "  entangled-table churn per sample interval\n";
    out += fmt("    %-14s %10s %10s %10s %12s\n", "instructions",
               "inserts", "evictions", "pairs+", "net-entries");
    for (const JsonValue &row : rows->array) {
        const JsonValue *instr = row.find("instructions");
        const JsonValue *values = row.find("values");
        const JsonValue *deltas = row.find("deltas");
        if (values == nullptr || deltas == nullptr)
            continue;
        auto delta = [&](int c) -> uint64_t {
            return c >= 0 && static_cast<size_t>(c) < deltas->array.size()
                       ? deltas->array[c].asU64()
                       : 0;
        };
        auto total = [&](int c) -> uint64_t {
            return c >= 0 && static_cast<size_t>(c) < values->array.size()
                       ? values->array[c].asU64()
                       : 0;
        };
        // Net entries added since measure start (warm-up residents are
        // not visible in measured counters, so this is growth, not
        // absolute occupancy).
        const int64_t net =
            static_cast<int64_t>(total(inserts)) -
            static_cast<int64_t>(total(evictions)) -
            static_cast<int64_t>(total(relocEv));
        out += fmt("    %-14" PRIu64 " %10" PRIu64 " %10" PRIu64
                   " %10" PRIu64 " %+12" PRId64 "\n",
                   instr != nullptr ? instr->asU64() : 0, delta(inserts),
                   delta(evictions), delta(pairs), net);
    }
    return out;
}

} // namespace

std::string
whyReport(const JsonValue &doc, uint64_t top, std::string *error)
{
    const JsonValue *schema = doc.find("schema");
    const std::string kind =
        schema != nullptr ? schema->string : std::string();

    std::string out;
    if (kind == "eip-suite/v1") {
        const JsonValue *runs = doc.find("runs");
        if (runs == nullptr || runs->type != JsonValue::Type::Array) {
            addError(error, "suite document has no 'runs' array");
            return out;
        }
        for (const JsonValue &run : runs->array) {
            out += whyRunReport(run, top, error);
            out += whyChurnReport(run);
            out += "\n";
        }
        return out;
    }
    if (kind != "eip-run/v1") {
        addError(error, "not an eip-run/v1 or eip-suite/v1 document");
        return out;
    }
    out += whyRunReport(doc, top, error);
    out += whyChurnReport(doc);
    return out;
}

} // namespace eip::obs
