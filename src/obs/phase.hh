/**
 * @file
 * Host-side wall-time phase profiler. A run passes through a handful
 * of coarse phases — program_build, warmup, measure, fill_drain, plus
 * one-off scopes like prefetcher construction or artifact
 * serialization — and knowing where the host time goes is what turns
 * a host-MIPS number in `BENCH_simspeed.json` from a mystery into a
 * diagnosis. The profiler records the interval of every phase
 * occurrence and accumulates per-phase totals (first-seen order, so
 * manifests stay byte-stable); totals land in `eip-run/v1` manifests
 * as `phase_ms`, intervals become spans in the serve trace.
 *
 * Hook discipline matches the tracer and the invariant auditor: the
 * simulator only calls `transition()` at phase boundaries (a few
 * times per run, never per cycle), and a disabled profiler is one
 * null-pointer test at each boundary.
 */

#ifndef EIP_OBS_PHASE_HH
#define EIP_OBS_PHASE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace eip::obs {

/** One closed phase occurrence (absolute monotonic microseconds). */
struct PhaseInterval
{
    std::string name;
    uint64_t startUs = 0;
    uint64_t endUs = 0;
};

/**
 * Accumulates named wall-time phases. Not thread-safe — one profiler
 * belongs to one run on one thread (the worker child, or the CLI
 * single-run path).
 */
class PhaseProfiler
{
  public:
    /** Close the current phase (if any) and open @p name. An empty
     *  name just closes — the profiler goes idle. */
    void transition(const std::string &name);

    /** Close the current phase without opening another. */
    void close() { transition(std::string()); }

    /** RAII helper: transitions to a phase, then restores whatever
     *  phase was open when the scope began. */
    class Scope
    {
      public:
        Scope(PhaseProfiler &profiler, const std::string &name)
            : profiler_(profiler), previous_(profiler.current_)
        {
            profiler_.transition(name);
        }
        ~Scope() { profiler_.transition(previous_); }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        PhaseProfiler &profiler_;
        std::string previous_;
    };

    /** Every closed occurrence, in time order. */
    const std::vector<PhaseInterval> &intervals() const { return intervals_; }

    /** Per-phase accumulated wall milliseconds, first-seen order. */
    std::vector<std::pair<std::string, double>> totalsMs() const;

  private:
    std::string current_;
    uint64_t currentStartUs_ = 0;
    std::vector<PhaseInterval> intervals_;
};

} // namespace eip::obs

#endif // EIP_OBS_PHASE_HH
