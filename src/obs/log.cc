#include "obs/log.hh"

#include <chrono>
#include <cstdlib>

#include "obs/json.hh"
#include "util/panic.hh"

namespace eip::obs {

const char *
logLevelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug:
        return "debug";
    case LogLevel::Info:
        return "info";
    case LogLevel::Warn:
        return "warn";
    case LogLevel::Error:
        return "error";
    case LogLevel::Off:
        return "off";
    }
    return "unknown";
}

std::optional<LogLevel>
parseLogLevel(const std::string &text)
{
    if (text == "debug")
        return LogLevel::Debug;
    if (text == "info")
        return LogLevel::Info;
    if (text == "warn" || text == "warning")
        return LogLevel::Warn;
    if (text == "error")
        return LogLevel::Error;
    if (text == "off" || text == "none")
        return LogLevel::Off;
    return std::nullopt;
}

uint64_t
logElapsedUs()
{
    using clock = std::chrono::steady_clock;
    // Initialized on first use; a forked child inherits the parent's
    // epoch, so daemon and worker timestamps share one timeline.
    static const clock::time_point start = clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              start)
            .count());
}

Logger::Logger() : level_(static_cast<int>(LogLevel::Warn))
{
    if (const char *env = std::getenv("EIP_LOG")) {
        auto parsed = parseLogLevel(env);
        if (!parsed) {
            std::string msg = std::string("EIP_LOG: unknown level '") + env +
                              "' (expected debug|info|warn|error|off)";
            EIP_FATAL(msg.c_str());
        }
        level_.store(static_cast<int>(*parsed), std::memory_order_relaxed);
    }
}

Logger &
Logger::global()
{
    static Logger logger;
    return logger;
}

void
Logger::setSink(std::FILE *sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex_);
    sink_ = sink != nullptr ? sink : stderr;
}

void
Logger::setCapture(std::vector<std::string> *lines)
{
    std::lock_guard<std::mutex> lock(sinkMutex_);
    capture_ = lines;
}

std::string
Logger::renderLine(LogLevel level, const char *component, const char *event,
                   std::initializer_list<LogField> fields)
{
    JsonWriter json;
    json.beginObject()
        .kv("schema", "eip-log/v1")
        .kv("ts_us", logElapsedUs())
        .kv("level", logLevelName(level))
        .kv("component", component)
        .kv("event", event);
    for (const LogField &f : fields) {
        switch (f.kind) {
        case LogField::Kind::Str:
            json.kv(f.key, f.str);
            break;
        case LogField::Kind::U64:
            json.kv(f.key, f.u64);
            break;
        case LogField::Kind::I64:
            json.key(f.key).value(static_cast<double>(f.i64));
            break;
        case LogField::Kind::F64:
            json.kv(f.key, f.f64);
            break;
        case LogField::Kind::Bool:
            json.kv(f.key, f.boolean);
            break;
        }
    }
    json.endObject();
    std::string line = json.str();
    line.push_back('\n');
    return line;
}

void
Logger::emit(LogLevel level, const char *component, const char *event,
             std::initializer_list<LogField> fields)
{
    if (!enabled(level))
        return;
    std::string line = renderLine(level, component, event, fields);
    std::lock_guard<std::mutex> lock(sinkMutex_);
    if (capture_ != nullptr) {
        capture_->push_back(std::move(line));
        return;
    }
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fflush(sink_);
}

} // namespace eip::obs
