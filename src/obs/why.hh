/**
 * @file
 * Miss attribution ("why did this miss happen?"): every L1I demand
 * miss inside the measured window is classified into an exactly
 * partitioning blame taxonomy. The coverage/accuracy counters say
 * *that* a miss went uncovered; this layer says *why* — the prefetcher
 * never predicted the line, the prediction was dropped, the prefetch
 * was still in flight, the prefetched line was evicted before use, the
 * entangled pair had been evicted from the table, the line had never
 * been seen, or a wrong-path fill pushed it out.
 *
 * Two invariants define the ledger (audited fatally under --check and
 * re-validated offline by scripts/validate_stats_json.py):
 *
 *   blame[late_partial]              == l1i.late_prefetches
 *   sum(every other blame category)  == l1i uncovered demand misses
 *                                       (demand_misses - late_prefetches)
 *
 * so the full ledger sums to l1i.demand_misses — no miss is counted
 * twice, none is dropped.
 *
 * The simulator holds a nullable `MissAttribution *` exactly like the
 * event tracer: every hook site is one pointer test when off, the
 * layer is a pure observer (it never feeds back into timing), and all
 * hooks fire on events (access/fill/enqueue/evict), never per cycle,
 * so event-driven cycle skipping stays armed and blame counters are
 * identical across --jobs 1/N and skip/no-skip.
 */

#ifndef EIP_OBS_WHY_HH
#define EIP_OBS_WHY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/trace.hh"

namespace eip::obs {

class CounterRegistry;
class JsonWriter;
struct JsonValue;

/** Schema identifier of the "why" artifact section. */
inline constexpr const char *kWhySchema = "eip-why/v1";

/**
 * Blame taxonomy. `None` is the not-classified sentinel (what a
 * prefetcher's blame() hook returns when it has nothing to add); the
 * eight real categories partition the demand misses of the measured
 * window. Priority when several causes apply: late_partial (structural,
 * from the MSHR merge) > wrong_path_pollution > evicted_before_use >
 * dropped_queue_full > dropped_cross_page > pair_evicted (prefetcher
 * verdict) > not_yet_learned > never_predicted.
 */
enum class MissBlame : uint8_t
{
    None = 0,
    NeverPredicted,     ///< no prefetcher candidate ever targeted the line
    NotYetLearned,      ///< first dynamic encounter of the line
    DroppedQueueFull,   ///< last prediction died on a full prefetch queue
    DroppedCrossPage,   ///< last candidate was dropped at the page bound
    LatePartial,        ///< prefetch in flight at demand time
    EvictedBeforeUse,   ///< prefetched, filled, evicted unused
    PairEvicted,        ///< entangled pair evicted from the table
    WrongPathPollution, ///< evicted by a wrong-path fill
};
inline constexpr size_t kMissBlameCount = 8;

/** Stable counter/JSON name of one category ("never_predicted", ...). */
const char *missBlameName(MissBlame blame);

/** Index of a real category into kMissBlameCount-sized arrays. */
constexpr size_t
blameIndex(MissBlame blame)
{
    return static_cast<size_t>(blame) - 1;
}

/** Detached value snapshot for the artifact writer. */
struct WhyDump
{
    bool enabled = false;
    uint64_t top = 10; ///< requested hot-PC table depth (--why-top)
    std::array<uint64_t, kMissBlameCount> blame{};

    struct PcEntry
    {
        uint64_t pc = 0;
        uint64_t total = 0;
        std::array<uint64_t, kMissBlameCount> blame{};
    };
    /** Hottest miss PCs, ordered by total desc then pc asc. */
    std::vector<PcEntry> topPcs;

    uint64_t total() const;
};

/**
 * The blame ledger plus the per-line shadow state that feeds it. The
 * cache reports prefetch-lifecycle and eviction events; on each demand
 * miss it asks `classifyShadow` first, then the prefetcher's blame()
 * hook, then the seen-set, and records the verdict with `recordMiss`.
 *
 * Shadow state (flags + seen-set) persists across the warm-up
 * boundary — state learned during warm-up legitimately explains
 * measured misses — while the counters and the per-PC table reset with
 * the rest of the stats (`measurementBoundary`).
 */
class MissAttribution
{
  public:
    explicit MissAttribution(uint64_t top = 10) : top_(top) {}

    // -- cache-side shadow hooks (all O(1) amortized) -----------------

    /** A prefetch request for @p line was accepted into the queue. */
    void prefetchQueued(uint64_t line);
    /** A prefetch request (or candidate) for @p line was dropped. */
    void prefetchDropped(uint64_t line, PfDropReason reason);
    /** A prefetch fill installed @p line. */
    void prefetchFilled(uint64_t line);
    /** @p line was evicted from the cache. @p prefetchedUnused: it was
     *  prefetched and never demand-touched; @p byWrongPath: the fill
     *  that evicted it originated on the wrong path. */
    void lineEvicted(uint64_t line, bool prefetchedUnused,
                     bool byWrongPath);
    /** Demand hit on @p line: the episode resolved well; clear the
     *  line's shadow flags and mark it seen. */
    void demandHit(uint64_t line);

    // -- classification ----------------------------------------------

    /** Shadow verdict for a miss on @p line (None when the shadow has
     *  no cause on record; the caller then consults the prefetcher's
     *  blame() hook and finally the seen-set). */
    MissBlame classifyShadow(uint64_t line) const;
    /** Whether @p line was demand-accessed before (this run). */
    bool seenBefore(uint64_t line) const;
    /** Count a classified miss: bump the ledger and the per-PC table,
     *  consume the line's shadow flags, mark the line seen. */
    void recordMiss(MissBlame blame, uint64_t line, uint64_t pc);

    // -- aggregation --------------------------------------------------

    /** Warm-up boundary: zero the ledger and the per-PC table; shadow
     *  state persists (it explains the measured window). */
    void measurementBoundary();

    /** Register the eight ledger counters ("why.<category>"). */
    void registerCounters(CounterRegistry &reg) const;

    uint64_t count(MissBlame blame) const;
    /** Sum of all eight categories (== classified demand misses). */
    uint64_t total() const;

    uint64_t top() const { return top_; }

    /** Snapshot for the artifact writer (top-N hot-PC table resolved
     *  deterministically: total desc, then pc asc). */
    WhyDump dump() const;

  private:
    uint64_t top_;
    std::array<uint64_t, kMissBlameCount> counts_{};
    /** Per-line cause flags since the last demand access. */
    std::unordered_map<uint64_t, uint8_t> flags_;
    /** Lines demand-accessed at least once (warm-up included). */
    std::unordered_set<uint64_t> seen_;
    /** Per-PC ledger rows (miss PCs only; bounded by the code
     *  footprint, not the run length). */
    std::unordered_map<uint64_t, std::array<uint64_t, kMissBlameCount>>
        perPc_;
};

/** Emit the "why" section (an eip-why/v1 object) into an open JSON
 *  object: schema, requested depth, the eight-category ledger, and the
 *  hot-PC table. Byte-deterministic (fixed key order). */
void writeWhySection(JsonWriter &json, const WhyDump &dump);

/**
 * Render the `eipwhy` report for one parsed eip-run/v1 document (or
 * each run of an eip-suite/v1 roll-up): blame breakdown against the
 * run's demand misses, partition identity check, per-PC drill-down
 * (up to @p top rows) and — when interval samples carry the
 * entangled-table counters — the table churn timeline. Returns the
 * report text; on a malformed document or a broken partition identity
 * the description lands in @p error and the text rendered so far is
 * still returned (the caller exits non-zero).
 */
std::string whyReport(const JsonValue &doc, uint64_t top,
                      std::string *error);

} // namespace eip::obs

#endif // EIP_OBS_WHY_HH
