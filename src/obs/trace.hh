/**
 * @file
 * Bounded-overhead event tracing: typed events recorded into a per-run
 * ring buffer and exported as Chrome/Perfetto `trace_event` JSON
 * (schema `eip-trace/v1`).
 *
 * Two kinds of state live side by side and are deliberately decoupled:
 *
 *  - **Roll-up counters** (LifecycleCounts, stall totals). Every hook
 *    updates these unconditionally; they are exact over the measured
 *    window and reconcile 1:1 with the CounterRegistry stats of the
 *    same run. Ring-buffer wrap never perturbs them.
 *  - **The event ring**. Individual events are appended subject to the
 *    family mask (`--trace-events`) and the capacity limit
 *    (`--trace-limit`); once full, the oldest events are overwritten.
 *    The ring bounds memory, not correctness — analyses that need
 *    exact totals read the counters, the ring is for timelines.
 *
 * The simulator holds a nullable `EventTracer *`; with tracing off
 * every hook site is a single pointer test and the tracer is pure
 * observer (it never feeds back into timing), so stats are
 * byte-identical with and without `--trace-out`.
 */

#ifndef EIP_OBS_TRACE_HH
#define EIP_OBS_TRACE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace eip::obs {

/** Schema identifier stamped into trace artifacts. */
inline constexpr const char *kTraceSchema = "eip-trace/v1";

/** Why a prefetch request (or prefetcher candidate) was discarded. */
enum class PfDropReason : uint8_t
{
    QueueFull = 0,  ///< prefetch queue at capacity (or depth 0)
    DupQueued,      ///< same line already waiting in the queue
    DupCached,      ///< line already resident when issue was attempted
    DupInflight,    ///< line already in flight (MSHR hit) at issue
    CrossPage,      ///< candidate outside the trigger page, dropped by
                    ///< the prefetcher before it became a request
};
inline constexpr size_t kPfDropReasons = 5;

/** Why the fetch stage delivered zero instructions in a cycle.
 *  Exactly one reason is charged per zero-fetch cycle (the buckets
 *  partition SimStats::fetchIdleCycles). */
enum class StallReason : uint8_t
{
    LineMiss = 0,       ///< FTQ head still waiting on the L1I
    FtqEmptyMispredict, ///< FTQ drained while a redirect resolves
    FtqEmptyStarved,    ///< FTQ drained: prediction under-supplied fetch
    BackendFull,        ///< ROB full, nowhere to put instructions
};
inline constexpr size_t kStallReasons = 4;

const char *pfDropReasonName(PfDropReason reason);
const char *stallReasonName(StallReason reason);

/** Event families, maskable via --trace-events. The mask gates only
 *  what enters the ring; roll-up counters always update. */
enum TraceFamily : uint32_t
{
    kTracePf = 1u << 0,    ///< prefetch lifecycle ("pf")
    kTraceStall = 1u << 1, ///< fetch stall spans ("stall")
    kTraceCache = 1u << 2, ///< demand-miss instants ("cache")
    kTraceAll = kTracePf | kTraceStall | kTraceCache,
};

/** Parse a comma-separated family list ("pf,stall,cache") into a
 *  mask. Returns nullopt on an empty list or unknown name. */
std::optional<uint32_t> parseTraceFamilies(const std::string &spec);

struct TraceConfig
{
    /** Ring capacity in events. 24 B/event, so the default bounds the
     *  ring at ~24 MiB regardless of run length. */
    size_t limit = 1u << 20;
    uint32_t families = kTraceAll;
};

/**
 * Prefetch-lifecycle roll-up. The state machine per prefetch is
 *
 *   requested -> queued | dropped(QueueFull | DupQueued)
 *   queued    -> issued | dropped(DupCached | DupInflight)
 *   issued    -> filled
 *   filled    -> first-use | late-use(at fill) | evicted-unused
 *
 * Terminal states are mutually exclusive per prefetched line fill.
 * Stage equalities that hold in any measurement window (each hook
 * resolves atomically): requested == queued + dropQueueFull +
 * dropDupQueued. Cross-stage inequalities (issued <= queued, filled
 * <= issued, terminals <= filled) hold when the window covers the
 * whole run (warmup 0); with a warm-up boundary, in-flight prefetches
 * straddle the reset and the residuals below can go negative.
 */
struct LifecycleCounts
{
    uint64_t requested = 0; ///< Cache::enqueuePrefetch calls
    uint64_t queued = 0;    ///< accepted into the prefetch queue
    uint64_t dropQueueFull = 0;
    uint64_t dropDupQueued = 0;
    uint64_t dropDupCached = 0;
    uint64_t dropDupInflight = 0;
    uint64_t dropCrossPage = 0; ///< prefetcher candidates, pre-request
    uint64_t mshrDeferrals = 0; ///< issue attempts blocked on MSHRs
                                ///< (retried, not dropped)
    uint64_t issued = 0;        ///< MSHR allocated, sent to next level
    uint64_t filled = 0;        ///< prefetch fill installed a line
    uint64_t filledAfterDemand = 0; ///< ... demand hit the MSHR first
    uint64_t firstUse = 0;          ///< terminal: demand hit, timely
    uint64_t lateUse = 0;           ///< terminal: demand hit in flight
    uint64_t evictedUnused = 0;     ///< terminal: evicted untouched

    uint64_t droppedTotal() const;
    /** Window-relative residuals (see struct comment). */
    int64_t inQueue() const;
    int64_t inFlight() const;
    int64_t residentUnused() const;
};

/** Compact fixed-size ring entry; rendered to trace_event JSON only at
 *  export time. */
struct TraceEvent
{
    uint64_t cycle = 0;
    uint64_t line = 0; ///< cache-line address (byte >> 6); 0 if n/a
    uint64_t arg = 0;  ///< wait cycles (late-use, miss), dur (stall)
    uint8_t kind = 0;  ///< TraceEventKind
    uint8_t sub = 0;   ///< PfDropReason / StallReason / flags
};

enum class TraceEventKind : uint8_t
{
    PfRequested = 0,
    PfQueued,
    PfDropped,      ///< sub = PfDropReason
    PfMshrDefer,
    PfIssued,
    PfFilled,       ///< sub = 1 when the MSHR was demand-touched
    PfFirstUse,
    PfLateUse,      ///< arg = cycles the demand waited on the fill
    PfEvictedUnused,
    StallSpan,      ///< sub = StallReason, arg = span length
    DemandMiss,     ///< arg = miss latency in cycles
    MeasureStart,   ///< warm-up boundary: counters reset here
};

class EventTracer
{
  public:
    explicit EventTracer(const TraceConfig &cfg = TraceConfig{});

    const TraceConfig &config() const { return cfg; }
    const LifecycleCounts &lifecycle() const { return life; }
    const std::array<uint64_t, kStallReasons> &stallCycles() const
    {
        return stalls;
    }
    uint64_t idleCycles() const { return idle; }
    /** Events offered to the ring (post family mask, pre wrap). */
    uint64_t recordedEvents() const { return recorded; }
    size_t retainedEvents() const { return ring.size(); }
    bool wrapped() const { return didWrap; }

    // -- prefetch lifecycle hooks (family "pf") ------------------------
    void pfRequested(uint64_t line, uint64_t cycle);
    void pfQueued(uint64_t line, uint64_t cycle);
    void pfDropped(uint64_t line, uint64_t cycle, PfDropReason reason);
    void pfMshrDefer(uint64_t line, uint64_t cycle);
    void pfIssued(uint64_t line, uint64_t cycle);
    void pfFilled(uint64_t line, uint64_t cycle, bool demand_touched);
    void pfFirstUse(uint64_t line, uint64_t cycle);
    void pfLateUse(uint64_t line, uint64_t cycle, uint64_t wait);
    void pfEvictedUnused(uint64_t line, uint64_t cycle);

    // -- front-end cycle accounting (family "stall") -------------------
    /** Charge one zero-fetch cycle to @p reason. Consecutive cycles
     *  with the same reason coalesce into one "X" span event. */
    void stallCycle(StallReason reason, uint64_t cycle);
    /** Fetch delivered instructions this cycle: close any open span. */
    void fetchActive();

    // -- cache events (family "cache") ---------------------------------
    void demandMiss(uint64_t line, uint64_t cycle, uint64_t wait);

    // -- run phase -----------------------------------------------------
    /** Warm-up ended: zero every roll-up so they cover exactly the
     *  measured window (the same instant the sim stats are reset).
     *  Ring contents are kept — warm-up events are valid timeline. */
    void measurementBoundary(uint64_t cycle);
    /** End of run: close any open stall span. Call before toJson(). */
    void finish();

    /** Render the whole document (oldest retained event first).
     *  @p meta: extra string pairs for the "meta" object (workload,
     *  prefetcher, ... — supplied by the harness). */
    std::string
    toJson(const std::vector<std::pair<std::string, std::string>> &meta =
               {}) const;

  private:
    void record(TraceEvent ev, uint32_t family);
    void closeStallSpan();

    TraceConfig cfg;
    LifecycleCounts life;
    std::array<uint64_t, kStallReasons> stalls{};
    uint64_t idle = 0;

    std::vector<TraceEvent> ring;
    size_t head = 0; ///< index of the oldest event once wrapped
    bool didWrap = false;
    uint64_t recorded = 0;

    bool stallOpen = false;
    StallReason stallReason = StallReason::LineMiss;
    uint64_t stallStart = 0;
    uint64_t stallEnd = 0;
};

} // namespace eip::obs

#endif // EIP_OBS_TRACE_HH
