#include "util/table_printer.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace eip {

void
TablePrinter::newRow()
{
    rows.emplace_back();
}

void
TablePrinter::cell(const std::string &text)
{
    if (rows.empty())
        newRow();
    rows.back().push_back(text);
}

void
TablePrinter::cell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    cell(std::string(buf));
}

void
TablePrinter::cell(uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    cell(std::string(buf));
}

void
TablePrinter::cell(int value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%d", value);
    cell(std::string(buf));
}

std::string
TablePrinter::toString() const
{
    // Compute per-column widths.
    std::vector<size_t> widths;
    for (const auto &row : rows) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    for (size_t r = 0; r < rows.size(); ++r) {
        for (size_t c = 0; c < rows[r].size(); ++c) {
            const std::string &text = rows[r][c];
            out << text;
            if (c + 1 < rows[r].size())
                out << std::string(widths[c] - text.size() + 2, ' ');
        }
        out << '\n';
        if (r == 0) {
            size_t total = 0;
            for (size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

void
TablePrinter::print() const
{
    std::fputs(toString().c_str(), stdout);
}

} // namespace eip
