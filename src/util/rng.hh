/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used by the
 * synthetic workload generators and the DRAM jitter model. All simulations
 * in this repository are bit-reproducible given the same seeds.
 */

#ifndef EIP_UTIL_RNG_HH
#define EIP_UTIL_RNG_HH

#include <cstdint>

namespace eip {

/** xoshiro256** by Blackman & Vigna; small, fast, and high quality. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a single seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state) {
            seed += 0x9e3779b97f4a7c15ULL;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). Returns 0 when bound == 0. */
    uint64_t
    below(uint64_t bound)
    {
        return bound == 0 ? 0 : next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    between(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish pick in [0, n): favours small indices. Used to make
     * synthetic call graphs and branch targets exhibit locality.
     */
    uint64_t
    skewedBelow(uint64_t n)
    {
        if (n <= 1)
            return 0;
        double u = uniform();
        return static_cast<uint64_t>(u * u * static_cast<double>(n));
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4] = {};
};

} // namespace eip

#endif // EIP_UTIL_RNG_HH
