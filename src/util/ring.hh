/**
 * @file
 * Fixed-capacity FIFO ring buffer with a std::deque-compatible subset API
 * (push_back / pop_front / front / back / operator[] / iteration in
 * insertion order). The simulator's bounded pipeline queues (FTQ, ROB,
 * prefetch queue) are capacity-limited by construction, so a deque's
 * segmented allocation buys nothing — a Ring never allocates after
 * construction and indexes with a power-of-two mask.
 *
 * Unlike util::CircularBuffer (overwrite-oldest, newest-first indexing),
 * a full Ring rejects pushes: exceeding the capacity is a simulator bug
 * (the occupancy bound was checked by the caller), so push asserts.
 */

#ifndef EIP_UTIL_RING_HH
#define EIP_UTIL_RING_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "util/panic.hh"

namespace eip::util {

template <typename T>
class Ring
{
  public:
    /** A ring holding at most @p capacity elements (>= 1). Storage is
     *  rounded up to a power of two for mask indexing. */
    explicit Ring(size_t capacity)
        : cap_(capacity)
    {
        EIP_ASSERT(capacity >= 1, "ring capacity must be positive");
        size_t storage = 1;
        while (storage < capacity)
            storage <<= 1;
        mask_ = storage - 1;
        slots_.resize(storage);
    }

    size_t size() const { return count_; }
    size_t capacity() const { return cap_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == cap_; }

    /** Element @p i in insertion order (0 = oldest), like deque. */
    T &operator[](size_t i)
    {
        EIP_DASSERT(i < count_, "ring index out of range");
        return slots_[(head_ + i) & mask_];
    }
    const T &operator[](size_t i) const
    {
        EIP_DASSERT(i < count_, "ring index out of range");
        return slots_[(head_ + i) & mask_];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[count_ - 1]; }
    const T &back() const { return (*this)[count_ - 1]; }

    void
    push_back(const T &value)
    {
        pushSlot() = value;
    }

    void
    push_back(T &&value)
    {
        pushSlot() = std::move(value);
    }

    /**
     * Advance the tail and return the new slot *as-is*: its contents are
     * whatever a previous occupant left behind, and the caller must
     * reset every field. In exchange, slot-owned heap capacity (e.g. a
     * member std::vector's allocation) is reused instead of reallocated
     * — the reason the hot FTQ path uses this instead of push_back.
     */
    T &
    pushSlot()
    {
        EIP_ASSERT(count_ < cap_, "ring overflow");
        T &slot = slots_[(head_ + count_) & mask_];
        ++count_;
        return slot;
    }

    /** Drop the oldest element. The slot is not destroyed (its heap
     *  capacity stays for reuse by a later pushSlot). */
    void
    pop_front()
    {
        EIP_DASSERT(count_ > 0, "pop_front on empty ring");
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    /** Forward iterator over the live elements in insertion order. */
    template <typename RingT, typename ValueT>
    class Iter
    {
      public:
        Iter(RingT *ring, size_t pos) : ring_(ring), pos_(pos) {}
        ValueT &operator*() const { return (*ring_)[pos_]; }
        ValueT *operator->() const { return &(*ring_)[pos_]; }
        Iter &operator++()
        {
            ++pos_;
            return *this;
        }
        bool operator==(const Iter &o) const { return pos_ == o.pos_; }
        bool operator!=(const Iter &o) const { return pos_ != o.pos_; }

      private:
        RingT *ring_;
        size_t pos_;
    };

    using iterator = Iter<Ring, T>;
    using const_iterator = Iter<const Ring, const T>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, count_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, count_); }

  private:
    size_t cap_;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t count_ = 0;
    std::vector<T> slots_;
};

} // namespace eip::util

#endif // EIP_UTIL_RING_HH
