/**
 * @file
 * Small statistics helpers for the evaluation harness: geometric mean,
 * arithmetic mean, standard deviation, percentile.
 */

#ifndef EIP_UTIL_STATS_MATH_HH
#define EIP_UTIL_STATS_MATH_HH

#include <algorithm>
#include <cmath>
#include <vector>

namespace eip {

/** Geometric mean; ignores non-positive values. Returns 0 for empty input. */
inline double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    size_t n = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

/** Arithmetic mean. Returns 0 for empty input. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Population standard deviation. Returns 0 for fewer than two values. */
inline double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

/**
 * Value at fraction @p q (in [0, 1]) of the sorted input, linearly
 * interpolated between the two straddling order statistics (the
 * "linear" / type-7 estimator): p50 of {1, 2} is 1.5, not one of the
 * inputs. Used for the per-workload s-curve figures, where short
 * series (a handful of workloads per category) would otherwise make
 * p10/p90 collapse onto min/max.
 */
inline double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    double pos = q * static_cast<double>(values.size() - 1);
    if (pos <= 0.0)
        return values.front();
    auto lo = static_cast<size_t>(pos);
    if (lo >= values.size() - 1)
        return values.back();
    double frac = pos - static_cast<double>(lo);
    return values[lo] + frac * (values[lo + 1] - values[lo]);
}

} // namespace eip

#endif // EIP_UTIL_STATS_MATH_HH
