/**
 * @file
 * Fixed-capacity circular buffer. Models small hardware queues such as the
 * Entangling History buffer (16 entries) and the fetch target queue.
 */

#ifndef EIP_UTIL_CIRCULAR_BUFFER_HH
#define EIP_UTIL_CIRCULAR_BUFFER_HH

#include <cstddef>
#include <vector>

#include "util/panic.hh"

namespace eip {

/**
 * A circular queue of fixed capacity. Pushing when full overwrites the
 * oldest element (hardware-FIFO semantics); explicit pop is also provided
 * for queue-style consumers.
 *
 * Index 0 is the newest element; index size()-1 is the oldest. This matches
 * the "walk backwards through history" access pattern of the prefetcher.
 */
template <typename T>
class CircularBuffer
{
  public:
    explicit CircularBuffer(size_t capacity)
        : storage(capacity)
    {
        EIP_ASSERT(capacity > 0, "circular buffer capacity must be > 0");
    }

    /** Append a new element, overwriting the oldest when full. */
    void
    push(const T &value)
    {
        head = (head + 1) % storage.size();
        storage[head] = value;
        if (count < storage.size())
            ++count;
    }

    /** Remove the oldest element. */
    void
    popOldest()
    {
        EIP_ASSERT(count > 0, "pop from empty circular buffer");
        --count;
    }

    /** Access the i-th newest element (0 = most recent). */
    T &
    fromNewest(size_t i)
    {
        EIP_ASSERT(i < count, "circular buffer index out of range");
        return storage[(head + storage.size() - i) % storage.size()];
    }

    const T &
    fromNewest(size_t i) const
    {
        EIP_ASSERT(i < count, "circular buffer index out of range");
        return storage[(head + storage.size() - i) % storage.size()];
    }

    /** Physical slot of the i-th newest element (stable until overwrite). */
    size_t
    slotOfNewest(size_t i) const
    {
        EIP_ASSERT(i < count, "circular buffer index out of range");
        return (head + storage.size() - i) % storage.size();
    }

    /** Access by physical slot (for hardware-pointer style references). */
    T &atSlot(size_t slot) { return storage[slot]; }
    const T &atSlot(size_t slot) const { return storage[slot]; }

    /**
     * How many pushes ago the element in @p slot was written, modulo the
     * capacity. After a full wrap the slot has been recycled and the age
     * restarts — callers needing staleness detection must track their own
     * generation (see core::HistoryBuffer).
     */
    size_t
    ageOfSlot(size_t slot) const
    {
        size_t age = (head + storage.size() - slot) % storage.size();
        return age < count ? age : storage.size();
    }

    size_t size() const { return count; }
    size_t capacity() const { return storage.size(); }
    bool empty() const { return count == 0; }
    bool full() const { return count == storage.size(); }
    void clear() { count = 0; }

  private:
    std::vector<T> storage;
    size_t head = 0; // slot of the newest element
    size_t count = 0;
};

} // namespace eip

#endif // EIP_UTIL_CIRCULAR_BUFFER_HH
