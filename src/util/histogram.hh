/**
 * @file
 * Simple bucketed histogram used by the prefetcher statistics (compression
 * format breakdown, destinations-per-hit, basic-block sizes).
 */

#ifndef EIP_UTIL_HISTOGRAM_HH
#define EIP_UTIL_HISTOGRAM_HH

#include <cstdint>
#include <vector>

#include "util/panic.hh"

namespace eip {

/** Fixed-bucket histogram over small integer keys; overflow bucket at end. */
class Histogram
{
  public:
    explicit Histogram(size_t num_buckets)
        : counts(num_buckets + 1, 0)
    {
        EIP_ASSERT(num_buckets > 0, "histogram needs at least one bucket");
    }

    /** Record one observation of @p key (keys >= buckets go to overflow). */
    void
    record(size_t key, uint64_t weight = 1)
    {
        size_t idx = key < counts.size() - 1 ? key : counts.size() - 1;
        counts[idx] += weight;
        total_ += weight;
        weightedSum += static_cast<double>(key) * static_cast<double>(weight);
    }

    uint64_t count(size_t bucket) const { return counts.at(bucket); }
    uint64_t overflow() const { return counts.back(); }
    uint64_t total() const { return total_; }
    size_t buckets() const { return counts.size() - 1; }

    /** Fraction of observations in @p bucket (0 if empty). */
    double
    fraction(size_t bucket) const
    {
        return total_ == 0
            ? 0.0
            : static_cast<double>(counts.at(bucket)) /
                  static_cast<double>(total_);
    }

    /** Mean of recorded keys. */
    double
    average() const
    {
        return total_ == 0 ? 0.0
                           : weightedSum / static_cast<double>(total_);
    }

    void
    clear()
    {
        std::fill(counts.begin(), counts.end(), 0);
        total_ = 0;
        weightedSum = 0.0;
    }

  private:
    std::vector<uint64_t> counts;
    uint64_t total_ = 0;
    double weightedSum = 0.0;
};

} // namespace eip

#endif // EIP_UTIL_HISTOGRAM_HH
