/**
 * @file
 * Simple bucketed histogram used by the prefetcher statistics (compression
 * format breakdown, destinations-per-hit, basic-block sizes).
 */

#ifndef EIP_UTIL_HISTOGRAM_HH
#define EIP_UTIL_HISTOGRAM_HH

#include <cstdint>
#include <vector>

#include "util/panic.hh"

namespace eip {

/** Fixed-bucket histogram over small integer keys; overflow bucket at end. */
class Histogram
{
  public:
    explicit Histogram(size_t num_buckets)
        : counts(num_buckets + 1, 0)
    {
        EIP_ASSERT(num_buckets > 0, "histogram needs at least one bucket");
    }

    /** Record one observation of @p key (keys >= buckets go to overflow). */
    void
    record(size_t key, uint64_t weight = 1)
    {
        size_t idx = key < counts.size() - 1 ? key : counts.size() - 1;
        counts[idx] += weight;
        total_ += weight;
        weightedSum += static_cast<double>(key) * static_cast<double>(weight);
    }

    uint64_t count(size_t bucket) const { return counts.at(bucket); }
    uint64_t overflow() const { return counts.back(); }
    uint64_t total() const { return total_; }
    size_t buckets() const { return counts.size() - 1; }

    /** Fraction of observations in @p bucket (0 if empty). */
    double
    fraction(size_t bucket) const
    {
        return total_ == 0
            ? 0.0
            : static_cast<double>(counts.at(bucket)) /
                  static_cast<double>(total_);
    }

    /** Mean of recorded keys. */
    double
    average() const
    {
        return total_ == 0 ? 0.0
                           : weightedSum / static_cast<double>(total_);
    }

    /**
     * Key at fraction @p q (in [0, 1]) of the recorded observations,
     * linearly interpolated between the straddling order statistics —
     * the same type-7 estimator as eip::percentile() in stats_math.hh,
     * applied to the bucketed multiset, so daemon request-latency
     * percentiles agree with manifest-side percentile math. Keys in
     * the overflow bucket saturate to buckets(). Returns 0 when empty.
     */
    double
    percentile(double q) const
    {
        if (total_ == 0)
            return 0.0;
        if (q < 0.0)
            q = 0.0;
        if (q > 1.0)
            q = 1.0;
        const double pos = q * static_cast<double>(total_ - 1);
        const auto lo = static_cast<uint64_t>(pos);
        const double frac = pos - static_cast<double>(lo);
        // Walk the cumulative counts to find the keys at ranks lo and
        // lo+1 (0-based over the sorted multiset of recorded keys).
        double lo_key = 0.0, hi_key = 0.0;
        uint64_t seen = 0;
        bool have_lo = false;
        for (size_t bucket = 0; bucket < counts.size(); ++bucket) {
            seen += counts[bucket];
            const double key = static_cast<double>(
                bucket < counts.size() - 1 ? bucket : counts.size() - 1);
            if (!have_lo && seen > lo) {
                lo_key = key;
                have_lo = true;
            }
            if (seen > lo + 1 || seen == total_) {
                hi_key = key;
                break;
            }
        }
        if (frac <= 0.0)
            return lo_key;
        return lo_key + frac * (hi_key - lo_key);
    }

    void
    clear()
    {
        std::fill(counts.begin(), counts.end(), 0);
        total_ = 0;
        weightedSum = 0.0;
    }

  private:
    std::vector<uint64_t> counts;
    uint64_t total_ = 0;
    double weightedSum = 0.0;
};

} // namespace eip

#endif // EIP_UTIL_HISTOGRAM_HH
