/**
 * @file
 * Weight-bounded LRU map — the shared eviction core of the two
 * memoization layers: exec::ProgramCache (weight 1 per entry, capacity
 * = entry count) and serve::ResultCache (weight = artifact bytes,
 * capacity = cache budget in bytes). Both therefore speak one
 * eviction-stat vocabulary: hits, misses, evictions, weight.
 *
 * Not thread-safe; callers serialize access (both caches wrap it in a
 * mutex). Eviction never removes the most-recently-touched entry, so a
 * single entry heavier than the whole capacity stays resident until
 * something newer displaces it — refusing it would turn an oversized
 * artifact into a permanent miss loop.
 */

#ifndef EIP_UTIL_LRU_HH
#define EIP_UTIL_LRU_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/panic.hh"

namespace eip::util {

template <typename Key, typename Value>
class LruMap
{
  public:
    explicit LruMap(uint64_t capacity)
        : capacity_(capacity)
    {
        EIP_ASSERT(capacity > 0, "LruMap needs a positive capacity");
    }

    /** Value for @p key (refreshed to most-recently-used), or nullptr.
     *  Counts one hit or one miss. */
    Value *
    get(const Key &key)
    {
        auto it = index_.find(key);
        if (it == index_.end()) {
            ++misses_;
            return nullptr;
        }
        ++hits_;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->value;
    }

    /** Insert or replace @p key (becomes most-recently-used), then
     *  evict least-recently-used entries while over capacity. */
    void
    put(const Key &key, Value value, uint64_t weight = 1)
    {
        auto it = index_.find(key);
        if (it != index_.end()) {
            weight_ -= it->second->weight;
            it->second->value = std::move(value);
            it->second->weight = weight;
            weight_ += weight;
            order_.splice(order_.begin(), order_, it->second);
        } else {
            order_.push_front(Entry{key, std::move(value), weight});
            index_.emplace(key, order_.begin());
            weight_ += weight;
        }
        evictOverCapacity();
    }

    /** Shrink (or grow) the capacity; shrinking evicts immediately. */
    void
    setCapacity(uint64_t capacity)
    {
        EIP_ASSERT(capacity > 0, "LruMap needs a positive capacity");
        capacity_ = capacity;
        evictOverCapacity();
    }

    /** Drop everything without counting evictions (a reset, not
     *  capacity pressure). */
    void
    clear()
    {
        order_.clear();
        index_.clear();
        weight_ = 0;
    }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t evictions() const { return evictions_; }
    uint64_t weight() const { return weight_; }
    uint64_t capacity() const { return capacity_; }
    size_t size() const { return order_.size(); }

  private:
    struct Entry
    {
        Key key;
        Value value;
        uint64_t weight;
    };

    void
    evictOverCapacity()
    {
        while (weight_ > capacity_ && order_.size() > 1) {
            const Entry &victim = order_.back();
            weight_ -= victim.weight;
            index_.erase(victim.key);
            order_.pop_back();
            ++evictions_;
        }
    }

    uint64_t capacity_;
    uint64_t weight_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    std::list<Entry> order_; ///< most-recently-used first
    std::unordered_map<Key, typename std::list<Entry>::iterator> index_;
};

} // namespace eip::util

#endif // EIP_UTIL_LRU_HH
