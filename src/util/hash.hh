/**
 * @file
 * FNV-1a content hashing for cache keys. The serve result cache and the
 * canonical-serialization golden tests hash canonical JSON strings; a
 * 64-bit digest is ample for the at-most-thousands of distinct suite
 * points one evaluation produces, and the fixed algorithm keeps digests
 * stable across platforms and builds (no std::hash, whose value is
 * implementation-defined).
 */

#ifndef EIP_UTIL_HASH_HH
#define EIP_UTIL_HASH_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace eip::util {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/** FNV-1a over @p data, chainable through @p seed for multi-part keys. */
inline uint64_t
fnv1a64(std::string_view data, uint64_t seed = kFnvOffsetBasis)
{
    uint64_t hash = seed;
    for (unsigned char c : data) {
        hash ^= c;
        hash *= kFnvPrime;
    }
    return hash;
}

/** @p value as 16 lower-case hex digits (fixed width: digests sort and
 *  compare as strings). */
inline std::string
hex64(uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[value & 0xF];
        value >>= 4;
    }
    return out;
}

} // namespace eip::util

#endif // EIP_UTIL_HASH_HH
