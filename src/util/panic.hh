/**
 * @file
 * gem5-style error reporting helpers.
 *
 * panic() is for conditions that indicate a bug in this library and should
 * never happen regardless of user input; fatal() is for user errors (bad
 * configuration, invalid arguments) where the process cannot continue.
 */

#ifndef EIP_UTIL_PANIC_HH
#define EIP_UTIL_PANIC_HH

#include <cstdio>
#include <cstdlib>

namespace eip {

/** Print a bug report message and abort (core dump / debugger friendly). */
[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/** Print a user-error message and exit with status 1. */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

} // namespace eip

#define EIP_PANIC(msg) ::eip::panicImpl(__FILE__, __LINE__, (msg))
#define EIP_FATAL(msg) ::eip::fatalImpl(__FILE__, __LINE__, (msg))

/** Invariant check that is active in all build types. */
#define EIP_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            EIP_PANIC(msg);                                                 \
    } while (0)

/** Invariant check on hot paths: active in debug builds, compiled out
 *  under NDEBUG (Release). */
#ifdef NDEBUG
#define EIP_DASSERT(cond, msg) ((void)0)
#else
#define EIP_DASSERT(cond, msg) EIP_ASSERT(cond, msg)
#endif

#endif // EIP_UTIL_PANIC_HH
