/**
 * @file
 * Fixed-width text table printer. The benchmark harnesses use it to emit the
 * rows/series of each paper figure and table in a readable form.
 */

#ifndef EIP_UTIL_TABLE_PRINTER_HH
#define EIP_UTIL_TABLE_PRINTER_HH

#include <string>
#include <vector>

namespace eip {

/**
 * Accumulates rows of string cells and prints them column-aligned. Numeric
 * convenience overloads format with a fixed precision.
 */
class TablePrinter
{
  public:
    /** Start a new row; subsequent cell() calls append to it. */
    void newRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &text);

    /** Append a formatted double cell (fixed @p precision digits). */
    void cell(double value, int precision = 3);

    /** Append an integer cell. */
    void cell(uint64_t value);
    void cell(int value);

    /** Render the table to stdout; first row is underlined as a header. */
    void print() const;

    /** Render to a string (used by tests). */
    std::string toString() const;

    void clear() { rows.clear(); }

  private:
    std::vector<std::vector<std::string>> rows;
};

} // namespace eip

#endif // EIP_UTIL_TABLE_PRINTER_HH
