/**
 * @file
 * Bit-manipulation helpers used across the simulator and the prefetcher
 * hardware models (index hashing, tag folding, field extraction).
 */

#ifndef EIP_UTIL_BITOPS_HH
#define EIP_UTIL_BITOPS_HH

#include <cstdint>

namespace eip {

/** Integer log2 (floor); returns 0 for x == 0. */
constexpr unsigned
floorLog2(uint64_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** True iff x is a power of two (and non-zero). */
constexpr bool
isPowerOf2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** A mask with the low @p bits bits set. Valid for bits in [0, 64]. */
constexpr uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
}

/** Extract bits [lo, lo+len) of @p value. */
constexpr uint64_t
bits(uint64_t value, unsigned lo, unsigned len)
{
    return (value >> lo) & mask(len);
}

/**
 * Fold a value down to @p width bits by repeatedly XOR-ing @p width-bit
 * chunks. This is the tag/index compression scheme the paper's Entangled
 * table uses ("indexed with a simple XOR operation of the different bits of
 * the address").
 */
constexpr uint64_t
xorFold(uint64_t value, unsigned width)
{
    if (width == 0 || width >= 64)
        return value;
    uint64_t folded = 0;
    while (value != 0) {
        folded ^= value & mask(width);
        value >>= width;
    }
    return folded;
}

/**
 * Number of low-order bits needed so that @p a and @p b agree on all bits
 * above them, i.e. the position of the most significant differing bit + 1.
 * Returns 0 when a == b.
 */
constexpr unsigned
significantBits(uint64_t a, uint64_t b)
{
    uint64_t diff = a ^ b;
    return diff == 0 ? 0 : floorLog2(diff) + 1;
}

/**
 * Distance between two timestamps in a wrapping @p width-bit clock domain,
 * assuming @p later happened no more than 2^width cycles after @p earlier.
 */
constexpr uint64_t
wrappedDistance(uint64_t earlier, uint64_t later, unsigned width)
{
    return (later - earlier) & mask(width);
}

} // namespace eip

#endif // EIP_UTIL_BITOPS_HH
