/**
 * @file
 * Strict environment-variable parsing. The simulation knobs (EIP_SIM_SCALE,
 * EIP_JOBS) silently misconfiguring a multi-hour evaluation is far worse
 * than refusing to start, so malformed values are fatal user errors rather
 * than being ignored.
 */

#ifndef EIP_UTIL_ENV_HH
#define EIP_UTIL_ENV_HH

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "util/panic.hh"

namespace eip::util {

/**
 * Read @p name as a finite double. Returns nullopt when unset or empty;
 * exits with a diagnostic naming the variable on garbage, trailing junk,
 * NaN, infinity, or out-of-range values.
 */
inline std::optional<double>
envDouble(const char *name)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE ||
        !std::isfinite(value)) {
        std::string msg = std::string(name) + ": invalid value '" + text +
                          "' (expected a finite number)";
        EIP_FATAL(msg.c_str());
    }
    return value;
}

/**
 * Read @p name as an unsigned integer. Returns nullopt when unset or
 * empty; exits with a diagnostic on anything that is not a plain
 * non-negative decimal integer.
 */
inline std::optional<uint64_t>
envU64(const char *name)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    // strtoull accepts a leading minus sign (wrapping the result); reject
    // it up front so "-2" is an error, not 2^64-2.
    bool negative = text[0] == '-';
    uint64_t value = std::strtoull(text, &end, 10);
    if (negative || end == text || *end != '\0' || errno == ERANGE) {
        std::string msg = std::string(name) + ": invalid value '" + text +
                          "' (expected a non-negative integer)";
        EIP_FATAL(msg.c_str());
    }
    return value;
}

} // namespace eip::util

#endif // EIP_UTIL_ENV_HH
