/**
 * @file
 * Saturating counter, the building block of confidence and branch-prediction
 * state machines.
 */

#ifndef EIP_UTIL_SATURATING_COUNTER_HH
#define EIP_UTIL_SATURATING_COUNTER_HH

#include <cstdint>

#include "util/panic.hh"

namespace eip {

/**
 * An n-bit saturating counter. The paper's confidence counters are 2-bit
 * instances; branch predictors use 2- and 3-bit instances.
 */
class SaturatingCounter
{
  public:
    SaturatingCounter() = default;

    /**
     * @param num_bits Counter width in bits (1..16).
     * @param initial Initial counter value; clamped to the valid range.
     */
    explicit SaturatingCounter(unsigned num_bits, unsigned initial = 0)
        : maxValue((1u << num_bits) - 1)
    {
        EIP_ASSERT(num_bits >= 1 && num_bits <= 16,
                   "saturating counter width out of range");
        value_ = initial > maxValue ? maxValue : initial;
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < maxValue)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Reset to a specific value (clamped). */
    void
    set(unsigned v)
    {
        value_ = v > maxValue ? maxValue : v;
    }

    unsigned value() const { return value_; }
    unsigned max() const { return maxValue; }
    bool saturated() const { return value_ == maxValue; }
    bool zero() const { return value_ == 0; }

    /** Taken/confident when in the upper half of the range. */
    bool strong() const { return value_ > maxValue / 2; }

  private:
    unsigned maxValue = 3;
    unsigned value_ = 0;
};

} // namespace eip

#endif // EIP_UTIL_SATURATING_COUNTER_HH
