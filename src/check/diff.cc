#include "check/diff.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace eip::check {

namespace {

std::string
renderValue(const obs::JsonValue &v)
{
    using Type = obs::JsonValue::Type;
    switch (v.type) {
      case Type::Null:
        return "null";
      case Type::Bool:
        return v.boolean ? "true" : "false";
      case Type::Number: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
        return buf;
      }
      case Type::String:
        return "\"" + v.string + "\"";
      case Type::Array:
        return "<array[" + std::to_string(v.array.size()) + "]>";
      case Type::Object:
        return "<object{" + std::to_string(v.object.size()) + "}>";
    }
    return "<?>";
}

void
diffInto(const obs::JsonValue &a, const obs::JsonValue &b,
         const std::string &path, const std::vector<std::string> &allow,
         std::vector<DiffEntry> &out, size_t &compared)
{
    if (pathAllowed(path, allow))
        return;

    using Type = obs::JsonValue::Type;
    if (a.type != b.type) {
        ++compared;
        out.push_back(DiffEntry{path, renderValue(a), renderValue(b)});
        return;
    }

    switch (a.type) {
      case Type::Object: {
        for (const auto &[key, value] : a.object) {
            std::string sub = path.empty() ? key : path + "." + key;
            const obs::JsonValue *other = b.find(key);
            if (other == nullptr) {
                if (!pathAllowed(sub, allow)) {
                    ++compared;
                    out.push_back(
                        DiffEntry{sub, renderValue(value), "<absent>"});
                }
                continue;
            }
            diffInto(value, *other, sub, allow, out, compared);
        }
        for (const auto &[key, value] : b.object) {
            if (a.find(key) != nullptr)
                continue;
            std::string sub = path.empty() ? key : path + "." + key;
            if (!pathAllowed(sub, allow)) {
                ++compared;
                out.push_back(DiffEntry{sub, "<absent>", renderValue(value)});
            }
        }
        return;
      }
      case Type::Array: {
        size_t common = std::min(a.array.size(), b.array.size());
        for (size_t i = 0; i < common; ++i) {
            diffInto(a.array[i], b.array[i],
                     path + "[" + std::to_string(i) + "]", allow, out,
                     compared);
        }
        for (size_t i = common; i < a.array.size(); ++i) {
            std::string sub = path + "[" + std::to_string(i) + "]";
            if (!pathAllowed(sub, allow)) {
                ++compared;
                out.push_back(
                    DiffEntry{sub, renderValue(a.array[i]), "<absent>"});
            }
        }
        for (size_t i = common; i < b.array.size(); ++i) {
            std::string sub = path + "[" + std::to_string(i) + "]";
            if (!pathAllowed(sub, allow)) {
                ++compared;
                out.push_back(
                    DiffEntry{sub, "<absent>", renderValue(b.array[i])});
            }
        }
        return;
      }
      case Type::Null:
        ++compared;
        return;
      case Type::Bool:
        ++compared;
        if (a.boolean != b.boolean)
            out.push_back(DiffEntry{path, renderValue(a), renderValue(b)});
        return;
      case Type::Number:
        ++compared;
        // Exact: both sides come from the same deterministic writer.
        if (a.number != b.number)
            out.push_back(DiffEntry{path, renderValue(a), renderValue(b)});
        return;
      case Type::String:
        ++compared;
        if (a.string != b.string)
            out.push_back(DiffEntry{path, renderValue(a), renderValue(b)});
        return;
    }
}

} // namespace

bool
pathAllowed(const std::string &path, const std::vector<std::string> &allow)
{
    for (const std::string &entry : allow) {
        if (path == entry)
            return true;
        if (path.size() > entry.size() &&
            path.compare(0, entry.size(), entry) == 0 &&
            (path[entry.size()] == '.' || path[entry.size()] == '['))
            return true;
    }
    return false;
}

std::vector<DiffEntry>
diffJson(const obs::JsonValue &a, const obs::JsonValue &b,
         const std::vector<std::string> &allow, size_t *fields_compared)
{
    std::vector<DiffEntry> out;
    size_t compared = 0;
    diffInto(a, b, "", allow, out, compared);
    if (fields_compared != nullptr)
        *fields_compared = compared;
    return out;
}

bool
DiffRunner::compare(const std::string &label, const std::string &lhs_text,
                    const std::string &rhs_text,
                    const std::vector<std::string> &allow)
{
    Comparison cmp;
    cmp.label = label;
    std::string error;
    std::optional<obs::JsonValue> lhs = obs::parseJson(lhs_text, &error);
    if (!lhs.has_value())
        cmp.error = "lhs unparseable: " + error;
    std::optional<obs::JsonValue> rhs = obs::parseJson(rhs_text, &error);
    if (!rhs.has_value() && cmp.error.empty())
        cmp.error = "rhs unparseable: " + error;
    if (cmp.error.empty())
        cmp.divergences =
            diffJson(*lhs, *rhs, allow, &cmp.fieldsCompared);
    bool clean = cmp.clean();
    comparisons_.push_back(std::move(cmp));
    return clean;
}

bool
DiffRunner::compareFiles(const std::string &label,
                         const std::string &lhs_path,
                         const std::string &rhs_path,
                         const std::vector<std::string> &allow)
{
    auto read = [](const std::string &path, std::string *error) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            *error = "cannot open " + path;
            return std::string();
        }
        std::ostringstream text;
        text << in.rdbuf();
        return text.str();
    };
    Comparison cmp;
    cmp.label = label;
    std::string lhs = read(lhs_path, &cmp.error);
    if (!cmp.error.empty()) {
        comparisons_.push_back(std::move(cmp));
        return false;
    }
    std::string rhs = read(rhs_path, &cmp.error);
    if (!cmp.error.empty()) {
        comparisons_.push_back(std::move(cmp));
        return false;
    }
    return compare(label, lhs, rhs, allow);
}

bool
DiffRunner::check(const std::string &label, bool ok,
                  const std::string &detail)
{
    Comparison cmp;
    cmp.label = label;
    cmp.detail = detail;
    cmp.checkFailed = !ok;
    comparisons_.push_back(std::move(cmp));
    return ok;
}

bool
DiffRunner::allClean() const
{
    for (const Comparison &cmp : comparisons_) {
        if (!cmp.clean())
            return false;
    }
    return true;
}

std::string
DiffRunner::report() const
{
    std::ostringstream out;
    for (const Comparison &cmp : comparisons_) {
        out << (cmp.clean() ? "PASS" : "FAIL") << "  " << cmp.label;
        if (!cmp.error.empty()) {
            out << "  (" << cmp.error << ")\n";
            continue;
        }
        if (!cmp.detail.empty()) {
            out << "  (" << cmp.detail << ")\n";
            continue;
        }
        out << "  (" << cmp.fieldsCompared << " fields";
        if (!cmp.divergences.empty())
            out << ", " << cmp.divergences.size() << " divergent";
        out << ")\n";
        for (const DiffEntry &d : cmp.divergences) {
            out << "      " << d.path << ": " << d.lhs << " != " << d.rhs
                << "\n";
        }
    }
    return out.str();
}

} // namespace eip::check
