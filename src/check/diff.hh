/**
 * @file
 * Artifact differential gate: a structural field-by-field diff of two
 * eip-run/v1 / eip-suite/v1 JSON documents with an explicit allow-list
 * for fields that may legitimately differ (environment timing such as
 * manifest.wall_clock_seconds, or fields a configuration knob is
 * expected to change such as samples). Everything not allow-listed must
 * match exactly — an unexplained divergence means a configuration knob
 * that is documented as inert (worker count, sampling, tracing) leaked
 * into results.
 *
 * DiffRunner accumulates labelled comparisons for the eipdiff tool: it
 * reports every divergence with its JSON path and both values, and
 * allClean() gates the process exit code.
 */

#ifndef EIP_CHECK_DIFF_HH
#define EIP_CHECK_DIFF_HH

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace eip::check {

/** One observed difference between two JSON documents. */
struct DiffEntry
{
    std::string path; ///< dotted path, array elements as [i]
    std::string lhs;  ///< rendered value, or "<absent>"
    std::string rhs;
};

/**
 * Does @p path fall under any allow-list entry? An entry matches itself
 * and everything nested below it (@p path continues with '.' or '[').
 */
bool pathAllowed(const std::string &path,
                 const std::vector<std::string> &allow);

/**
 * Structural diff of two parsed JSON documents. Object members are
 * compared by key (order-insensitive; the writers emit a fixed order
 * anyway), arrays element-wise, numbers exactly (both sides come from
 * the same %.17g serialisation rules). Paths matching @p allow are
 * skipped wholesale. @p fields_compared counts the leaf comparisons
 * actually performed, so a report can show coverage.
 */
std::vector<DiffEntry> diffJson(const obs::JsonValue &a,
                                const obs::JsonValue &b,
                                const std::vector<std::string> &allow,
                                size_t *fields_compared = nullptr);

/** A sequence of labelled document comparisons with a final verdict. */
class DiffRunner
{
  public:
    struct Comparison
    {
        std::string label;
        size_t fieldsCompared = 0;
        std::vector<DiffEntry> divergences;
        std::string error;  ///< non-empty when a side failed to parse
        std::string detail; ///< numeric checks: measured values shown
                            ///< on the report line
        bool checkFailed = false; ///< numeric check asserted false

        bool
        clean() const
        {
            return error.empty() && divergences.empty() && !checkFailed;
        }
    };

    /** Parse both texts and diff them. @return comparison was clean. */
    bool compare(const std::string &label, const std::string &lhs_text,
                 const std::string &rhs_text,
                 const std::vector<std::string> &allow);

    /** As above reading both documents from files. */
    bool compareFiles(const std::string &label, const std::string &lhs_path,
                      const std::string &rhs_path,
                      const std::vector<std::string> &allow);

    /**
     * Record a numeric assertion alongside the document diffs. Some
     * gates are tolerance checks rather than field identities — the
     * sampled-vs-full leg asserts that a full run's IPC falls inside the
     * sampled run's reported confidence interval — and routing them
     * through the same runner gives them the same report line and the
     * same exit-code weight. @p detail is shown on the report line
     * (measured values, the tolerance applied). @return @p ok.
     */
    bool check(const std::string &label, bool ok,
               const std::string &detail);

    bool allClean() const;
    const std::vector<Comparison> &comparisons() const
    {
        return comparisons_;
    }

    /** Human-readable verdict: one line per comparison plus every
     *  divergence (path, both values). */
    std::string report() const;

  private:
    std::vector<Comparison> comparisons_;
};

} // namespace eip::check

#endif // EIP_CHECK_DIFF_HH
