#include "check/invariants.hh"

#include <atomic>
#include <cstdio>

#include "util/env.hh"
#include "util/panic.hh"

namespace eip::check {

namespace {

/** -1 = not yet resolved, 0 = off, 1 = on. */
std::atomic<int> g_checksEnabled{-1};

int
resolveFromEnv()
{
    std::optional<uint64_t> value = util::envU64("EIP_CHECK");
    if (!value.has_value())
        return 0;
    if (*value > 1)
        EIP_FATAL("EIP_CHECK: invalid value (expected 0 or 1)");
    return static_cast<int>(*value);
}

} // namespace

bool
checksEnabled()
{
    int state = g_checksEnabled.load(std::memory_order_acquire);
    if (state < 0) {
        state = resolveFromEnv();
        // A concurrent first call resolves to the same value; either
        // store wins harmlessly.
        g_checksEnabled.store(state, std::memory_order_release);
    }
    return state != 0;
}

void
setChecksEnabled(bool on)
{
    g_checksEnabled.store(on ? 1 : 0, std::memory_order_release);
}

void
Invariants::add(std::string name, Fn fn, uint64_t stride)
{
    EIP_ASSERT(stride > 0, "invariant stride must be positive");
    checks_.push_back(Check{std::move(name), std::move(fn), stride});
}

void
Invariants::fail(const Check &check, const std::string &detail,
                 uint64_t cycle) const
{
    std::string msg = "invariant '" + check.name + "' violated at cycle " +
                      std::to_string(cycle);
    if (!detail.empty())
        msg += ": " + detail;
    EIP_PANIC(msg.c_str());
}

void
Invariants::run(uint64_t cycle)
{
    ++calls_;
    for (const Check &check : checks_) {
        if (calls_ % check.stride != 0)
            continue;
        std::string detail;
        ++executed_;
        if (!check.fn(detail))
            fail(check, detail, cycle);
    }
}

void
Invariants::runAll(uint64_t cycle)
{
    for (const Check &check : checks_) {
        std::string detail;
        ++executed_;
        if (!check.fn(detail))
            fail(check, detail, cycle);
    }
}

std::optional<std::string>
Invariants::firstFailure()
{
    for (const Check &check : checks_) {
        std::string detail;
        ++executed_;
        if (!check.fn(detail))
            return check.name + ": " + detail;
    }
    return std::nullopt;
}

} // namespace eip::check
