/**
 * @file
 * Simulator-wide invariant auditor. Components register named consistency
 * checks (cache MSHR accounting, front-end occupancy bounds, entangling
 * table/history integrity, stats identities) with an Invariants registry;
 * the Cpu runs every due check once per simulated cycle when checking is
 * enabled (--check / EIP_CHECK=1). A violated check is a simulator bug:
 * it panics with the check name, cycle, and the detail string the check
 * built, so the failure dumps its own context.
 *
 * Cost when off: checking is always compiled, but the whole registry is
 * skipped behind a single null-pointer test in the run loop (the Cpu only
 * constructs the registry when checking is enabled), so results and speed
 * of unchecked runs are unaffected.
 */

#ifndef EIP_CHECK_INVARIANTS_HH
#define EIP_CHECK_INVARIANTS_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace eip::check {

/**
 * Is invariant checking enabled for this process? First call reads the
 * EIP_CHECK environment variable (strict: only "0"/"1" accepted); the
 * --check flag overrides it through setChecksEnabled(). Thread-safe:
 * batch workers may consult it while constructing their Cpus.
 */
bool checksEnabled();

/** Force checking on/off (the --check flag; call before spawning runs). */
void setChecksEnabled(bool on);

/**
 * A registry of named consistency checks. A check is a closure returning
 * true when the invariant holds; on failure it describes the observed
 * state in @p detail (key=value pairs) so the panic message is a
 * self-contained bug report.
 *
 * Checks with a stride > 1 only run on every stride-th run() call — used
 * for full-structure audits (e.g. recounting an 8K-entry table) that
 * would dominate runtime at once-per-cycle granularity. Rotating-cursor
 * checks (audit one set per call) keep stride 1 and amortise internally.
 */
class Invariants
{
  public:
    using Fn = std::function<bool(std::string &detail)>;

    /** Register @p fn under @p name (dotted, e.g. "l1i.mshr_accounting"). */
    void add(std::string name, Fn fn, uint64_t stride = 1);

    /** Run every check due at this call; panic on the first violation. */
    void run(uint64_t cycle);

    /** Run every check regardless of stride (end-of-run sweep). */
    void runAll(uint64_t cycle);

    /**
     * Evaluate every check without panicking; returns "name: detail" of
     * the first violated one, or nullopt when all hold. Test-facing: the
     * fatal path is exercised with death tests, everything else with
     * this probe.
     */
    std::optional<std::string> firstFailure();

    size_t size() const { return checks_.size(); }
    /** Total number of individual check evaluations so far. */
    uint64_t executed() const { return executed_; }

  private:
    struct Check
    {
        std::string name;
        Fn fn;
        uint64_t stride;
    };

    [[noreturn]] void fail(const Check &check, const std::string &detail,
                           uint64_t cycle) const;

    std::vector<Check> checks_;
    uint64_t calls_ = 0;
    uint64_t executed_ = 0;
};

} // namespace eip::check

#endif // EIP_CHECK_INVARIANTS_HH
