/**
 * @file
 * D-JOLT [35] (Distant Jolt): a refinement of RDIP with more accurate
 * call-history signatures and a dual look-ahead mechanism. Two miss tables
 * are trained at different look-ahead distances (in calls): misses are
 * recorded under the signature that was live N calls earlier, so consulting
 * the *current* signature prefetches the misses expected N calls ahead.
 */

#ifndef EIP_PREFETCH_DJOLT_HH
#define EIP_PREFETCH_DJOLT_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/cache.hh"
#include "sim/prefetcher_api.hh"

namespace eip::prefetch {

/** Configuration of one D-JOLT range (one miss table). */
struct DjoltRange
{
    uint32_t lookaheadCalls = 4; ///< distance in call/return events
    uint32_t entries = 4096;
    uint32_t ways = 4;
    uint32_t linesPerEntry = 6;
};

/** Full configuration; the paper's setup totals 125KB. */
struct DjoltConfig
{
    DjoltRange shortRange{3, 2048, 4, 4};
    DjoltRange longRange{8, 4096, 4, 4};
    uint32_t signatureCalls = 4; ///< calls folded into a signature
};

class DjoltPrefetcher : public sim::Prefetcher
{
  public:
    explicit DjoltPrefetcher(const DjoltConfig &cfg);

    std::string name() const override { return "D-JOLT"; }
    uint64_t storageBits() const override;

    void onCacheOperate(const sim::CacheOperateInfo &info) override;
    void onBranch(sim::Addr pc, trace::BranchType type,
                  sim::Addr target) override;

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t signature = 0;
        std::vector<sim::Addr> lines;
        uint64_t lastUse = 0;
    };

    struct Table
    {
        DjoltRange range;
        uint32_t numSets;
        std::vector<Entry> entries;
        uint64_t clock = 0;

        explicit Table(const DjoltRange &r);
        Entry *find(uint64_t sig);
        Entry *findOrInsert(uint64_t sig);
        void record(uint64_t sig, sim::Addr line);
    };

    void prefetchFor(Table &table, uint64_t sig);

    DjoltConfig cfg;
    Table shortTable;
    Table longTable;

    uint64_t signature = 0x5eed;
    /** The last signatureCalls call/return tokens (the signature window). */
    std::deque<uint64_t> recentTokens;
    /** Signatures captured at past call events (newest at back). */
    std::deque<uint64_t> signatureHistory;
};

} // namespace eip::prefetch

#endif // EIP_PREFETCH_DJOLT_HH
