/**
 * @file
 * RDIP [29]: Return-address-stack Directed Instruction Prefetching. The
 * prefetcher keeps a shadow RAS; on every call/return it hashes the top
 * entries into a signature, consults a miss table of up to 3 trigger lines
 * (each with an 8-bit footprint of following lines) and prefetches them.
 * Misses observed while a signature is live are attributed to it when the
 * next call/return switches the signature.
 */

#ifndef EIP_PREFETCH_RDIP_HH
#define EIP_PREFETCH_RDIP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache.hh"
#include "sim/prefetcher_api.hh"

namespace eip::prefetch {

/** Configuration: the paper evaluates a 4K-entry, 63KB miss table. */
struct RdipConfig
{
    uint32_t entries = 4096;
    uint32_t ways = 4;
    uint32_t triggers = 3;       ///< trigger regions per signature
    uint32_t footprintLines = 8;
    uint32_t rasDepth = 2;       ///< RAS entries folded into the signature
    uint32_t shadowRasEntries = 64;
};

class RdipPrefetcher : public sim::Prefetcher
{
  public:
    explicit RdipPrefetcher(const RdipConfig &cfg);

    std::string name() const override { return "RDIP"; }
    uint64_t storageBits() const override;

    void onCacheOperate(const sim::CacheOperateInfo &info) override;
    void onBranch(sim::Addr pc, trace::BranchType type,
                  sim::Addr target) override;

  private:
    struct Trigger
    {
        bool valid = false;
        sim::Addr line = 0;
        uint8_t footprint = 0;
    };

    struct Entry
    {
        bool valid = false;
        uint64_t signature = 0;
        std::vector<Trigger> triggers;
        uint64_t lastUse = 0;
    };

    uint64_t computeSignature() const;
    Entry *find(uint64_t sig);
    Entry *findOrInsert(uint64_t sig);
    /** Commit the pending miss log to the previous signature's entry. */
    void commitMisses();
    void prefetchFor(uint64_t sig);

    RdipConfig cfg;
    uint32_t numSets;
    std::vector<Entry> table;
    uint64_t clock = 0;

    std::vector<sim::Addr> shadowRas;
    uint64_t currentSignature = 0;
    std::vector<sim::Addr> missLog; ///< line misses under currentSignature
};

} // namespace eip::prefetch

#endif // EIP_PREFETCH_RDIP_HH
