/**
 * @file
 * Fixed look-ahead discontinuity prefetching, plus the oracle analyzer
 * behind the paper's motivation figures (Fig. 1 and Fig. 2). The look-ahead
 * distance is counted in taken branches (discontinuities), as in the paper.
 */

#ifndef EIP_PREFETCH_LOOKAHEAD_HH
#define EIP_PREFETCH_LOOKAHEAD_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/cache.hh"
#include "sim/prefetcher_api.hh"
#include "util/circular_buffer.hh"
#include "util/histogram.hh"

namespace eip::prefetch {

/**
 * Markov-style discontinuity prefetcher with a fixed look-ahead distance n:
 * it learns the temporal successor of each discontinuity target and, on
 * every taken branch, follows the learned chain n steps and prefetches the
 * line found there (plus its next line). Used for Fig. 2.
 */
class LookaheadPrefetcher : public sim::Prefetcher
{
  public:
    explicit LookaheadPrefetcher(unsigned distance)
        : distance_(distance)
    {}

    std::string
    name() const override
    {
        return "Lookahead-" + std::to_string(distance_);
    }

    uint64_t
    storageBits() const override
    {
        return static_cast<uint64_t>(successor.size()) * (58 + 58);
    }

    void
    onBranch(sim::Addr pc, trace::BranchType type, sim::Addr target) override
    {
        (void)pc;
        (void)type;
        if (target == 0)
            return; // not taken
        sim::Addr line = sim::lineAddr(target);
        if (havePrev && prevLine != line)
            successor[prevLine] = line;
        havePrev = true;
        prevLine = line;

        // Chase the chain `distance` discontinuities ahead.
        sim::Addr cursor = line;
        for (unsigned step = 0; step < distance_; ++step) {
            auto it = successor.find(cursor);
            if (it == successor.end())
                return;
            cursor = it->second;
        }
        owner->enqueuePrefetch(cursor);
        owner->enqueuePrefetch(cursor + 1);
    }

  private:
    unsigned distance_;
    bool havePrev = false;
    sim::Addr prevLine = 0;
    std::unordered_map<sim::Addr, sim::Addr> successor;
};

/**
 * Oracle timeliness analyzer (Fig. 1): issues no prefetches; for every L1I
 * miss it measures the fetch latency and counts how many discontinuities
 * in advance a prefetch should have been issued not to be late. The
 * cumulative histogram over that distance is the fraction of misses a
 * fixed look-ahead-n prefetcher could serve timely.
 */
class LookaheadOracle : public sim::Prefetcher
{
  public:
    LookaheadOracle()
        : requiredDistance(kMaxDistance), discontinuities(512)
    {}

    std::string name() const override { return "LookaheadOracle"; }
    uint64_t storageBits() const override { return 0; }

    void
    onBranch(sim::Addr pc, trace::BranchType type, sim::Addr target) override
    {
        (void)pc;
        (void)type;
        if (target != 0)
            discontinuities.push(lastCycle);
    }

    void
    onCycle(sim::Cycle now) override
    {
        lastCycle = now;
    }

    /** The cycle clock above needs every cycle delivered: opt out of
     *  event-driven cycle skipping (see Prefetcher::cycleInert). */
    bool cycleInert() const override { return false; }

    void
    onCacheOperate(const sim::CacheOperateInfo &info) override
    {
        if (!info.hit)
            missStart[info.line] = info.cycle;
    }

    void
    onCacheFill(const sim::CacheFillInfo &info) override
    {
        auto it = missStart.find(info.line);
        if (it == missStart.end())
            return;
        sim::Cycle start = it->second;
        missStart.erase(it);
        uint64_t latency = info.cycle - start;
        // Count discontinuities in the window [start - latency, start]: a
        // prefetch must be issued before that window to arrive by `start`.
        size_t needed = 1;
        for (size_t i = 0; i < discontinuities.size(); ++i) {
            sim::Cycle at = discontinuities.fromNewest(i);
            if (at > start)
                continue; // discontinuity after the miss
            if (start - at >= latency)
                break; // far enough back: distance found
            ++needed;
        }
        requiredDistance.record(needed);
    }

    /** Fraction of misses a fixed look-ahead of @p n serves timely. */
    double
    timelyFraction(unsigned n) const
    {
        if (requiredDistance.total() == 0)
            return 0.0;
        uint64_t covered = 0;
        for (unsigned d = 0; d <= n && d < kMaxDistance; ++d)
            covered += requiredDistance.count(d);
        return static_cast<double>(covered) /
               static_cast<double>(requiredDistance.total());
    }

    const Histogram &distanceHistogram() const { return requiredDistance; }

  private:
    static constexpr size_t kMaxDistance = 64;

    Histogram requiredDistance;
    CircularBuffer<sim::Cycle> discontinuities;
    sim::Cycle lastCycle = 0;
    std::unordered_map<sim::Addr, sim::Cycle> missStart;
};

} // namespace eip::prefetch

#endif // EIP_PREFETCH_LOOKAHEAD_HH
