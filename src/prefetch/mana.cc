#include "prefetch/mana.hh"

#include "obs/registry.hh"
#include "obs/why.hh"
#include "util/panic.hh"

namespace eip::prefetch {

ManaPrefetcher::ManaPrefetcher(const ManaConfig &config)
    : cfg(config), numSets(config.entries / config.ways)
{
    EIP_ASSERT(isPowerOf2(numSets), "MANA set count must be a power of 2");
    table.resize(cfg.entries);
}

std::string
ManaPrefetcher::name() const
{
    return "MANA-" + std::to_string(cfg.entries / 1024) + "K";
}

uint64_t
ManaPrefetcher::storageBits() const
{
    // Tag (partial, 16b) + footprint + successor pointer + LRU.
    uint64_t ptr_bits = floorLog2(cfg.entries) + 1;
    uint64_t per_entry = 16 + cfg.footprintLines + ptr_bits + 2;
    return static_cast<uint64_t>(cfg.entries) * per_entry + 58 + 8;
}

void
ManaPrefetcher::registerStats(obs::CounterRegistry &reg)
{
    reg.counter("mana.table_hits", &stats_.tableHits);
    reg.counter("mana.table_misses", &stats_.tableMisses);
    reg.counter("mana.inserts", &stats_.inserts);
    reg.counter("mana.evictions", &stats_.evictions);
    reg.counter("mana.regions_committed", &stats_.regionsCommitted);
    reg.counter("mana.chain_steps", &stats_.chainSteps);
    reg.counter("mana.chain_breaks", &stats_.chainBreaks);
}

uint32_t
ManaPrefetcher::setIndex(sim::Addr line) const
{
    return static_cast<uint32_t>(xorFold(line, floorLog2(numSets))) &
           (numSets - 1);
}

ManaPrefetcher::Entry *
ManaPrefetcher::find(sim::Addr line)
{
    size_t base = static_cast<size_t>(setIndex(line)) * cfg.ways;
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        Entry &e = table[base + w];
        if (e.valid && e.line == line)
            return &e;
    }
    return nullptr;
}

ManaPrefetcher::Entry *
ManaPrefetcher::findOrInsert(sim::Addr line)
{
    if (Entry *e = find(line)) {
        e->lastUse = ++clock;
        return e;
    }
    size_t base = static_cast<size_t>(setIndex(line)) * cfg.ways;
    Entry *victim = &table[base];
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        Entry &e = table[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    ++stats_.inserts;
    if (victim->valid) {
        ++stats_.evictions;
        // Miss attribution: the victim's region prediction is lost.
        if (ghost_ != nullptr)
            ghostRecordRegion(*victim);
    }
    *victim = Entry{};
    victim->valid = true;
    victim->line = line;
    victim->lastUse = ++clock;
    if (ghost_ != nullptr)
        ghost_->erase(line);
    return victim;
}

void
ManaPrefetcher::ghostRecordRegion(const Entry &e)
{
    ghost_->record(e.line);
    for (uint32_t i = 0; i < cfg.footprintLines; ++i) {
        if (e.footprint & (1u << i))
            ghost_->record(e.line + 1 + i);
    }
}

void
ManaPrefetcher::ghostEraseRegion(const Entry &e)
{
    ghost_->erase(e.line);
    for (uint32_t i = 0; i < cfg.footprintLines; ++i) {
        if (e.footprint & (1u << i))
            ghost_->erase(e.line + 1 + i);
    }
}

void
ManaPrefetcher::enableBlame()
{
    if (ghost_ == nullptr)
        ghost_ = std::make_unique<core::GhostPairSet>();
}

obs::MissBlame
ManaPrefetcher::blame(sim::Addr line, sim::Addr pc)
{
    (void)pc;
    if (ghost_ != nullptr && ghost_->contains(line))
        return obs::MissBlame::PairEvicted;
    return obs::MissBlame::None;
}

void
ManaPrefetcher::prefetchRegion(const Entry &e)
{
    owner->enqueuePrefetch(e.line);
    for (uint32_t i = 0; i < cfg.footprintLines; ++i) {
        if (e.footprint & (1u << i))
            owner->enqueuePrefetch(e.line + 1 + i);
    }
}

void
ManaPrefetcher::onCacheOperate(const sim::CacheOperateInfo &info)
{
    sim::Addr line = info.line;

    // --- Training: extend or close the current spatial region. ---
    if (hasTrigger && line > triggerLine &&
        line - triggerLine <= cfg.footprintLines) {
        triggerFootprint |=
            static_cast<uint8_t>(1u << (line - triggerLine - 1));
    } else if (!hasTrigger || line != triggerLine) {
        // New trigger: commit the footprint and chain the successor.
        if (hasTrigger) {
            ++stats_.regionsCommitted;
            Entry *prev = findOrInsert(triggerLine);
            prev->footprint |= triggerFootprint;
            // The committed region is predictable again: un-ghost it.
            if (ghost_ != nullptr)
                ghostEraseRegion(*prev);
            Entry *next = findOrInsert(line);
            // findOrInsert may have moved prev; re-find to be safe.
            prev = find(triggerLine);
            if (prev != nullptr) {
                prev->successor =
                    static_cast<uint32_t>(next - table.data());
                prev->successorValid = true;
            }
        }
        hasTrigger = true;
        triggerLine = line;
        triggerFootprint = 0;
    }

    // --- Prediction: walk the chain `lookahead` regions ahead. ---
    Entry *e = find(line);
    if (e != nullptr)
        ++stats_.tableHits;
    else
        ++stats_.tableMisses;
    uint32_t steps = 0;
    while (e != nullptr && e->successorValid && steps < cfg.lookahead) {
        Entry &succ = table[e->successor];
        if (!succ.valid) {
            ++stats_.chainBreaks;
            break;
        }
        prefetchRegion(succ);
        e = &succ;
        ++steps;
        ++stats_.chainSteps;
    }
}

} // namespace eip::prefetch
