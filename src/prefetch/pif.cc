#include "prefetch/pif.hh"

#include "obs/registry.hh"
#include "obs/why.hh"
#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::prefetch {

PifPrefetcher::PifPrefetcher(const PifConfig &config)
    : cfg(config)
{
    EIP_ASSERT(cfg.historyRecords > 0, "PIF history must be non-empty");
    history.resize(cfg.historyRecords);
}

uint64_t
PifPrefetcher::storageBits() const
{
    // History record: 30-bit compacted trigger + footprint; index entry:
    // tag + history pointer.
    uint64_t record_bits = 30 + cfg.footprintLines;
    uint64_t index_bits = 30 + floorLog2(cfg.historyRecords) + 1;
    return static_cast<uint64_t>(cfg.historyRecords) * record_bits +
           static_cast<uint64_t>(cfg.indexEntries) * index_bits;
}

void
PifPrefetcher::registerStats(obs::CounterRegistry &reg)
{
    reg.counter("pif.index_hits", &stats_.indexHits);
    reg.counter("pif.index_misses", &stats_.indexMisses);
    reg.counter("pif.records_logged", &stats_.recordsLogged);
    reg.counter("pif.index_flushes", &stats_.indexFlushes);
    reg.counter("pif.records_replayed", &stats_.recordsReplayed);
}

void
PifPrefetcher::commitRegion()
{
    if (!hasTrigger)
        return;
    head = (head + 1) % history.size();
    Record &r = history[head];
    // The index tracks only the latest occurrence of each trigger; evict
    // the overwritten record's stale index entry if it still points here.
    if (r.valid) {
        auto it = index.find(r.trigger);
        if (it != index.end() && it->second == head)
            index.erase(it);
        // Miss attribution: the overwritten record's stream coverage is
        // lost (replay reads history slots directly, so losing the
        // record loses the lines regardless of the index).
        if (ghost_ != nullptr) {
            ghost_->record(r.trigger);
            for (uint32_t i = 0; i < cfg.footprintLines; ++i) {
                if (r.footprint & (1u << i))
                    ghost_->record(r.trigger + 1 + i);
            }
        }
    }
    r.valid = true;
    r.trigger = triggerLine;
    r.footprint = triggerFootprint;
    ++stats_.recordsLogged;
    // The freshly logged region is replayable again: un-ghost it.
    if (ghost_ != nullptr) {
        ghost_->erase(triggerLine);
        for (uint32_t i = 0; i < cfg.footprintLines; ++i) {
            if (triggerFootprint & (1u << i))
                ghost_->erase(triggerLine + 1 + i);
        }
    }
    // Bound the model's index like the hardware table (drop-all is crude
    // but only ever forgets streams, never corrupts them).
    if (index.size() >= cfg.indexEntries) {
        index.clear();
        ++stats_.indexFlushes;
    }
    index[triggerLine] = head;
}

void
PifPrefetcher::enableBlame()
{
    if (ghost_ == nullptr)
        ghost_ = std::make_unique<core::GhostPairSet>();
}

obs::MissBlame
PifPrefetcher::blame(sim::Addr line, sim::Addr pc)
{
    (void)pc;
    if (ghost_ != nullptr && ghost_->contains(line))
        return obs::MissBlame::PairEvicted;
    return obs::MissBlame::None;
}

void
PifPrefetcher::replayFrom(size_t position)
{
    for (uint32_t step = 1; step <= cfg.streamDepth; ++step) {
        const Record &r = history[(position + step) % history.size()];
        if (!r.valid)
            return;
        ++stats_.recordsReplayed;
        owner->enqueuePrefetch(r.trigger);
        for (uint32_t i = 0; i < cfg.footprintLines; ++i) {
            if (r.footprint & (1u << i))
                owner->enqueuePrefetch(r.trigger + 1 + i);
        }
    }
}

void
PifPrefetcher::onCacheOperate(const sim::CacheOperateInfo &info)
{
    sim::Addr line = info.line;

    // --- Record the fetch stream as spatial regions. ---
    if (hasTrigger && line > triggerLine &&
        line - triggerLine <= cfg.footprintLines) {
        triggerFootprint |=
            static_cast<uint8_t>(1u << (line - triggerLine - 1));
    } else if (!hasTrigger || line != triggerLine) {
        commitRegion();
        hasTrigger = true;
        triggerLine = line;
        triggerFootprint = 0;
    }

    // --- Replay the temporal stream on an index hit. ---
    auto it = index.find(line);
    if (it != index.end()) {
        ++stats_.indexHits;
        replayFrom(it->second);
    } else {
        ++stats_.indexMisses;
    }
}

} // namespace eip::prefetch
