/**
 * @file
 * SN4L [6]: memory-efficient "sequential next-4-line" prefetcher. A
 * 16K-bit worthiness vector gates which of the next four lines of the
 * current access are prefetched: a bit is set when the corresponding line
 * missed in the past (prefetching it would have helped) and cleared when a
 * prefetched line is evicted unused.
 */

#ifndef EIP_PREFETCH_SN4L_HH
#define EIP_PREFETCH_SN4L_HH

#include <vector>

#include "sim/cache.hh"
#include "sim/prefetcher_api.hh"
#include "util/bitops.hh"

namespace eip::prefetch {

/** The 2.06KB low-budget baseline of §IV-B. */
class Sn4lPrefetcher : public sim::Prefetcher
{
  public:
    explicit Sn4lPrefetcher(uint32_t vector_bits = 16 * 1024)
        : worthy(vector_bits, false)
    {}

    std::string name() const override { return "SN4L"; }

    uint64_t
    storageBits() const override
    {
        // The vector plus the last-line register and small control state
        // (the paper quotes 2.06KB total).
        return worthy.size() + 58 + 420;
    }

    void
    onCacheOperate(const sim::CacheOperateInfo &info) override
    {
        if (!info.hit)
            worthy[index(info.line)] = true; // this line was worth having
        for (sim::Addr i = 1; i <= 4; ++i) {
            if (worthy[index(info.line + i)])
                owner->enqueuePrefetch(info.line + i);
        }
    }

    void
    onCacheFill(const sim::CacheFillInfo &info) override
    {
        if (info.evictedUnusedPrefetch)
            worthy[index(info.evictedLine)] = false;
    }

  private:
    size_t
    index(sim::Addr line) const
    {
        return static_cast<size_t>(
            xorFold(line, floorLog2(worthy.size())) % worthy.size());
    }

    std::vector<bool> worthy;
};

} // namespace eip::prefetch

#endif // EIP_PREFETCH_SN4L_HH
