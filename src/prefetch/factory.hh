/**
 * @file
 * Prefetcher factory: creates any prefetcher evaluated in the paper by its
 * name, and enumerates the standard line-ups used by the benches.
 */

#ifndef EIP_PREFETCH_FACTORY_HH
#define EIP_PREFETCH_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/prefetcher_api.hh"

namespace eip::prefetch {

/**
 * Create a prefetcher by identifier. Known ids:
 *   none, nextline, sn4l, mana-2k, mana-4k, mana-8k, rdip, djolt, fnl+mma,
 *   pif, epi, entangling-2k, entangling-4k, entangling-8k (append "-phys" to an
 *   entangling id for physical-address compression), and the ablation
 *   variants bb-NK, bbent-NK, bbentbb-NK, ent-NK (N in {2,4,8}).
 * Returns nullptr for "none" (and for "ideal", which is a cache mode, not
 * a prefetcher). Aborts on unknown ids.
 */
std::unique_ptr<sim::Prefetcher> makePrefetcher(const std::string &id);

/**
 * Would makePrefetcher accept @p id? Lets request validators (the eipd
 * job server) reject an unknown id with a structured error instead of
 * the worker dying on makePrefetcher's fatal.
 */
bool knownPrefetcherId(const std::string &id);

/** The sub-64KB line-up used by the per-workload figures (Fig. 7-10). */
std::vector<std::string> mainLineup();

/** Every point of the IPC-vs-storage figure (Fig. 6), except the larger
 *  L1I configurations and Ideal, which are cache configs. */
std::vector<std::string> figure6Lineup();

} // namespace eip::prefetch

#endif // EIP_PREFETCH_FACTORY_HH
