#include "prefetch/factory.hh"

#include "core/entangling.hh"
#include "prefetch/djolt.hh"
#include "prefetch/fnl_mma.hh"
#include "prefetch/mana.hh"
#include "prefetch/nextline.hh"
#include "prefetch/pif.hh"
#include "prefetch/rdip.hh"
#include "prefetch/sn4l.hh"
#include "prefetch/stride.hh"
#include "util/panic.hh"

namespace eip::prefetch {

namespace {

using core::EntanglingConfig;
using core::EntanglingPrefetcher;
using core::EntanglingVariant;

/** Parse "-2k/-4k/-8k" size suffixes; returns 0 when absent. */
unsigned
sizeSuffix(const std::string &id)
{
    if (id.find("-2k") != std::string::npos)
        return 2048;
    if (id.find("-4k") != std::string::npos)
        return 4096;
    if (id.find("-8k") != std::string::npos)
        return 8192;
    return 0;
}

EntanglingConfig
entanglingConfigFor(unsigned entries, bool physical)
{
    switch (entries) {
      case 2048: return EntanglingConfig::preset2K(physical);
      case 8192: return EntanglingConfig::preset8K(physical);
      default: return EntanglingConfig::preset4K(physical);
    }
}

} // namespace

std::unique_ptr<sim::Prefetcher>
makePrefetcher(const std::string &id)
{
    if (id == "none" || id == "ideal")
        return nullptr;
    if (id == "nextline")
        return std::make_unique<NextLinePrefetcher>();
    if (id == "sn4l")
        return std::make_unique<Sn4lPrefetcher>();
    if (id.rfind("mana", 0) == 0) {
        ManaConfig cfg;
        cfg.entries = sizeSuffix(id) ? sizeSuffix(id) : 4096;
        return std::make_unique<ManaPrefetcher>(cfg);
    }
    if (id == "stride")
        return std::make_unique<StridePrefetcher>();
    if (id == "pif")
        return std::make_unique<PifPrefetcher>(PifConfig{});
    if (id == "rdip")
        return std::make_unique<RdipPrefetcher>(RdipConfig{});
    if (id == "djolt")
        return std::make_unique<DjoltPrefetcher>(DjoltConfig{});
    if (id == "fnl+mma")
        return std::make_unique<FnlMmaPrefetcher>(FnlMmaConfig{});
    if (id == "epi")
        return std::make_unique<EntanglingPrefetcher>(
            EntanglingConfig::presetEpi());

    bool physical = id.find("-phys") != std::string::npos;
    unsigned entries = sizeSuffix(id) ? sizeSuffix(id) : 4096;
    EntanglingConfig cfg = entanglingConfigFor(entries, physical);
    if (id.rfind("entangling", 0) == 0) {
        return std::make_unique<EntanglingPrefetcher>(cfg);
    }
    if (id.rfind("bbentbb", 0) == 0) {
        cfg.variant = EntanglingVariant::BBEntBB;
        return std::make_unique<EntanglingPrefetcher>(cfg);
    }
    if (id.rfind("bbent", 0) == 0) {
        cfg.variant = EntanglingVariant::BBEnt;
        return std::make_unique<EntanglingPrefetcher>(cfg);
    }
    if (id.rfind("bb", 0) == 0) {
        cfg.variant = EntanglingVariant::BB;
        return std::make_unique<EntanglingPrefetcher>(cfg);
    }
    if (id.rfind("ent", 0) == 0) {
        cfg.variant = EntanglingVariant::Ent;
        return std::make_unique<EntanglingPrefetcher>(cfg);
    }
    EIP_FATAL("unknown prefetcher id");
}

bool
knownPrefetcherId(const std::string &id)
{
    // Mirrors makePrefetcher's dispatch: exact ids first, then the
    // prefix families it constructs configurations for.
    static const char *exact[] = {"none",  "ideal", "nextline", "sn4l",
                                  "stride", "pif",  "rdip",     "djolt",
                                  "fnl+mma", "epi"};
    for (const char *known : exact) {
        if (id == known)
            return true;
    }
    static const char *families[] = {"mana", "entangling", "bbentbb",
                                     "bbent", "bb", "ent"};
    for (const char *family : families) {
        if (id.rfind(family, 0) == 0)
            return true;
    }
    return false;
}

std::vector<std::string>
mainLineup()
{
    return {"nextline", "sn4l",          "mana-2k",      "mana-4k",
            "rdip",     "entangling-2k", "entangling-4k"};
}

std::vector<std::string>
figure6Lineup()
{
    return {"nextline",      "sn4l",          "mana-2k", "mana-4k",
            "mana-8k",       "rdip",          "djolt",   "fnl+mma",
            "epi",           "entangling-2k", "entangling-4k",
            "entangling-8k"};
}

} // namespace eip::prefetch
