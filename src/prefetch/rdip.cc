#include "prefetch/rdip.hh"

#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::prefetch {

RdipPrefetcher::RdipPrefetcher(const RdipConfig &config)
    : cfg(config), numSets(config.entries / config.ways)
{
    EIP_ASSERT(isPowerOf2(numSets), "RDIP set count must be a power of 2");
    table.resize(cfg.entries);
    for (auto &e : table)
        e.triggers.resize(cfg.triggers);
}

uint64_t
RdipPrefetcher::storageBits() const
{
    // Partial tag + per-trigger (30-bit line + footprint + valid) + LRU.
    uint64_t per_trigger = 30 + cfg.footprintLines + 1;
    uint64_t per_entry = 12 + cfg.triggers * per_trigger + 2;
    return static_cast<uint64_t>(cfg.entries) * per_entry +
           cfg.shadowRasEntries * 48;
}

uint64_t
RdipPrefetcher::computeSignature() const
{
    uint64_t sig = 0x9e37;
    size_t depth = std::min<size_t>(cfg.rasDepth, shadowRas.size());
    for (size_t i = 0; i < depth; ++i) {
        sim::Addr ra = shadowRas[shadowRas.size() - 1 - i];
        sig = (sig << 7) ^ (sig >> 9) ^ (ra >> 2);
    }
    return sig;
}

RdipPrefetcher::Entry *
RdipPrefetcher::find(uint64_t sig)
{
    size_t set = static_cast<size_t>(xorFold(sig, floorLog2(numSets))) &
                 (numSets - 1);
    size_t base = set * cfg.ways;
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        Entry &e = table[base + w];
        if (e.valid && e.signature == sig)
            return &e;
    }
    return nullptr;
}

RdipPrefetcher::Entry *
RdipPrefetcher::findOrInsert(uint64_t sig)
{
    if (Entry *e = find(sig)) {
        e->lastUse = ++clock;
        return e;
    }
    size_t set = static_cast<size_t>(xorFold(sig, floorLog2(numSets))) &
                 (numSets - 1);
    size_t base = set * cfg.ways;
    Entry *victim = &table[base];
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        Entry &e = table[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->signature = sig;
    victim->lastUse = ++clock;
    for (auto &t : victim->triggers)
        t = Trigger{};
    return victim;
}

void
RdipPrefetcher::commitMisses()
{
    if (missLog.empty())
        return;
    Entry *e = findOrInsert(currentSignature);
    for (sim::Addr miss : missLog) {
        // Attach to an existing trigger region when the miss follows it
        // closely; otherwise claim a trigger slot (round robin over the
        // least-recently written).
        bool placed = false;
        for (auto &t : e->triggers) {
            if (t.valid && miss > t.line &&
                miss - t.line <= cfg.footprintLines) {
                t.footprint |=
                    static_cast<uint8_t>(1u << (miss - t.line - 1));
                placed = true;
                break;
            }
            if (t.valid && miss == t.line) {
                placed = true;
                break;
            }
        }
        if (placed)
            continue;
        for (auto &t : e->triggers) {
            if (!t.valid) {
                t.valid = true;
                t.line = miss;
                t.footprint = 0;
                placed = true;
                break;
            }
        }
        if (!placed) {
            // All trigger slots used: replace the first (oldest written).
            e->triggers[0].line = miss;
            e->triggers[0].footprint = 0;
        }
    }
    missLog.clear();
}

void
RdipPrefetcher::prefetchFor(uint64_t sig)
{
    Entry *e = find(sig);
    if (e == nullptr)
        return;
    e->lastUse = ++clock;
    for (const auto &t : e->triggers) {
        if (!t.valid)
            continue;
        owner->enqueuePrefetch(t.line);
        for (uint32_t i = 0; i < cfg.footprintLines; ++i) {
            if (t.footprint & (1u << i))
                owner->enqueuePrefetch(t.line + 1 + i);
        }
    }
}

void
RdipPrefetcher::onBranch(sim::Addr pc, trace::BranchType type,
                         sim::Addr target)
{
    (void)target;
    using trace::BranchType;
    if (type != BranchType::DirectCall && type != BranchType::IndirectCall &&
        type != BranchType::Return) {
        return;
    }

    // Misses seen under the old signature belong to it.
    commitMisses();

    if (type == BranchType::Return) {
        if (!shadowRas.empty())
            shadowRas.pop_back();
    } else {
        if (shadowRas.size() >= cfg.shadowRasEntries)
            shadowRas.erase(shadowRas.begin());
        shadowRas.push_back(pc + 4);
    }
    currentSignature = computeSignature();
    prefetchFor(currentSignature);
}

void
RdipPrefetcher::onCacheOperate(const sim::CacheOperateInfo &info)
{
    if (!info.hit && missLog.size() < 16)
        missLog.push_back(info.line);
}

} // namespace eip::prefetch
