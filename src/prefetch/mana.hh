/**
 * @file
 * MANA [5]: a microarchitected stream prefetcher. The dynamic access
 * stream is partitioned into spatial regions (a trigger line plus an 8-bit
 * footprint of the following lines); the MANA table links each trigger to
 * its successor trigger, and the prefetcher walks this chain a fixed number
 * of steps ahead of the demand stream, prefetching each region's footprint.
 */

#ifndef EIP_PREFETCH_MANA_HH
#define EIP_PREFETCH_MANA_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/entangled_table.hh"
#include "sim/cache.hh"
#include "sim/prefetcher_api.hh"
#include "util/bitops.hh"

namespace eip::prefetch {

/** Configuration: the paper evaluates 2K (9KB), 4K (17.25KB) and 8K
 *  (74.18KB) MANA-table entries. */
struct ManaConfig
{
    uint32_t entries = 4096;
    uint32_t ways = 4;
    uint32_t footprintLines = 8; ///< lines covered after the trigger
    uint32_t lookahead = 3;      ///< chain steps walked per trigger
};

/** Internal event counters exported through registerStats(). */
struct ManaStats
{
    uint64_t tableHits = 0;        ///< prediction lookup found the trigger
    uint64_t tableMisses = 0;
    uint64_t inserts = 0;          ///< new trigger entries allocated
    uint64_t evictions = 0;        ///< valid entries displaced by inserts
    uint64_t regionsCommitted = 0; ///< spatial regions closed by training
    uint64_t chainSteps = 0;       ///< successor links walked per lookahead
    uint64_t chainBreaks = 0;      ///< walks cut short by a stale link
};

class ManaPrefetcher : public sim::Prefetcher
{
  public:
    explicit ManaPrefetcher(const ManaConfig &cfg);

    std::string name() const override;
    uint64_t storageBits() const override;

    /** Exports "mana.*" counters (cumulative over the whole run). */
    void registerStats(obs::CounterRegistry &reg) override;

    void onCacheOperate(const sim::CacheOperateInfo &info) override;

    /** Arms a ghost set of region lines lost to MANA-table evictions. */
    void enableBlame() override;
    /** `pair_evicted` when @p line was covered by an evicted region. */
    obs::MissBlame blame(sim::Addr line, sim::Addr pc) override;

    const ManaStats &analysis() const { return stats_; }

  private:
    struct Entry
    {
        bool valid = false;
        sim::Addr line = 0;   ///< trigger line (tag)
        uint8_t footprint = 0;///< bit i: line+1+i was accessed
        uint32_t successor = 0; ///< table position of the next trigger
        bool successorValid = false;
        uint64_t lastUse = 0;
    };

    uint32_t setIndex(sim::Addr line) const;
    Entry *find(sim::Addr line);
    Entry *findOrInsert(sim::Addr line);
    void prefetchRegion(const Entry &e);
    /** Ghost every line of @p e's region (blame armed, entry evicted). */
    void ghostRecordRegion(const Entry &e);
    /** Un-ghost every line the region of @p e covers (re-learned). */
    void ghostEraseRegion(const Entry &e);

    ManaConfig cfg;
    uint32_t numSets;
    std::vector<Entry> table;
    uint64_t clock = 0;
    ManaStats stats_;
    /** Miss-attribution shadow (DESIGN.md §3.11); null unless armed. */
    std::unique_ptr<core::GhostPairSet> ghost_;

    // Training state: the current spatial region being recorded.
    bool hasTrigger = false;
    sim::Addr triggerLine = 0;
    uint8_t triggerFootprint = 0;
};

} // namespace eip::prefetch

#endif // EIP_PREFETCH_MANA_HH
