/**
 * @file
 * PC-indexed stride prefetcher for the data side (L1D). Not part of the
 * paper's contribution — the paper's baseline system, like any realistic
 * substrate, has data prefetching available; this completes the hierarchy
 * so instruction-prefetcher results are not measured against a data side
 * artificially starved of one.
 */

#ifndef EIP_PREFETCH_STRIDE_HH
#define EIP_PREFETCH_STRIDE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache.hh"
#include "sim/prefetcher_api.hh"
#include "util/bitops.hh"
#include "util/saturating_counter.hh"

namespace eip::prefetch {

/** Classic RPT-style stride detector: per-PC last line, stride, confidence. */
class StridePrefetcher : public sim::Prefetcher
{
  public:
    explicit StridePrefetcher(uint32_t entries = 256, uint32_t degree = 2)
        : degree_(degree), table(entries)
    {
        EIP_ASSERT(isPowerOf2(entries),
                   "stride table size must be a power of two");
    }

    std::string name() const override { return "Stride-L1D"; }

    uint64_t
    storageBits() const override
    {
        // Tag + last line + stride + 2-bit confidence.
        return table.size() * (12 + 30 + 12 + 2);
    }

    void
    onCacheOperate(const sim::CacheOperateInfo &info) override
    {
        Entry &e = table[index(info.triggerPc)];
        int64_t stride = static_cast<int64_t>(info.line) -
                         static_cast<int64_t>(e.lastLine);
        if (e.valid && stride == e.stride && stride != 0) {
            e.confidence.increment();
            if (e.confidence.strong()) {
                for (uint32_t d = 1; d <= degree_; ++d) {
                    owner->enqueuePrefetch(static_cast<sim::Addr>(
                        static_cast<int64_t>(info.line) + stride * d));
                }
            }
        } else if (e.valid) {
            e.confidence.decrement();
            if (e.confidence.zero())
                e.stride = stride;
        } else {
            e.valid = true;
            e.stride = stride;
        }
        e.lastLine = info.line;
    }

  private:
    struct Entry
    {
        bool valid = false;
        sim::Addr lastLine = 0;
        int64_t stride = 0;
        SaturatingCounter confidence{2, 0};
    };

    size_t
    index(sim::Addr pc) const
    {
        return static_cast<size_t>(xorFold(pc >> 2,
                                           floorLog2(table.size()))) &
               (table.size() - 1);
    }

    uint32_t degree_;
    std::vector<Entry> table;
};

} // namespace eip::prefetch

#endif // EIP_PREFETCH_STRIDE_HH
