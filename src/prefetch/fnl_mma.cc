#include "prefetch/fnl_mma.hh"

#include "obs/why.hh"
#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::prefetch {

FnlMmaPrefetcher::FnlMmaPrefetcher(const FnlMmaConfig &config)
    : cfg(config), mmaSets(config.mmaEntries / config.mmaWays)
{
    EIP_ASSERT(isPowerOf2(mmaSets), "MMA set count must be a power of 2");
    // Start weakly worth-prefetching: plain next-line until trained down.
    fnl.assign(cfg.fnlBits / 2, SaturatingCounter(2, 2));
    mma.resize(cfg.mmaEntries);
}

uint64_t
FnlMmaPrefetcher::storageBits() const
{
    // FNL counters + MMA entries (partial tag + successor + LRU).
    uint64_t mma_entry = 14 + 58 + 2;
    return cfg.fnlBits +
           static_cast<uint64_t>(cfg.mmaEntries) * mma_entry +
           cfg.missAhead * 58;
}

size_t
FnlMmaPrefetcher::fnlIndex(sim::Addr line) const
{
    return static_cast<size_t>(xorFold(line, floorLog2(fnl.size()))) %
           fnl.size();
}

FnlMmaPrefetcher::MmaEntry *
FnlMmaPrefetcher::mmaFind(sim::Addr line)
{
    size_t set = static_cast<size_t>(xorFold(line, floorLog2(mmaSets))) &
                 (mmaSets - 1);
    size_t base = set * cfg.mmaWays;
    for (uint32_t w = 0; w < cfg.mmaWays; ++w) {
        MmaEntry &e = mma[base + w];
        if (e.valid && e.line == line)
            return &e;
    }
    return nullptr;
}

FnlMmaPrefetcher::MmaEntry *
FnlMmaPrefetcher::mmaFindOrInsert(sim::Addr line)
{
    if (MmaEntry *e = mmaFind(line)) {
        e->lastUse = ++clock;
        return e;
    }
    size_t set = static_cast<size_t>(xorFold(line, floorLog2(mmaSets))) &
                 (mmaSets - 1);
    size_t base = set * cfg.mmaWays;
    MmaEntry *victim = &mma[base];
    for (uint32_t w = 0; w < cfg.mmaWays; ++w) {
        MmaEntry &e = mma[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    // Miss attribution: the victim's miss-ahead prediction is lost.
    if (ghost_ != nullptr && victim->valid && victim->ahead != 0)
        ghost_->record(victim->ahead);
    victim->valid = true;
    victim->line = line;
    victim->ahead = 0;
    victim->lastUse = ++clock;
    return victim;
}

void
FnlMmaPrefetcher::onCacheOperate(const sim::CacheOperateInfo &info)
{
    sim::Addr line = info.line;

    // --- FNL: prefetch the next lines deemed worth it. ---
    for (uint32_t i = 1; i <= cfg.fnlDepth; ++i) {
        if (fnl[fnlIndex(line + i)].strong())
            owner->enqueuePrefetch(line + i);
    }
    if (!info.hit) {
        // This line missed: its predecessors should have prefetched it.
        fnl[fnlIndex(line)].increment();
    }

    // --- MMA: on a miss, train and chase the miss-ahead chain. ---
    if (info.hit)
        return;

    missQueue.push_back(line);
    if (missQueue.size() > cfg.missAhead + 1)
        missQueue.erase(missQueue.begin());
    if (missQueue.size() == cfg.missAhead + 1) {
        // The miss `missAhead` positions ago now knows its n-th successor.
        MmaEntry *e = mmaFindOrInsert(missQueue.front());
        e->ahead = line;
        // The line is a live miss-ahead target again: un-ghost it.
        if (ghost_ != nullptr)
            ghost_->erase(line);
    }

    sim::Addr cursor = line;
    for (uint32_t step = 0; step < cfg.chase; ++step) {
        MmaEntry *e = mmaFind(cursor);
        if (e == nullptr || e->ahead == 0)
            break;
        owner->enqueuePrefetch(e->ahead);
        // Pull in the sequential neighbourhood of the predicted miss too.
        if (fnl[fnlIndex(e->ahead + 1)].strong())
            owner->enqueuePrefetch(e->ahead + 1);
        cursor = e->ahead;
    }
}

void
FnlMmaPrefetcher::enableBlame()
{
    if (ghost_ == nullptr)
        ghost_ = std::make_unique<core::GhostPairSet>();
}

obs::MissBlame
FnlMmaPrefetcher::blame(sim::Addr line, sim::Addr pc)
{
    (void)pc;
    if (ghost_ != nullptr && ghost_->contains(line))
        return obs::MissBlame::PairEvicted;
    return obs::MissBlame::None;
}

void
FnlMmaPrefetcher::onCacheFill(const sim::CacheFillInfo &info)
{
    // Wrong prefetch: trained-down so FNL stops pulling this line.
    if (info.evictedUnusedPrefetch)
        fnl[fnlIndex(info.evictedLine)].decrement();
}

} // namespace eip::prefetch
