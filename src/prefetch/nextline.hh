/**
 * @file
 * Pure next-line instruction prefetcher [8]: on every access, prefetch the
 * next sequential cache line. Zero storage.
 */

#ifndef EIP_PREFETCH_NEXTLINE_HH
#define EIP_PREFETCH_NEXTLINE_HH

#include "sim/cache.hh"
#include "sim/prefetcher_api.hh"

namespace eip::prefetch {

/** The simplest baseline of §IV-B. */
class NextLinePrefetcher : public sim::Prefetcher
{
  public:
    std::string name() const override { return "NextLine"; }
    uint64_t storageBits() const override { return 0; }

    void
    onCacheOperate(const sim::CacheOperateInfo &info) override
    {
        owner->enqueuePrefetch(info.line + 1);
    }
};

} // namespace eip::prefetch

#endif // EIP_PREFETCH_NEXTLINE_HH
