#include "prefetch/djolt.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::prefetch {

DjoltPrefetcher::Table::Table(const DjoltRange &r)
    : range(r), numSets(r.entries / r.ways)
{
    EIP_ASSERT(isPowerOf2(numSets), "D-JOLT set count must be a power of 2");
    entries.resize(r.entries);
}

DjoltPrefetcher::Entry *
DjoltPrefetcher::Table::find(uint64_t sig)
{
    size_t set = static_cast<size_t>(xorFold(sig, floorLog2(numSets))) &
                 (numSets - 1);
    size_t base = set * range.ways;
    for (uint32_t w = 0; w < range.ways; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.signature == sig)
            return &e;
    }
    return nullptr;
}

DjoltPrefetcher::Entry *
DjoltPrefetcher::Table::findOrInsert(uint64_t sig)
{
    if (Entry *e = find(sig)) {
        e->lastUse = ++clock;
        return e;
    }
    size_t set = static_cast<size_t>(xorFold(sig, floorLog2(numSets))) &
                 (numSets - 1);
    size_t base = set * range.ways;
    Entry *victim = &entries[base];
    for (uint32_t w = 0; w < range.ways; ++w) {
        Entry &e = entries[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->signature = sig;
    victim->lines.clear();
    victim->lastUse = ++clock;
    return victim;
}

void
DjoltPrefetcher::Table::record(uint64_t sig, sim::Addr line)
{
    Entry *e = findOrInsert(sig);
    if (std::find(e->lines.begin(), e->lines.end(), line) != e->lines.end())
        return;
    if (e->lines.size() >= range.linesPerEntry)
        e->lines.erase(e->lines.begin());
    e->lines.push_back(line);
}

DjoltPrefetcher::DjoltPrefetcher(const DjoltConfig &config)
    : cfg(config), shortTable(config.shortRange), longTable(config.longRange)
{}

uint64_t
DjoltPrefetcher::storageBits() const
{
    auto table_bits = [](const DjoltRange &r) {
        // Partial tag + region-relative 30-bit line addresses + LRU (the
        // paper's configuration totals 125KB).
        uint64_t per_entry = 14 + r.linesPerEntry * 30 + 2;
        return static_cast<uint64_t>(r.entries) * per_entry;
    };
    return table_bits(cfg.shortRange) + table_bits(cfg.longRange) +
           (cfg.shortRange.lookaheadCalls + cfg.longRange.lookaheadCalls) *
               64;
}

void
DjoltPrefetcher::prefetchFor(Table &table, uint64_t sig)
{
    Entry *e = table.find(sig);
    if (e == nullptr)
        return;
    e->lastUse = ++table.clock;
    for (sim::Addr line : e->lines)
        owner->enqueuePrefetch(line);
}

void
DjoltPrefetcher::onBranch(sim::Addr pc, trace::BranchType type,
                          sim::Addr target)
{
    using trace::BranchType;
    if (type != BranchType::DirectCall &&
        type != BranchType::IndirectCall && type != BranchType::Return) {
        return;
    }

    // The signature folds the last `signatureCalls` call/return tokens —
    // a *windowed* context, so identical call sequences reproduce
    // identical signatures regardless of what preceded them.
    uint64_t token = type == BranchType::Return
        ? (pc >> 2) * 0x2545f4914f6cdd1dULL
        : ((pc >> 2) ^ (target >> 1)) * 0x9e3779b97f4a7c15ULL;
    recentTokens.push_back(token);
    while (recentTokens.size() > cfg.signatureCalls)
        recentTokens.pop_front();
    signature = 0x5eed;
    for (uint64_t t : recentTokens)
        signature = (signature << 5) ^ (signature >> 3) ^ t;

    signatureHistory.push_back(signature);
    size_t keep = std::max(cfg.shortRange.lookaheadCalls,
                           cfg.longRange.lookaheadCalls) + 1;
    while (signatureHistory.size() > keep)
        signatureHistory.pop_front();

    // Consult both ranges with the *current* signature: entries were
    // trained with the signature that preceded their misses by the
    // configured distance, so the hits are misses expected ahead.
    prefetchFor(shortTable, signature);
    prefetchFor(longTable, signature);
}

void
DjoltPrefetcher::onCacheOperate(const sim::CacheOperateInfo &info)
{
    if (info.hit)
        return;
    auto sig_ago = [&](uint32_t calls) -> const uint64_t * {
        if (signatureHistory.size() <= calls)
            return nullptr;
        return &signatureHistory[signatureHistory.size() - 1 - calls];
    };
    if (const uint64_t *s = sig_ago(cfg.shortRange.lookaheadCalls))
        shortTable.record(*s, info.line);
    if (const uint64_t *s = sig_ago(cfg.longRange.lookaheadCalls))
        longTable.record(*s, info.line);
}

} // namespace eip::prefetch
