/**
 * @file
 * FNL+MMA [44]: Seznec's IPC-1 winner runner-up design combining a
 * Footprint Next Line prefetcher (an enhanced next-line that predicts
 * whether the next lines are worth prefetching) with a Multiple Miss Ahead
 * prefetcher (a miss-successor table walked a fixed look-ahead distance
 * ahead of the current miss).
 */

#ifndef EIP_PREFETCH_FNL_MMA_HH
#define EIP_PREFETCH_FNL_MMA_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/entangled_table.hh"
#include "sim/cache.hh"
#include "sim/prefetcher_api.hh"
#include "util/saturating_counter.hh"

namespace eip::prefetch {

/** Configuration; the paper quotes 97KB for the 8K-entry setup. */
struct FnlMmaConfig
{
    uint32_t fnlBits = 64 * 1024;  ///< worthiness counters (2-bit each)
    uint32_t fnlDepth = 2;         ///< next lines considered per access
    uint32_t mmaEntries = 8192;
    uint32_t mmaWays = 4;
    uint32_t missAhead = 4;        ///< look-ahead distance (in misses)
    uint32_t chase = 3;            ///< chain steps prefetched per miss
};

class FnlMmaPrefetcher : public sim::Prefetcher
{
  public:
    explicit FnlMmaPrefetcher(const FnlMmaConfig &cfg);

    std::string name() const override { return "FNL+MMA"; }
    uint64_t storageBits() const override;

    void onCacheOperate(const sim::CacheOperateInfo &info) override;
    void onCacheFill(const sim::CacheFillInfo &info) override;

    /** Arms a ghost set of miss-ahead targets lost to MMA evictions. */
    void enableBlame() override;
    /** `pair_evicted` when @p line was an evicted entry's miss-ahead
     *  target not re-learned since. */
    obs::MissBlame blame(sim::Addr line, sim::Addr pc) override;

  private:
    struct MmaEntry
    {
        bool valid = false;
        sim::Addr line = 0;   ///< miss line (tag)
        sim::Addr ahead = 0;  ///< the miss seen `missAhead` misses later
        uint64_t lastUse = 0;
    };

    size_t fnlIndex(sim::Addr line) const;
    MmaEntry *mmaFind(sim::Addr line);
    MmaEntry *mmaFindOrInsert(sim::Addr line);

    FnlMmaConfig cfg;
    std::vector<SaturatingCounter> fnl;
    uint32_t mmaSets;
    std::vector<MmaEntry> mma;
    uint64_t clock = 0;

    /** Recent misses (newest at back) for miss-ahead training. */
    std::vector<sim::Addr> missQueue;
    /** Miss-attribution shadow (DESIGN.md §3.11); null unless armed. */
    std::unique_ptr<core::GhostPairSet> ghost_;
};

} // namespace eip::prefetch

#endif // EIP_PREFETCH_FNL_MMA_HH
