/**
 * @file
 * PIF — Proactive Instruction Fetch (Ferdman et al., MICRO'11), the
 * high-storage temporal-streaming reference the paper's related work
 * positions RDIP and Entangling against (PIF reaches a 99.5% L1I hit rate
 * at a storage cost "beyond the limits considered in [the paper's]
 * evaluation").
 *
 * Model: the instruction-fetch stream is compacted into spatial records
 * (a trigger line plus an 8-bit footprint of the following lines) and
 * logged into a large circular history. An index table remembers the most
 * recent history position of each trigger. When a demand access hits the
 * index, the prefetcher replays the next `streamDepth` records from that
 * history position — the temporal stream.
 */

#ifndef EIP_PREFETCH_PIF_HH
#define EIP_PREFETCH_PIF_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/entangled_table.hh"
#include "sim/cache.hh"
#include "sim/prefetcher_api.hh"

namespace eip::prefetch {

/** Configuration; defaults give ~170KB, PIF-scale. */
struct PifConfig
{
    uint32_t historyRecords = 32 * 1024;
    uint32_t indexEntries = 8192;
    uint32_t footprintLines = 8;
    uint32_t streamDepth = 5; ///< records replayed per index hit
};

/** Internal event counters exported through registerStats(). */
struct PifStats
{
    uint64_t indexHits = 0;      ///< demand line found in the index
    uint64_t indexMisses = 0;
    uint64_t recordsLogged = 0;  ///< spatial records written to history
    uint64_t indexFlushes = 0;   ///< capacity drops of the whole index
    uint64_t recordsReplayed = 0;///< history records replayed as prefetches
};

class PifPrefetcher : public sim::Prefetcher
{
  public:
    explicit PifPrefetcher(const PifConfig &cfg);

    std::string name() const override { return "PIF"; }
    uint64_t storageBits() const override;

    /** Exports "pif.*" counters (cumulative over the whole run). */
    void registerStats(obs::CounterRegistry &reg) override;

    void onCacheOperate(const sim::CacheOperateInfo &info) override;

    /** Arms a ghost set of record lines lost to history overwrites. */
    void enableBlame() override;
    /** `pair_evicted` when @p line was covered by an overwritten
     *  history record not re-logged since. */
    obs::MissBlame blame(sim::Addr line, sim::Addr pc) override;

    const PifStats &analysis() const { return stats_; }

  private:
    struct Record
    {
        sim::Addr trigger = 0;
        uint8_t footprint = 0;
        bool valid = false;
    };

    void commitRegion();
    void replayFrom(size_t position);

    PifConfig cfg;
    std::vector<Record> history; ///< circular log of spatial records
    size_t head = 0;
    PifStats stats_;
    /** trigger line -> most recent history position. */
    std::unordered_map<sim::Addr, size_t> index;
    /** Miss-attribution shadow (DESIGN.md §3.11); null unless armed. */
    std::unique_ptr<core::GhostPairSet> ghost_;

    // Current spatial region being accumulated.
    bool hasTrigger = false;
    sim::Addr triggerLine = 0;
    uint8_t triggerFootprint = 0;
};

} // namespace eip::prefetch

#endif // EIP_PREFETCH_PIF_HH
