/**
 * @file
 * Deterministic batch scheduler: fan a vector of jobs across a thread
 * pool and return the results in submission order.
 *
 * Determinism contract: the job function must keep all mutable state
 * job-local (every harness run constructs its own Cpu, Executor and RNG
 * from the job description), so a job's result is a pure function of the
 * job. Under that contract the output vector is bit-identical to the
 * serial loop for any worker count and any completion interleaving —
 * results are placed by submission index, never by completion time.
 *
 * Error contract: if a job throws, runBatch rethrows the exception of the
 * lowest-indexed failing job after the pool has drained (remaining queued
 * jobs still run to completion; their results are discarded).
 */

#ifndef EIP_EXEC_RUN_BATCH_HH
#define EIP_EXEC_RUN_BATCH_HH

#include <future>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.hh"

namespace eip::exec {

/**
 * As runBatch below, but @p fn also receives the job's submission index.
 * The index is the job's stable identity across worker counts (results
 * are placed by it), which lets callers produce deterministic per-job
 * side artifacts — e.g. `out.json.r004` — no matter which worker ran
 * the job or when it finished.
 */
template <typename Job, typename Fn>
auto
runBatchIndexed(const std::vector<Job> &jobs, unsigned workers, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, const Job &, size_t>>
{
    using Result = std::invoke_result_t<Fn &, const Job &, size_t>;
    std::vector<Result> results;
    results.reserve(jobs.size());
    if (jobs.empty())
        return results;

    if (workers <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i)
            results.push_back(fn(jobs[i], i));
        return results;
    }

    // Never spawn more workers than jobs; the extra threads would only
    // idle on the queue lock.
    unsigned poolSize = workers;
    if (jobs.size() < poolSize)
        poolSize = static_cast<unsigned>(jobs.size());
    ThreadPool pool(poolSize);

    std::vector<std::future<Result>> futures;
    futures.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const Job &job = jobs[i];
        futures.push_back(
            pool.submit([&fn, &job, i]() { return fn(job, i); }));
    }

    // Collecting in submission order is what makes the parallel path
    // indistinguishable from the serial one; get() also rethrows the
    // first (by index) job failure.
    for (std::future<Result> &future : futures)
        results.push_back(future.get());
    return results;
}

/**
 * Run @p fn over every element of @p jobs using @p workers threads and
 * return fn's results in submission order. workers <= 1 is the legacy
 * serial path: jobs run inline on the calling thread with no pool.
 *
 * The harness instantiates this with Job = {Workload, RunSpec} pairs;
 * anything copyable-or-referencable works.
 */
template <typename Job, typename Fn>
auto
runBatch(const std::vector<Job> &jobs, unsigned workers, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, const Job &>>
{
    return runBatchIndexed(
        jobs, workers,
        [&fn](const Job &job, size_t) { return fn(job); });
}

} // namespace eip::exec

#endif // EIP_EXEC_RUN_BATCH_HH
