#include "exec/canonical.hh"

#include "obs/json.hh"

namespace eip::exec {

// Keep both serializers in declaration-order sync with their structs:
// a field added there but not here silently aliases distinct configs
// in every cache keyed on the canonical form. The golden-hash tests in
// tests/test_serialize.cc force this file to change consciously.

std::string
canonicalProgramConfig(const trace::ProgramConfig &c)
{
    obs::JsonWriter json;
    json.beginObject();
    json.kv("seed", c.seed);
    json.kv("num_functions", c.numFunctions);
    json.kv("min_blocks_per_function", c.minBlocksPerFunction);
    json.kv("max_blocks_per_function", c.maxBlocksPerFunction);
    json.kv("min_block_insts", c.minBlockInsts);
    json.kv("max_block_insts", c.maxBlockInsts);
    json.kv("load_fraction", c.loadFraction);
    json.kv("store_fraction", c.storeFraction);
    json.kv("fp_fraction", c.fpFraction);
    json.kv("cond_block_fraction", c.condBlockFraction);
    json.kv("call_block_fraction", c.callBlockFraction);
    json.kv("jump_block_fraction", c.jumpBlockFraction);
    json.kv("indirect_fraction", c.indirectFraction);
    json.kv("loop_fraction", c.loopFraction);
    json.kv("min_loop_trips", c.minLoopTrips);
    json.kv("max_loop_trips", c.maxLoopTrips);
    json.kv("cond_taken_bias", c.condTakenBias);
    json.kv("call_locality", c.callLocality);
    json.kv("max_callee_cost", c.maxCalleeCost);
    json.kv("biased_branch_fraction", c.biasedBranchFraction);
    json.kv("dispatcher_fanout", c.dispatcherFanout);
    json.kv("dispatcher_every", c.dispatcherEvery);
    json.kv("dispatcher_loop_trips", c.dispatcherLoopTrips);
    json.kv("code_base", c.codeBase);
    json.kv("function_align", c.functionAlign);
    json.kv("inter_function_pad", c.interFunctionPad);
    json.kv("module_count", c.moduleCount);
    json.kv("module_stride", c.moduleStride);
    json.endObject();
    return json.str();
}

std::string
canonicalExecutorConfig(const trace::ExecutorConfig &c)
{
    obs::JsonWriter json;
    json.beginObject();
    json.kv("seed", c.seed);
    json.kv("max_call_depth", c.maxCallDepth);
    json.kv("stack_base", c.stackBase);
    json.kv("frame_bytes", c.frameBytes);
    json.kv("global_base", c.globalBase);
    json.kv("data_footprint_bytes", c.dataFootprintBytes);
    json.endObject();
    return json.str();
}

} // namespace eip::exec
