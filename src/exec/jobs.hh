/**
 * @file
 * Parallelism degree of the experiment engine. One knob, resolved in
 * priority order: an explicit request (e.g. the eipsim --jobs flag), the
 * EIP_JOBS environment variable, then std::thread::hardware_concurrency().
 * A value of 1 selects the legacy serial path (no pool, no futures);
 * 0 means "auto".
 */

#ifndef EIP_EXEC_JOBS_HH
#define EIP_EXEC_JOBS_HH

namespace eip::exec {

/**
 * Worker count from EIP_JOBS (strictly validated; garbage is a fatal
 * user error), falling back to hardware_concurrency(). Always >= 1;
 * EIP_JOBS=0 or an unset variable selects the hardware default.
 */
unsigned defaultJobs();

/** @p requested when > 0, otherwise defaultJobs(). */
unsigned resolveJobs(unsigned requested);

} // namespace eip::exec

#endif // EIP_EXEC_JOBS_HH
