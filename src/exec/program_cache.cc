#include "exec/program_cache.hh"

#include "exec/canonical.hh"
#include "obs/registry.hh"

namespace eip::exec {

std::shared_ptr<const trace::Program>
ProgramCache::get(const trace::ProgramConfig &cfg)
{
    const std::string key = canonicalProgramConfig(cfg);

    std::shared_ptr<Slot> slot;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (std::shared_ptr<Slot> *found = slots.get(key)) {
            slot = *found;
        } else {
            slot = std::make_shared<Slot>();
            slots.put(key, slot);
        }
    }

    bool builtNow = false;
    std::call_once(slot->once, [&]() {
        slot->program =
            std::make_shared<const trace::Program>(trace::buildProgram(cfg));
        buildCount.fetch_add(1);
        builtNow = true;
    });
    if (!builtNow)
        hitCount.fetch_add(1);
    return slot->program;
}

uint64_t
ProgramCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return slots.misses();
}

uint64_t
ProgramCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return slots.evictions();
}

uint64_t
ProgramCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return slots.size();
}

void
ProgramCache::setCapacity(uint64_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex);
    slots.setCapacity(capacity);
}

void
ProgramCache::registerStats(obs::CounterRegistry &registry,
                            const std::string &prefix) const
{
    registry.counter(prefix + ".hits", [this]() { return hits(); });
    registry.counter(prefix + ".misses", [this]() { return misses(); });
    registry.counter(prefix + ".evictions",
                     [this]() { return evictions(); });
    registry.counter(prefix + ".builds", [this]() { return builds(); });
    registry.counter(prefix + ".entries", [this]() { return entries(); });
}

void
ProgramCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    slots.clear();
}

ProgramCache &
ProgramCache::global()
{
    static ProgramCache cache;
    return cache;
}

} // namespace eip::exec
