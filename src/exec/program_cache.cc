#include "exec/program_cache.hh"

#include <sstream>

namespace eip::exec {

namespace {

/**
 * Serialize every generation knob into the cache key. Two configs with
 * equal keys yield bit-identical programs (buildProgram is deterministic),
 * so this is the exact memoization key — keep it in sync with
 * trace::ProgramConfig when adding fields there.
 */
std::string
cacheKey(const trace::ProgramConfig &c)
{
    std::ostringstream key;
    key << c.seed << '|' << c.numFunctions << '|' << c.minBlocksPerFunction
        << '|' << c.maxBlocksPerFunction << '|' << c.minBlockInsts << '|'
        << c.maxBlockInsts << '|' << c.loadFraction << '|' << c.storeFraction
        << '|' << c.fpFraction << '|' << c.condBlockFraction << '|'
        << c.callBlockFraction << '|' << c.jumpBlockFraction << '|'
        << c.indirectFraction << '|' << c.loopFraction << '|' << c.minLoopTrips
        << '|' << c.maxLoopTrips << '|' << c.condTakenBias << '|'
        << c.callLocality << '|' << c.maxCalleeCost << '|'
        << c.biasedBranchFraction << '|' << c.dispatcherFanout << '|'
        << c.dispatcherEvery << '|' << c.dispatcherLoopTrips << '|'
        << c.codeBase << '|' << c.functionAlign << '|' << c.interFunctionPad
        << '|' << c.moduleCount << '|' << c.moduleStride;
    return key.str();
}

} // namespace

std::shared_ptr<const trace::Program>
ProgramCache::get(const trace::ProgramConfig &cfg)
{
    const std::string key = cacheKey(cfg);

    std::shared_ptr<Slot> slot;
    {
        std::shared_lock<std::shared_mutex> readLock(mutex);
        auto it = slots.find(key);
        if (it != slots.end())
            slot = it->second;
    }
    if (slot == nullptr) {
        std::unique_lock<std::shared_mutex> writeLock(mutex);
        auto [it, inserted] = slots.try_emplace(key, nullptr);
        if (inserted)
            it->second = std::make_shared<Slot>();
        slot = it->second;
    }

    bool builtNow = false;
    std::call_once(slot->once, [&]() {
        slot->program =
            std::make_shared<const trace::Program>(trace::buildProgram(cfg));
        buildCount.fetch_add(1);
        builtNow = true;
    });
    if (!builtNow)
        hitCount.fetch_add(1);
    return slot->program;
}

void
ProgramCache::clear()
{
    std::unique_lock<std::shared_mutex> writeLock(mutex);
    slots.clear();
}

ProgramCache &
ProgramCache::global()
{
    static ProgramCache cache;
    return cache;
}

} // namespace eip::exec
