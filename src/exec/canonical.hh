/**
 * @file
 * Canonical, platform-stable serialization of the workload-generation
 * configs. One fixed field order (declaration order) and %.17g doubles
 * (obs::JsonWriter) make the string a faithful identity of the config:
 * equal strings ⇔ bit-identical generated programs / instruction
 * streams. ProgramCache keys on it intra-process; the serve result
 * cache folds it into cross-process content addresses.
 *
 * The previous ad-hoc ProgramCache key formatted doubles at default
 * iostream precision (6 significant digits), so two configs differing
 * only beyond the 6th digit of a fraction knob would silently collide —
 * the canonical form closes that hole and is pinned by golden-hash
 * tests (tests/test_serialize.cc) so it cannot drift unnoticed.
 */

#ifndef EIP_EXEC_CANONICAL_HH
#define EIP_EXEC_CANONICAL_HH

#include <string>

#include "trace/executor.hh"
#include "trace/program_builder.hh"

namespace eip::exec {

/** @p cfg as one-line canonical JSON (fixed key order, %.17g doubles). */
std::string canonicalProgramConfig(const trace::ProgramConfig &cfg);

/** As above for the executor (CFG walker) runtime knobs. */
std::string canonicalExecutorConfig(const trace::ExecutorConfig &cfg);

} // namespace eip::exec

#endif // EIP_EXEC_CANONICAL_HH
