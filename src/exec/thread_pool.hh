/**
 * @file
 * Fixed-size worker-thread pool with a FIFO work queue. Tasks are submitted
 * as callables and observed through std::future, so a task's return value
 * — or the exception it threw — always reaches exactly the code that
 * submitted it; nothing is swallowed on a worker thread.
 *
 * Shutdown is graceful: the destructor (or an explicit shutdown()) stops
 * accepting new work, lets the workers drain everything already queued,
 * and joins. Work submitted before shutdown therefore always runs.
 */

#ifndef EIP_EXEC_THREAD_POOL_HH
#define EIP_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace eip::exec {

class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Graceful: drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned threadCount() const { return static_cast<unsigned>(workers.size()); }

    /**
     * Queue @p fn for execution. The returned future yields fn's result,
     * or rethrows the exception fn terminated with. Submitting after
     * shutdown() is a programming error (asserts).
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        // packaged_task is move-only but std::function wants copyable
        // callables; the shared_ptr wrapper bridges the two.
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * Stop accepting work, finish everything already queued, join the
     * workers. Idempotent; implied by the destructor.
     */
    void shutdown();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable workAvailable;
    bool stopping = false;
};

} // namespace eip::exec

#endif // EIP_EXEC_THREAD_POOL_HH
