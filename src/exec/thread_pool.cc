#include "exec/thread_pool.hh"

#include "util/panic.hh"

namespace eip::exec {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        EIP_ASSERT(!stopping, "ThreadPool::submit after shutdown");
        queue.push_back(std::move(task));
    }
    workAvailable.notify_one();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    workAvailable.notify_all();
    for (std::thread &worker : workers) {
        if (worker.joinable())
            worker.join();
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            workAvailable.wait(
                lock, [this]() { return stopping || !queue.empty(); });
            // Drain before exiting so shutdown never abandons queued work.
            if (queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
        }
        // Any exception is captured by the packaged_task wrapper inside
        // the callable and surfaces through the submitter's future.
        task();
    }
}

} // namespace eip::exec
