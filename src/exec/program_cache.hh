/**
 * @file
 * Shared, thread-safe memoization of trace::buildProgram(). A full
 * evaluation replays the same workload under many prefetcher configs —
 * Fig. 6 alone runs 12 workloads under 17 configs — and the synthetic
 * program depends only on the generator config, so building it once per
 * distinct config removes ~94% of the CFG-construction work and lets
 * concurrent jobs share one immutable Program.
 *
 * Sharing is safe because a built Program is never mutated: the Executor
 * takes `const Program &` and keeps all run state (RNG, stack, cursors)
 * job-local.
 */

#ifndef EIP_EXEC_PROGRAM_CACHE_HH
#define EIP_EXEC_PROGRAM_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "trace/program_builder.hh"

namespace eip::exec {

class ProgramCache
{
  public:
    /**
     * Return the program for @p cfg, building it at most once per distinct
     * config even under concurrent calls (losers of the race block on the
     * winner's build instead of duplicating it). The returned pointer
     * stays valid for the caller's lifetime regardless of clear().
     */
    std::shared_ptr<const trace::Program> get(const trace::ProgramConfig &cfg);

    /** Programs actually constructed (for tests and cache-hit telemetry). */
    uint64_t builds() const { return buildCount.load(); }

    /** Lookups served without building. */
    uint64_t hits() const { return hitCount.load(); }

    /** Drop all cached programs (outstanding shared_ptrs stay valid). */
    void clear();

    /**
     * The process-wide cache used by the harness. Benches re-run the same
     * suite under many configs in one process, so a global instance is
     * what converts repeated builds into hits.
     */
    static ProgramCache &global();

  private:
    /** One cache line: the build runs under the slot's once_flag so the
     *  map lock is never held across buildProgram(). */
    struct Slot
    {
        std::once_flag once;
        std::shared_ptr<const trace::Program> program;
    };

    std::shared_mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<Slot>> slots;
    std::atomic<uint64_t> buildCount{0};
    std::atomic<uint64_t> hitCount{0};
};

} // namespace eip::exec

#endif // EIP_EXEC_PROGRAM_CACHE_HH
