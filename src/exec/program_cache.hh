/**
 * @file
 * Shared, thread-safe memoization of trace::buildProgram(). A full
 * evaluation replays the same workload under many prefetcher configs —
 * Fig. 6 alone runs 12 workloads under 17 configs — and the synthetic
 * program depends only on the generator config, so building it once per
 * distinct config removes ~94% of the CFG-construction work and lets
 * concurrent jobs share one immutable Program.
 *
 * Sharing is safe because a built Program is never mutated: the Executor
 * takes `const Program &` and keeps all run state (RNG, stack, cursors)
 * job-local.
 *
 * The cache is LRU-bounded (util::LruMap, weight 1 per program) so a
 * long-running process — the eipd job server in particular — cannot
 * grow it without bound; an evicted program that is still referenced
 * stays alive through its shared_ptr, eviction only forfeits reuse.
 * Keys are the canonical config JSON (exec/canonical.hh), the same
 * serialization the serve result cache folds into its content
 * addresses.
 */

#ifndef EIP_EXEC_PROGRAM_CACHE_HH
#define EIP_EXEC_PROGRAM_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "trace/program_builder.hh"
#include "util/lru.hh"

namespace eip::obs {
class CounterRegistry;
}

namespace eip::exec {

class ProgramCache
{
  public:
    /** Resident programs before LRU eviction kicks in. Generous against
     *  the catalogue (13 workloads) and every bench line-up; the knob
     *  exists for the serve daemon and the bounding tests. */
    static constexpr uint64_t kDefaultCapacity = 128;

    explicit ProgramCache(uint64_t capacity = kDefaultCapacity)
        : slots(capacity)
    {}

    /**
     * Return the program for @p cfg, building it at most once per distinct
     * resident config even under concurrent calls (losers of the race
     * block on the winner's build instead of duplicating it). The returned
     * pointer stays valid for the caller's lifetime regardless of clear()
     * or eviction.
     */
    std::shared_ptr<const trace::Program> get(const trace::ProgramConfig &cfg);

    /** Programs actually constructed (for tests and cache-hit telemetry). */
    uint64_t builds() const { return buildCount.load(); }

    /** Lookups served without building. */
    uint64_t hits() const { return hitCount.load(); }

    /** Lookups that had to insert a fresh slot (first sight or evicted). */
    uint64_t misses() const;

    /** Programs dropped by LRU capacity pressure. */
    uint64_t evictions() const;

    /** Resident program count. */
    uint64_t entries() const;

    /** Change the LRU bound (shrinking evicts immediately). */
    void setCapacity(uint64_t capacity);

    /**
     * Register the eviction-stat vocabulary this cache shares with the
     * serve result cache — <prefix>.hits/misses/evictions/builds/entries
     * — on @p registry (non-owning: the cache must outlive it).
     */
    void registerStats(obs::CounterRegistry &registry,
                       const std::string &prefix) const;

    /** Drop all cached programs (outstanding shared_ptrs stay valid). */
    void clear();

    /**
     * The process-wide cache used by the harness. Benches re-run the same
     * suite under many configs in one process, so a global instance is
     * what converts repeated builds into hits.
     */
    static ProgramCache &global();

  private:
    /** One cache line: the build runs under the slot's once_flag so the
     *  map lock is never held across buildProgram(). */
    struct Slot
    {
        std::once_flag once;
        std::shared_ptr<const trace::Program> program;
    };

    mutable std::mutex mutex;
    util::LruMap<std::string, std::shared_ptr<Slot>> slots;
    std::atomic<uint64_t> buildCount{0};
    std::atomic<uint64_t> hitCount{0};
};

} // namespace eip::exec

#endif // EIP_EXEC_PROGRAM_CACHE_HH
