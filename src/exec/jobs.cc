#include "exec/jobs.hh"

#include <thread>

#include "util/env.hh"
#include "util/panic.hh"

namespace eip::exec {

namespace {

unsigned
hardwareJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

unsigned
defaultJobs()
{
    if (auto jobs = util::envU64("EIP_JOBS")) {
        // Cap far above any real machine; mostly guards against typos
        // like EIP_JOBS=44444 oversubscribing the host into the ground.
        if (*jobs > 4096)
            EIP_FATAL("EIP_JOBS: value out of range (max 4096)");
        if (*jobs == 0)
            return hardwareJobs();
        return static_cast<unsigned>(*jobs);
    }
    return hardwareJobs();
}

unsigned
resolveJobs(unsigned requested)
{
    return requested > 0 ? requested : defaultJobs();
}

} // namespace eip::exec
