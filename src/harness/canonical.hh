/**
 * @file
 * Canonical serialization of the simulation request — SimConfig and
 * RunSpec — and the content address built from it. Together with the
 * workload identity (exec/canonical.hh) and the build's git describe,
 * the canonical strings pin everything an eip-run/v1 artifact's bytes
 * depend on, so their hash is a valid cross-process cache key: equal
 * keys ⇒ byte-identical artifacts (the determinism contract of
 * exec::runBatch, extended across processes).
 *
 * Deliberately conservative: knobs that are proven result-inert
 * (event_skip — see the eipdiff skip axis) still enter the key, so a
 * key can never alias two requests the artifact schema could ever
 * distinguish. Collapsing inert knobs would be a pure hit-rate
 * optimization and needs an allow-list argument, not a serializer
 * change.
 */

#ifndef EIP_HARNESS_CANONICAL_HH
#define EIP_HARNESS_CANONICAL_HH

#include <string>

#include "harness/runner.hh"
#include "sim/config.hh"
#include "trace/workloads.hh"

namespace eip::harness {

/** @p cfg as one-line canonical JSON (fixed key order, %.17g doubles,
 *  nested cache levels in hierarchy order). */
std::string canonicalSimConfig(const sim::SimConfig &cfg);

/** @p spec as canonical JSON. The tracer is excluded: it is a pure
 *  observer (results are identical with and without it) and a
 *  single-run facility the serve protocol does not expose. */
std::string canonicalRunSpec(const RunSpec &spec);

/** Workload identity: name, category and the canonical generator and
 *  executor configs. Trace-backed workloads additionally carry their
 *  kind, byte count, and content digest (never the path — two different
 *  traces at one path must not alias, and one trace at two paths
 *  should). */
std::string canonicalWorkload(const trace::Workload &workload);

/**
 * Content address of one run request: a 16-hex-digit FNV-1a digest of
 * (git describe, canonical SimConfig baseline, canonical RunSpec,
 * canonical workload). The serve result cache keys on it.
 */
std::string resultCacheKey(const std::string &git_describe,
                           const sim::SimConfig &cfg, const RunSpec &spec,
                           const trace::Workload &workload);

} // namespace eip::harness

#endif // EIP_HARNESS_CANONICAL_HH
