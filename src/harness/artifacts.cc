#include "harness/artifacts.hh"

#include <cmath>
#include <cstdio>
#include <memory>

#include "exec/jobs.hh"
#include "exec/program_cache.hh"
#include "exec/run_batch.hh"
#include "obs/json.hh"
#include "obs/phase.hh"
#include "util/env.hh"
#include "util/panic.hh"

namespace eip::harness {

namespace {

/** One sampled-metric estimate: point value, standard error, and the
 *  95% confidence-interval half-width (t-distributed over windows). */
void
writeMetricSummary(obs::JsonWriter &json, const char *name,
                   const sample::MetricSummary &m)
{
    json.key(name).beginObject();
    json.kv("estimate", m.estimate);
    json.kv("std_error", m.stdError);
    json.kv("ci95", m.ci95);
    json.endObject();
}

/** The eip-run/v1 object body (shared by single-run artifacts and the
 *  per-run members of a suite roll-up). */
void
writeRunObject(obs::JsonWriter &json, const obs::RunManifest &manifest,
               const RunResult &result, bool include_timing)
{
    json.beginObject();
    json.kv("schema", obs::kRunSchema);
    obs::writeManifest(json, manifest, include_timing);

    obs::writeCounterSections(json, result.counters);

    // Sampled-simulation estimates: present only for periodic-mode runs,
    // so full-run artifacts keep their exact historic bytes (same
    // contract as the --why section below).
    if (result.hasSampling) {
        const sample::Summary &s = result.sampling;
        json.key("sampling").beginObject();
        json.kv("windows", s.windows);
        json.kv("window_instructions", s.windowInstructions);
        json.kv("warmed_instructions", s.warmedInstructions);
        json.kv("skipped_instructions", s.skippedInstructions);
        json.kv("offset", s.offset);
        writeMetricSummary(json, "ipc", s.ipc);
        writeMetricSummary(json, "l1i_mpki", s.l1iMpki);
        writeMetricSummary(json, "l1i_coverage", s.l1iCoverage);
        writeMetricSummary(json, "l1i_accuracy", s.l1iAccuracy);
        json.endObject();
    }

    // Miss attribution (--why): present only when the run carried the
    // observer, so plain artifacts keep their exact historic bytes.
    if (result.why.enabled) {
        json.key("why");
        obs::writeWhySection(json, result.why);
    }

    const obs::SampleSeries &series = result.samples;
    json.key("samples").beginObject();
    json.kv("interval", series.interval);
    json.key("columns").beginArray();
    for (const std::string &name : series.names)
        json.value(name);
    json.endArray();
    json.key("rows").beginArray();
    for (size_t i = 0; i < series.rows.size(); ++i) {
        const obs::Sample &row = series.rows[i];
        json.beginObject();
        json.kv("instructions", row.instructions);
        json.kv("cycles", row.cycles);
        json.key("values").beginArray();
        for (uint64_t v : row.values)
            json.value(v);
        json.endArray();
        // Per-interval deltas against the previous snapshot (the first
        // row's delta is its cumulative value: warm boundary to sample).
        json.key("deltas").beginArray();
        for (size_t c = 0; c < row.values.size(); ++c) {
            uint64_t prev = i == 0 ? 0 : series.rows[i - 1].values[c];
            json.value(row.values[c] - prev);
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();

    json.endObject();
}

} // namespace

obs::RunManifest
makeManifest(const trace::Workload &workload, const RunSpec &spec,
             const RunResult &result)
{
    obs::RunManifest m;
    m.workload = workload.name;
    m.category = workload.category;
    m.configId = spec.configId;
    m.configName = result.configName;
    m.dataPrefetcher = spec.dataPrefetcher;
    m.storageBits =
        static_cast<uint64_t>(std::llround(result.storageKB * 1024.0 * 8.0));
    m.programSeed = workload.program.seed;
    m.execSeed = workload.exec.seed;
    m.instructions = spec.instructions;
    m.warmup = spec.warmup;
    m.sampleInterval = spec.sampleInterval;
    // Periodic-mode echo only: a full run's manifest stays byte-identical
    // to before sampled simulation existed.
    if (spec.sampleMode == "periodic") {
        m.sampleMode = spec.sampleMode;
        m.sampleWindow = spec.sampleWindow;
        m.samplePeriod = spec.samplePeriod;
        m.sampleSeed = spec.sampleSeed;
        m.sampleWarm = spec.sampleWarm;
    }
    m.simScale = util::envDouble("EIP_SIM_SCALE").value_or(1.0);
    if (workload.kind != trace::WorkloadKind::Synthetic) {
        m.traceKind = trace::workloadKindName(workload.kind);
        m.traceBytes = workload.traceBytes;
        m.traceDigest = workload.traceDigest;
    }
    return m;
}

std::string
runArtifactJson(const obs::RunManifest &manifest, const RunResult &result,
                bool include_timing)
{
    obs::JsonWriter json;
    writeRunObject(json, manifest, result, include_timing);
    return json.str() + "\n";
}

std::string
suiteArtifactJson(const std::vector<RunJob> &batch,
                  const std::vector<RunResult> &results)
{
    EIP_ASSERT(batch.size() == results.size(),
               "suite roll-up needs one result per job");
    obs::JsonWriter json;
    json.beginObject();
    json.kv("schema", obs::kSuiteSchema);
    json.kv("tool", "eipsim");
    json.kv("git_describe", obs::buildGitDescribe());
    json.kv("run_count", static_cast<uint64_t>(results.size()));
    json.key("runs").beginArray();
    for (size_t i = 0; i < results.size(); ++i) {
        obs::RunManifest m =
            makeManifest(batch[i].workload, batch[i].spec, results[i]);
        writeRunObject(json, m, results[i], /*include_timing=*/false);
    }
    json.endArray();
    json.endObject();
    return json.str() + "\n";
}

ArtifactRun
runJobArtifact(const RunJob &job, bool use_program_cache,
               obs::PhaseProfiler *profiler)
{
    RunJob collected = job;
    collected.spec.collectCounters = true;
    collected.spec.profiler = profiler;

    ArtifactRun out;
    if (collected.workload.kind != trace::WorkloadKind::Synthetic) {
        // Trace-backed workloads have no program to build or cache.
        out.result = runOne(collected.workload, collected.spec);
    } else if (use_program_cache) {
        std::shared_ptr<const trace::Program> program;
        {
            std::unique_ptr<obs::PhaseProfiler::Scope> scope;
            if (profiler != nullptr)
                scope = std::make_unique<obs::PhaseProfiler::Scope>(
                    *profiler, "program_build");
            program = exec::ProgramCache::global().get(
                collected.workload.program);
        }
        out.result = runOne(collected.workload, collected.spec, *program);
    } else {
        std::unique_ptr<trace::Program> program;
        {
            std::unique_ptr<obs::PhaseProfiler::Scope> scope;
            if (profiler != nullptr)
                scope = std::make_unique<obs::PhaseProfiler::Scope>(
                    *profiler, "program_build");
            program = std::make_unique<trace::Program>(
                trace::buildProgram(collected.workload.program));
        }
        out.result = runOne(collected.workload, collected.spec, *program);
    }
    // runOne leaves the run's last phase (fill_drain) open; close it so
    // the serialization below is charged to its own phase, not the run.
    if (profiler != nullptr) {
        profiler->close();
        profiler->transition("serialize");
    }
    obs::RunManifest manifest =
        makeManifest(collected.workload, collected.spec, out.result);
    out.json = runArtifactJson(manifest, out.result,
                               /*include_timing=*/false);
    if (profiler != nullptr)
        profiler->close();
    return out;
}

std::string
perJobArtifactPath(const std::string &path, size_t index)
{
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".r%03zu.json", index);
    return path + suffix;
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        EIP_FATAL(("cannot open artifact file: " + path).c_str());
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = written == text.size() && std::fclose(f) == 0;
    if (!ok)
        EIP_FATAL(("cannot write artifact file: " + path).c_str());
}

std::vector<RunResult>
runBatchWithArtifacts(const std::vector<RunJob> &batch, unsigned jobs,
                      const std::string &path)
{
    // Counter collection must be on for the artifacts to have content.
    std::vector<RunJob> collected = batch;
    for (RunJob &job : collected)
        job.spec.collectCounters = true;

    std::vector<RunResult> results = exec::runBatchIndexed(
        collected, exec::resolveJobs(jobs),
        [&path](const RunJob &job, size_t index) {
            // The per-job file is written by whichever worker ran the
            // job, but its name and bytes depend only on the submission
            // index — concurrent writers never collide or race.
            ArtifactRun run = runJobArtifact(job);
            writeTextFile(perJobArtifactPath(path, index), run.json);
            return std::move(run.result);
        });

    writeTextFile(path, suiteArtifactJson(collected, results));
    return results;
}

} // namespace eip::harness
