#include "harness/canonical.hh"

#include "exec/canonical.hh"
#include "obs/json.hh"
#include "util/hash.hh"

namespace eip::harness {

namespace {

/** One cache level, declaration order (struct CacheConfig). */
void
writeCacheConfig(obs::JsonWriter &json, const sim::CacheConfig &c)
{
    json.beginObject();
    json.kv("name", c.name);
    json.kv("size_bytes", c.sizeBytes);
    json.kv("ways", c.ways);
    json.kv("hit_latency", c.hitLatency);
    json.kv("mshr_entries", c.mshrEntries);
    json.kv("pq_entries", c.pqEntries);
    json.kv("pq_issue_per_cycle", c.pqIssuePerCycle);
    json.kv("pf_mshr_reserve", c.pfMshrReserve);
    json.kv("ideal_hit", c.idealHit);
    json.kv("replacement", static_cast<unsigned>(c.replacement));
    json.endObject();
}

} // namespace

// Both serializers must stay in declaration-order sync with their
// structs; the golden-hash tests in tests/test_serialize.cc flag any
// drift so cache keys change consciously, never silently.

std::string
canonicalSimConfig(const sim::SimConfig &c)
{
    obs::JsonWriter json;
    json.beginObject();
    json.kv("fetch_width", c.fetchWidth);
    json.kv("predict_width", c.predictWidth);
    json.kv("retire_width", c.retireWidth);
    json.kv("rob_entries", c.robEntries);
    json.kv("ftq_entries", c.ftqEntries);
    json.kv("backend_depth", c.backendDepth);
    json.kv("decode_resteer_penalty", c.decodeResteerPenalty);
    json.kv("execute_flush_penalty", c.executeFlushPenalty);
    json.kv("predictor", static_cast<unsigned>(c.predictor));
    json.kv("gshare_bits", c.gshareBits);
    json.kv("perceptron_rows", c.perceptronRows);
    json.kv("perceptron_history", c.perceptronHistory);
    json.kv("btb_entries", c.btbEntries);
    json.kv("btb_ways", c.btbWays);
    json.kv("ras_entries", c.rasEntries);
    json.kv("itc_entries", c.itcEntries);
    json.key("l1i");
    writeCacheConfig(json, c.l1i);
    json.key("l1d");
    writeCacheConfig(json, c.l1d);
    json.key("l2");
    writeCacheConfig(json, c.l2);
    json.key("llc");
    writeCacheConfig(json, c.llc);
    json.kv("dram_latency", c.dramLatency);
    json.kv("dram_jitter", c.dramJitter);
    json.kv("model_wrong_path", c.modelWrongPath);
    json.kv("wrong_path_lines_per_cycle", c.wrongPathLinesPerCycle);
    json.kv("physical_l1i", c.physicalL1I);
    json.kv("vmem_seed", c.vmemSeed);
    json.kv("event_skip", c.eventSkip);
    json.endObject();
    return json.str();
}

std::string
canonicalRunSpec(const RunSpec &spec)
{
    obs::JsonWriter json;
    json.beginObject();
    json.kv("config_id", spec.configId);
    json.kv("instructions", spec.instructions);
    json.kv("warmup", spec.warmup);
    json.kv("physical_l1i", spec.physicalL1i);
    json.kv("data_prefetcher", spec.dataPrefetcher);
    json.kv("event_skip", spec.eventSkip);
    json.kv("wrong_path", spec.wrongPath);
    json.kv("sample_interval", spec.sampleInterval);
    json.kv("collect_counters", spec.collectCounters);
    json.kv("sample_mode", spec.sampleMode);
    json.kv("sample_window", spec.sampleWindow);
    json.kv("sample_period", spec.samplePeriod);
    json.kv("sample_seed", spec.sampleSeed);
    json.kv("sample_warm", spec.sampleWarm);
    json.endObject();
    return json.str();
}

std::string
canonicalWorkload(const trace::Workload &workload)
{
    obs::JsonWriter json;
    json.beginObject();
    json.kv("name", workload.name);
    json.kv("category", workload.category);
    // Trace-backed workloads extend the form with their kind and content
    // identity. The extra keys sit between "category" and "program", so
    // no trace-backed serialization can ever equal a synthetic one —
    // and the synthetic form stays byte-identical to before trace
    // support existed (pinned by the golden-digest tests). The path is
    // deliberately absent: identity is the bytes, not where they live.
    if (workload.kind != trace::WorkloadKind::Synthetic) {
        json.kv("kind", trace::workloadKindName(workload.kind));
        json.kv("trace_bytes", workload.traceBytes);
        json.kv("trace_digest", workload.traceDigest);
    }
    json.key("program").raw(exec::canonicalProgramConfig(workload.program));
    json.key("exec").raw(exec::canonicalExecutorConfig(workload.exec));
    json.endObject();
    return json.str();
}

std::string
resultCacheKey(const std::string &git_describe, const sim::SimConfig &cfg,
               const RunSpec &spec, const trace::Workload &workload)
{
    // Chain the parts with a separator FNV can see: without it,
    // ("ab","c") and ("a","bc") would collide.
    uint64_t hash = util::fnv1a64(git_describe);
    hash = util::fnv1a64("\x1f", hash);
    hash = util::fnv1a64(canonicalSimConfig(cfg), hash);
    hash = util::fnv1a64("\x1f", hash);
    hash = util::fnv1a64(canonicalRunSpec(spec), hash);
    hash = util::fnv1a64("\x1f", hash);
    hash = util::fnv1a64(canonicalWorkload(workload), hash);
    return util::hex64(hash);
}

} // namespace eip::harness
