#include "harness/cli.hh"

#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>

#include "check/invariants.hh"
#include "exec/jobs.hh"
#include "harness/artifacts.hh"
#include "obs/log.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"
#include "prefetch/factory.hh"
#include "sample/schedule.hh"
#include "sim/config.hh"
#include "trace/workloads.hh"

namespace eip::harness {

namespace {

bool
parseU64(const std::string &text, uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

} // namespace

std::string
cliUsage()
{
    return
        "eipsim — Entangling instruction-prefetcher simulator\n"
        "\n"
        "usage: eipsim [options]\n"
        "  --workload NAME       catalogue workload (default srv-1), 'all'\n"
        "                        to run the whole catalogue, or a trace\n"
        "                        file path (.trc, .champsimtrace[.xz|.gz])\n"
        "  --trace FILE          replay an on-disk trace: a captured .trc\n"
        "                        or a ChampSim .champsimtrace[.xz|.gz]\n"
        "                        (equivalent to --workload FILE)\n"
        "  --suite-trace FILE    with --workload all: append this corpus\n"
        "                        trace to the batch catalogue (repeatable;\n"
        "                        same formats as --trace). Each trace\n"
        "                        passes the suite's >= 1 L1I MPKI\n"
        "                        qualification or is skipped with a note\n"
        "  --prefetcher ID       none|ideal|l1i-64kb|l1i-96kb|nextline|\n"
        "                        sn4l|mana-{2k,4k,8k}|rdip|djolt|fnl+mma|\n"
        "                        pif|epi|entangling-{2k,4k,8k}[-phys]|\n"
        "                        bb-4k|bbent-4k|bbentbb-4k|ent-4k\n"
        "  --data-prefetcher ID  L1D prefetcher: none|stride\n"
        "  --instructions N      measured instructions (default 600000)\n"
        "  --warmup N            warm-up instructions (default 300000)\n"
        "  --jobs N              worker threads for --workload all\n"
        "                        (default: EIP_JOBS env or all cores;\n"
        "                        1 = serial)\n"
        "  --physical            train the L1I with physical addresses\n"
        "  --no-skip             tick every cycle instead of event-driven\n"
        "                        cycle skipping (identical results;\n"
        "                        for A/B host-speed timing)\n"
        "  --wrong-path          model wrong-path execution\n"
        "  --check               run the cycle-level invariant auditor\n"
        "                        (src/check; also EIP_CHECK=1); fatal on\n"
        "                        the first violated invariant\n"
        "  --json                machine-readable output\n"
        "  --stats-json FILE     write a self-describing JSON artifact:\n"
        "                        eip-run/v1 per run, eip-suite/v1 roll-up\n"
        "                        (plus FILE.rNNN.json per job) for\n"
        "                        --workload all\n"
        "  --sample-interval N   counter time-series interval in measured\n"
        "                        instructions (default 100000; 0 = off;\n"
        "                        needs --stats-json)\n"
        "  --sample-mode MODE    full (default): simulate every measured\n"
        "                        instruction in detail; periodic:\n"
        "                        SMARTS-style sampling — functional\n"
        "                        warming between detailed windows, with\n"
        "                        per-metric 95% confidence intervals\n"
        "  --sample-window N     detailed instructions per window\n"
        "                        (periodic mode; required, positive)\n"
        "  --sample-period N     instructions per sampling period\n"
        "                        (periodic mode; required, >= window)\n"
        "  --sample-seed N       systematic sampling offset seed\n"
        "                        (periodic mode; default 0)\n"
        "  --sample-warm N       functionally warm only the last N\n"
        "                        instructions before each window,\n"
        "                        fast-forwarding the rest (periodic\n"
        "                        mode; default 0 = warm whole gaps)\n"
        "  --trace-out FILE      record an event trace (prefetch\n"
        "                        lifecycle, fetch stalls, L1I misses) as\n"
        "                        Chrome/Perfetto trace_event JSON\n"
        "                        (eip-trace/v1; single runs only)\n"
        "  --trace-events LIST   comma list of event families kept in\n"
        "                        the trace ring: pf,stall,cache\n"
        "                        (default all)\n"
        "  --trace-limit N       trace ring capacity in events (default\n"
        "                        1048576; oldest overwritten beyond it)\n"
        "  --why                 attribute every L1I demand miss of the\n"
        "                        measured window to a blame category\n"
        "                        (eip-why/v1 artifact section; inspect\n"
        "                        with `eiptrace eipwhy`)\n"
        "  --why-top N           hot-miss PC table depth of the why\n"
        "                        section (default 10; implies --why)\n"
        "  --log-level LEVEL     structured-log threshold on stderr:\n"
        "                        debug|info|warn|error|off (default: the\n"
        "                        EIP_LOG environment variable, else warn)\n"
        "  --list-workloads      print the workload catalogue\n"
        "  --list-prefetchers    print the known prefetcher ids\n"
        "  --config              print the simulated system (Table III)\n"
        "  --help                this text\n";
}

CliOptions
parseCli(const std::vector<std::string> &args)
{
    CliOptions opt;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&](const char *flag) -> std::optional<std::string> {
            if (i + 1 >= args.size()) {
                opt.error = std::string(flag) + " needs a value";
                return std::nullopt;
            }
            return args[++i];
        };

        if (arg == "--help" || arg == "-h") {
            opt.action = CliOptions::Action::Help;
        } else if (arg == "--list-workloads") {
            opt.action = CliOptions::Action::ListWorkloads;
        } else if (arg == "--list-prefetchers") {
            opt.action = CliOptions::Action::ListPrefetchers;
        } else if (arg == "--config") {
            opt.action = CliOptions::Action::ShowConfig;
        } else if (arg == "--workload") {
            if (auto v = value("--workload"))
                opt.workload = *v;
        } else if (arg == "--trace") {
            if (auto v = value("--trace"))
                opt.tracePath = *v;
        } else if (arg == "--suite-trace") {
            if (auto v = value("--suite-trace"))
                opt.suiteTraces.push_back(*v);
        } else if (arg == "--prefetcher") {
            if (auto v = value("--prefetcher"))
                opt.prefetcher = *v;
        } else if (arg == "--data-prefetcher") {
            if (auto v = value("--data-prefetcher"))
                opt.dataPrefetcher = *v;
        } else if (arg == "--instructions") {
            auto v = value("--instructions");
            if (v && !parseU64(*v, opt.instructions))
                opt.error = "--instructions needs a number";
        } else if (arg == "--warmup") {
            auto v = value("--warmup");
            if (v && !parseU64(*v, opt.warmup))
                opt.error = "--warmup needs a number";
        } else if (arg == "--jobs") {
            auto v = value("--jobs");
            uint64_t jobs = 0;
            if (v && (!parseU64(*v, jobs) || jobs > 4096))
                opt.error = "--jobs needs a number (0 = auto, max 4096)";
            else
                opt.jobs = static_cast<unsigned>(jobs);
        } else if (arg == "--stats-json") {
            if (auto v = value("--stats-json")) {
                opt.statsJsonPath = *v;
                if (opt.statsJsonPath.empty())
                    opt.error = "--stats-json needs a file path";
            }
        } else if (arg == "--sample-interval") {
            auto v = value("--sample-interval");
            if (v && !parseU64(*v, opt.sampleInterval))
                opt.error = "--sample-interval needs a number "
                            "(instructions; 0 = off)";
        } else if (arg == "--sample-mode") {
            if (auto v = value("--sample-mode")) {
                opt.sampleMode = *v;
                sample::Mode mode;
                if (!sample::parseMode(*v, &mode))
                    opt.error = "--sample-mode needs full or periodic";
            }
        } else if (arg == "--sample-window") {
            auto v = value("--sample-window");
            if (v && !parseU64(*v, opt.sampleWindow))
                opt.error = "--sample-window needs a number "
                            "(instructions per detailed window)";
        } else if (arg == "--sample-period") {
            auto v = value("--sample-period");
            if (v && !parseU64(*v, opt.samplePeriod))
                opt.error = "--sample-period needs a number "
                            "(instructions per sampling period)";
        } else if (arg == "--sample-seed") {
            auto v = value("--sample-seed");
            if (v && !parseU64(*v, opt.sampleSeed))
                opt.error = "--sample-seed needs a number";
        } else if (arg == "--sample-warm") {
            auto v = value("--sample-warm");
            if (v && !parseU64(*v, opt.sampleWarm))
                opt.error = "--sample-warm needs a number (instructions "
                            "warmed before each window; 0 = whole gap)";
        } else if (arg == "--trace-out") {
            if (auto v = value("--trace-out")) {
                opt.traceOutPath = *v;
                if (opt.traceOutPath.empty())
                    opt.error = "--trace-out needs a file path";
            }
        } else if (arg == "--trace-events") {
            if (auto v = value("--trace-events")) {
                opt.traceEvents = *v;
                if (!obs::parseTraceFamilies(*v)) {
                    opt.error = "--trace-events needs a comma-separated "
                                "subset of pf,stall,cache";
                }
            }
        } else if (arg == "--trace-limit") {
            auto v = value("--trace-limit");
            uint64_t limit = 0;
            if (v && (!parseU64(*v, limit) || limit == 0))
                opt.error = "--trace-limit needs a positive event count";
            else if (v)
                opt.traceLimit = limit;
        } else if (arg == "--log-level") {
            if (auto v = value("--log-level")) {
                opt.logLevel = *v;
                if (!obs::parseLogLevel(*v))
                    opt.error = "--log-level needs one of "
                                "debug|info|warn|error|off";
            }
        } else if (arg == "--why") {
            opt.why = true;
        } else if (arg == "--why-top") {
            auto v = value("--why-top");
            if (v && !parseU64(*v, opt.whyTop))
                opt.error = "--why-top needs a number (PC table depth)";
            else
                opt.why = true;
        } else if (arg == "--physical") {
            opt.physical = true;
        } else if (arg == "--no-skip") {
            opt.noSkip = true;
        } else if (arg == "--wrong-path") {
            opt.wrongPath = true;
        } else if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else {
            opt.error = "unknown option: " + arg;
        }
        if (!opt.error.empty())
            break;
    }
    if (opt.instructions == 0)
        opt.error = "--instructions must be positive";
    // Mirror sample::validateSpec at the CLI boundary so a bad schedule
    // is a usage error with help text, not a runtime panic.
    if (opt.error.empty() && opt.sampleMode == "periodic") {
        if (opt.sampleWindow == 0)
            opt.error = "--sample-mode periodic needs a positive "
                        "--sample-window";
        else if (opt.samplePeriod < opt.sampleWindow)
            opt.error = "--sample-period must be at least --sample-window";
    }
    return opt;
}

std::string
resultToJson(const RunResult &result)
{
    const sim::SimStats &s = result.stats;
    std::ostringstream out;
    out << "{\"workload\":\"" << result.workload << "\","
        << "\"config\":\"" << result.configName << "\","
        << "\"storage_kb\":" << result.storageKB << ","
        << "\"instructions\":" << s.instructions << ","
        << "\"cycles\":" << s.cycles << ","
        << "\"ipc\":" << s.ipc() << ","
        << "\"l1i_mpki\":" << s.l1iMpki() << ","
        << "\"l1i_miss_ratio\":" << s.l1i.missRatio() << ","
        << "\"coverage\":" << s.l1i.coverage() << ","
        << "\"accuracy\":" << s.l1i.accuracy() << ","
        << "\"prefetches_issued\":" << s.l1i.prefetchIssued << ","
        << "\"useful\":" << s.l1i.usefulPrefetches << ","
        << "\"late\":" << s.l1i.latePrefetches << ","
        << "\"wrong\":" << s.l1i.wrongPrefetches << ","
        << "\"branch_mpki\":"
        << (s.instructions
                ? 1000.0 * s.branchMispredicts / s.instructions : 0.0)
        << "}";
    return out.str();
}

int
runCli(const CliOptions &opt)
{
    if (!opt.error.empty()) {
        std::fprintf(stderr, "error: %s\n%s", opt.error.c_str(),
                     cliUsage().c_str());
        return 2;
    }
    if (!opt.logLevel.empty()) {
        if (auto level = obs::parseLogLevel(opt.logLevel))
            obs::Logger::global().setLevel(*level);
    }
    // Must happen before any Cpu is constructed (including batch
    // workers): the auditor registry is created in the Cpu constructor.
    if (opt.check)
        check::setChecksEnabled(true);
    switch (opt.action) {
      case CliOptions::Action::Help:
        std::fputs(cliUsage().c_str(), stdout);
        return 0;
      case CliOptions::Action::ShowConfig:
        std::fputs(sim::SimConfig{}.describe().c_str(), stdout);
        return 0;
      case CliOptions::Action::ListPrefetchers: {
        std::printf("none ideal l1i-64kb l1i-96kb\n");
        for (const auto &id : prefetch::figure6Lineup())
            std::printf("%s\n", id.c_str());
        std::printf("pif\n");
        return 0;
      }
      case CliOptions::Action::ListWorkloads: {
        for (const auto &w : defaultCatalogue()) {
            trace::Program prog = trace::buildProgram(w.program);
            std::printf("%-12s %-7s %6.0f KB code\n", w.name.c_str(),
                        w.category.c_str(),
                        prog.footprintBytes() / 1024.0);
        }
        return 0;
      }
      case CliOptions::Action::Run:
        break;
    }

    if (!opt.suiteTraces.empty() &&
        (opt.workload != "all" || !opt.tracePath.empty())) {
        std::fprintf(stderr, "error: --suite-trace needs --workload all "
                             "(use --trace for a single replay)\n");
        return 2;
    }
    if (opt.tracePath.empty() && opt.workload == "all") {
        // Batch mode: the whole catalogue under one config, fanned out
        // across the exec thread pool.
        if (opt.wrongPath) {
            std::fprintf(stderr, "error: --wrong-path is not supported "
                                 "with --workload all\n");
            return 2;
        }
        if (!opt.traceOutPath.empty()) {
            std::fprintf(stderr, "error: --trace-out is not supported "
                                 "with --workload all (tracing is a "
                                 "single-run facility)\n");
            return 2;
        }
        RunSpec spec;
        spec.configId = opt.prefetcher;
        spec.dataPrefetcher = opt.dataPrefetcher;
        spec.instructions = opt.instructions;
        spec.warmup = opt.warmup;
        spec.physicalL1i = opt.physical;
        spec.eventSkip = !opt.noSkip;
        spec.why = opt.why;
        spec.whyTop = opt.whyTop;
        spec.sampleMode = opt.sampleMode;
        spec.sampleWindow = opt.sampleWindow;
        spec.samplePeriod = opt.samplePeriod;
        spec.sampleSeed = opt.sampleSeed;
        spec.sampleWarm = opt.sampleWarm;
        if (!opt.statsJsonPath.empty())
            spec.sampleInterval = opt.sampleInterval;

        // Corpus traces ride the same batch as the synthetic catalogue,
        // gated by the per-trace MPKI qualification; every admission and
        // skip is reported so a silently thin suite cannot masquerade as
        // a full one.
        std::vector<std::string> suite_notes;
        std::vector<trace::Workload> suite =
            mixedCatalogue(opt.suiteTraces, &suite_notes);
        for (const std::string &line : suite_notes)
            std::fprintf(stderr, "suite-trace: %s\n", line.c_str());

        unsigned jobs = exec::resolveJobs(opt.jobs);
        auto started = std::chrono::steady_clock::now();
        std::vector<RunResult> results;
        if (!opt.statsJsonPath.empty()) {
            std::vector<RunJob> batch;
            for (const auto &w : suite)
                batch.push_back(RunJob{w, spec});
            results = runBatchWithArtifacts(batch, jobs, opt.statsJsonPath);
        } else {
            results = runSuite(suite, spec, jobs);
        }
        double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count();

        if (opt.json) {
            for (const RunResult &r : results)
                std::printf("%s\n", resultToJson(r).c_str());
            return 0;
        }
        std::printf("%-12s %-7s %8s %10s %9s %9s\n", "workload", "categ",
                    "IPC", "L1I-MPKI", "coverage", "accuracy");
        for (const RunResult &r : results) {
            std::printf("%-12s %-7s %8.4f %10.2f %9.4f %9.4f\n",
                        r.workload.c_str(), r.category.c_str(),
                        r.stats.ipc(), r.stats.l1iMpki(),
                        r.stats.l1i.coverage(), r.stats.l1i.accuracy());
        }
        std::printf("\n%zu workloads under %s in %.2fs (jobs=%u)\n",
                    results.size(),
                    results.empty() ? opt.prefetcher.c_str()
                                    : results.front().configName.c_str(),
                    seconds, jobs);
        return 0;
    }

    RunResult result;
    obs::RunManifest manifest;
    std::unique_ptr<obs::EventTracer> tracer;
    if (!opt.traceOutPath.empty()) {
        obs::TraceConfig tcfg;
        tcfg.limit = static_cast<size_t>(opt.traceLimit);
        // Validated by parseCli; fall back to everything defensively.
        tcfg.families = obs::parseTraceFamilies(opt.traceEvents)
                            .value_or(obs::kTraceAll);
        tracer = std::make_unique<obs::EventTracer>(tcfg);
    }
    // Host-side phase attribution for the artifact's manifest
    // (phase_ms). A timing field like hostWallMs: armed only when an
    // artifact is requested, and never part of the canonical run bytes.
    obs::PhaseProfiler profiler;
    obs::PhaseProfiler *prof =
        opt.statsJsonPath.empty() ? nullptr : &profiler;
    auto run_started = std::chrono::steady_clock::now();
    {
        // Resolve what to run. --trace FILE is sugar for --workload FILE;
        // either way a recognized trace path (.trc, .champsimtrace[.xz|
        // .gz]) becomes a trace-backed workload with the file's content
        // digest as identity, and runs through the exact same runOne path
        // as the synthetic catalogue — no hand-rolled replay loop that
        // can drift from the runner.
        const std::string &wanted =
            !opt.tracePath.empty() ? opt.tracePath : opt.workload;
        trace::Workload chosen;
        if (!opt.tracePath.empty() || trace::isTracePath(wanted)) {
            std::string trace_error;
            if (!trace::tryTraceWorkload(wanted, chosen, &trace_error)) {
                std::fprintf(stderr, "error: %s\n", trace_error.c_str());
                return 2;
            }
        } else if (!findWorkload(wanted, chosen)) {
            std::fprintf(stderr,
                         "error: unknown workload '%s' "
                         "(try --list-workloads)\n",
                         opt.workload.c_str());
            return 2;
        }
        RunSpec spec;
        spec.configId = opt.prefetcher;
        spec.dataPrefetcher = opt.dataPrefetcher;
        spec.instructions = opt.instructions;
        spec.warmup = opt.warmup;
        spec.physicalL1i = opt.physical;
        spec.eventSkip = !opt.noSkip;
        spec.wrongPath = opt.wrongPath;
        spec.why = opt.why;
        spec.whyTop = opt.whyTop;
        spec.sampleMode = opt.sampleMode;
        spec.sampleWindow = opt.sampleWindow;
        spec.samplePeriod = opt.samplePeriod;
        spec.sampleSeed = opt.sampleSeed;
        spec.sampleWarm = opt.sampleWarm;
        if (!opt.statsJsonPath.empty()) {
            spec.collectCounters = true;
            spec.sampleInterval = opt.sampleInterval;
        }
        spec.tracer = tracer.get();
        spec.profiler = prof;
        result = runOne(chosen, spec);
        manifest = makeManifest(chosen, spec, result);
    }

    if (tracer != nullptr) {
        tracer->finish();
        std::vector<std::pair<std::string, std::string>> trace_meta = {
            {"tool", "eipsim"},
            {"workload", result.workload},
            {"config", result.configName},
            {"git_describe", obs::buildGitDescribe()},
        };
        writeTextFile(opt.traceOutPath, tracer->toJson(trace_meta));
    }

    if (!opt.statsJsonPath.empty()) {
        manifest.sampleInterval = opt.sampleInterval;
        manifest.wallClockSeconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          run_started)
                .count();
        manifest.jobs = 1;
        // Host simulation speed over the whole run (warm-up + measured
        // instructions; the warm-up is simulated work all the same). A
        // sampled run only covers what its schedule actually executed —
        // warmed + fast-forwarded + detailed-window instructions; the
        // tail past the last window is never touched — so its MIPS
        // numerator comes from the sampling summary, not the spec.
        manifest.hostWallMs = manifest.wallClockSeconds * 1000.0;
        double wall_us = manifest.wallClockSeconds * 1e6;
        double covered = static_cast<double>(opt.warmup + opt.instructions);
        if (result.hasSampling)
            covered = static_cast<double>(
                result.sampling.warmedInstructions +
                result.sampling.skippedInstructions +
                result.sampling.windowInstructions);
        manifest.hostMips = wall_us > 0.0 ? covered / wall_us : 0.0;
        profiler.close();
        manifest.phaseMs = profiler.totalsMs();
        writeTextFile(opt.statsJsonPath,
                      runArtifactJson(manifest, result,
                                      /*include_timing=*/true));
    }

    if (opt.json) {
        std::printf("%s\n", resultToJson(result).c_str());
        return 0;
    }
    const sim::SimStats &s = result.stats;
    std::printf("workload      %s\n", result.workload.c_str());
    std::printf("config        %s (%.2f KB)\n", result.configName.c_str(),
                result.storageKB);
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(s.instructions));
    std::printf("cycles        %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("IPC           %.4f\n", s.ipc());
    std::printf("L1I MPKI      %.2f (miss ratio %.4f)\n", s.l1iMpki(),
                s.l1i.missRatio());
    std::printf("coverage      %.4f\n", s.l1i.coverage());
    std::printf("accuracy      %.4f\n", s.l1i.accuracy());
    std::printf("prefetches    issued %llu, useful %llu, late %llu, "
                "wrong %llu\n",
                static_cast<unsigned long long>(s.l1i.prefetchIssued),
                static_cast<unsigned long long>(s.l1i.usefulPrefetches),
                static_cast<unsigned long long>(s.l1i.latePrefetches),
                static_cast<unsigned long long>(s.l1i.wrongPrefetches));
    if (result.hasSampling) {
        const sample::Summary &sm = result.sampling;
        std::printf("sampling      %llu windows x %llu insts "
                    "(warmed %llu, offset %llu)\n",
                    static_cast<unsigned long long>(sm.windows),
                    static_cast<unsigned long long>(
                        sm.windows > 0
                            ? sm.windowInstructions / sm.windows : 0),
                    static_cast<unsigned long long>(sm.warmedInstructions),
                    static_cast<unsigned long long>(sm.offset));
        std::printf("IPC 95%% CI    %.4f +/- %.4f\n", sm.ipc.estimate,
                    sm.ipc.ci95);
        std::printf("MPKI 95%% CI   %.2f +/- %.2f\n", sm.l1iMpki.estimate,
                    sm.l1iMpki.ci95);
    }
    if (result.why.enabled) {
        std::printf("miss blame    ");
        const char *sep = "";
        for (size_t i = 0; i < obs::kMissBlameCount; ++i) {
            if (result.why.blame[i] == 0)
                continue;
            std::printf("%s%s %llu", sep,
                        obs::missBlameName(
                            static_cast<obs::MissBlame>(i + 1)),
                        static_cast<unsigned long long>(
                            result.why.blame[i]));
            sep = ", ";
        }
        std::printf("\n");
    }
    if (s.l1i.wrongPathAccesses > 0) {
        std::printf("wrong path    %llu accesses, %llu misses\n",
                    static_cast<unsigned long long>(
                        s.l1i.wrongPathAccesses),
                    static_cast<unsigned long long>(
                        s.l1i.wrongPathMisses));
    }
    return 0;
}

} // namespace eip::harness
