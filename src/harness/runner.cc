#include "harness/runner.hh"

#include <memory>
#include <unordered_set>

#include "core/entangling.hh"
#include "exec/jobs.hh"
#include "exec/program_cache.hh"
#include "exec/run_batch.hh"
#include "obs/phase.hh"
#include "prefetch/factory.hh"
#include "sample/sampled.hh"
#include "sim/cpu.hh"
#include "trace/source.hh"
#include "util/env.hh"
#include "util/panic.hh"
#include "util/stats_math.hh"

namespace eip::harness {

RunSpec
RunSpec::defaultSpec()
{
    RunSpec spec;
    if (auto scale = util::envDouble("EIP_SIM_SCALE")) {
        if (*scale <= 0.0)
            EIP_FATAL("EIP_SIM_SCALE: must be a positive scale factor");
        spec.instructions =
            static_cast<uint64_t>(spec.instructions * *scale);
        // The warm-up must cover at least one recurrence cycle of the
        // synthetic workloads or no history-based prefetcher can
        // train; scaling only ever lengthens it.
        if (*scale > 1.0)
            spec.warmup = static_cast<uint64_t>(spec.warmup * *scale);
    }
    return spec;
}

namespace {

/** The catalogue, built once per process. Construction is expensive —
 *  cvpSuite() executes ~400k instructions per candidate seed to apply
 *  the paper's >= 1 L1I MPKI selection filter — which a one-shot CLI
 *  absorbs but a daemon validating every request must not repay.
 *  Thread-safe (magic static); entries are immutable once built. */
const std::vector<trace::Workload> &
catalogueMemo()
{
    static const std::vector<trace::Workload> all = [] {
        auto suite = trace::cvpSuite(3);
        for (auto &w : trace::cloudSuite())
            suite.push_back(std::move(w));
        suite.push_back(trace::tinyWorkload());
        return suite;
    }();
    return all;
}

} // namespace

std::vector<trace::Workload>
defaultCatalogue()
{
    return catalogueMemo();
}

std::vector<trace::Workload>
mixedCatalogue(const std::vector<std::string> &trace_paths,
               std::vector<std::string> *notes)
{
    std::vector<trace::Workload> suite = catalogueMemo();
    auto note = [notes](const std::string &line) {
        if (notes != nullptr)
            notes->push_back(line);
    };
    std::unordered_set<std::string> seen;
    for (const std::string &path : trace_paths) {
        if (!seen.insert(path).second) {
            note(path + ": duplicate path — listed once already");
            continue;
        }
        trace::Workload w;
        std::string error;
        if (!trace::tryTraceWorkload(path, w, &error)) {
            note(path + ": skipped (" + error + ")");
            continue;
        }
        uint64_t footprint = 0;
        if (!trace::traceQualifies(w, &footprint)) {
            note(path + ": skipped — code footprint " +
                 std::to_string(footprint / 1024) +
                 " KB is below the >= 1 L1I MPKI proxy (40 KB), "
                 "mirroring the synthetic seed filter");
            continue;
        }
        note(path + ": admitted (" + std::to_string(footprint / 1024) +
             " KB code footprint)");
        suite.push_back(std::move(w));
    }
    return suite;
}

bool
findWorkload(const std::string &name, trace::Workload &out)
{
    // On-disk traces resolve by path, not against the catalogue; the
    // non-fatal factory keeps a daemon alive when a submission names a
    // file that is missing or unreadable.
    if (trace::isTracePath(name))
        return trace::tryTraceWorkload(name, out);
    const auto &all = catalogueMemo();
    for (const auto &w : all) {
        if (w.name == name) {
            out = w;
            return true;
        }
    }
    const std::string fallback = name + "-1";
    for (const auto &w : all) {
        if (w.name == fallback) {
            out = w;
            return true;
        }
    }
    return false;
}

namespace {

RunResult runImpl(const trace::Workload &workload, const RunSpec &spec,
                  const trace::Program *program);

} // namespace

RunResult
runOne(const trace::Workload &workload, const RunSpec &spec)
{
    // Trace-backed workloads stream from disk: nothing to build.
    if (workload.kind != trace::WorkloadKind::Synthetic)
        return runImpl(workload, spec, nullptr);
    std::shared_ptr<const trace::Program> program;
    {
        std::unique_ptr<obs::PhaseProfiler::Scope> scope;
        if (spec.profiler != nullptr)
            scope = std::make_unique<obs::PhaseProfiler::Scope>(
                *spec.profiler, "program_build");
        program = exec::ProgramCache::global().get(workload.program);
    }
    return runImpl(workload, spec, program.get());
}

RunResult
runOne(const trace::Workload &workload, const RunSpec &spec,
       const trace::Program &program)
{
    EIP_ASSERT(workload.kind == trace::WorkloadKind::Synthetic,
               "prebuilt-program runOne is for synthetic workloads");
    return runImpl(workload, spec, &program);
}

namespace {

RunResult
runImpl(const trace::Workload &workload, const RunSpec &spec,
        const trace::Program *program)
{
    sim::SimConfig cfg;
    cfg.physicalL1I = spec.physicalL1i;
    cfg.eventSkip = spec.eventSkip;
    cfg.modelWrongPath = spec.wrongPath;

    std::string pf_id = spec.configId;
    if (spec.configId == "ideal") {
        cfg.l1i.idealHit = true;
        pf_id = "none";
    } else if (spec.configId == "l1i-64kb") {
        cfg.enlargeL1i(64);
        pf_id = "none";
    } else if (spec.configId == "l1i-96kb") {
        cfg.enlargeL1i(96);
        pf_id = "none";
    }

    std::unique_ptr<sim::Prefetcher> prefetcher;
    std::unique_ptr<sim::Prefetcher> data_prefetcher;
    {
        std::unique_ptr<obs::PhaseProfiler::Scope> scope;
        if (spec.profiler != nullptr)
            scope = std::make_unique<obs::PhaseProfiler::Scope>(
                *spec.profiler, "prefetcher");
        prefetcher = prefetch::makePrefetcher(pf_id);
        data_prefetcher = prefetch::makePrefetcher(spec.dataPrefetcher);
    }

    sim::Cpu cpu(cfg);
    if (prefetcher != nullptr)
        cpu.attachL1iPrefetcher(prefetcher.get());
    if (data_prefetcher != nullptr)
        cpu.l1d().attachPrefetcher(data_prefetcher.get());
    if (spec.tracer != nullptr)
        cpu.attachTracer(spec.tracer);
    // Unlike the tracer, the miss-attribution observer is built here
    // (value-field spec), so --why composes with batches: every job
    // gets its own ledger.
    std::unique_ptr<obs::MissAttribution> why;
    if (spec.why) {
        why = std::make_unique<obs::MissAttribution>(spec.whyTop);
        cpu.attachWhy(why.get());
    }

    // One seam for every backend: synthetic Executor, .trc replay, or
    // ChampSim decode, chosen by the workload's kind.
    std::unique_ptr<trace::InstructionSource> stream =
        trace::makeTraceSource(workload, program)->open();

    // Observability: the registry and sampler live on this stack frame,
    // watching the Cpu's live counters for exactly the run's duration.
    bool collect = spec.collectCounters || spec.sampleInterval > 0;
    obs::CounterRegistry registry;
    std::unique_ptr<obs::IntervalSampler> sampler;
    if (collect) {
        cpu.registerCounters(registry);
        if (spec.sampleInterval > 0) {
            sampler = std::make_unique<obs::IntervalSampler>(
                registry, spec.sampleInterval);
        }
    }

    RunResult result;
    result.workload = workload.name;
    result.category = workload.category;
    sample::SampleSpec sample_spec;
    EIP_ASSERT(sample::parseMode(spec.sampleMode, &sample_spec.mode),
               "unknown sample mode (expected full|periodic)");
    if (sample_spec.mode == sample::Mode::Periodic) {
        // Sampled run: the controller alternates functional warming and
        // detailed windows. The interval sampler stays out — its
        // instruction/cycle axes assume one contiguous measured region.
        sample_spec.window = spec.sampleWindow;
        sample_spec.period = spec.samplePeriod;
        sample_spec.seed = spec.sampleSeed;
        sample_spec.warm = spec.sampleWarm;
        sample::SampledResult sampled =
            sample::runSampled(cpu, *stream, spec.instructions,
                               spec.warmup, sample_spec, spec.profiler);
        result.stats = sampled.stats;
        result.hasSampling = true;
        result.sampling = sampled.summary;
    } else {
        result.stats = cpu.run(*stream, spec.instructions, spec.warmup,
                               sampler.get(), spec.profiler);
    }
    if (collect)
        result.counters = registry.dump();
    if (sampler != nullptr)
        result.samples = sampler->series();
    if (why != nullptr)
        result.why = why->dump();

    if (prefetcher != nullptr) {
        result.configName = prefetcher->name();
        result.storageKB =
            static_cast<double>(prefetcher->storageBits()) / 8.0 / 1024.0;
    } else {
        result.configName = spec.configId == "none" ? "no" : spec.configId;
    }

    if (auto *ent =
            dynamic_cast<core::EntanglingPrefetcher *>(prefetcher.get())) {
        const core::EntanglingStats &a = ent->analysis();
        result.hasEntanglingAnalysis = true;
        result.avgDestsPerHit = a.destsPerHit.average();
        result.avgCurrentBbSize = a.currentBbSize.average();
        result.avgDstBbSize = a.dstBbSize.average();
        result.destBitsFractions.resize(a.destBits.buckets());
        for (size_t b = 0; b < a.destBits.buckets(); ++b)
            result.destBitsFractions[b] = a.destBits.fraction(b);
    }
    return result;
}

} // namespace

std::vector<RunResult>
runBatch(const std::vector<RunJob> &batch, unsigned jobs)
{
    exec::ProgramCache &cache = exec::ProgramCache::global();
    return exec::runBatch(
        batch, exec::resolveJobs(jobs), [&cache](const RunJob &job) {
            // The shared program is immutable; all run state (Cpu,
            // Executor/replayer, RNG) is constructed inside runOne, so
            // each job is a pure function of its (workload, spec) pair
            // and the batch result is independent of scheduling.
            if (job.workload.kind != trace::WorkloadKind::Synthetic)
                return runOne(job.workload, job.spec);
            std::shared_ptr<const trace::Program> program =
                cache.get(job.workload.program);
            return runOne(job.workload, job.spec, *program);
        });
}

std::vector<RunResult>
runSuite(const std::vector<trace::Workload> &suite, const RunSpec &spec)
{
    return runSuite(suite, spec, 0);
}

std::vector<RunResult>
runSuite(const std::vector<trace::Workload> &suite, const RunSpec &spec,
         unsigned jobs)
{
    std::vector<RunJob> batch;
    batch.reserve(suite.size());
    for (const auto &w : suite)
        batch.push_back(RunJob{w, spec});
    return runBatch(batch, jobs);
}

double
geomeanSpeedup(const std::vector<RunResult> &results,
               const std::vector<RunResult> &baseline)
{
    EIP_ASSERT(results.size() == baseline.size(),
               "speedup needs matching result sets");
    std::vector<double> ratios;
    ratios.reserve(results.size());
    for (size_t i = 0; i < results.size(); ++i) {
        EIP_ASSERT(results[i].workload == baseline[i].workload,
                   "speedup result sets must cover the same workloads");
        double base_ipc = baseline[i].stats.ipc();
        if (base_ipc > 0.0)
            ratios.push_back(results[i].stats.ipc() / base_ipc);
    }
    return geomean(ratios);
}

} // namespace eip::harness
