/**
 * @file
 * Experiment runner: builds a workload, attaches a prefetcher (or a cache
 * configuration such as Ideal / larger L1I), simulates, and returns the
 * statistics. All benches and the examples go through this entry point.
 *
 * Batch entry points (runSuite, runBatch) execute through the src/exec
 * engine: jobs fan out across a thread pool (EIP_JOBS / --jobs wide,
 * default hardware_concurrency, 1 = legacy serial loop) and synthetic
 * programs are shared through exec::ProgramCache. Every job constructs
 * its own Cpu/Executor/RNG, so results are bit-identical to the serial
 * path for any job count.
 */

#ifndef EIP_HARNESS_RUNNER_HH
#define EIP_HARNESS_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/why.hh"
#include "sample/estimator.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "trace/workloads.hh"

namespace eip::core {
struct EntanglingStats;
}

namespace eip::obs {
class EventTracer;
class PhaseProfiler;
}

namespace eip::trace {
struct Program;
}

namespace eip::harness {

/** One simulation request. */
struct RunSpec
{
    /** Prefetcher id (see prefetch::makePrefetcher) or one of the cache
     *  configurations: "ideal", "l1i-64kb", "l1i-96kb". */
    std::string configId = "none";
    uint64_t instructions = 600000;
    uint64_t warmup = 300000;
    bool physicalL1i = false;
    /** Optional L1D prefetcher id ("none" or "stride"). */
    std::string dataPrefetcher = "none";
    /** Event-driven cycle skipping (SimConfig::eventSkip). Results are
     *  bit-identical either way; off only for A/B host-speed timing. */
    bool eventSkip = true;
    /** Model wrong-path fetch after mispredictions
     *  (SimConfig::modelWrongPath). Result-affecting, so part of the
     *  canonical spec. */
    bool wrongPath = false;

    /** Sampled simulation (SMARTS-style, DESIGN.md §3.13): "full"
     *  (default, conventional single-interval simulation) or
     *  "periodic". Periodic mode alternates functional warming with
     *  detailed windows of sampleWindow instructions once every
     *  samplePeriod instructions, at a sampleSeed-derived systematic
     *  offset; the warm-up phase is functional too. sampleWarm bounds
     *  functional warming to the N instructions just before each window
     *  (the rest of each gap is fast-forwarded at source level with no
     *  state updates); 0 warms every gap end to end, the classic SMARTS
     *  discipline. Result-affecting, so all five fields are part of the
     *  canonical spec. */
    std::string sampleMode = "full";
    uint64_t sampleWindow = 0;
    uint64_t samplePeriod = 0;
    uint64_t sampleSeed = 0;
    uint64_t sampleWarm = 0;

    /** Snapshot all registered counters every N measured instructions
     *  (0 = no interval time-series). Implies collectCounters. */
    uint64_t sampleInterval = 0;
    /** Dump the full counter registry (including prefetcher-internal
     *  counters) into RunResult::counters at end of run. */
    bool collectCounters = false;

    /** Miss attribution (--why, DESIGN.md §3.11): classify every L1I
     *  demand miss of the measured window into the blame taxonomy.
     *  Unlike the tracer this is a value field, not a caller-owned
     *  pointer — the observer is built inside runOne — so it works for
     *  batches and is dumped into RunResult::why. Pure observer:
     *  sim results and artifact bytes are unchanged (the why.* counters
     *  and the manifest "why" section only appear when enabled), and it
     *  stays outside canonicalRunSpec like the tracer/profiler. */
    bool why = false;
    /** Hot-miss PC table depth of the why dump (--why-top). */
    uint64_t whyTop = 10;

    /** Optional event tracer attached to the Cpu for the run (see
     *  src/obs/trace.hh). Caller-owned, pure observer: results are
     *  identical with and without it. Not copied into batch artifacts —
     *  tracing is a single-run facility. */
    obs::EventTracer *tracer = nullptr;

    /** Optional host-side phase profiler (src/obs/phase.hh): records
     *  where the run's wall time goes (prefetcher construction,
     *  warm-up, measure, fill-drain). Caller-owned, pure observer,
     *  touched only at phase boundaries — never per cycle — and like
     *  the tracer it is not part of the run's canonical identity
     *  (harness::canonicalRunSpec ignores it, so cache keys and
     *  artifact bytes are unchanged by profiling). */
    obs::PhaseProfiler *profiler = nullptr;

    /** Global scaling knob honoured by all benches: the environment
     *  variable EIP_SIM_SCALE (e.g. "0.2" or "3") multiplies instruction
     *  budgets. Applied by defaultSpec(). Malformed or non-positive
     *  values are fatal errors (a silently ignored knob would corrupt a
     *  whole evaluation). */
    static RunSpec defaultSpec();
};

/** Result of one run. */
struct RunResult
{
    std::string workload;
    std::string category;
    std::string configName;  ///< pretty prefetcher/config name
    double storageKB = 0.0;  ///< prefetcher storage (0 for cache configs)
    sim::SimStats stats;

    /** End-of-run registry snapshot (when RunSpec::collectCounters). */
    obs::CounterDump counters;
    /** Interval time-series (when RunSpec::sampleInterval > 0). */
    obs::SampleSeries samples;
    /** Miss-attribution ledger (when RunSpec::why). */
    obs::WhyDump why;

    /** Sampling confidence summary (periodic RunSpec::sampleMode only):
     *  per-metric estimate / standard error / 95% CI over the detailed
     *  windows, exported as the artifact's "sampling" section. */
    bool hasSampling = false;
    sample::Summary sampling;

    // Entangling-internal analysis (only for entangling configs).
    bool hasEntanglingAnalysis = false;
    double avgDestsPerHit = 0.0;
    double avgCurrentBbSize = 0.0;
    double avgDstBbSize = 0.0;
    /** Fraction of inserted destinations per encoding width bucket
     *  (index = bits needed; see CompressionScheme). */
    std::vector<double> destBitsFractions;
};

/** The full workload catalogue every surface serves from: the CVP-like
 *  suite (3 seeds per category), the CloudSuite-like applications, and
 *  the tiny smoke workload. The eipsim CLI and the eipd job server
 *  resolve workload names against this one list. */
std::vector<trace::Workload> defaultCatalogue();

/** Catalogue workload by name. A bare category name ("crypto") falls
 *  back to its first seed ("crypto-1") so category-level callers don't
 *  need to know the seed-suffix convention. A recognized trace path
 *  (trace::isTracePath — .trc / .champsimtrace[.xz|.gz]) resolves to a
 *  trace-backed workload instead, digesting the file for identity.
 *  Returns false when the name resolves to nothing (including an
 *  unreadable trace file). */
bool findWorkload(const std::string &name, trace::Workload &out);

/**
 * The default catalogue extended with trace-backed workloads, one per
 * entry of @p trace_paths, so batch suites can mix corpus traces with
 * the synthetic categories. Each trace is admitted through the same
 * selection filter that gates synthetic seeds (trace::traceQualifies,
 * the >= 1 L1I MPKI footprint proxy); unreadable paths and traces below
 * the threshold are skipped — never fatal, so one bad corpus file
 * cannot sink a suite run — with a human-readable line per skip (and
 * per admission) appended to @p notes when non-null. Duplicate paths
 * are admitted once.
 */
std::vector<trace::Workload>
mixedCatalogue(const std::vector<std::string> &trace_paths,
               std::vector<std::string> *notes = nullptr);

/** Run @p workload under @p spec. Synthetic programs come from the
 *  shared exec::ProgramCache, so repeated runs of one workload (across
 *  configs, or concurrently) build it once; trace-backed workloads
 *  stream from their file and build no program at all. */
RunResult runOne(const trace::Workload &workload, const RunSpec &spec);

/** As above with an already-built @p program (must match
 *  workload.program; synthetic workloads only). The program is only
 *  read, never mutated, so one instance may serve many concurrent
 *  runs. */
RunResult runOne(const trace::Workload &workload, const RunSpec &spec,
                 const trace::Program &program);

/** One cell of an experiment matrix: a workload under a spec. */
struct RunJob
{
    trace::Workload workload;
    RunSpec spec;
};

/**
 * Run an arbitrary workload×config batch on @p jobs worker threads
 * (0 = EIP_JOBS / hardware default, 1 = serial). Results come back in
 * submission order, bit-identical to the serial loop for any job count.
 */
std::vector<RunResult> runBatch(const std::vector<RunJob> &batch,
                                unsigned jobs = 0);

/** Run a whole suite under one config; one result per workload. Fans out
 *  through runBatch with the default job count. */
std::vector<RunResult> runSuite(const std::vector<trace::Workload> &suite,
                                const RunSpec &spec);

/** As above with an explicit worker count (1 = legacy serial path). */
std::vector<RunResult> runSuite(const std::vector<trace::Workload> &suite,
                                const RunSpec &spec, unsigned jobs);

/** Geometric mean of IPC normalized against a baseline result set (the
 *  baseline must cover the same workloads in the same order). */
double geomeanSpeedup(const std::vector<RunResult> &results,
                      const std::vector<RunResult> &baseline);

} // namespace eip::harness

#endif // EIP_HARNESS_RUNNER_HH
