/**
 * @file
 * Experiment runner: builds a workload, attaches a prefetcher (or a cache
 * configuration such as Ideal / larger L1I), simulates, and returns the
 * statistics. All benches and the examples go through this entry point.
 */

#ifndef EIP_HARNESS_RUNNER_HH
#define EIP_HARNESS_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "trace/workloads.hh"

namespace eip::core {
struct EntanglingStats;
}

namespace eip::harness {

/** One simulation request. */
struct RunSpec
{
    /** Prefetcher id (see prefetch::makePrefetcher) or one of the cache
     *  configurations: "ideal", "l1i-64kb", "l1i-96kb". */
    std::string configId = "none";
    uint64_t instructions = 600000;
    uint64_t warmup = 300000;
    bool physicalL1i = false;
    /** Optional L1D prefetcher id ("none" or "stride"). */
    std::string dataPrefetcher = "none";

    /** Global scaling knob honoured by all benches: the environment
     *  variable EIP_SIM_SCALE (e.g. "0.2" or "3") multiplies instruction
     *  budgets. Applied by defaultSpec(). */
    static RunSpec defaultSpec();
};

/** Result of one run. */
struct RunResult
{
    std::string workload;
    std::string category;
    std::string configName;  ///< pretty prefetcher/config name
    double storageKB = 0.0;  ///< prefetcher storage (0 for cache configs)
    sim::SimStats stats;

    // Entangling-internal analysis (only for entangling configs).
    bool hasEntanglingAnalysis = false;
    double avgDestsPerHit = 0.0;
    double avgCurrentBbSize = 0.0;
    double avgDstBbSize = 0.0;
    /** Fraction of inserted destinations per encoding width bucket
     *  (index = bits needed; see CompressionScheme). */
    std::vector<double> destBitsFractions;
};

/** Run @p workload under @p spec. */
RunResult runOne(const trace::Workload &workload, const RunSpec &spec);

/** Run a whole suite under one config; one result per workload. */
std::vector<RunResult> runSuite(const std::vector<trace::Workload> &suite,
                                const RunSpec &spec);

/** Geometric mean of IPC normalized against a baseline result set (the
 *  baseline must cover the same workloads in the same order). */
double geomeanSpeedup(const std::vector<RunResult> &results,
                      const std::vector<RunResult> &baseline);

} // namespace eip::harness

#endif // EIP_HARNESS_RUNNER_HH
