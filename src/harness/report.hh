/**
 * @file
 * Report helpers shared by the figure/table benches: sorted per-workload
 * series (the paper's s-curve figures) and percentile summaries.
 */

#ifndef EIP_HARNESS_REPORT_HH
#define EIP_HARNESS_REPORT_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "util/table_printer.hh"

namespace eip::harness {

/** Extracts the plotted metric from one run. */
using Metric = std::function<double(const RunResult &)>;

/** Structured copy of one printed report table: the title, one row per
 *  config, one column per percentile point or category. Kept in an
 *  in-process log (reportLog) so tests and artifact writers can read
 *  exactly what a bench printed without parsing stdout. */
struct ReportRecord
{
    std::string title;
    std::vector<std::string> configs;
    std::vector<std::string> columns;
    std::vector<std::vector<double>> cells; ///< [config][column]
};

/** Every table printed since start-up (or the last clearReportLog). */
const std::vector<ReportRecord> &reportLog();
void clearReportLog();

/**
 * Print one series per config, each individually sorted ascending — the
 * layout of the paper's Figures 7-10. Rows are percentiles of the sorted
 * series (min, p10, ..., max) so the curve shape is visible in text form.
 */
void printSortedSeries(const std::string &title,
                       const std::vector<std::string> &config_names,
                       const std::vector<std::vector<double>> &series);

/** Convenience: collect @p metric over a result set. */
std::vector<double> collect(const std::vector<RunResult> &results,
                            const Metric &metric);

/** Per-category arithmetic mean of @p metric (Fig. 12-15 layout). */
void printPerCategory(const std::string &title,
                      const std::vector<std::string> &config_names,
                      const std::vector<std::vector<RunResult>> &results,
                      const Metric &metric);

/**
 * Print a pre-computed value matrix — one row per config, one column per
 * @p columns entry — and push it to the report log like the helpers
 * above. For benches whose cells are not per-run metrics (e.g. the
 * host-speed tables of bench/micro_simspeed). @p cells is [config][column]
 * and must be rectangular.
 */
void printMatrix(const std::string &title,
                 const std::vector<std::string> &config_names,
                 const std::vector<std::string> &columns,
                 const std::vector<std::vector<double>> &cells);

} // namespace eip::harness

#endif // EIP_HARNESS_REPORT_HH
