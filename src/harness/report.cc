#include "harness/report.hh"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/stats_math.hh"

namespace eip::harness {

std::vector<double>
collect(const std::vector<RunResult> &results, const Metric &metric)
{
    std::vector<double> out;
    out.reserve(results.size());
    for (const auto &r : results)
        out.push_back(metric(r));
    return out;
}

void
printSortedSeries(const std::string &title,
                  const std::vector<std::string> &config_names,
                  const std::vector<std::vector<double>> &series)
{
    std::printf("%s\n", title.c_str());
    static const std::pair<const char *, double> kPoints[] = {
        {"min", 0.0},  {"p10", 0.10}, {"p25", 0.25}, {"p50", 0.50},
        {"p75", 0.75}, {"p90", 0.90}, {"max", 1.0},
    };

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    for (const auto &[label, q] : kPoints) {
        (void)q;
        table.cell(std::string(label));
    }
    for (size_t c = 0; c < config_names.size(); ++c) {
        table.newRow();
        table.cell(config_names[c]);
        for (const auto &[label, q] : kPoints) {
            (void)label;
            table.cell(percentile(series[c], q), 3);
        }
    }
    table.print();
}

void
printPerCategory(const std::string &title,
                 const std::vector<std::string> &config_names,
                 const std::vector<std::vector<RunResult>> &results,
                 const Metric &metric)
{
    std::printf("%s\n", title.c_str());

    // Stable category order across all runs.
    std::vector<std::string> categories;
    for (const auto &r : results.front()) {
        if (std::find(categories.begin(), categories.end(), r.category) ==
            categories.end()) {
            categories.push_back(r.category);
        }
    }

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    for (const auto &cat : categories)
        table.cell(cat);
    for (size_t c = 0; c < config_names.size(); ++c) {
        table.newRow();
        table.cell(config_names[c]);
        for (const auto &cat : categories) {
            std::vector<double> values;
            for (const auto &r : results[c]) {
                if (r.category == cat)
                    values.push_back(metric(r));
            }
            table.cell(mean(values), 3);
        }
    }
    table.print();
}

} // namespace eip::harness
