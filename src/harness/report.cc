#include "harness/report.hh"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/stats_math.hh"

namespace eip::harness {

namespace {
std::vector<ReportRecord> report_log;
} // namespace

const std::vector<ReportRecord> &
reportLog()
{
    return report_log;
}

void
clearReportLog()
{
    report_log.clear();
}

std::vector<double>
collect(const std::vector<RunResult> &results, const Metric &metric)
{
    std::vector<double> out;
    out.reserve(results.size());
    for (const auto &r : results)
        out.push_back(metric(r));
    return out;
}

void
printSortedSeries(const std::string &title,
                  const std::vector<std::string> &config_names,
                  const std::vector<std::vector<double>> &series)
{
    std::printf("%s\n", title.c_str());
    static const std::pair<const char *, double> kPoints[] = {
        {"min", 0.0},  {"p10", 0.10}, {"p25", 0.25}, {"p50", 0.50},
        {"p75", 0.75}, {"p90", 0.90}, {"max", 1.0},
    };

    ReportRecord record;
    record.title = title;
    record.configs = config_names;

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    for (const auto &[label, q] : kPoints) {
        (void)q;
        table.cell(std::string(label));
        record.columns.push_back(label);
    }
    for (size_t c = 0; c < config_names.size(); ++c) {
        table.newRow();
        table.cell(config_names[c]);
        record.cells.emplace_back();
        for (const auto &[label, q] : kPoints) {
            (void)label;
            double value = percentile(series[c], q);
            table.cell(value, 3);
            record.cells.back().push_back(value);
        }
    }
    table.print();
    report_log.push_back(std::move(record));
}

void
printPerCategory(const std::string &title,
                 const std::vector<std::string> &config_names,
                 const std::vector<std::vector<RunResult>> &results,
                 const Metric &metric)
{
    std::printf("%s\n", title.c_str());

    // Stable category order across all runs.
    std::vector<std::string> categories;
    for (const auto &r : results.front()) {
        if (std::find(categories.begin(), categories.end(), r.category) ==
            categories.end()) {
            categories.push_back(r.category);
        }
    }

    ReportRecord record;
    record.title = title;
    record.configs = config_names;
    record.columns = categories;

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    for (const auto &cat : categories)
        table.cell(cat);
    for (size_t c = 0; c < config_names.size(); ++c) {
        table.newRow();
        table.cell(config_names[c]);
        record.cells.emplace_back();
        for (const auto &cat : categories) {
            std::vector<double> values;
            for (const auto &r : results[c]) {
                if (r.category == cat)
                    values.push_back(metric(r));
            }
            double value = mean(values);
            table.cell(value, 3);
            record.cells.back().push_back(value);
        }
    }
    table.print();
    report_log.push_back(std::move(record));
}

void
printMatrix(const std::string &title,
            const std::vector<std::string> &config_names,
            const std::vector<std::string> &columns,
            const std::vector<std::vector<double>> &cells)
{
    std::printf("%s\n", title.c_str());

    ReportRecord record;
    record.title = title;
    record.configs = config_names;
    record.columns = columns;
    record.cells = cells;

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    for (const auto &col : columns)
        table.cell(col);
    for (size_t c = 0; c < config_names.size(); ++c) {
        table.newRow();
        table.cell(config_names[c]);
        for (double value : cells[c])
            table.cell(value, 3);
    }
    table.print();
    report_log.push_back(std::move(record));
}

} // namespace eip::harness
