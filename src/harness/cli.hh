/**
 * @file
 * Command-line interface of the `eipsim` driver tool: a tested, reusable
 * argument parser plus the run/report entry point. Keeping the parsing in
 * the harness library lets the unit tests cover it without spawning
 * processes.
 */

#ifndef EIP_HARNESS_CLI_HH
#define EIP_HARNESS_CLI_HH

#include <optional>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace eip::harness {

/** Parsed command line of the eipsim tool. */
struct CliOptions
{
    enum class Action
    {
        Run,             ///< simulate and report
        ListWorkloads,
        ListPrefetchers,
        ShowConfig,      ///< print Table III
        Help,
    };

    Action action = Action::Run;
    /** Catalogue name, "all", or an on-disk trace path
     *  (.trc / .champsimtrace[.xz|.gz]). */
    std::string workload = "srv-1";
    /** When set, replay this trace file (same formats as a trace-path
     *  --workload; kept as a separate flag for compatibility). */
    std::string tracePath;
    /** Corpus traces appended to the batch catalogue (--suite-trace,
     *  repeatable; needs --workload all). Each is admitted through the
     *  per-trace MPKI qualification (trace::traceQualifies); traces that
     *  fail it are skipped with a notice, not fatal. */
    std::vector<std::string> suiteTraces;
    std::string prefetcher = "entangling-4k";
    std::string dataPrefetcher = "none";
    uint64_t instructions = 600000;
    uint64_t warmup = 300000;
    /** Worker threads for batch runs (--workload all). 0 = auto: the
     *  EIP_JOBS environment variable, else hardware_concurrency();
     *  1 = legacy serial path. */
    unsigned jobs = 0;
    bool physical = false;
    bool wrongPath = false;
    /** Disable event-driven cycle skipping (SimConfig::eventSkip) for
     *  A/B host-speed timing. Simulation results are identical. */
    bool noSkip = false;
    /** Enable the cycle-level invariant auditor (src/check) for every
     *  Cpu this invocation constructs; equivalent to EIP_CHECK=1. A
     *  violated invariant is fatal with a dumped context. */
    bool check = false;
    bool json = false;
    /** When non-empty, write a machine-readable artifact here: one
     *  eip-run/v1 document for single runs, an eip-suite/v1 roll-up
     *  (plus per-job .rNNN.json files) for --workload all. */
    std::string statsJsonPath;
    /** Interval (measured instructions) of the counter time-series
     *  embedded in the artifact; 0 disables sampling. Only consulted
     *  when --stats-json is given. */
    uint64_t sampleInterval = 100000;
    /** Sampled simulation (DESIGN.md §3.13): "full" runs every measured
     *  instruction in detail; "periodic" alternates functional warming
     *  with detailed windows and reports per-metric confidence
     *  intervals. */
    std::string sampleMode = "full";
    /** Detailed instructions per sampling window (periodic mode). */
    uint64_t sampleWindow = 0;
    /** Instructions per sampling period: one window plus the functional
     *  warming gap (periodic mode; must be >= the window). */
    uint64_t samplePeriod = 0;
    /** Seed of the systematic sampling offset (periodic mode). */
    uint64_t sampleSeed = 0;
    /** Functional-warming bound per gap: warm only the last N
     *  instructions before each window and fast-forward the rest at
     *  source level; 0 warms whole gaps (periodic mode). */
    uint64_t sampleWarm = 0;
    /** When non-empty, record an event trace of the run and write it
     *  here as Chrome/Perfetto trace_event JSON (schema eip-trace/v1).
     *  Single-run facility: rejected with --workload all. */
    std::string traceOutPath;
    /** Comma-separated event families kept in the trace ring
     *  ("pf,stall,cache"). Roll-up counts always cover every family. */
    std::string traceEvents = "pf,stall,cache";
    /** Trace ring capacity in events; beyond it the oldest events are
     *  overwritten (counts stay exact). */
    uint64_t traceLimit = 1u << 20;
    /** Miss attribution (--why, DESIGN.md §3.11): classify every L1I
     *  demand miss of the measured window into the blame taxonomy and
     *  embed the eip-why/v1 section in the artifact. Works for single
     *  runs and batches. */
    bool why = false;
    /** Hot-miss PC table depth of the why section (--why-top; implies
     *  --why). */
    uint64_t whyTop = 10;
    /** Structured-log threshold (--log-level). Empty keeps the EIP_LOG
     *  environment default (warn). */
    std::string logLevel;
    std::string error; ///< non-empty when parsing failed
};

/** Parse argv (excluding argv[0]). Never exits; errors land in .error. */
CliOptions parseCli(const std::vector<std::string> &args);

/** The tool's usage text. */
std::string cliUsage();

/** Serialize one run result as a JSON object (single line). */
std::string resultToJson(const RunResult &result);

/**
 * Execute the parsed options end-to-end and print the report to stdout.
 * @return process exit code.
 */
int runCli(const CliOptions &options);

} // namespace eip::harness

#endif // EIP_HARNESS_CLI_HH
