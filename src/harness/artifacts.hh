/**
 * @file
 * Machine-readable run artifacts: JSON documents describing one run
 * (manifest + final counters + interval time-series, schema eip-run/v1)
 * or a whole suite (one roll-up with per-run documents in submission
 * order, schema eip-suite/v1).
 *
 * Determinism contract: a suite roll-up is byte-identical for any
 * worker count. Per-job artifacts are written concurrently but named
 * by submission index (`<path>.r<NNN>.json`), and the roll-up is
 * merged in index order on the coordinating thread; environment
 * timing (wall clock, jobs) is confined to single-run artifacts.
 */

#ifndef EIP_HARNESS_ARTIFACTS_HH
#define EIP_HARNESS_ARTIFACTS_HH

#include <string>
#include <vector>

#include "harness/runner.hh"
#include "obs/manifest.hh"

namespace eip::obs {
class PhaseProfiler;
}

namespace eip::harness {

/** Describe the (workload, spec) pair behind @p result. Timing fields
 *  are left at their defaults; fill them in when known. */
obs::RunManifest makeManifest(const trace::Workload &workload,
                              const RunSpec &spec, const RunResult &result);

/**
 * One run as a complete JSON document (schema eip-run/v1): manifest,
 * final counters/gauges/histograms, and the interval time-series when
 * one was collected. @p include_timing gates the environment-dependent
 * manifest fields (single-run artifacts: yes; roll-up members: no).
 */
std::string runArtifactJson(const obs::RunManifest &manifest,
                            const RunResult &result, bool include_timing);

/**
 * A whole batch as one roll-up document (schema eip-suite/v1): shared
 * provenance plus every run in submission order, each without timing
 * fields — the bytes are independent of the worker count.
 */
std::string suiteArtifactJson(const std::vector<RunJob> &batch,
                              const std::vector<RunResult> &results);

/** One job executed to its timing-free artifact. */
struct ArtifactRun
{
    RunResult result;
    std::string json; ///< complete eip-run/v1 document (no timing fields)
};

/**
 * Execute @p job with counter collection forced on and render its
 * eip-run/v1 document without timing fields — the batch workers and the
 * eipd forked workers share this one entry point, so a daemon-served
 * artifact is byte-identical to the same job's `.rNNN.json` file.
 *
 * @p use_program_cache routes the program build through the process-wide
 * exec::ProgramCache. A forked worker must pass false: fork() from a
 * multi-threaded daemon may snapshot another thread mid-critical-section,
 * so the child cannot touch any lock shared with parent threads — it
 * builds the program directly instead (bit-identical either way).
 *
 * @p profiler (optional) attributes the job's host wall time to phases:
 * program_build, prefetcher, warmup, measure, fill_drain, serialize.
 * Pure observer — the artifact bytes are identical with and without it.
 */
ArtifactRun runJobArtifact(const RunJob &job, bool use_program_cache = true,
                           obs::PhaseProfiler *profiler = nullptr);

/** Per-job artifact path: `<path>.r<NNN>.json` (NNN = submission
 *  index, zero-padded to three digits). */
std::string perJobArtifactPath(const std::string &path, size_t index);

/** Write @p text to @p path (fatal on I/O failure: losing an artifact
 *  silently would invalidate a whole evaluation). */
void writeTextFile(const std::string &path, const std::string &text);

/**
 * Run @p batch with counter collection forced on, writing one
 * eip-run/v1 document per job (perJobArtifactPath, written by the
 * worker that ran the job) and the eip-suite/v1 roll-up at @p path
 * once the batch drains. Results return in submission order as usual.
 */
std::vector<RunResult> runBatchWithArtifacts(const std::vector<RunJob> &batch,
                                             unsigned jobs,
                                             const std::string &path);

} // namespace eip::harness

#endif // EIP_HARNESS_ARTIFACTS_HH
