/**
 * @file
 * Trace executor: walks a synthetic Program's CFG and produces the dynamic
 * instruction stream consumed by the simulated core. The stream is infinite
 * (when main returns, execution restarts at its entry — a driver loop), so
 * the caller decides the instruction budget.
 */

#ifndef EIP_TRACE_EXECUTOR_HH
#define EIP_TRACE_EXECUTOR_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/instruction.hh"
#include "trace/program.hh"
#include "util/rng.hh"

namespace eip::trace {

/** Runtime knobs of the executor. */
struct ExecutorConfig
{
    uint64_t seed = 7;
    uint32_t maxCallDepth = 24;   ///< calls beyond this depth are elided
    uint64_t stackBase = 0x7fff'ffff'0000ULL;
    uint64_t frameBytes = 256;
    uint64_t globalBase = 0x10'0000'0000ULL;
    uint64_t dataFootprintBytes = 640ULL << 10;
};

/**
 * Deterministic CFG walker. Identical (program, config) pairs yield
 * bit-identical instruction streams.
 */
class Executor : public InstructionSource
{
  public:
    Executor(const Program &program, const ExecutorConfig &cfg);

    /** Produce the next dynamic instruction. Never fails. */
    const Instruction &next() override;

    /** Dynamic instructions emitted so far. */
    uint64_t emitted() const { return emittedCount; }

    /** Current call depth (for tests). */
    size_t callDepth() const { return stack.size(); }

  private:
    struct Frame
    {
        uint32_t func;
        uint32_t resumeBlock; ///< caller block to resume at after return
    };

    /** Position inside the current block's body; equal to body size when
     *  the terminator is next. */
    void advanceToBlock(uint32_t func, uint32_t block);
    void emitBody(const StaticInst &inst, uint64_t pc);
    void emitTerminator();
    uint64_t dataAddress(const StaticInst &inst, uint64_t pc);

    const Program &prog;
    ExecutorConfig config;
    Rng rng;

    uint32_t curFunc = 0;
    uint32_t curBlock = 0;
    size_t bodyPos = 0;
    uint64_t bodyPc = 0;

    std::vector<Frame> stack;
    /** Remaining trips for active loop back-edges, keyed by
     *  (func << 32) | block. */
    std::unordered_map<uint64_t, uint32_t> loopTrips;
    /** Cyclic position of each wide dispatch site (same key scheme). */
    std::unordered_map<uint64_t, uint32_t> dispatchPos;

    Instruction out;
    uint64_t emittedCount = 0;
    /** Per-site cursors of streaming loads/stores, keyed by pc. */
    std::unordered_map<uint64_t, uint64_t> streamCursor;
};

} // namespace eip::trace

#endif // EIP_TRACE_EXECUTOR_HH
