/**
 * @file
 * ChampSim trace ingestion: decode the public `.champsimtrace{,.xz,.gz}`
 * format (DPC-3 / IPC-1 corpus) into trace::Instruction streams.
 *
 * A ChampSim trace is a headerless sequence of 64-byte little-endian
 * `input_instr` records:
 *
 *     uint64 ip;                        // offset  0
 *     uint8  is_branch;                 // offset  8
 *     uint8  branch_taken;              // offset  9
 *     uint8  destination_registers[2];  // offset 10
 *     uint8  source_registers[4];       // offset 12
 *     uint64 destination_memory[2];     // offset 16
 *     uint64 source_memory[4];          // offset 32
 *
 * The format carries no branch-type field, no target, and no instruction
 * size. Branch type is recovered from the register pattern exactly as
 * ChampSim's own front-end does (reads/writes of the stack pointer, flags,
 * and instruction pointer); the taken target and fall-through size are
 * recovered from the NEXT record's ip via one record of lookahead. See
 * DESIGN.md §3.12 for the full mapping decision record.
 *
 * Compressed traces are streamed through `xz -dc` / `gzip -dc` subprocess
 * pipes with a bounded read-ahead buffer, so multi-GB traces cost constant
 * memory and no temporary files.
 */

#ifndef EIP_TRACE_CHAMPSIM_HH
#define EIP_TRACE_CHAMPSIM_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/instruction.hh"

namespace eip::trace {

/** Size of one on-disk ChampSim record. */
constexpr size_t kChampSimRecordBytes = 64;

/** ChampSim's x86 special register numbers (trace encoding ABI). */
constexpr uint8_t kChampSimRegStackPointer = 6;
constexpr uint8_t kChampSimRegFlags = 25;
constexpr uint8_t kChampSimRegInstructionPointer = 26;

/** One decoded ChampSim `input_instr` record. */
struct ChampSimRecord
{
    uint64_t ip = 0;
    uint8_t isBranch = 0;
    uint8_t branchTaken = 0;
    uint8_t destRegs[2] = {0, 0};
    uint8_t srcRegs[4] = {0, 0, 0, 0};
    uint64_t destMem[2] = {0, 0};
    uint64_t srcMem[4] = {0, 0, 0, 0};
};

/** Decode one raw 64-byte record (explicit little-endian, alignment-free). */
ChampSimRecord decodeChampSimRecord(
    const unsigned char raw[kChampSimRecordBytes]);

/**
 * Classify a branch record from its register pattern, following ChampSim's
 * front-end rules. Records ChampSim would class BRANCH_OTHER (rare fused
 * or misidentified forms) map to IndirectJump: unconditional with an
 * unpredictable target, which is the behaviour-preserving choice for an
 * instruction prefetcher. Non-branch records map to NotBranch.
 */
BranchType champSimBranchType(const ChampSimRecord &rec);

/**
 * Convert @p rec into our Instruction, using @p next_ip (the ip of the
 * following record) to recover what the format omits: the taken target
 * (next_ip when the branch is taken) and the instruction size (the
 * fall-through delta when plausible — in (0, 15], x86's size range —
 * else 4).
 */
Instruction champSimInstruction(const ChampSimRecord &rec, uint64_t next_ip);

/**
 * Streaming, forward-only ChampSim record reader with bounded read-ahead.
 * Plain files are validated at open (size must be a positive multiple of
 * 64); compressed files are streamed through `xz -dc` / `gzip -dc` and
 * validated at end-of-stream (decompressor exit status, whole trailing
 * record). All failures are fatal with the record position — a trace is
 * immutable input, so any short read is corruption, never a transient.
 */
class ChampSimReader
{
  public:
    /** Open @p path; fatal on a missing, empty, or misaligned file. */
    explicit ChampSimReader(const std::string &path);
    ~ChampSimReader();

    ChampSimReader(const ChampSimReader &) = delete;
    ChampSimReader &operator=(const ChampSimReader &) = delete;

    /**
     * Read the next record into @p out.
     * @return false at a clean end-of-trace (never mid-record).
     */
    bool next(ChampSimRecord &out);

    /** Records returned so far (== position of the next record). */
    uint64_t position() const { return position_; }

    /** True for .xz/.gz paths (decompressor pipe will be used). */
    static bool isCompressedPath(const std::string &path);

  private:
    void fill();
    void closeStream(bool check_exit);

    std::string path_;
    std::FILE *stream = nullptr;
    bool piped = false;
    std::vector<unsigned char> buffer; ///< bounded read-ahead window
    size_t bufPos = 0;
    size_t bufLen = 0;
    bool eof = false;
    uint64_t position_ = 0;
};

/**
 * Adapter: replays a ChampSim trace as an endless InstructionSource
 * (restarting from the beginning when exhausted, like TraceReplayer).
 * Maintains the one-record lookahead champSimInstruction needs; across
 * the loop seam the "next ip" is the first record of the next pass.
 *
 * Small traces (at most kMaxCachedInstructions records) are memoized
 * during the first pass: later passes replay the decoded instructions
 * from memory instead of re-spawning the decompressor pipe, and skip()
 * becomes an O(1) reposition. The cached stream is bit-identical to the
 * streamed one (each instruction is a pure function of its record and
 * the next record's ip, both invariant across passes). Larger traces
 * keep the constant-memory streaming behaviour.
 */
class ChampSimReplayer : public InstructionSource
{
  public:
    /** Traces longer than this stream every pass (bounds replay memory
     *  to ~48 MB; the multi-GB corpus traces never cache). */
    static constexpr uint64_t kMaxCachedInstructions = 1u << 20;

    /** Open @p path; fatal if the trace is unreadable or empty. */
    explicit ChampSimReplayer(const std::string &path);

    const Instruction &next() override;
    void skip(uint64_t n) override;

    /** Records in one pass of the trace, known once a pass completes. */
    uint64_t traceLength() const { return length; }

    /** True once replay serves from the in-memory first-pass memo. */
    bool cached() const { return cached_; }

  private:
    std::string path;
    std::unique_ptr<ChampSimReader> reader;
    ChampSimRecord pending;  ///< lookahead record, not yet returned
    Instruction current;
    uint64_t length = 0;
    uint64_t served = 0;     ///< records consumed from the current pass
    std::vector<Instruction> recorded; ///< first-pass memo (see above)
    bool recording = true;   ///< still within the memo size bound
    bool cached_ = false;    ///< recorded covers a whole pass
    size_t replayPos = 0;    ///< next instruction to serve when cached
};

} // namespace eip::trace

#endif // EIP_TRACE_CHAMPSIM_HH
