#include "trace/workloads.hh"

#include <cstring>
#include <unordered_set>

#include "trace/executor.hh"
#include "util/panic.hh"

namespace eip::trace {

ProgramConfig
categoryConfig(const std::string &category)
{
    ProgramConfig cfg;
    if (category == "crypto") {
        // Medium footprint, tight loops, few calls: moderate L1I pressure.
        cfg.numFunctions = 400;
        cfg.minBlocksPerFunction = 6;
        cfg.maxBlocksPerFunction = 14;
        cfg.minBlockInsts = 4;
        cfg.maxBlockInsts = 16;
        cfg.condBlockFraction = 0.35;
        cfg.callBlockFraction = 0.12;
        cfg.jumpBlockFraction = 0.06;
        cfg.loopFraction = 0.45;
        cfg.minLoopTrips = 4;
        cfg.maxLoopTrips = 16;
        cfg.fpFraction = 0.05;
        cfg.indirectFraction = 0.05;
        cfg.dispatcherFanout = 96;
        cfg.dispatcherLoopTrips = 12;
        cfg.maxCalleeCost = 5000.0;
        cfg.moduleCount = 2;
    } else if (category == "int") {
        // Branchy integer code, medium footprint and call depth.
        cfg.numFunctions = 1100;
        cfg.minBlocksPerFunction = 4;
        cfg.maxBlocksPerFunction = 12;
        cfg.minBlockInsts = 2;
        cfg.maxBlockInsts = 12;
        cfg.condBlockFraction = 0.40;
        cfg.callBlockFraction = 0.22;
        cfg.jumpBlockFraction = 0.08;
        cfg.loopFraction = 0.20;
        cfg.minLoopTrips = 2;
        cfg.maxLoopTrips = 16;
        cfg.indirectFraction = 0.10;
        cfg.dispatcherFanout = 32;
        cfg.dispatcherEvery = 80;
        cfg.dispatcherLoopTrips = 8;
        cfg.maxCalleeCost = 1500.0;
        cfg.moduleCount = 4;
    } else if (category == "fp") {
        // Large basic blocks, long loops, FP mix.
        cfg.numFunctions = 700;
        cfg.minBlocksPerFunction = 4;
        cfg.maxBlocksPerFunction = 10;
        cfg.minBlockInsts = 8;
        cfg.maxBlockInsts = 24;
        cfg.condBlockFraction = 0.30;
        cfg.callBlockFraction = 0.18;
        cfg.jumpBlockFraction = 0.05;
        cfg.loopFraction = 0.42;
        cfg.minLoopTrips = 4;
        cfg.maxLoopTrips = 24;
        cfg.fpFraction = 0.40;
        cfg.indirectFraction = 0.06;
        cfg.dispatcherFanout = 72;
        cfg.dispatcherLoopTrips = 12;
        cfg.maxCalleeCost = 8000.0;
        cfg.moduleCount = 2;
    } else if (category == "srv") {
        // Server-class: multi-MB footprint, deep call chains, low reuse.
        cfg.numFunctions = 4100;
        cfg.minBlocksPerFunction = 4;
        cfg.maxBlocksPerFunction = 12;
        cfg.minBlockInsts = 2;
        cfg.maxBlockInsts = 14;
        cfg.condBlockFraction = 0.32;
        cfg.callBlockFraction = 0.30;
        cfg.jumpBlockFraction = 0.08;
        cfg.indirectFraction = 0.20;
        cfg.loopFraction = 0.12;
        cfg.minLoopTrips = 2;
        cfg.maxLoopTrips = 8;
        cfg.callLocality = 0.6;
        cfg.dispatcherFanout = 48;
        cfg.dispatcherEvery = 25;
        cfg.dispatcherLoopTrips = 4;
        cfg.maxCalleeCost = 900.0;
        cfg.moduleCount = 12;
    } else {
        EIP_FATAL("unknown workload category");
    }
    return cfg;
}

namespace {

/**
 * Workload selection, emulating the paper's methodology: of the CVP
 * traces, only those with at least 1 L1I MPKI on the baseline were
 * evaluated (959 of them). The cheap trace-level proxy for that property
 * is the dynamic code footprint of one recurrence window: measurements
 * show >= ~40KB of touched code (vs the 32KB L1I) corresponds to
 * >= 1 MPKI on this simulator.
 */
bool
workloadQualifies(const Workload &candidate)
{
    Program prog = buildProgram(candidate.program);
    Executor exec(prog, candidate.exec);
    std::unordered_set<uint64_t> lines;
    for (int i = 0; i < 400000; ++i)
        lines.insert(exec.next().pc >> 6);
    return lines.size() * 64 >= 40 * 1024;
}

} // namespace

std::vector<Workload>
cvpSuite(int seeds_per_category)
{
    const char *categories[] = {"crypto", "int", "fp", "srv"};
    std::vector<Workload> suite;
    for (const char *cat : categories) {
        int accepted = 0;
        for (int s = 1; accepted < seeds_per_category && s <= 64; ++s) {
            Workload w;
            w.category = cat;
            w.program = categoryConfig(cat);
            w.program.seed = 0x1000 * s + std::strlen(cat);
            w.exec.seed = 0x77 + s - 1;
            if (!workloadQualifies(w))
                continue;
            ++accepted;
            w.name = std::string(cat) + "-" + std::to_string(accepted);
            suite.push_back(std::move(w));
        }
        EIP_ASSERT(accepted == seeds_per_category,
                   "could not find enough qualifying workload seeds");
    }
    return suite;
}

std::vector<Workload>
cloudSuite()
{
    std::vector<Workload> suite;

    // cassandra: Java data store — very large footprint, deep calls.
    {
        Workload w;
        w.name = "cassandra";
        w.category = "cloud";
        w.program = categoryConfig("srv");
        w.program.numFunctions = 4200;
        w.program.callBlockFraction = 0.32;
        w.program.indirectFraction = 0.12; // virtual dispatch
        w.program.seed = 0xCA55;
        w.exec.seed = 0xCA55;
        suite.push_back(std::move(w));
    }
    // cloud9: JS engine — indirect-heavy medium-large footprint.
    {
        Workload w;
        w.name = "cloud9";
        w.category = "cloud";
        w.program = categoryConfig("srv");
        w.program.numFunctions = 2600;
        w.program.indirectFraction = 0.18;
        w.program.jumpBlockFraction = 0.12;
        w.program.seed = 0xC109;
        w.exec.seed = 0xC109;
        suite.push_back(std::move(w));
    }
    // nutch: crawler/indexer — large footprint, mixed loops and calls.
    {
        Workload w;
        w.name = "nutch";
        w.category = "cloud";
        w.program = categoryConfig("srv");
        w.program.numFunctions = 3600;
        w.program.loopFraction = 0.2;
        w.program.maxLoopTrips = 16;
        w.program.seed = 0x0706;
        w.exec.seed = 0x0706;
        suite.push_back(std::move(w));
    }
    // streaming: media server — streaming loops over a large code base.
    {
        Workload w;
        w.name = "streaming";
        w.category = "cloud";
        w.program = categoryConfig("srv");
        w.program.numFunctions = 2000;
        w.program.loopFraction = 0.35;
        w.program.minLoopTrips = 8;
        w.program.maxLoopTrips = 64;
        w.program.minBlockInsts = 4;
        w.program.maxBlockInsts = 18;
        w.program.seed = 0x57AE;
        w.exec.seed = 0x57AE;
        suite.push_back(std::move(w));
    }
    return suite;
}

Workload
tinyWorkload(uint64_t seed)
{
    Workload w;
    w.name = "tiny";
    w.category = "int";
    w.program = categoryConfig("int");
    w.program.numFunctions = 120;
    w.program.seed = seed;
    w.exec.seed = seed * 31 + 7;
    return w;
}

} // namespace eip::trace
