#include "trace/workloads.hh"

#include <cstdio>
#include <cstring>
#include <unordered_set>

#include <memory>

#include "trace/executor.hh"
#include "trace/source.hh"
#include "util/hash.hh"
#include "util/panic.hh"

namespace eip::trace {

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
    case WorkloadKind::Synthetic:
        return "synthetic";
    case WorkloadKind::EipTrace:
        return "eip-trace";
    case WorkloadKind::ChampSim:
        return "champsim";
    }
    EIP_PANIC("unknown WorkloadKind");
}

ProgramConfig
categoryConfig(const std::string &category)
{
    ProgramConfig cfg;
    if (category == "crypto") {
        // Medium footprint, tight loops, few calls: moderate L1I pressure.
        cfg.numFunctions = 400;
        cfg.minBlocksPerFunction = 6;
        cfg.maxBlocksPerFunction = 14;
        cfg.minBlockInsts = 4;
        cfg.maxBlockInsts = 16;
        cfg.condBlockFraction = 0.35;
        cfg.callBlockFraction = 0.12;
        cfg.jumpBlockFraction = 0.06;
        cfg.loopFraction = 0.45;
        cfg.minLoopTrips = 4;
        cfg.maxLoopTrips = 16;
        cfg.fpFraction = 0.05;
        cfg.indirectFraction = 0.05;
        cfg.dispatcherFanout = 96;
        cfg.dispatcherLoopTrips = 12;
        cfg.maxCalleeCost = 5000.0;
        cfg.moduleCount = 2;
    } else if (category == "int") {
        // Branchy integer code, medium footprint and call depth.
        cfg.numFunctions = 1100;
        cfg.minBlocksPerFunction = 4;
        cfg.maxBlocksPerFunction = 12;
        cfg.minBlockInsts = 2;
        cfg.maxBlockInsts = 12;
        cfg.condBlockFraction = 0.40;
        cfg.callBlockFraction = 0.22;
        cfg.jumpBlockFraction = 0.08;
        cfg.loopFraction = 0.20;
        cfg.minLoopTrips = 2;
        cfg.maxLoopTrips = 16;
        cfg.indirectFraction = 0.10;
        cfg.dispatcherFanout = 32;
        cfg.dispatcherEvery = 80;
        cfg.dispatcherLoopTrips = 8;
        cfg.maxCalleeCost = 1500.0;
        cfg.moduleCount = 4;
    } else if (category == "fp") {
        // Large basic blocks, long loops, FP mix.
        cfg.numFunctions = 700;
        cfg.minBlocksPerFunction = 4;
        cfg.maxBlocksPerFunction = 10;
        cfg.minBlockInsts = 8;
        cfg.maxBlockInsts = 24;
        cfg.condBlockFraction = 0.30;
        cfg.callBlockFraction = 0.18;
        cfg.jumpBlockFraction = 0.05;
        cfg.loopFraction = 0.42;
        cfg.minLoopTrips = 4;
        cfg.maxLoopTrips = 24;
        cfg.fpFraction = 0.40;
        cfg.indirectFraction = 0.06;
        cfg.dispatcherFanout = 72;
        cfg.dispatcherLoopTrips = 12;
        cfg.maxCalleeCost = 8000.0;
        cfg.moduleCount = 2;
    } else if (category == "srv") {
        // Server-class: multi-MB footprint, deep call chains, low reuse.
        cfg.numFunctions = 4100;
        cfg.minBlocksPerFunction = 4;
        cfg.maxBlocksPerFunction = 12;
        cfg.minBlockInsts = 2;
        cfg.maxBlockInsts = 14;
        cfg.condBlockFraction = 0.32;
        cfg.callBlockFraction = 0.30;
        cfg.jumpBlockFraction = 0.08;
        cfg.indirectFraction = 0.20;
        cfg.loopFraction = 0.12;
        cfg.minLoopTrips = 2;
        cfg.maxLoopTrips = 8;
        cfg.callLocality = 0.6;
        cfg.dispatcherFanout = 48;
        cfg.dispatcherEvery = 25;
        cfg.dispatcherLoopTrips = 4;
        cfg.maxCalleeCost = 900.0;
        cfg.moduleCount = 12;
    } else {
        EIP_FATAL("unknown workload category");
    }
    return cfg;
}

namespace {

/** One recurrence window of the selection probe, in instructions. */
constexpr uint64_t kQualifyWindow = 400000;

/** Footprint threshold of the selection probe: >= ~40KB of touched code
 *  (vs the 32KB L1I) corresponds to >= 1 L1I MPKI on this simulator. */
constexpr uint64_t kQualifyFootprintBytes = 40 * 1024;

/** Dynamic code footprint (bytes of distinct 64-byte lines) of one
 *  selection window streamed from @p stream. */
uint64_t
probeFootprint(InstructionSource &stream)
{
    std::unordered_set<uint64_t> lines;
    for (uint64_t i = 0; i < kQualifyWindow; ++i)
        lines.insert(stream.next().pc >> 6);
    return lines.size() * 64;
}

/**
 * Workload selection, emulating the paper's methodology: of the CVP
 * traces, only those with at least 1 L1I MPKI on the baseline were
 * evaluated (959 of them). The cheap trace-level proxy for that property
 * is the dynamic code footprint of one recurrence window.
 */
bool
workloadQualifies(const Workload &candidate)
{
    Program prog = buildProgram(candidate.program);
    Executor exec(prog, candidate.exec);
    return probeFootprint(exec) >= kQualifyFootprintBytes;
}

} // namespace

bool
traceQualifies(const Workload &workload, uint64_t *footprint_bytes)
{
    EIP_ASSERT(workload.kind != WorkloadKind::Synthetic,
               "traceQualifies takes a trace-backed workload");
    std::unique_ptr<InstructionSource> stream =
        makeTraceSource(workload, nullptr)->open();
    uint64_t footprint = probeFootprint(*stream);
    if (footprint_bytes != nullptr)
        *footprint_bytes = footprint;
    return footprint >= kQualifyFootprintBytes;
}

std::vector<Workload>
cvpSuite(int seeds_per_category)
{
    const char *categories[] = {"crypto", "int", "fp", "srv"};
    std::vector<Workload> suite;
    for (const char *cat : categories) {
        int accepted = 0;
        for (int s = 1; accepted < seeds_per_category && s <= 64; ++s) {
            Workload w;
            w.category = cat;
            w.program = categoryConfig(cat);
            w.program.seed = 0x1000 * s + std::strlen(cat);
            w.exec.seed = 0x77 + s - 1;
            if (!workloadQualifies(w))
                continue;
            ++accepted;
            w.name = std::string(cat) + "-" + std::to_string(accepted);
            suite.push_back(std::move(w));
        }
        EIP_ASSERT(accepted == seeds_per_category,
                   "could not find enough qualifying workload seeds");
    }
    return suite;
}

std::vector<Workload>
cloudSuite()
{
    std::vector<Workload> suite;

    // cassandra: Java data store — very large footprint, deep calls.
    {
        Workload w;
        w.name = "cassandra";
        w.category = "cloud";
        w.program = categoryConfig("srv");
        w.program.numFunctions = 4200;
        w.program.callBlockFraction = 0.32;
        w.program.indirectFraction = 0.12; // virtual dispatch
        w.program.seed = 0xCA55;
        w.exec.seed = 0xCA55;
        suite.push_back(std::move(w));
    }
    // cloud9: JS engine — indirect-heavy medium-large footprint.
    {
        Workload w;
        w.name = "cloud9";
        w.category = "cloud";
        w.program = categoryConfig("srv");
        w.program.numFunctions = 2600;
        w.program.indirectFraction = 0.18;
        w.program.jumpBlockFraction = 0.12;
        w.program.seed = 0xC109;
        w.exec.seed = 0xC109;
        suite.push_back(std::move(w));
    }
    // nutch: crawler/indexer — large footprint, mixed loops and calls.
    {
        Workload w;
        w.name = "nutch";
        w.category = "cloud";
        w.program = categoryConfig("srv");
        w.program.numFunctions = 3600;
        w.program.loopFraction = 0.2;
        w.program.maxLoopTrips = 16;
        w.program.seed = 0x0706;
        w.exec.seed = 0x0706;
        suite.push_back(std::move(w));
    }
    // streaming: media server — streaming loops over a large code base.
    {
        Workload w;
        w.name = "streaming";
        w.category = "cloud";
        w.program = categoryConfig("srv");
        w.program.numFunctions = 2000;
        w.program.loopFraction = 0.35;
        w.program.minLoopTrips = 8;
        w.program.maxLoopTrips = 64;
        w.program.minBlockInsts = 4;
        w.program.maxBlockInsts = 18;
        w.program.seed = 0x57AE;
        w.exec.seed = 0x57AE;
        suite.push_back(std::move(w));
    }
    return suite;
}

Workload
tinyWorkload(uint64_t seed)
{
    Workload w;
    w.name = "tiny";
    w.category = "int";
    w.program = categoryConfig("int");
    w.program.numFunctions = 120;
    w.program.seed = seed;
    w.exec.seed = seed * 31 + 7;
    return w;
}

namespace {

bool
endsWith(const std::string &s, const char *suffix)
{
    const size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** FNV-1a over the stored file bytes, chunked so multi-GB traces never
 *  need to fit in memory. Returns false (with @p error set) on I/O error. */
bool
digestFile(const std::string &path, uint64_t &bytes_out,
           std::string &digest_out, std::string *error)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        if (error)
            *error = "cannot open trace file: " + path;
        return false;
    }
    uint64_t hash = util::kFnvOffsetBasis;
    uint64_t bytes = 0;
    char chunk[64 * 1024];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
        hash = util::fnv1a64(std::string_view(chunk, got), hash);
        bytes += got;
    }
    const bool failed = std::ferror(file) != 0;
    std::fclose(file);
    if (failed) {
        if (error)
            *error = "read error while digesting trace file: " + path;
        return false;
    }
    if (bytes == 0) {
        if (error)
            *error = "trace file is empty: " + path;
        return false;
    }
    bytes_out = bytes;
    digest_out = util::hex64(hash);
    return true;
}

} // namespace

bool
isTracePath(const std::string &path)
{
    return endsWith(path, ".trc") || endsWith(path, ".champsimtrace") ||
           endsWith(path, ".champsimtrace.xz") ||
           endsWith(path, ".champsimtrace.gz");
}

WorkloadKind
kindFromTracePath(const std::string &path)
{
    EIP_ASSERT(isTracePath(path), "not a recognized trace path");
    return endsWith(path, ".trc") ? WorkloadKind::EipTrace
                                  : WorkloadKind::ChampSim;
}

bool
tryTraceWorkload(const std::string &path, Workload &out, std::string *error)
{
    if (!isTracePath(path)) {
        if (error)
            *error = "unsupported trace extension (want .trc, .champsimtrace"
                     "[.xz|.gz]): " +
                     path;
        return false;
    }
    Workload w;
    if (!digestFile(path, w.traceBytes, w.traceDigest, error))
        return false;
    const size_t slash = path.find_last_of("/\\");
    w.name = slash == std::string::npos ? path : path.substr(slash + 1);
    w.category = "trace";
    w.kind = kindFromTracePath(path);
    w.tracePath = path;
    out = std::move(w);
    return true;
}

Workload
traceWorkload(const std::string &path)
{
    Workload w;
    std::string error;
    if (!tryTraceWorkload(path, w, &error))
        EIP_FATAL(error.c_str());
    return w;
}

Workload
capturedWorkload(const Workload &origin, const std::string &path)
{
    Workload w = origin;
    w.kind = WorkloadKind::EipTrace;
    w.tracePath = path;
    std::string error;
    if (!digestFile(path, w.traceBytes, w.traceDigest, &error))
        EIP_FATAL(error.c_str());
    return w;
}

} // namespace eip::trace
