/**
 * @file
 * Dynamic instruction record — the unit flowing from a workload trace into
 * the simulated core. Mirrors the information a ChampSim trace provides.
 */

#ifndef EIP_TRACE_INSTRUCTION_HH
#define EIP_TRACE_INSTRUCTION_HH

#include <cstdint>

namespace eip::trace {

/** Branch classification, following the ChampSim taxonomy. */
enum class BranchType : uint8_t
{
    NotBranch,
    Conditional,   ///< direct conditional branch
    DirectJump,    ///< unconditional direct jump
    IndirectJump,  ///< unconditional indirect jump
    DirectCall,    ///< direct call
    IndirectCall,  ///< indirect call
    Return,        ///< return
};

/** True for branch kinds whose taken target is encoded in the instruction. */
constexpr bool
isDirectBranch(BranchType t)
{
    return t == BranchType::Conditional || t == BranchType::DirectJump ||
           t == BranchType::DirectCall;
}

/** True for call-type branches (push a return address). */
constexpr bool
isCall(BranchType t)
{
    return t == BranchType::DirectCall || t == BranchType::IndirectCall;
}

/**
 * Abstract producer of a dynamic instruction stream. Implemented by the
 * synthetic Executor and by the trace-file Replayer; the CPU consumes any
 * InstructionSource.
 */
class InstructionSource;

/** One dynamic instruction instance. */
struct Instruction
{
    uint64_t pc = 0;        ///< virtual address of the instruction
    uint8_t size = 4;       ///< instruction length in bytes
    BranchType branch = BranchType::NotBranch;
    bool taken = false;     ///< actual outcome (from the trace)
    uint64_t target = 0;    ///< actual taken target (0 if not taken)
    bool isLoad = false;
    bool isStore = false;
    bool isFp = false;      ///< floating-point operation (longer latency)
    uint64_t memAddr = 0;   ///< data address for loads/stores

    bool isBranch() const { return branch != BranchType::NotBranch; }

    /** Address of the next sequential instruction. */
    uint64_t nextPc() const { return pc + size; }
};

/** See above. */
class InstructionSource
{
  public:
    virtual ~InstructionSource() = default;

    /** Produce the next dynamic instruction. Must never fail; sources of
     *  finite traces loop or repeat. */
    virtual const Instruction &next() = 0;

    /**
     * Advance the stream past @p n instructions without observing them.
     * Positionally equivalent to n next() calls — stateful sources (the
     * synthetic Executor) still execute the skipped region so the stream
     * after the skip is bit-identical to having consumed it; replayers
     * may reposition in O(1). Used by the sampling controller's
     * fast-forward phase.
     */
    virtual void
    skip(uint64_t n)
    {
        for (uint64_t i = 0; i < n; ++i)
            next();
    }
};

} // namespace eip::trace

#endif // EIP_TRACE_INSTRUCTION_HH
