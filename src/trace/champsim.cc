#include "trace/champsim.hh"

#include <cerrno>
#include <cstring>
#include <sys/stat.h>
#include <sys/wait.h>

#include "util/panic.hh"

namespace eip::trace {

namespace {

/** Read-ahead window: 1024 records = 64 KiB. Bounds memory regardless of
 *  trace size and keeps the decompressor pipe ahead of the simulator. */
constexpr size_t kReadAheadRecords = 1024;

uint64_t
readU64(const unsigned char *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** POSIX-shell single-quote @p s so popen cannot interpret any of it. */
std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

[[noreturn]] void
fatal(const std::string &msg)
{
    EIP_FATAL(msg.c_str());
}

} // namespace

ChampSimRecord
decodeChampSimRecord(const unsigned char raw[kChampSimRecordBytes])
{
    ChampSimRecord rec;
    rec.ip = readU64(raw);
    rec.isBranch = raw[8];
    rec.branchTaken = raw[9];
    rec.destRegs[0] = raw[10];
    rec.destRegs[1] = raw[11];
    for (int i = 0; i < 4; ++i)
        rec.srcRegs[i] = raw[12 + i];
    rec.destMem[0] = readU64(raw + 16);
    rec.destMem[1] = readU64(raw + 24);
    for (int i = 0; i < 4; ++i)
        rec.srcMem[i] = readU64(raw + 32 + 8 * i);
    return rec;
}

BranchType
champSimBranchType(const ChampSimRecord &rec)
{
    if (!rec.isBranch)
        return BranchType::NotBranch;

    bool reads_sp = false, reads_flags = false, reads_ip = false;
    bool reads_other = false;
    for (uint8_t r : rec.srcRegs) {
        if (r == kChampSimRegStackPointer)
            reads_sp = true;
        else if (r == kChampSimRegFlags)
            reads_flags = true;
        else if (r == kChampSimRegInstructionPointer)
            reads_ip = true;
        else if (r != 0)
            reads_other = true;
    }
    bool writes_sp = false, writes_ip = false;
    for (uint8_t r : rec.destRegs) {
        if (r == kChampSimRegStackPointer)
            writes_sp = true;
        else if (r == kChampSimRegInstructionPointer)
            writes_ip = true;
    }

    // ChampSim front-end classification, in its order of precedence.
    if (!reads_sp && !reads_flags && writes_ip && !reads_other)
        return BranchType::DirectJump;
    if (!reads_sp && !reads_flags && writes_ip && reads_other)
        return BranchType::IndirectJump;
    if (!reads_sp && reads_ip && !writes_sp && writes_ip && reads_flags &&
        !reads_other)
        return BranchType::Conditional;
    if (reads_sp && reads_ip && writes_sp && writes_ip && !reads_flags &&
        !reads_other)
        return BranchType::DirectCall;
    if (reads_sp && reads_ip && writes_sp && writes_ip && !reads_flags &&
        reads_other)
        return BranchType::IndirectCall;
    if (reads_sp && !reads_ip && writes_sp && writes_ip)
        return BranchType::Return;
    // ChampSim's BRANCH_OTHER bucket.
    return BranchType::IndirectJump;
}

Instruction
champSimInstruction(const ChampSimRecord &rec, uint64_t next_ip)
{
    Instruction inst;
    inst.pc = rec.ip;
    inst.branch = champSimBranchType(rec);
    if (inst.branch == BranchType::Conditional)
        inst.taken = rec.branchTaken != 0;
    else if (inst.branch != BranchType::NotBranch)
        inst.taken = true; // unconditional kinds always redirect
    if (inst.taken)
        inst.target = next_ip;

    // Size is absent from the format; when execution fell through, the ip
    // delta IS the size. Accept it in x86's (0, 15] range; otherwise
    // (taken branches, interrupted flow, rep-style re-execution) fall back
    // to 4 bytes — only sequential-fetch grouping depends on it.
    const uint64_t delta = next_ip - rec.ip;
    if (!inst.taken && delta >= 1 && delta <= 15)
        inst.size = static_cast<uint8_t>(delta);
    else
        inst.size = 4;

    for (uint64_t a : rec.srcMem) {
        if (a != 0) {
            inst.isLoad = true;
            inst.memAddr = a;
            break;
        }
    }
    for (uint64_t a : rec.destMem) {
        if (a != 0) {
            inst.isStore = true;
            if (inst.memAddr == 0)
                inst.memAddr = a;
            break;
        }
    }
    return inst;
}

bool
ChampSimReader::isCompressedPath(const std::string &path)
{
    return endsWith(path, ".xz") || endsWith(path, ".gz");
}

ChampSimReader::ChampSimReader(const std::string &path) : path_(path)
{
    buffer.resize(kReadAheadRecords * kChampSimRecordBytes);

    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        fatal("cannot open ChampSim trace: " + path + " (" +
              std::strerror(errno) + ")");

    if (isCompressedPath(path)) {
        const char *tool = endsWith(path, ".xz") ? "xz -dc" : "gzip -dc";
        const std::string cmd = std::string(tool) + " " + shellQuote(path);
        stream = ::popen(cmd.c_str(), "r");
        if (!stream)
            fatal("cannot spawn decompressor: " + cmd);
        piped = true;
    } else {
        if (st.st_size == 0)
            fatal("ChampSim trace is empty: " + path);
        if (st.st_size % kChampSimRecordBytes != 0)
            fatal("ChampSim trace is truncated or not this format: " + path +
                  " (" + std::to_string(st.st_size) +
                  " bytes is not a multiple of the 64-byte record size)");
        stream = std::fopen(path.c_str(), "rb");
        if (!stream)
            fatal("cannot open ChampSim trace: " + path);
    }
}

ChampSimReader::~ChampSimReader()
{
    closeStream(/*check_exit=*/false);
}

void
ChampSimReader::closeStream(bool check_exit)
{
    if (!stream)
        return;
    if (piped) {
        const int status = ::pclose(stream);
        stream = nullptr;
        if (check_exit &&
            (status == -1 || !WIFEXITED(status) || WEXITSTATUS(status) != 0))
            fatal("decompressor failed for ChampSim trace " + path_ +
                  " (corrupt archive, or xz/gzip not installed?)");
    } else {
        std::fclose(stream);
        stream = nullptr;
    }
}

void
ChampSimReader::fill()
{
    if (eof)
        return;
    if (bufPos < bufLen)
        std::memmove(buffer.data(), buffer.data() + bufPos, bufLen - bufPos);
    bufLen -= bufPos;
    bufPos = 0;

    const size_t got =
        std::fread(buffer.data() + bufLen, 1, buffer.size() - bufLen, stream);
    if (got < buffer.size() - bufLen && std::ferror(stream))
        fatal("read error in ChampSim trace " + path_ + " after record " +
              std::to_string(position_));
    bufLen += got;

    if (std::feof(stream)) {
        eof = true;
        // Exit-status check first: a dead decompressor explains any
        // byte-count anomaly better than the anomaly does.
        closeStream(/*check_exit=*/true);
        if (bufLen % kChampSimRecordBytes != 0)
            fatal("ChampSim trace is truncated: " + path_ + " ends with " +
                  std::to_string(bufLen % kChampSimRecordBytes) +
                  " stray bytes after record " +
                  std::to_string(position_ + bufLen / kChampSimRecordBytes));
        if (position_ == 0 && bufLen == 0)
            fatal("ChampSim trace decompressed to zero bytes: " + path_);
    }
}

bool
ChampSimReader::next(ChampSimRecord &out)
{
    if (bufLen - bufPos < kChampSimRecordBytes) {
        fill();
        if (bufLen - bufPos < kChampSimRecordBytes)
            return false; // clean end-of-trace (fill() fatals on partials)
    }
    out = decodeChampSimRecord(buffer.data() + bufPos);
    bufPos += kChampSimRecordBytes;
    ++position_;
    return true;
}

ChampSimReplayer::ChampSimReplayer(const std::string &path) : path(path)
{
    reader = std::make_unique<ChampSimReader>(path);
    if (!reader->next(pending))
        fatal("cannot replay an empty ChampSim trace: " + path);
    served = 1;
}

const Instruction &
ChampSimReplayer::next()
{
    if (cached_) {
        const Instruction &inst = recorded[replayPos];
        replayPos = replayPos + 1 == recorded.size() ? 0 : replayPos + 1;
        return inst;
    }

    const ChampSimRecord cur = pending;
    bool pass_ended = false;
    if (!reader->next(pending)) {
        // End of a pass: restart. The lookahead crosses the loop seam, so
        // the last instruction's "next ip" is the first record again.
        length = served;
        reader = std::make_unique<ChampSimReader>(path);
        const bool ok = reader->next(pending);
        EIP_ASSERT(ok, "ChampSim trace emptied mid-replay");
        served = 0;
        pass_ended = true;
    }
    ++served;
    current = champSimInstruction(cur, pending.ip);

    if (recording) {
        if (recorded.size() >= kMaxCachedInstructions) {
            recording = false;
            recorded.clear();
            recorded.shrink_to_fit();
        } else {
            recorded.push_back(current);
            if (pass_ended) {
                // The memo now holds the whole pass; replay from memory
                // (the streaming reader and its pipe are released) and
                // serve the first record of the new pass next.
                cached_ = true;
                reader.reset();
                replayPos = 0;
            }
        }
    }
    return current;
}

void
ChampSimReplayer::skip(uint64_t n)
{
    // Stream (and possibly finish memoizing) until the memo is usable;
    // once cached, skipping is a reposition.
    while (n > 0 && !cached_) {
        next();
        --n;
    }
    if (n > 0)
        replayPos = (replayPos + n) % recorded.size();
}

} // namespace eip::trace
