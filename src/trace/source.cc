#include "trace/source.hh"

#include "trace/champsim.hh"
#include "trace/executor.hh"
#include "trace/trace_file.hh"
#include "util/panic.hh"

namespace eip::trace {

namespace {

class SyntheticSource : public TraceSource
{
  public:
    SyntheticSource(const Program &program, const ExecutorConfig &config)
        : program(program), config(config)
    {
    }

    std::unique_ptr<InstructionSource>
    open() override
    {
        return std::make_unique<Executor>(program, config);
    }

    std::string
    describe() const override
    {
        return "synthetic";
    }

  private:
    const Program &program;
    ExecutorConfig config;
};

class ReplaySource : public TraceSource
{
  public:
    explicit ReplaySource(const std::string &path) : path(path) {}

    std::unique_ptr<InstructionSource>
    open() override
    {
        return std::make_unique<TraceReplayer>(path);
    }

    std::string
    describe() const override
    {
        return "eip-trace " + path;
    }

  private:
    std::string path;
};

class ChampSimSource : public TraceSource
{
  public:
    explicit ChampSimSource(const std::string &path) : path(path) {}

    std::unique_ptr<InstructionSource>
    open() override
    {
        return std::make_unique<ChampSimReplayer>(path);
    }

    std::string
    describe() const override
    {
        return "champsim " + path;
    }

  private:
    std::string path;
};

} // namespace

std::unique_ptr<TraceSource>
makeTraceSource(const Workload &workload, const Program *program)
{
    switch (workload.kind) {
    case WorkloadKind::Synthetic:
        EIP_ASSERT(program != nullptr,
                   "synthetic workload needs a built Program");
        return std::make_unique<SyntheticSource>(*program, workload.exec);
    case WorkloadKind::EipTrace:
        return std::make_unique<ReplaySource>(workload.tracePath);
    case WorkloadKind::ChampSim:
        return std::make_unique<ChampSimSource>(workload.tracePath);
    }
    EIP_PANIC("unknown WorkloadKind");
}

} // namespace eip::trace
