#include "trace/trace_file.hh"

#include <cstring>

#include "util/panic.hh"

namespace eip::trace {

namespace {

/** On-disk record layout (little-endian, packed manually for portability). */
struct PackedRecord
{
    uint64_t pc;
    uint64_t target;
    uint64_t memAddr;
    uint8_t size;
    uint8_t branch;
    uint8_t flags; // bit0 taken, bit1 load, bit2 store, bit3 fp
};

constexpr size_t kRecordBytes = 8 + 8 + 8 + 1 + 1 + 1;

void
writeU64(uint8_t *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t
readU64(const uint8_t *in)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(in[i]) << (8 * i);
    return v;
}

void
packRecord(const Instruction &inst, uint8_t *buf)
{
    writeU64(buf, inst.pc);
    writeU64(buf + 8, inst.target);
    writeU64(buf + 16, inst.memAddr);
    buf[24] = inst.size;
    buf[25] = static_cast<uint8_t>(inst.branch);
    uint8_t flags = 0;
    flags |= inst.taken ? 1 : 0;
    flags |= inst.isLoad ? 2 : 0;
    flags |= inst.isStore ? 4 : 0;
    flags |= inst.isFp ? 8 : 0;
    buf[26] = flags;
}

void
unpackRecord(const uint8_t *buf, Instruction &inst)
{
    inst.pc = readU64(buf);
    inst.target = readU64(buf + 8);
    inst.memAddr = readU64(buf + 16);
    inst.size = buf[24];
    inst.branch = static_cast<BranchType>(buf[25]);
    uint8_t flags = buf[26];
    inst.taken = (flags & 1) != 0;
    inst.isLoad = (flags & 2) != 0;
    inst.isStore = (flags & 4) != 0;
    inst.isFp = (flags & 8) != 0;
}

constexpr size_t kPackedBytes = kRecordBytes + 1; // incl. flags byte
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8;    // magic, ver, pad, count

} // namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        EIP_FATAL("cannot open trace file for writing");
    uint8_t header[kHeaderBytes] = {};
    writeU64(header, kTraceMagic);
    header[8] = kTraceVersion;
    // Count patched on close.
    if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header))
        EIP_FATAL("trace header write failed");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const Instruction &inst)
{
    EIP_ASSERT(file != nullptr, "append to a closed trace writer");
    uint8_t buf[kPackedBytes];
    packRecord(inst, buf);
    if (std::fwrite(buf, 1, sizeof(buf), file) != sizeof(buf))
        EIP_FATAL("trace record write failed");
    ++count;
}

void
TraceWriter::close()
{
    if (file == nullptr)
        return;
    // Patch the instruction count into the header.
    uint8_t count_bytes[8];
    writeU64(count_bytes, count);
    std::fseek(file, 16, SEEK_SET);
    if (std::fwrite(count_bytes, 1, 8, file) != 8)
        EIP_FATAL("trace header patch failed");
    std::fclose(file);
    file = nullptr;
}

TraceReader::TraceReader(const std::string &path, bool loop)
    : loop_(loop)
{
    file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        EIP_FATAL("cannot open trace file for reading");
    uint8_t header[kHeaderBytes];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header))
        EIP_FATAL("trace header read failed");
    if (readU64(header) != kTraceMagic)
        EIP_FATAL("not an EIP trace file (bad magic)");
    if (header[8] != kTraceVersion)
        EIP_FATAL("unsupported trace file version");
    total = readU64(header + 16);

    // Validate the header's instruction count against the actual file
    // size now, while we can still name the problem — a mismatch found
    // mid-simulation is a raw short-read with no context. Too few bytes
    // means a truncated copy; too many means a writer crashed before
    // patching the count into the header.
    if (std::fseek(file, 0, SEEK_END) != 0)
        EIP_FATAL("cannot seek trace file");
    const long end = std::ftell(file);
    EIP_ASSERT(end >= static_cast<long>(kHeaderBytes),
               "trace file shrank below its own header");
    const uint64_t actual = static_cast<uint64_t>(end) - kHeaderBytes;
    const uint64_t expected = total * kPackedBytes;
    if (actual != expected) {
        const std::string msg =
            "trace file " + path + ": header promises " +
            std::to_string(total) + " records (" + std::to_string(expected) +
            " bytes) but the file holds " + std::to_string(actual) +
            " bytes of records — " +
            (actual < expected
                 ? "truncated or partially copied; re-copy or re-capture it"
                 : "stale header from an interrupted capture; re-capture "
                   "the trace");
        EIP_FATAL(msg.c_str());
    }
    std::fseek(file, kHeaderBytes, SEEK_SET);
}

TraceReader::~TraceReader()
{
    if (file != nullptr)
        std::fclose(file);
}

bool
TraceReader::next(Instruction &out)
{
    if (total == 0)
        return false;
    if (position >= total) {
        if (!loop_)
            return false;
        std::fseek(file, kHeaderBytes, SEEK_SET);
        position = 0;
    }
    uint8_t buf[kPackedBytes];
    if (std::fread(buf, 1, sizeof(buf), file) != sizeof(buf)) {
        const std::string msg =
            "trace record read failed at record " + std::to_string(position) +
            " of " + std::to_string(total) +
            " (file changed or truncated after open?)";
        EIP_FATAL(msg.c_str());
    }
    unpackRecord(buf, out);
    ++position;
    return true;
}

} // namespace eip::trace
