#include "trace/program_builder.hh"

#include <algorithm>
#include <vector>

#include "util/panic.hh"
#include "util/rng.hh"

namespace eip::trace {

namespace {

/** Pick a body instruction (kind plus per-site data-access behaviour). */
StaticInst
pickInst(const ProgramConfig &cfg, Rng &rng)
{
    StaticInst inst;
    inst.size = 4;
    double u = rng.uniform();
    if (u < cfg.loadFraction) {
        inst.kind = InstKind::Load;
    } else if (u < cfg.loadFraction + cfg.storeFraction) {
        inst.kind = InstKind::Store;
    } else if (u < cfg.loadFraction + cfg.storeFraction + cfg.fpFraction) {
        inst.kind = InstKind::FpAlu;
    } else {
        inst.kind = InstKind::Alu;
    }
    if (inst.kind == InstKind::Load || inst.kind == InstKind::Store) {
        double m = rng.uniform();
        if (m < 0.5) {
            inst.memPattern = MemPattern::Stack;
            inst.memParam = static_cast<uint16_t>(rng.below(240) & ~7u);
        } else if (m < 0.8) {
            inst.memPattern = MemPattern::Global;
        } else {
            inst.memPattern = MemPattern::Stream;
            // Stride of 1..3 cache lines, fixed for this site.
            inst.memParam = static_cast<uint16_t>(64 * rng.between(1, 3));
        }
    }
    return inst;
}

/**
 * Builder context. Functions are constructed leaves-first (highest index
 * first) so that every call site can filter its callees by the estimated
 * dynamic cost of the callee's whole subtree. This keeps request-processing
 * call trees bounded — the property that makes the synthetic trace cycle
 * through its code footprint instead of drowning in one deep walk.
 */
struct Builder
{
    const ProgramConfig &cfg;
    Rng rng;
    /** Estimated dynamic instructions per invocation, including callees. */
    std::vector<double> dynCost;
    std::vector<bool> isDispatcher;

    explicit Builder(const ProgramConfig &config)
        : cfg(config), rng(config.seed),
          dynCost(config.numFunctions, 0.0),
          isDispatcher(config.numFunctions, false)
    {}

    /**
     * Pick a callee for @p caller: an already-built (higher-index) regular
     * function whose subtree cost fits the budget. Returns numFunctions
     * when no suitable callee exists (the call site is then dropped).
     */
    uint32_t
    pickCallee(uint32_t caller)
    {
        uint32_t n = cfg.numFunctions;
        if (caller + 1 >= n)
            return n;
        uint32_t span = n - caller - 1;
        for (int attempt = 0; attempt < 16; ++attempt) {
            uint64_t offset;
            if (rng.chance(cfg.callLocality))
                offset = rng.skewedBelow(std::min<uint64_t>(span, 32)) + 1;
            else
                offset = rng.below(span) + 1;
            uint32_t cand = caller + static_cast<uint32_t>(offset);
            if (!isDispatcher[cand] && dynCost[cand] <= cfg.maxCalleeCost)
                return cand;
        }
        return n;
    }

    /** Mostly-biased branch probability: recurring paths with a data-
     *  dependent minority (bimodal distribution). */
    double
    branchProbability()
    {
        if (rng.chance(cfg.biasedBranchFraction))
            return rng.chance(0.5) ? 0.05 : 0.95;
        return 0.3 + rng.uniform() * 0.4;
    }

    Function buildRegular(uint32_t func_idx);
    Function buildDispatcher(uint32_t func_idx, bool top_level);
    double estimateCost(const Function &fn) const;
};

Function
Builder::buildRegular(uint32_t func_idx)
{
    Function fn;
    uint32_t num_blocks = static_cast<uint32_t>(
        rng.between(cfg.minBlocksPerFunction, cfg.maxBlocksPerFunction));
    fn.blocks.resize(num_blocks);

    for (uint32_t b = 0; b < num_blocks; ++b) {
        Block &blk = fn.blocks[b];
        uint32_t body_len = static_cast<uint32_t>(
            rng.between(cfg.minBlockInsts, cfg.maxBlockInsts));
        blk.body.reserve(body_len);
        for (uint32_t i = 0; i < body_len; ++i)
            blk.body.push_back(pickInst(cfg, rng));

        if (b == num_blocks - 1) {
            blk.term = TerminatorKind::Return;
            continue;
        }
        blk.fallBlock = b + 1;

        double u = rng.uniform();
        if (u < cfg.condBlockFraction) {
            blk.term = TerminatorKind::CondBranch;
            bool want_loop = b > 0 && rng.chance(cfg.loopFraction);
            if (want_loop) {
                // Loop back-edge over up to 3 blocks, never wrapping a call
                // site: hot inner loops are call-free, and looping over
                // calls would multiply the call-tree cost unboundedly.
                uint32_t back = static_cast<uint32_t>(
                    rng.between(1, std::min(b, 3u)));
                for (uint32_t p = b - back; p < b && want_loop; ++p) {
                    TerminatorKind t = fn.blocks[p].term;
                    if (t == TerminatorKind::Call ||
                        t == TerminatorKind::IndirectCall) {
                        want_loop = false;
                    }
                }
                if (want_loop) {
                    blk.takenBlock = b - back;
                    blk.loopTripCount = static_cast<uint32_t>(
                        rng.between(cfg.minLoopTrips, cfg.maxLoopTrips));
                }
            }
            if (!want_loop) {
                // Forward branch, skewed towards nearby targets.
                uint32_t span = num_blocks - 1 - b;
                uint32_t off = static_cast<uint32_t>(
                    rng.skewedBelow(std::min(span, 6u))) + 1;
                blk.takenBlock = std::min(b + off, num_blocks - 1);
                blk.takenProb = branchProbability();
            }
        } else if (u < cfg.condBlockFraction + cfg.callBlockFraction) {
            bool indirect = rng.chance(cfg.indirectFraction);
            uint32_t num_callees = indirect
                ? static_cast<uint32_t>(rng.between(2, 4)) : 1;
            for (uint32_t c = 0; c < num_callees; ++c) {
                uint32_t callee = pickCallee(func_idx);
                if (callee < cfg.numFunctions)
                    blk.callees.push_back(callee);
            }
            if (blk.callees.empty()) {
                blk.term = TerminatorKind::FallThrough; // no viable callee
            } else {
                blk.term = blk.callees.size() > 1
                    ? TerminatorKind::IndirectCall : TerminatorKind::Call;
            }
        } else if (u < cfg.condBlockFraction + cfg.callBlockFraction +
                           cfg.jumpBlockFraction) {
            if (rng.chance(cfg.indirectFraction)) {
                blk.term = TerminatorKind::IndirectJump;
                uint32_t num_targets =
                    static_cast<uint32_t>(rng.between(2, 4));
                for (uint32_t t = 0; t < num_targets; ++t) {
                    uint32_t span = num_blocks - 1 - b;
                    uint32_t off = static_cast<uint32_t>(
                        rng.below(std::min(span, 8u))) + 1;
                    blk.indirectTargets.push_back(
                        std::min(b + off, num_blocks - 1));
                }
            } else {
                blk.term = TerminatorKind::Jump;
                uint32_t span = num_blocks - 1 - b;
                uint32_t off = static_cast<uint32_t>(
                    rng.skewedBelow(std::min(span, 4u))) + 1;
                blk.takenBlock = std::min(b + off, num_blocks - 1);
            }
        } else {
            blk.term = TerminatorKind::FallThrough;
        }
    }
    return fn;
}

Function
Builder::buildDispatcher(uint32_t func_idx, bool top_level)
{
    Function fn;
    fn.blocks.resize(3);

    // Block 0: loop body ending in the dispatching indirect call.
    Block &dispatch = fn.blocks[0];
    uint32_t body_len = static_cast<uint32_t>(
        rng.between(cfg.minBlockInsts, cfg.maxBlockInsts));
    for (uint32_t i = 0; i < body_len; ++i)
        dispatch.body.push_back(pickInst(cfg, rng));
    dispatch.term = TerminatorKind::IndirectCall;
    dispatch.fallBlock = 1;

    uint32_t n = cfg.numFunctions;
    if (top_level) {
        // main: dispatch over the sub-dispatchers (if any), plus a spread
        // of regular handlers — this is the outer server loop.
        if (cfg.dispatcherEvery != 0) {
            for (uint32_t d = cfg.dispatcherEvery; d < n;
                 d += cfg.dispatcherEvery) {
                dispatch.callees.push_back(d);
            }
        }
        uint32_t want = std::max<uint32_t>(cfg.dispatcherFanout, 1);
        for (uint32_t c = 0; n > 1 && dispatch.callees.size() < want &&
                             c < n; ++c) {
            uint32_t cand = 1 + static_cast<uint32_t>(rng.below(n - 1));
            if (!isDispatcher[cand] && dynCost[cand] <= cfg.maxCalleeCost)
                dispatch.callees.push_back(cand);
        }
    } else {
        // Sub-dispatcher: fan out over handlers spread across the space
        // above it.
        uint32_t span = n > func_idx + 1 ? n - func_idx - 1 : 0;
        uint32_t fanout = std::min(cfg.dispatcherFanout, std::max(span, 1u));
        for (uint32_t c = 0; span > 0 && c < fanout; ++c) {
            uint32_t stride = std::max(span / std::max(fanout, 1u), 1u);
            uint32_t cand = func_idx + 1 + (span * c) / fanout +
                static_cast<uint32_t>(rng.below(stride));
            cand = std::min(cand, n - 1);
            if (!isDispatcher[cand] && dynCost[cand] <= cfg.maxCalleeCost)
                dispatch.callees.push_back(cand);
        }
    }
    if (dispatch.callees.empty())
        dispatch.term = TerminatorKind::FallThrough;

    // Block 1: loop back-edge around the dispatch.
    Block &latch = fn.blocks[1];
    latch.body.push_back(StaticInst{InstKind::Alu, 4});
    latch.term = TerminatorKind::CondBranch;
    latch.takenBlock = 0;
    latch.fallBlock = 2;
    latch.loopTripCount = cfg.dispatcherLoopTrips;

    // Block 2: return.
    fn.blocks[2].body.push_back(StaticInst{});
    fn.blocks[2].term = TerminatorKind::Return;
    return fn;
}

double
Builder::estimateCost(const Function &fn) const
{
    // Base: every block once.
    double cost = 0.0;
    std::vector<double> block_cost(fn.blocks.size());
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
        block_cost[b] = static_cast<double>(fn.blocks[b].body.size()) + 1.0;
        cost += block_cost[b];
    }
    // Loops: the spanned blocks run (expected trips) extra times.
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
        const Block &blk = fn.blocks[b];
        if (blk.term == TerminatorKind::CondBranch &&
            blk.loopTripCount > 0) {
            double span_cost = 0.0;
            for (uint32_t p = blk.takenBlock; p <= b; ++p)
                span_cost += block_cost[p];
            cost += span_cost * blk.loopTripCount;
        }
        // Calls: expected callee subtree cost.
        if (!blk.callees.empty()) {
            double sum = 0.0;
            for (uint32_t callee : blk.callees)
                sum += dynCost[callee];
            cost += sum / static_cast<double>(blk.callees.size());
        }
    }
    return cost;
}

/** Lay out all blocks of all functions at concrete virtual addresses.
 *  Functions are partitioned into contiguous index ranges, one per module,
 *  so index locality (the common case for callees) stays within a module
 *  and only far calls cross module boundaries — as in real binaries that
 *  call into shared libraries. */
void
assignAddresses(const ProgramConfig &cfg, Program &prog)
{
    uint32_t modules = std::max(cfg.moduleCount, 1u);
    std::vector<uint64_t> cursor(modules);
    for (uint32_t m = 0; m < modules; ++m)
        cursor[m] = cfg.codeBase + m * cfg.moduleStride;

    uint64_t align = cfg.functionAlign ? cfg.functionAlign : 1;
    uint64_t highest = cfg.codeBase;
    size_t total = prog.functions.size();
    for (size_t f = 0; f < total; ++f) {
        Function &fn = prog.functions[f];
        uint64_t &pc = cursor[f * modules / total];
        pc = (pc + align - 1) / align * align;
        fn.entryPc = pc;
        for (auto &blk : fn.blocks) {
            blk.startPc = pc;
            pc = blk.endPc();
        }
        prog.codeBytes += pc - fn.entryPc;
        pc += cfg.interFunctionPad;
        highest = std::max(highest, pc);
    }
    prog.codeBase = cfg.codeBase;
    prog.codeEnd = highest;
}

} // namespace

Program
buildProgram(const ProgramConfig &cfg)
{
    EIP_ASSERT(cfg.numFunctions >= 1, "program needs at least one function");
    Builder builder(cfg);

    for (uint32_t f = 0; f < cfg.numFunctions; ++f) {
        builder.isDispatcher[f] = f == 0 ||
            (cfg.dispatcherEvery != 0 && f % cfg.dispatcherEvery == 0);
    }

    Program prog;
    prog.functions.resize(cfg.numFunctions);

    // Leaves first: regular functions from the top index down, so every
    // call site can consult the callee's subtree cost.
    for (uint32_t f = cfg.numFunctions; f-- > 0;) {
        if (builder.isDispatcher[f])
            continue;
        prog.functions[f] = builder.buildRegular(f);
        builder.dynCost[f] = builder.estimateCost(prog.functions[f]);
    }
    // Then the sub-dispatchers (they call regular functions above them),
    // then main.
    for (uint32_t f = cfg.numFunctions; f-- > 1;) {
        if (!builder.isDispatcher[f])
            continue;
        prog.functions[f] = builder.buildDispatcher(f, false);
        builder.dynCost[f] = builder.estimateCost(prog.functions[f]);
    }
    prog.functions[0] = builder.buildDispatcher(0, true);

    assignAddresses(cfg, prog);
    return prog;
}

} // namespace eip::trace
