/**
 * @file
 * Static representation of a synthetic program: a collection of functions,
 * each a control-flow graph of basic blocks laid out at concrete virtual
 * addresses. Built by ProgramBuilder, executed by Executor.
 */

#ifndef EIP_TRACE_PROGRAM_HH
#define EIP_TRACE_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "trace/instruction.hh"

namespace eip::trace {

/** Static instruction kinds inside a basic block body. */
enum class InstKind : uint8_t
{
    Alu,
    FpAlu,
    Load,
    Store,
    Nop,
};

/** Data-access behaviour of a static load/store (fixed per site, as in
 *  real code: a given instruction mostly touches one kind of data). */
enum class MemPattern : uint8_t
{
    Stack,  ///< fixed frame-relative slot (a local variable)
    Global, ///< heap/global with hot-skewed random reuse
    Stream, ///< constant-stride streaming
};

/** A non-terminator instruction of a basic block. */
struct StaticInst
{
    InstKind kind = InstKind::Alu;
    uint8_t size = 4;
    MemPattern memPattern = MemPattern::Global;
    uint16_t memParam = 0; ///< stack slot offset or stream stride (bytes)
};

/** How a basic block transfers control. */
enum class TerminatorKind : uint8_t
{
    FallThrough,   ///< no branch; control continues to the next block
    CondBranch,    ///< conditional branch: takenTarget / fall-through
    Jump,          ///< unconditional direct jump to takenTarget
    IndirectJump,  ///< indirect jump: one of indirectTargets
    Call,          ///< direct call to callee function, then fall-through
    IndirectCall,  ///< indirect call: one of the callee candidates
    Return,        ///< return to caller
};

/**
 * A basic block: straight-line instructions plus one terminator. Blocks are
 * identified by (function index, block index); the builder assigns concrete
 * PCs after CFG construction.
 */
struct Block
{
    uint64_t startPc = 0;        ///< PC of the first instruction
    std::vector<StaticInst> body;

    TerminatorKind term = TerminatorKind::FallThrough;
    uint8_t termSize = 4;        ///< byte size of the terminator instruction

    /** Successor block index (within function) for taken branches/jumps. */
    uint32_t takenBlock = 0;
    /** Fall-through successor block index (CondBranch/FallThrough/Call). */
    uint32_t fallBlock = 0;
    /** Probability that a CondBranch is taken. */
    double takenProb = 0.5;
    /**
     * For back-edges modelling loops: expected extra iterations. When > 0,
     * the executor draws a trip count on loop entry instead of flipping a
     * coin per visit, giving realistic loop behaviour.
     */
    uint32_t loopTripCount = 0;

    /** Callee function indices (1 for Call; several for IndirectCall). */
    std::vector<uint32_t> callees;
    /** Candidate target blocks for IndirectJump (within function). */
    std::vector<uint32_t> indirectTargets;

    /** PC of the terminator instruction. */
    uint64_t
    termPc() const
    {
        uint64_t pc = startPc;
        for (const auto &inst : body)
            pc += inst.size;
        return pc;
    }

    /** PC of the first byte after this block. */
    uint64_t endPc() const { return termPc() + termSize; }
};

/** A function: an entry block plus a CFG of blocks. */
struct Function
{
    uint64_t entryPc = 0;
    std::vector<Block> blocks; ///< block 0 is the entry
};

/** A whole synthetic program. */
struct Program
{
    std::vector<Function> functions; ///< function 0 is main
    uint64_t codeBase = 0;           ///< lowest code address
    uint64_t codeEnd = 0;            ///< one past the highest code address
    uint64_t codeBytes = 0;          ///< actual instruction bytes laid out

    /** Static code footprint (bytes of instructions, across modules). */
    uint64_t footprintBytes() const { return codeBytes; }
};

} // namespace eip::trace

#endif // EIP_TRACE_PROGRAM_HH
