#include "trace/executor.hh"

#include "util/panic.hh"

namespace eip::trace {

Executor::Executor(const Program &program, const ExecutorConfig &cfg)
    : prog(program), config(cfg), rng(cfg.seed)
{
    EIP_ASSERT(!prog.functions.empty(), "cannot execute an empty program");
    advanceToBlock(0, 0);
}

void
Executor::advanceToBlock(uint32_t func, uint32_t block)
{
    curFunc = func;
    curBlock = block;
    bodyPos = 0;
    bodyPc = prog.functions[func].blocks[block].startPc;
}

uint64_t
Executor::dataAddress(const StaticInst &inst, uint64_t pc)
{
    switch (inst.memPattern) {
      case MemPattern::Stack: {
        // A fixed frame slot (a local variable of this function).
        uint64_t frame_top =
            config.stackBase - stack.size() * config.frameBytes;
        return frame_top - inst.memParam;
      }
      case MemPattern::Stream: {
        // Constant-stride stream, private to this instruction site.
        uint64_t &cursor = streamCursor[pc];
        if (cursor == 0)
            cursor = config.globalBase + (pc % config.dataFootprintBytes);
        cursor += inst.memParam;
        if (cursor > config.globalBase + 2 * config.dataFootprintBytes)
            cursor = config.globalBase + (pc % config.dataFootprintBytes);
        return cursor;
      }
      case MemPattern::Global:
      default:
        // Hot-skewed reuse over the shared data footprint.
        return config.globalBase +
               (rng.skewedBelow(config.dataFootprintBytes) & ~uint64_t{7});
    }
}

void
Executor::emitBody(const StaticInst &inst, uint64_t pc)
{
    out = Instruction{};
    out.pc = pc;
    out.size = inst.size;
    switch (inst.kind) {
      case InstKind::Load:
        out.isLoad = true;
        out.memAddr = dataAddress(inst, pc);
        break;
      case InstKind::Store:
        out.isStore = true;
        out.memAddr = dataAddress(inst, pc);
        break;
      case InstKind::FpAlu:
        out.isFp = true;
        break;
      case InstKind::Alu:
      case InstKind::Nop:
        break;
    }
}

void
Executor::emitTerminator()
{
    const Function &fn = prog.functions[curFunc];
    const Block &blk = fn.blocks[curBlock];
    uint64_t pc = blk.termPc();

    out = Instruction{};
    out.pc = pc;
    out.size = blk.termSize;

    switch (blk.term) {
      case TerminatorKind::FallThrough: {
        // Plain ALU op; control continues into the next block.
        advanceToBlock(curFunc, blk.fallBlock);
        return;
      }
      case TerminatorKind::CondBranch: {
        out.branch = BranchType::Conditional;
        bool taken;
        if (blk.loopTripCount > 0) {
            // Loop back-edge with a drawn trip count per loop entry.
            uint64_t key = (uint64_t{curFunc} << 32) | curBlock;
            auto it = loopTrips.find(key);
            if (it == loopTrips.end()) {
                uint32_t trips = 1 + static_cast<uint32_t>(
                    rng.below(2 * blk.loopTripCount));
                it = loopTrips.emplace(key, trips).first;
            }
            if (it->second > 0) {
                --it->second;
                taken = true;
            } else {
                loopTrips.erase(it);
                taken = false;
            }
        } else {
            taken = rng.chance(blk.takenProb);
        }
        out.taken = taken;
        if (taken) {
            out.target = fn.blocks[blk.takenBlock].startPc;
            advanceToBlock(curFunc, blk.takenBlock);
        } else {
            advanceToBlock(curFunc, blk.fallBlock);
        }
        return;
      }
      case TerminatorKind::Jump: {
        out.branch = BranchType::DirectJump;
        out.taken = true;
        out.target = fn.blocks[blk.takenBlock].startPc;
        advanceToBlock(curFunc, blk.takenBlock);
        return;
      }
      case TerminatorKind::IndirectJump: {
        out.branch = BranchType::IndirectJump;
        out.taken = true;
        uint32_t idx = static_cast<uint32_t>(
            rng.skewedBelow(blk.indirectTargets.size()));
        uint32_t target_block = blk.indirectTargets[idx];
        out.target = fn.blocks[target_block].startPc;
        advanceToBlock(curFunc, target_block);
        return;
      }
      case TerminatorKind::Call:
      case TerminatorKind::IndirectCall: {
        uint32_t callee;
        if (blk.term == TerminatorKind::Call) {
            callee = blk.callees.front();
        } else if (blk.callees.size() >= 8) {
            // Wide dispatch site (event loop). Real servers show strong
            // request-type locality: handlers are processed in mostly
            // cyclic runs with occasional jumps, so long control-flow
            // sequences recur — the property correlation prefetchers rely
            // on. Model: advance through the candidate list with high
            // probability, sometimes repeat, rarely jump at random.
            uint64_t key = (uint64_t{curFunc} << 32) | curBlock;
            uint32_t &pos = dispatchPos[key];
            double u = rng.uniform();
            if (u < 0.80)
                pos = (pos + 1) % blk.callees.size();
            else if (u < 0.92)
                ; // repeat the same handler (a burst of one request type)
            else
                pos = static_cast<uint32_t>(rng.below(blk.callees.size()));
            callee = blk.callees[pos];
        } else {
            // Small virtual-dispatch site: skewed towards a hot target.
            uint32_t idx = static_cast<uint32_t>(
                rng.skewedBelow(blk.callees.size()));
            callee = blk.callees[idx];
        }
        bool elide = stack.size() >= config.maxCallDepth ||
                     callee == curFunc;
        if (elide) {
            // Depth guard: execute as a plain instruction.
            advanceToBlock(curFunc, blk.fallBlock);
            return;
        }
        out.branch = blk.term == TerminatorKind::Call
            ? BranchType::DirectCall : BranchType::IndirectCall;
        out.taken = true;
        out.target = prog.functions[callee].entryPc;
        stack.push_back(Frame{curFunc, blk.fallBlock});
        advanceToBlock(callee, 0);
        return;
      }
      case TerminatorKind::Return: {
        out.branch = BranchType::Return;
        out.taken = true;
        if (stack.empty()) {
            // Driver loop: restart main.
            out.target = prog.functions[0].entryPc;
            advanceToBlock(0, 0);
        } else {
            Frame frame = stack.back();
            stack.pop_back();
            out.target =
                prog.functions[frame.func].blocks[frame.resumeBlock].startPc;
            advanceToBlock(frame.func, frame.resumeBlock);
        }
        return;
      }
    }
    EIP_PANIC("unhandled terminator kind");
}

const Instruction &
Executor::next()
{
    const Block &blk = prog.functions[curFunc].blocks[curBlock];
    if (bodyPos < blk.body.size()) {
        const StaticInst &inst = blk.body[bodyPos];
        emitBody(inst, bodyPc);
        bodyPc += inst.size;
        ++bodyPos;
    } else {
        emitTerminator();
    }
    ++emittedCount;
    return out;
}

} // namespace eip::trace
