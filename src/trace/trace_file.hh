/**
 * @file
 * Binary trace file format: save a dynamic instruction stream to disk and
 * replay it later, ChampSim-style. Lets users capture a synthetic workload
 * once and feed identical traces to many simulations, or import their own
 * streams by converting to this format.
 *
 * Format: a 24-byte header (magic, version, instruction count) followed by
 * fixed-size little-endian records (one per instruction, 26 bytes packed).
 */

#ifndef EIP_TRACE_TRACE_FILE_HH
#define EIP_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/instruction.hh"
#include "util/panic.hh"

namespace eip::trace {

/** Magic bytes identifying an EIP trace file. */
constexpr uint64_t kTraceMagic = 0x45495054'52414345ULL; // "EIPTRACE"
constexpr uint32_t kTraceVersion = 1;

/**
 * Streaming trace writer. Records are buffered and flushed on close (or
 * destruction). The header's instruction count is patched at close time.
 */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal on I/O error. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one instruction. */
    void append(const Instruction &inst);

    /** Flush, patch the header, and close. Idempotent. */
    void close();

    uint64_t written() const { return count; }

  private:
    std::FILE *file = nullptr;
    uint64_t count = 0;
};

/**
 * Trace reader: loads the header eagerly, streams records on demand, and
 * can optionally loop (restart at the beginning when exhausted) so a short
 * capture can drive an arbitrarily long simulation — matching the
 * Executor's infinite-stream contract.
 */
class TraceReader
{
  public:
    /** Open @p path; fatal on missing file or bad magic/version. */
    explicit TraceReader(const std::string &path, bool loop = true);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Instructions recorded in the file. */
    uint64_t size() const { return total; }

    /** Position of the next record to be read, in [0, size()]. */
    uint64_t tell() const { return position; }

    /**
     * Read the next instruction into @p out.
     * @return false at end-of-trace when looping is disabled.
     */
    bool next(Instruction &out);

  private:
    std::FILE *file = nullptr;
    uint64_t total = 0;
    uint64_t position = 0;
    bool loop_;
};

/**
 * Adapter: replays a trace file as an InstructionSource the CPU can
 * consume. Loops by construction (the source contract requires an
 * endless stream).
 */
class TraceReplayer : public InstructionSource
{
  public:
    explicit TraceReplayer(const std::string &path)
        : reader(path, /*loop=*/true)
    {
        EIP_ASSERT(reader.size() > 0, "cannot replay an empty trace");
    }

    const Instruction &
    next() override
    {
        // A looping reader over a non-empty trace must always produce;
        // serving a stale `current` on a refused read would silently
        // corrupt the replay, so check and die loudly instead.
        if (!reader.next(current)) {
            const std::string msg =
                "trace replay stalled at record " +
                std::to_string(reader.tell()) + " of " +
                std::to_string(reader.size());
            EIP_PANIC(msg.c_str());
        }
        return current;
    }

    uint64_t traceLength() const { return reader.size(); }

  private:
    TraceReader reader;
    Instruction current;
};

/** Capture @p count instructions from any generator into @p path. */
template <typename Source>
uint64_t
captureTrace(const std::string &path, Source &source, uint64_t count)
{
    TraceWriter writer(path);
    for (uint64_t i = 0; i < count; ++i)
        writer.append(source.next());
    writer.close();
    return writer.written();
}

} // namespace eip::trace

#endif // EIP_TRACE_TRACE_FILE_HH
