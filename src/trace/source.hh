/**
 * @file
 * TraceSource — the one seam between workload identity and instruction
 * production. A Workload names *what* runs; a TraceSource knows *how* to
 * produce its stream, and every backend (synthetic Executor, eip `.trc`
 * replay, ChampSim decode) hides behind the same factory, so the harness,
 * tools, and serve layer run any workload kind through one code path.
 */

#ifndef EIP_TRACE_SOURCE_HH
#define EIP_TRACE_SOURCE_HH

#include <memory>
#include <string>

#include "trace/instruction.hh"
#include "trace/workloads.hh"

namespace eip::trace {

struct Program;

/** Factory for instruction streams of one workload. open() always starts
 *  from the beginning, so one source can seed many independent runs. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** A fresh stream positioned at the start of the workload. */
    virtual std::unique_ptr<InstructionSource> open() = 0;

    /** One-line human description ("synthetic", "champsim <path>", ...). */
    virtual std::string describe() const = 0;
};

/**
 * Backend dispatch on @p workload.kind. Synthetic workloads read from
 * @p program (the caller owns the built Program — typically via the
 * harness program cache — and must keep it alive for the source's
 * lifetime); trace-backed workloads ignore it, pass nullptr.
 */
std::unique_ptr<TraceSource> makeTraceSource(const Workload &workload,
                                             const Program *program);

} // namespace eip::trace

#endif // EIP_TRACE_SOURCE_HH
