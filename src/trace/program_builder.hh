/**
 * @file
 * Deterministic synthetic-program generator. Produces a Program (CFG +
 * concrete code layout) whose dynamic behaviour — instruction footprint,
 * call depth, loop reuse, branch bias — is controlled per workload category.
 *
 * This is the substitution for the proprietary CVP-1/2 and CloudSuite traces
 * used by the paper (see DESIGN.md §2): the prefetchers under study exploit
 * recurring control flow whose footprint exceeds the L1I, which is exactly
 * what these knobs control.
 */

#ifndef EIP_TRACE_PROGRAM_BUILDER_HH
#define EIP_TRACE_PROGRAM_BUILDER_HH

#include <cstdint>

#include "trace/program.hh"

namespace eip::trace {

/** Generation knobs for one synthetic program. */
struct ProgramConfig
{
    uint64_t seed = 1;

    uint32_t numFunctions = 64;
    uint32_t minBlocksPerFunction = 4;
    uint32_t maxBlocksPerFunction = 12;
    uint32_t minBlockInsts = 2;
    uint32_t maxBlockInsts = 16;

    double loadFraction = 0.25;   ///< of body instructions
    double storeFraction = 0.10;
    double fpFraction = 0.00;

    double condBlockFraction = 0.35; ///< blocks ending in cond. branch
    double callBlockFraction = 0.20; ///< blocks ending in a call
    double jumpBlockFraction = 0.08; ///< blocks ending in a direct jump
    double indirectFraction = 0.05;  ///< calls/jumps made indirect

    double loopFraction = 0.25;   ///< cond. branches that are loop back-edges
    uint32_t minLoopTrips = 2;
    uint32_t maxLoopTrips = 32;
    double condTakenBias = 0.4;   ///< mean taken prob of forward branches

    double callLocality = 1.0;    ///< 0 = uniform callees, 1 = heavily local

    /**
     * Budget (expected dynamic instructions per invocation) above which a
     * function is not eligible as a callee. Bounds the cost of one
     * "request" so execution cycles through the code footprint instead of
     * sinking into one unbounded call tree.
     */
    double maxCalleeCost = 4000.0;

    /**
     * Fraction of conditional branches that are strongly biased (taken
     * probability 0.05 or 0.95). Biased branches give each function a
     * mostly-recurring path — the property temporal/correlation
     * prefetchers rely on — while the remainder model data-dependent
     * control flow.
     */
    double biasedBranchFraction = 0.7;

    /**
     * Dispatcher functions model server event loops: an indirect call site
     * inside a loop whose candidate callees are spread across the whole
     * function space. Function 0 is always a dispatcher; additionally every
     * dispatcherEvery-th function is one (0 disables extra dispatchers).
     * This is what makes the *dynamic* instruction footprint approach the
     * static code footprint, as in real server workloads.
     */
    uint32_t dispatcherFanout = 16;
    uint32_t dispatcherEvery = 0;
    uint32_t dispatcherLoopTrips = 16;

    uint64_t codeBase = 0x400000; ///< load address of the first function
    uint32_t functionAlign = 64;  ///< function start alignment (bytes)
    uint32_t interFunctionPad = 0; ///< extra cold bytes between functions

    /**
     * Code modules: functions are partitioned into contiguous index
     * ranges, each laid out at its own base address (the main binary plus
     * shared libraries). Cross-module entangled pairs need wide
     * destination encodings, exercising the restrictive compression modes
     * exactly as the paper's srv traces do (Fig. 12).
     *
     * The stride keeps modules far beyond any cache/BTB locality while
     * the *total* code span stays inside one compact VA region, matching
     * the premise of the paper's traces: the Entangled table's partial
     * tag (set index + 10 tag bits, ≥ 2^16 lines ≈ 4 MB of reach for
     * every configuration) must cover the whole footprint, or tag-only
     * lookups alias across modules and spray wrong prefetches the
     * paper's evaluation never sees (see DESIGN.md, tag aliasing).
     */
    uint32_t moduleCount = 1;
    uint64_t moduleStride = 512ULL << 10;  ///< VA distance between modules
};

/**
 * Build a program from the config. Identical (config, seed) pairs yield
 * bit-identical programs.
 */
Program buildProgram(const ProgramConfig &cfg);

} // namespace eip::trace

#endif // EIP_TRACE_PROGRAM_BUILDER_HH
