/**
 * @file
 * Workload catalogue: synthetic stand-ins for the CVP-1/2 trace categories
 * (crypto / int / fp / srv) and the CloudSuite applications evaluated in the
 * paper. Each workload is a (generator config, executor config) pair; the
 * harness builds and executes them on demand.
 */

#ifndef EIP_TRACE_WORKLOADS_HH
#define EIP_TRACE_WORKLOADS_HH

#include <string>
#include <vector>

#include "trace/executor.hh"
#include "trace/program_builder.hh"

namespace eip::trace {

/** A named synthetic workload. */
struct Workload
{
    std::string name;
    std::string category; ///< crypto | int | fp | srv | cloud
    ProgramConfig program;
    ExecutorConfig exec;
};

/** Base generator config for one CVP category (before seeding). */
ProgramConfig categoryConfig(const std::string &category);

/**
 * The CVP-like suite: @p seeds_per_category seeded variants of each of the
 * four categories. The paper uses 959 selected traces; we default to a
 * laptop-scale sample that preserves the category mix.
 */
std::vector<Workload> cvpSuite(int seeds_per_category = 3);

/** CloudSuite-like applications: cassandra, cloud9, nutch, streaming. */
std::vector<Workload> cloudSuite();

/** A small, fast workload for tests and the quickstart example. */
Workload tinyWorkload(uint64_t seed = 1);

} // namespace eip::trace

#endif // EIP_TRACE_WORKLOADS_HH
