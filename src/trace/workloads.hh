/**
 * @file
 * Workload catalogue: synthetic stand-ins for the CVP-1/2 trace categories
 * (crypto / int / fp / srv) and the CloudSuite applications evaluated in the
 * paper, plus trace-backed workloads replayed from on-disk files (our own
 * captured `.trc` streams and external ChampSim traces). Synthetic entries
 * are a (generator config, executor config) pair the harness builds and
 * executes on demand; trace-backed entries carry the file path and a
 * content digest so two different traces can never alias one identity.
 */

#ifndef EIP_TRACE_WORKLOADS_HH
#define EIP_TRACE_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/executor.hh"
#include "trace/program_builder.hh"

namespace eip::trace {

/** How a workload's instruction stream is produced. */
enum class WorkloadKind : uint8_t
{
    Synthetic, ///< generated CFG walked by the Executor
    EipTrace,  ///< our binary `.trc` capture format (trace_file.hh)
    ChampSim,  ///< ChampSim `.champsimtrace{,.xz,.gz}` (champsim.hh)
};

/** Stable lower-case name of @p kind ("synthetic", "eip-trace",
 *  "champsim") — used in canonical serializations and manifests. */
const char *workloadKindName(WorkloadKind kind);

/** A named workload. Synthetic entries are fully described by the
 *  (program, exec) configs; trace-backed entries by the trace content
 *  (path is where the bytes live, digest is what they are). */
struct Workload
{
    std::string name;
    std::string category; ///< crypto | int | fp | srv | cloud | trace
    ProgramConfig program;
    ExecutorConfig exec;

    /** Stream backend; trace-backed kinds ignore (program, exec) at run
     *  time but keep them as provenance for captured synthetics. */
    WorkloadKind kind = WorkloadKind::Synthetic;
    /** On-disk trace file (trace-backed kinds only). */
    std::string tracePath;
    /** Size in bytes of the trace file as stored (compressed size for
     *  .xz/.gz ChampSim traces). */
    uint64_t traceBytes = 0;
    /** 16-hex-digit FNV-1a digest of the trace file bytes. Part of the
     *  workload's canonical identity: two different traces at the same
     *  path get different digests, so artifacts and serve-cache entries
     *  can never alias on the path alone. */
    std::string traceDigest;
};

/** Base generator config for one CVP category (before seeding). */
ProgramConfig categoryConfig(const std::string &category);

/**
 * The CVP-like suite: @p seeds_per_category seeded variants of each of the
 * four categories. The paper uses 959 selected traces; we default to a
 * laptop-scale sample that preserves the category mix.
 */
std::vector<Workload> cvpSuite(int seeds_per_category = 3);

/** CloudSuite-like applications: cassandra, cloud9, nutch, streaming. */
std::vector<Workload> cloudSuite();

/** A small, fast workload for tests and the quickstart example. */
Workload tinyWorkload(uint64_t seed = 1);

/** Does @p path name a supported on-disk trace (by extension):
 *  `.trc`, `.champsimtrace`, `.champsimtrace.xz`, `.champsimtrace.gz`? */
bool isTracePath(const std::string &path);

/** Trace kind for a path isTracePath accepted. */
WorkloadKind kindFromTracePath(const std::string &path);

/**
 * Build a trace-backed workload from an on-disk trace file: stats the
 * file and digests its bytes (FNV-1a over the stored bytes, so the
 * digest is cheap even for compressed traces). Non-fatal: returns false
 * with a diagnostic in @p error (when non-null) on an unreadable or
 * unsupported file, so a daemon can reject bad submissions instead of
 * dying. Name is the path's basename, category "trace".
 */
bool tryTraceWorkload(const std::string &path, Workload &out,
                      std::string *error = nullptr);

/** As tryTraceWorkload, fatal on failure (one-shot CLI convenience). */
Workload traceWorkload(const std::string &path);

/**
 * Per-trace mirror of the synthetic suite's selection filter: stream one
 * recurrence window (400k instructions) of the trace and apply the same
 * >= 40KB dynamic-code-footprint proxy for >= 1 L1I MPKI that admits
 * synthetic seeds into cvpSuite. Traces below the threshold would dilute
 * a suite's prefetcher-sensitivity signal exactly like an unqualifying
 * seed, so mixed catalogues gate them identically. @p footprint_bytes,
 * when non-null, receives the measured footprint for reporting either
 * way. Traces shorter than the window wrap (InstructionSource loops), so
 * the probe saturates at the trace's whole code footprint.
 */
bool traceQualifies(const Workload &workload,
                    uint64_t *footprint_bytes = nullptr);

/**
 * Identity-preserving capture/replay pin: a workload that replays
 * @p path (an eip `.trc` capture of @p origin's stream) while keeping
 * the origin's name, category, and generator/executor provenance. The
 * capture's content digest still enters the canonical identity, so a
 * stale or foreign file at the path can never masquerade as the
 * capture it replaced.
 */
Workload capturedWorkload(const Workload &origin, const std::string &path);

} // namespace eip::trace

#endif // EIP_TRACE_WORKLOADS_HH
