/**
 * @file
 * Fundamental simulator types and address helpers.
 */

#ifndef EIP_SIM_TYPES_HH
#define EIP_SIM_TYPES_HH

#include <cstdint>

namespace eip::sim {

using Addr = uint64_t;   ///< byte address (virtual or physical)
using Cycle = uint64_t;  ///< absolute simulation cycle

constexpr unsigned kLineBits = 6;           ///< 64-byte cache lines
constexpr uint64_t kLineSize = 1ULL << kLineBits;

/** Cache-line address (byte address >> 6). */
constexpr Addr
lineAddr(Addr byte_addr)
{
    return byte_addr >> kLineBits;
}

/** First byte address of a cache line. */
constexpr Addr
lineToByte(Addr line)
{
    return line << kLineBits;
}

constexpr unsigned kPageBits = 12;          ///< 4KB pages
constexpr uint64_t kPageSize = 1ULL << kPageBits;

constexpr Addr
pageAddr(Addr byte_addr)
{
    return byte_addr >> kPageBits;
}

/** A cycle value that means "never" / invalid. */
constexpr Cycle kCycleNever = ~Cycle{0};

} // namespace eip::sim

#endif // EIP_SIM_TYPES_HH
