/**
 * @file
 * The instruction-prefetcher interface, mirroring the hooks ChampSim/IPC-1
 * exposes to contestants: cache operate, cache fill, branch operate, and
 * cycle operate. All prefetchers in this repository (the Entangling
 * prefetcher and every baseline) implement exactly this interface.
 */

#ifndef EIP_SIM_PREFETCHER_API_HH
#define EIP_SIM_PREFETCHER_API_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"
#include "trace/instruction.hh"

namespace eip::obs {
class CounterRegistry;
class EventTracer;
class MissAttribution;
enum class MissBlame : uint8_t;
}

namespace eip::check {
class Invariants;
}

namespace eip::sim {

class Cache;

/** Information passed on every demand access to the owning cache. */
struct CacheOperateInfo
{
    Addr line = 0;            ///< cache-line address of the access
    Addr triggerPc = 0;       ///< PC of the fetching instruction
    Cycle cycle = 0;
    bool hit = false;         ///< present in the cache array
    bool hitWasPrefetch = false; ///< hit on a not-yet-used prefetched line
    bool missLatePrefetch = false; ///< miss merged into in-flight prefetch
    /** Access made down a mispredicted path (only when the simulator
     *  models wrong-path execution). A real prefetcher cannot observe
     *  this bit at access time; it stands in for the paper's §III-C1
     *  commit-time training buffer when evaluating that mitigation. */
    bool speculative = false;
};

/** Information passed on every cache fill. */
struct CacheFillInfo
{
    Addr line = 0;
    Cycle cycle = 0;
    bool byPrefetch = false;  ///< fill caused by a prefetch request
    bool demandHappened = false; ///< a demand touched the MSHR before fill
    bool evictedValid = false;
    Addr evictedLine = 0;
    bool evictedUnusedPrefetch = false; ///< wrong/early prefetch eviction
};

/**
 * Base class for L1I prefetchers. The owning cache calls the on*() hooks;
 * the prefetcher requests lines through Cache::enqueuePrefetch() (declared
 * in cache.hh) using the pointer passed at attach time.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Human-readable name used by the harness tables. */
    virtual std::string name() const = 0;

    /** Storage cost of the hardware structures, in bits. */
    virtual uint64_t storageBits() const = 0;

    /**
     * Export prefetcher-internal statistics (table hits, pairs created,
     * format histograms, ...) to the observability layer under
     * hierarchical names. Registered closures read the prefetcher's
     * live counters, so the registry must not outlive the prefetcher.
     * The default exports nothing.
     */
    virtual void registerStats(obs::CounterRegistry &) {}

    /**
     * Register prefetcher-internal consistency checks (see src/check)
     * under the prefetcher's own names. Called by the Cpu when invariant
     * checking is enabled; the registry runs the checks once per cycle
     * and must not outlive the prefetcher. The default registers none.
     */
    virtual void registerInvariants(check::Invariants &) {}

    /** Called once when the prefetcher is attached to its cache. */
    virtual void attach(Cache &cache) { owner = &cache; }

    /** Demand access to the owning cache (one call per distinct line). */
    virtual void onCacheOperate(const CacheOperateInfo &info)
    {
        (void)info;
    }

    /** A line was installed in the owning cache. */
    virtual void onCacheFill(const CacheFillInfo &info) { (void)info; }

    /**
     * A queued prefetch left the PQ towards the next level (this is when
     * the paper's PQ entry records its timestamp). Not called for requests
     * filtered or dropped before issue.
     */
    virtual void onPrefetchIssued(Addr line, Cycle cycle)
    {
        (void)line;
        (void)cycle;
    }

    /** A branch was predicted by the front-end (retire-order stream). */
    virtual void
    onBranch(Addr pc, trace::BranchType type, Addr target)
    {
        (void)pc;
        (void)type;
        (void)target;
    }

    /** Called every simulated cycle — but only when cycleInert() below
     *  returns false; the owning cache elides the virtual call for the
     *  (default) inert case. */
    virtual void onCycle(Cycle now) { (void)now; }

    /**
     * May the simulator skip cycles in which this prefetcher receives no
     * other hook call? True for prefetchers whose onCycle() does nothing
     * (the default). Any override of onCycle() that keeps real per-cycle
     * state MUST also override this to return false, or the event-driven
     * scheduler (DESIGN.md §3.8) will silently starve that state; the
     * LookaheadOracle's cycle clock is the one current example.
     */
    virtual bool cycleInert() const { return true; }

    /**
     * Miss attribution (DESIGN.md §3.11): when blame is armed, the
     * prefetcher is asked to explain a demand miss the cache-side
     * shadow state could not (e.g. "the entangled pair for this line
     * was evicted from the table before its trigger fired"). Pure
     * observer — the verdict feeds the why.* ledger, never timing.
     * Return obs::MissBlame::None when this prefetcher has nothing to
     * add (the default; defined in cache.cc, which sees the enum).
     */
    virtual obs::MissBlame blame(Addr line, Addr pc);

    /**
     * Arm miss attribution: allocate whatever ghost/shadow structures
     * blame() needs (the entangled table's ghost-pair set, the
     * baselines' evicted-coverage sets). Called by the Cpu when a
     * MissAttribution observer is attached; never called on plain
     * runs, so the structures cost nothing when blame is off.
     */
    virtual void enableBlame() {}

  protected:
    /**
     * Event tracer of the owning cache; nullptr when tracing is off or
     * the prefetcher is unattached. Prefetchers use it to trace
     * candidates they discard *before* Cache::enqueuePrefetch ever sees
     * them (e.g. pfDropped with PfDropReason::CrossPage), which is the
     * only way such drops become visible. Pure observer: never branch
     * simulation behavior on it. Defined in cache.cc (needs Cache).
     */
    obs::EventTracer *tracer() const;

    /**
     * Miss-attribution observer of the owning cache; nullptr when
     * blame is off or the prefetcher is unattached. Prefetchers use it
     * to record shadow events the cache never sees (e.g. cross-page
     * candidates discarded before Cache::enqueuePrefetch). Pure
     * observer, same contract as tracer(). Defined in cache.cc.
     */
    obs::MissAttribution *why() const;

    Cache *owner = nullptr;
};

} // namespace eip::sim

#endif // EIP_SIM_PREFETCHER_API_HH
