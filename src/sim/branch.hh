/**
 * @file
 * Front-end branch structures: gshare conditional predictor, set-associative
 * BTB, return address stack, and an indirect target cache (the "Target
 * Cache" for indirect branches mentioned in §IV-A).
 */

#ifndef EIP_SIM_BRANCH_HH
#define EIP_SIM_BRANCH_HH

#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"
#include "trace/instruction.hh"
#include "util/saturating_counter.hh"

namespace eip::sim {

/** Interface for conditional-branch direction predictors. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predicted direction of the branch at @p pc. */
    virtual bool predict(Addr pc) const = 0;
    /** Train with the actual outcome (also rolls the global history). */
    virtual void update(Addr pc, bool taken) = 0;
};

/** gshare: global-history-XOR-PC indexed table of 2-bit counters. */
class GsharePredictor : public DirectionPredictor
{
  public:
    explicit GsharePredictor(unsigned index_bits);

    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;

  private:
    size_t index(Addr pc) const;

    unsigned indexBits;
    uint64_t history = 0;
    std::vector<SaturatingCounter> table;
};

/**
 * Hashed perceptron predictor (Jiménez-style): a PC-indexed row of signed
 * weights dotted with the global history; trained on mispredictions and
 * low-confidence correct predictions.
 */
class PerceptronPredictor : public DirectionPredictor
{
  public:
    /**
     * @param rows Number of perceptrons (power of two).
     * @param history_bits Global-history length (weights per perceptron).
     */
    PerceptronPredictor(unsigned rows, unsigned history_bits);

    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;

  private:
    int dot(Addr pc) const;
    size_t rowOf(Addr pc) const;

    unsigned historyBits;
    int threshold;
    uint64_t history = 0;
    std::vector<int8_t> weights; ///< rows x (historyBits + 1 bias)
};

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    Btb(uint32_t entries, uint32_t ways);

    /** @return target of @p pc, or 0 when the BTB misses. */
    Addr lookup(Addr pc);
    void update(Addr pc, Addr target);

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
        uint64_t lastUse = 0;
    };

    uint32_t numSets;
    uint32_t numWays;
    uint64_t clock = 0;
    std::vector<Entry> table;
};

/** Classic return address stack; overflows wrap (oldest entries lost). */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(uint32_t entries)
        : storage(entries)
    {}

    void
    push(Addr return_pc)
    {
        top = (top + 1) % storage.size();
        storage[top] = return_pc;
        if (depth < storage.size())
            ++depth;
    }

    /** Pop the predicted return target; 0 when empty. */
    Addr
    pop()
    {
        if (depth == 0)
            return 0;
        Addr value = storage[top];
        top = (top + storage.size() - 1) % storage.size();
        --depth;
        return value;
    }

    /** Peek at the i-th entry from the top (for RDIP-style signatures). */
    Addr
    peek(uint32_t i) const
    {
        if (i >= depth)
            return 0;
        return storage[(top + storage.size() - i) % storage.size()];
    }

    uint32_t size() const { return depth; }

  private:
    std::vector<Addr> storage;
    size_t top = 0;
    uint32_t depth = 0;
};

/** Direct-mapped indirect target cache indexed by PC ⊕ path history. */
class IndirectTargetCache
{
  public:
    explicit IndirectTargetCache(uint32_t entries);

    Addr predict(Addr pc) const;
    void update(Addr pc, Addr target);

  private:
    size_t index(Addr pc) const;

    std::vector<Addr> table;
    uint64_t pathHistory = 0;
};

} // namespace eip::sim

#endif // EIP_SIM_BRANCH_HH
