/**
 * @file
 * Set-associative, non-blocking cache model with MSHRs, a prefetch queue,
 * per-line prefetch/used bits and prefetcher hooks. Timing uses latency
 * propagation: each miss computes its fill cycle by asking the next level
 * (recursively down to DRAM); fills are drained lazily as time advances.
 */

#ifndef EIP_SIM_CACHE_HH
#define EIP_SIM_CACHE_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "sim/dram.hh"
#include "sim/prefetcher_api.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "util/ring.hh"

namespace eip::obs {
class EventTracer;
class MissAttribution;
}

namespace eip::check {
class Invariants;
}

namespace eip::sim {

/**
 * One cache level. Works on cache-line addresses throughout. Levels are
 * chained with setNextLevel(); the last level must have a Dram attached.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    void setNextLevel(Cache *next) { nextLevel = next; }
    void setDram(Dram *dram) { dram_ = dram; }

    /** Attach an instruction prefetcher (L1I only). */
    void
    attachPrefetcher(Prefetcher *pf)
    {
        prefetcher = pf;
        pfCycleInert_ = pf == nullptr || pf->cycleInert();
        if (pf != nullptr)
            pf->attach(*this);
    }

    /** Result of a demand access. */
    struct Access
    {
        bool hit = false;       ///< array hit (or ideal-mode hit)
        bool mshrFull = false;  ///< access rejected: retry later
        Cycle ready = 0;        ///< cycle the data can be consumed
    };

    /**
     * Demand access to @p line issued at @p now by instruction @p pc.
     * Drains completed fills first. On MSHR exhaustion returns mshrFull and
     * records nothing (the caller retries and statistics stay single-count).
     */
    Access demandAccess(Addr line, Addr pc, Cycle now);

    /**
     * Wrong-path access: looks up and, on a miss, fetches and installs the
     * line like a demand access (the pollution §III-C1 talks about), but
     * is accounted separately (wrongPathAccesses/Misses) and never counts
     * towards hit/miss/useful-prefetch statistics. The prefetcher hook is
     * invoked with `speculative` set. Drops silently when MSHRs are full.
     */
    void speculativeAccess(Addr line, Addr pc, Cycle now);

    /**
     * Peek: is @p line resident right now? A pure lookup — no fill
     * drain, no replacement-state update. Completed-but-undrained fills
     * become visible at the next tick()/access boundary, never inside a
     * probe (the no_overdue_fills invariant pins fills to those
     * boundaries).
     */
    bool probe(Addr line) const;

    /**
     * Request a prefetch of @p line (prefetcher-facing). Enqueued into the
     * prefetch queue; dropped when the queue is full or disabled.
     * @return true when the request was accepted into the queue.
     * In warming mode (setWarming) the request bypasses the queue and
     * MSHRs entirely: the line installs functionally with its prefetch
     * bit set and the issue/fill hooks fire at a synthetic latency, so
     * the prefetcher's confidence learning continues while no timing or
     * statistics state moves.
     */
    bool enqueuePrefetch(Addr line);

    /**
     * Functional-warming access (SMARTS-style sampling, DESIGN.md §3.13):
     * the array, replacement state, prefetch/used bits and the prefetcher
     * hooks all update exactly as on a demand access, but no statistics,
     * observers, or MSHR timing state move. A miss fetches down the
     * hierarchy recursively (each level warms too) and installs the line
     * immediately at a synthetic latency — the DRAM mean instead of a
     * jitter draw — so latency-sensitive learning (the entangled table's
     * timeliness distances) keeps seeing realistic fill delays.
     * Fills left in flight by a preceding detailed window still drain
     * (statistics-free) as @p now passes their ready cycles.
     * @return the cycle at which the data would be consumable, exactly
     * parallel to Access::ready on the timed path.
     */
    Cycle warmAccess(Addr line, Addr pc, Cycle now);

    /**
     * Enter/leave functional-warming mode. While set, installLine and
     * drainFills freeze every statistic and observer hook (prefetcher
     * learning hooks still fire) and enqueuePrefetch installs
     * functionally. The Cpu flips this on all four levels around each
     * warming phase; the "stats frozen during warming" audit in
     * Cpu::warmFunctional pins the contract under --check.
     */
    void setWarming(bool on) { warming_ = on; }
    bool warming() const { return warming_; }

    /**
     * Make warmAccess contend for real MSHR entries instead of
     * installing misses immediately. The Cpu sets this on the data-side
     * levels (L1D, L2, LLC) because their timed paths ABANDON an access
     * when every MSHR is busy — backendLatency charges a flat penalty
     * and never fetches the line, and fetchFromBelow lets an upper-level
     * fill proceed past a saturated lower level. Warming must reproduce
     * that thinning or it over-populates the long-memory levels with
     * exactly the lines detailed simulation would have dropped, and the
     * first detailed window starts from a hierarchy state the full run
     * can never reach (measured: 3x the LLC data hit rate and +9% IPC on
     * fp workloads). The L1I keeps immediate installs: its timed path
     * retries a blocked access every cycle until it succeeds, so every
     * instruction line does eventually fetch.
     */
    void setWarmMshrThrottle(bool on) { warmThrottle_ = on; }

    /**
     * Per-cycle maintenance: drain fills, issue queued prefetches. This
     * runs four times per simulated cycle (once per level), so the
     * common all-idle case — no due fill, empty queue, no cycle hook —
     * must reduce to three inline compares.
     */
    void
    tick(Cycle now)
    {
        now_ = now;
        if (nextReady_ <= now)
            drainFills(now);
        if (!pq.empty())
            issuePrefetches(now);
        // Cycle-inert prefetchers (the default) never see onCycle at
        // all: the virtual call per cycle per level would be pure
        // overhead (see Prefetcher::cycleInert).
        if (!pfCycleInert_)
            prefetcher->onCycle(now);
    }

    const CacheStats &stats() const { return stats_; }
    CacheStats &stats() { return stats_; }
    const CacheConfig &config() const { return cfg; }

    /** Attach an event tracer (nullable; pure observer, see src/obs).
     *  With no tracer every hook site is one pointer test. */
    void setTracer(obs::EventTracer *tracer) { tracer_ = tracer; }
    obs::EventTracer *tracer() const { return tracer_; }

    /** Attach the miss-attribution observer (nullable; pure observer,
     *  see src/obs/why.hh). Same contract as the tracer: every hook
     *  site is one pointer test when off. */
    void setWhy(obs::MissAttribution *why) { why_ = why; }
    obs::MissAttribution *why() const { return why_; }

    /** Number of free MSHR entries (for tests). */
    uint32_t freeMshrs() const;
    /** Prefetch-queue occupancy (for tests). */
    size_t pqOccupancy() const { return pq.size(); }

    /**
     * Earliest `ready` cycle over the in-flight fills (kCycleNever when
     * none) — the incremental watermark drainFills() early-outs on. The
     * event-driven scheduler (Cpu::nextEventCycle) reads it as this
     * level's next state-change event.
     */
    Cycle nextFillReady() const { return nextReady_; }

    /**
     * True when a tick() at a cycle with no due fills is a no-op: the
     * prefetch queue is empty (nothing to issue) and the attached
     * prefetcher does not keep per-cycle state (Prefetcher::cycleInert).
     * Together with nextFillReady() this is this level's half of the
     * skip-ahead inertness proof.
     */
    bool
    tickInert() const
    {
        return pq.empty() && pfCycleInert_;
    }

    /**
     * Register this level's consistency checks with @p inv under
     * "<prefix>." names (see src/check): MSHR occupancy equals in-flight
     * fills, MSHR/array duplicate-freedom and disjointness, prefetch-queue
     * bounds, and the stats identities behind missRatio()/coverage().
     * The set-array audit rotates one set per cycle so even the LLC stays
     * cheap to check. @p inv must not outlive the cache.
     */
    void registerInvariants(check::Invariants &inv,
                            const std::string &prefix);

  private:
    struct Line
    {
        bool valid = false;
        Addr line = 0;
        uint64_t lastUse = 0;   ///< LRU stamp (doubles as FIFO fill stamp)
        uint8_t rrpv = 3;       ///< SRRIP re-reference prediction value
        bool prefetched = false; ///< brought in by a prefetch
        bool used = false;       ///< touched by a demand access since fill
    };

    struct Mshr
    {
        bool valid = false;
        Addr line = 0;
        Cycle ready = kCycleNever;
        bool isPrefetch = false;
        bool demandTouched = false; ///< the paper's MSHR "access bit"
        /** Fill initiated down the wrong path and never demanded since;
         *  its eviction victim is charged to wrong_path_pollution (read
         *  only by the miss-attribution observer). */
        bool wrongPath = false;
    };

    struct PqEntry
    {
        Addr line = 0;
    };

    uint32_t setIndex(Addr line) const { return line & (numSets - 1); }
    Line *findLine(Addr line);
    const Line *findLine(Addr line) const;
    /** Pick the victim way in @p set_base per the configured policy. */
    Line *chooseVictim(size_t set_base);
    /** Promote @p line after a demand hit per the configured policy. */
    void touchLine(Line &line);
    Mshr *findMshr(Addr line);
    Mshr *allocMshr();
    /** Fetch @p line from the next level; returns data-ready cycle. */
    Cycle fetchFromBelow(Addr line, Addr pc, Cycle now);
    /** Warming counterpart: recurse with warmAccess, mean DRAM latency. */
    Cycle warmFetchBelow(Addr line, Addr pc, Cycle now);
    /** Install @p line; fires eviction bookkeeping and returns fill info. */
    void installLine(const Mshr &entry);
    /** Charge a demand miss to its blame category (why_ is non-null):
     *  shadow verdict, then the prefetcher's blame() hook, then the
     *  seen-set fallback. */
    void classifyDemandMiss(Addr line, Addr pc);
    void drainFills(Cycle now);
    void issuePrefetches(Cycle now);

    CacheConfig cfg;
    uint32_t numSets;
    std::vector<Line> lines;  ///< numSets * ways, set-major
    /**
     * Tag of each way, parallel to `lines` (kNoTag when invalid) — the
     * lookup-hot fields packed one cache line per set so findLine touches
     * one host line instead of striding through the full Line structs.
     * Maintained solely by installLine (lines are never invalidated).
     */
    std::vector<Addr> tags_;
    static constexpr Addr kNoTag = ~Addr{0}; ///< no real line address
                                             ///< (byte >> 6) reaches this
    std::vector<Mshr> mshrs;
    util::Ring<PqEntry> pq;
    /** Fills currently in flight; every MSHR allocation increments it and
     *  every drained fill decrements it, so any path that frees or
     *  allocates an MSHR without going through the proper sites breaks
     *  the mshr_accounting invariant. */
    uint64_t inflightFills_ = 0;
    /**
     * Earliest `ready` over the valid MSHRs, kCycleNever when none —
     * kept exact: allocation sites min it down, drainFills recomputes it
     * from the survivors (the only place entries retire). Lets drainFills
     * early-out in O(1) on the per-cycle fast path instead of rescanning
     * every MSHR, and doubles as the scheduler's next-fill event.
     */
    Cycle nextReady_ = kCycleNever;
    /** Scratch for drainFills' (ready, index) ordering; member so the
     *  per-drain allocation is amortised away. */
    std::vector<std::pair<Cycle, uint32_t>> drainScratch_;
    uint32_t auditSet_ = 0; ///< rotating cursor of the set-array audit
    uint64_t lruClock = 0;
    uint64_t victimSeed = 0x9E3779B97F4A7C15ULL; ///< Random-policy state

    Cache *nextLevel = nullptr;
    Dram *dram_ = nullptr;
    Prefetcher *prefetcher = nullptr;
    /** Cached Prefetcher::cycleInert() of the attached prefetcher (true
     *  when none): pulls the per-cycle virtual call out of tick(). */
    bool pfCycleInert_ = true;
    obs::EventTracer *tracer_ = nullptr;
    obs::MissAttribution *why_ = nullptr;
    /** Current cycle as of the last public entry point; gives
     *  enqueuePrefetch (which has no cycle parameter) a timestamp. */
    Cycle now_ = 0;
    /** Functional-warming mode (see setWarming). */
    bool warming_ = false;
    /** Warm misses contend for MSHRs (see setWarmMshrThrottle). */
    bool warmThrottle_ = false;

    CacheStats stats_;
};

} // namespace eip::sim

#endif // EIP_SIM_CACHE_HH
