#include "sim/branch.hh"

#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::sim {

GsharePredictor::GsharePredictor(unsigned index_bits)
    : indexBits(index_bits)
{
    EIP_ASSERT(index_bits >= 4 && index_bits <= 24,
               "gshare index width out of range");
    table.assign(size_t{1} << index_bits,
                 SaturatingCounter(2, /*initial=*/2)); // weakly taken
}

size_t
GsharePredictor::index(Addr pc) const
{
    return ((pc >> 2) ^ history) & mask(indexBits);
}

bool
GsharePredictor::predict(Addr pc) const
{
    return table[index(pc)].strong();
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    SaturatingCounter &ctr = table[index(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    history = ((history << 1) | (taken ? 1 : 0)) & mask(indexBits);
}

PerceptronPredictor::PerceptronPredictor(unsigned rows,
                                         unsigned history_bits)
    : historyBits(history_bits),
      threshold(static_cast<int>(1.93 * history_bits + 14))
{
    EIP_ASSERT(isPowerOf2(rows), "perceptron rows must be a power of two");
    EIP_ASSERT(history_bits >= 1 && history_bits <= 64,
               "perceptron history length out of range");
    weights.assign(static_cast<size_t>(rows) * (history_bits + 1), 0);
}

size_t
PerceptronPredictor::rowOf(Addr pc) const
{
    size_t rows = weights.size() / (historyBits + 1);
    return static_cast<size_t>(xorFold(pc >> 2, floorLog2(rows))) &
           (rows - 1);
}

int
PerceptronPredictor::dot(Addr pc) const
{
    const int8_t *row = &weights[rowOf(pc) * (historyBits + 1)];
    int sum = row[0]; // bias
    for (unsigned i = 0; i < historyBits; ++i) {
        bool h = (history >> i) & 1;
        sum += h ? row[i + 1] : -row[i + 1];
    }
    return sum;
}

bool
PerceptronPredictor::predict(Addr pc) const
{
    return dot(pc) >= 0;
}

void
PerceptronPredictor::update(Addr pc, bool taken)
{
    int sum = dot(pc);
    bool predicted = sum >= 0;
    if (predicted != taken || (sum < threshold && sum > -threshold)) {
        int8_t *row = &weights[rowOf(pc) * (historyBits + 1)];
        auto adjust = [](int8_t &w, bool agree) {
            if (agree && w < 127)
                ++w;
            if (!agree && w > -127)
                --w;
        };
        adjust(row[0], taken);
        for (unsigned i = 0; i < historyBits; ++i) {
            bool h = (history >> i) & 1;
            adjust(row[i + 1], h == taken);
        }
    }
    history = (history << 1) | (taken ? 1 : 0);
}

Btb::Btb(uint32_t entries, uint32_t ways)
    : numSets(entries / ways), numWays(ways)
{
    EIP_ASSERT(isPowerOf2(numSets), "BTB set count must be a power of 2");
    table.resize(static_cast<size_t>(numSets) * numWays);
}

Addr
Btb::lookup(Addr pc)
{
    size_t base = ((pc >> 2) & (numSets - 1)) * numWays;
    for (uint32_t w = 0; w < numWays; ++w) {
        Entry &e = table[base + w];
        if (e.valid && e.pc == pc) {
            e.lastUse = ++clock;
            return e.target;
        }
    }
    return 0;
}

void
Btb::update(Addr pc, Addr target)
{
    size_t base = ((pc >> 2) & (numSets - 1)) * numWays;
    Entry *victim = nullptr;
    for (uint32_t w = 0; w < numWays; ++w) {
        Entry &e = table[base + w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lastUse = ++clock;
            return;
        }
        if (!e.valid) {
            if (victim == nullptr || victim->valid)
                victim = &e;
        } else if (victim == nullptr ||
                   (victim->valid && e.lastUse < victim->lastUse)) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lastUse = ++clock;
}

IndirectTargetCache::IndirectTargetCache(uint32_t entries)
    : table(entries, 0)
{
    EIP_ASSERT(isPowerOf2(entries), "ITC size must be a power of 2");
}

size_t
IndirectTargetCache::index(Addr pc) const
{
    return ((pc >> 2) ^ pathHistory) & (table.size() - 1);
}

Addr
IndirectTargetCache::predict(Addr pc) const
{
    return table[index(pc)];
}

void
IndirectTargetCache::update(Addr pc, Addr target)
{
    table[index(pc)] = target;
    pathHistory = ((pathHistory << 3) ^ (target >> 2)) & (table.size() - 1);
}

} // namespace eip::sim
