#include "sim/stats.hh"

#include "obs/registry.hh"

namespace eip::sim {

void
registerCacheStats(obs::CounterRegistry &reg, const std::string &prefix,
                   const CacheStats &stats)
{
    const CacheStats *s = &stats;
    auto name = [&prefix](const char *field) { return prefix + "." + field; };

    reg.counter(name("demand_accesses"), &s->demandAccesses);
    reg.counter(name("demand_hits"), &s->demandHits);
    reg.counter(name("demand_misses"), &s->demandMisses);
    reg.counter(name("mshr_merges"), &s->mshrMerges);
    reg.counter(name("prefetch_requested"), &s->prefetchRequested);
    reg.counter(name("prefetch_dropped_full"), &s->prefetchDroppedFull);
    reg.counter(name("prefetch_filtered"), &s->prefetchFiltered);
    reg.counter(name("prefetch_drop_dup_queued"),
                &s->prefetchDropDupQueued);
    reg.counter(name("prefetch_drop_dup_cached"),
                &s->prefetchDropDupCached);
    reg.counter(name("prefetch_drop_dup_inflight"),
                &s->prefetchDropDupInflight);
    reg.counter(name("prefetch_mshr_deferrals"),
                &s->prefetchMshrDeferrals);
    reg.counter(name("prefetch_issued"), &s->prefetchIssued);
    reg.counter(name("useful_prefetches"), &s->usefulPrefetches);
    reg.counter(name("late_prefetches"), &s->latePrefetches);
    reg.counter(name("wrong_prefetches"), &s->wrongPrefetches);
    reg.counter(name("fills"), &s->fills);
    reg.counter(name("evictions"), &s->evictions);
    reg.counter(name("write_accesses"), &s->writeAccesses);
    reg.counter(name("wrong_path_accesses"), &s->wrongPathAccesses);
    reg.counter(name("wrong_path_misses"), &s->wrongPathMisses);
    reg.counter(name("miss_latency_sum"), &s->missLatencySum);
    reg.counter(name("misses_short"), [s]() { return s->missesShort(); });
    reg.counter(name("misses_medium"), [s]() { return s->missesMedium(); });
    reg.counter(name("misses_long"), [s]() { return s->missesLong(); });

    reg.gauge(name("miss_ratio"), [s]() { return s->missRatio(); });
    reg.gauge(name("coverage"), [s]() { return s->coverage(); });
    reg.gauge(name("accuracy"), [s]() { return s->accuracy(); });

    reg.histogram(name("miss_latency"), &s->missLatency);
}

void
registerSimStats(obs::CounterRegistry &reg, const SimStats &stats)
{
    const SimStats *s = &stats;

    reg.counter("cpu.instructions", &s->instructions);
    reg.counter("cpu.cycles", &s->cycles);
    reg.counter("cpu.branches", &s->branches);
    reg.counter("cpu.branch_mispredicts", &s->branchMispredicts);
    reg.counter("cpu.btb_misses", &s->btbMisses);
    reg.counter("cpu.fetch_stall_line_miss", &s->fetchStallLineMiss);
    reg.counter("cpu.fetch_stall_ftq_empty",
                [s]() { return s->fetchStallFtqEmpty(); });
    reg.counter("cpu.fetch_stall_ftq_empty_mispredict",
                &s->fetchStallFtqEmptyMispredict);
    reg.counter("cpu.fetch_stall_ftq_empty_starved",
                &s->fetchStallFtqEmptyStarved);
    reg.counter("cpu.fetch_stall_rob_full", &s->fetchStallRobFull);
    reg.counter("cpu.fetch_idle_cycles", &s->fetchIdleCycles);
    reg.counter("dram.accesses", &s->dramAccesses);

    reg.gauge("cpu.ipc", [s]() { return s->ipc(); });
    reg.gauge("l1i.mpki", [s]() { return s->l1iMpki(); });

    registerCacheStats(reg, "l1i", s->l1i);
    registerCacheStats(reg, "l1d", s->l1d);
    registerCacheStats(reg, "l2", s->l2);
    registerCacheStats(reg, "llc", s->llc);
}

} // namespace eip::sim
