/**
 * @file
 * Main-memory model: fixed base latency plus randomized row-miss jitter.
 * The latency *variation* matters to the paper (it is why the Entangling
 * prefetcher carries per-destination confidence), so the jitter is on by
 * default.
 */

#ifndef EIP_SIM_DRAM_HH
#define EIP_SIM_DRAM_HH

#include "sim/types.hh"
#include "util/rng.hh"

namespace eip::sim {

/** Simple DRAM: returns the cycle at which a request's data is available. */
class Dram
{
  public:
    Dram(uint32_t base_latency, uint32_t jitter, uint64_t seed = 0xD3A3)
        : baseLatency(base_latency), jitter_(jitter), rng(seed)
    {}

    /** Perform an access issued at @p now; returns the data-ready cycle. */
    Cycle
    access(Cycle now)
    {
        ++accesses_;
        Cycle extra = 0;
        if (jitter_ > 0 && rng.chance(0.3))
            extra = rng.below(jitter_);
        return now + baseLatency + extra;
    }

    uint64_t accesses() const { return accesses_; }

    /**
     * Expected latency of one access, for functional warming: the jitter
     * RNG and the access counter must not advance outside detailed
     * windows (sampled and full runs share the RNG stream per timed
     * access), so warming charges the distribution's mean instead of
     * drawing from it: base + P(jitter) * E[below(jitter)].
     */
    Cycle
    warmLatency() const
    {
        Cycle expected_extra =
            jitter_ > 0 ? (3 * static_cast<Cycle>(jitter_ - 1)) / 20 : 0;
        return baseLatency + expected_extra;
    }

  private:
    uint32_t baseLatency;
    uint32_t jitter_;
    Rng rng;
    uint64_t accesses_ = 0;
};

} // namespace eip::sim

#endif // EIP_SIM_DRAM_HH
