#include "sim/cache.hh"

#include <algorithm>

#include "check/invariants.hh"
#include "obs/trace.hh"
#include "obs/why.hh"
#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::sim {

namespace {

/** Record a demand miss's consumer-observed latency (full distribution;
 *  the short/medium/long classes are derived views, see CacheStats). */
void
classifyMiss(CacheStats &stats, Cycle ready, Cycle now)
{
    uint64_t wait = ready > now ? ready - now : 0;
    stats.missLatencySum += wait;
    stats.missLatency.record(wait);
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : cfg(config), numSets(config.sets()),
      pq(std::max<uint32_t>(1, config.pqEntries))
{
    EIP_ASSERT(isPowerOf2(numSets), "cache set count must be a power of 2");
    EIP_ASSERT(cfg.ways >= 1, "cache needs at least one way");
    lines.resize(static_cast<size_t>(numSets) * cfg.ways);
    tags_.assign(lines.size(), kNoTag);
    uint32_t mshr_count = cfg.mshrEntries == 0 ? 4096 : cfg.mshrEntries;
    mshrs.resize(mshr_count);
    drainScratch_.reserve(mshr_count);
}

Cache::Line *
Cache::findLine(Addr line)
{
    size_t base = static_cast<size_t>(setIndex(line)) * cfg.ways;
    const Addr *tags = &tags_[base];
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        if (tags[w] == line)
            return &lines[base + w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line) const
{
    size_t base = static_cast<size_t>(setIndex(line)) * cfg.ways;
    const Addr *tags = &tags_[base];
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        if (tags[w] == line)
            return &lines[base + w];
    }
    return nullptr;
}

Cache::Mshr *
Cache::findMshr(Addr line)
{
    // Early-exit once every live entry has been seen: allocMshr hands out
    // the lowest free slot, so live entries cluster at the low indices and
    // the scan rarely walks the whole file (inflightFills_ is kept exact —
    // see the mshr_accounting invariant).
    uint64_t remaining = inflightFills_;
    for (auto &m : mshrs) {
        if (remaining == 0)
            break;
        if (!m.valid)
            continue;
        if (m.line == line)
            return &m;
        --remaining;
    }
    return nullptr;
}

Cache::Mshr *
Cache::allocMshr()
{
    for (auto &m : mshrs) {
        if (!m.valid)
            return &m;
    }
    return nullptr;
}

uint32_t
Cache::freeMshrs() const
{
    return static_cast<uint32_t>(mshrs.size() - inflightFills_);
}

Cycle
Cache::fetchFromBelow(Addr line, Addr pc, Cycle now)
{
    if (nextLevel != nullptr)
        return nextLevel->demandAccess(line, pc, now).ready;
    EIP_ASSERT(dram_ != nullptr, "last-level cache has no DRAM attached");
    return dram_->access(now);
}

Cache::Line *
Cache::chooseVictim(size_t set_base)
{
    Line *set = &lines[set_base];
    // Invalid ways always win (first one, as before). The tag array
    // mirrors validity (kNoTag), so this scan reads one packed host
    // line instead of striding through the Line structs.
    const Addr *tags = &tags_[set_base];
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        if (tags[w] == kNoTag)
            return &set[w];
    }
    switch (cfg.replacement) {
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo: {
        // Same victim rule (smallest stamp); they differ in touchLine().
        Line *victim = set;
        for (uint32_t w = 1; w < cfg.ways; ++w) {
            if (set[w].lastUse < victim->lastUse)
                victim = &set[w];
        }
        return victim;
      }
      case ReplacementPolicy::Random: {
        // xorshift64 step.
        victimSeed ^= victimSeed << 13;
        victimSeed ^= victimSeed >> 7;
        victimSeed ^= victimSeed << 17;
        return &set[victimSeed % cfg.ways];
      }
      case ReplacementPolicy::Srrip: {
        // Find (ageing as needed) a line with the maximum RRPV. RRPV is
        // 2 bits and every resident line is <= 3, so one pass can age
        // any way to 3; more than a handful of passes means the ageing
        // stopped converging.
        for (int pass = 0;; ++pass) {
            EIP_ASSERT(pass <= 4, "SRRIP ageing loop did not converge");
            for (uint32_t w = 0; w < cfg.ways; ++w) {
                if (set[w].rrpv >= 3)
                    return &set[w];
            }
            for (uint32_t w = 0; w < cfg.ways; ++w)
                ++set[w].rrpv;
        }
      }
    }
    return set;
}

void
Cache::touchLine(Line &line)
{
    switch (cfg.replacement) {
      case ReplacementPolicy::Lru:
        line.lastUse = ++lruClock;
        break;
      case ReplacementPolicy::Fifo:
      case ReplacementPolicy::Random:
        break; // no promotion on hit
      case ReplacementPolicy::Srrip:
        line.rrpv = 0;
        break;
    }
}

void
Cache::installLine(const Mshr &entry)
{
    size_t base = static_cast<size_t>(setIndex(entry.line)) * cfg.ways;
    Line *victim = chooseVictim(base);

    CacheFillInfo info;
    info.line = entry.line;
    info.cycle = entry.ready;
    info.byPrefetch = entry.isPrefetch;
    info.demandHappened = entry.demandTouched;

    if (victim->valid) {
        info.evictedValid = true;
        info.evictedLine = victim->line;
        if (victim->prefetched && !victim->used)
            info.evictedUnusedPrefetch = true;
        // Warming freezes statistics and observers; the prefetcher still
        // sees the full CacheFillInfo (learning continues, counting
        // does not).
        if (!warming_) {
            ++stats_.evictions;
            if (info.evictedUnusedPrefetch) {
                ++stats_.wrongPrefetches;
                if (tracer_ != nullptr)
                    tracer_->pfEvictedUnused(victim->line, entry.ready);
            }
            if (why_ != nullptr) {
                why_->lineEvicted(victim->line,
                                  victim->prefetched && !victim->used,
                                  entry.wrongPath);
            }
        }
    }

    victim->valid = true;
    victim->line = entry.line;
    victim->lastUse = ++lruClock; // LRU stamp == FIFO fill stamp here
    victim->rrpv = 2;             // SRRIP long re-reference insertion
    victim->prefetched = entry.isPrefetch;
    victim->used = entry.demandTouched;
    tags_[static_cast<size_t>(victim - lines.data())] = entry.line;
    if (!warming_) {
        ++stats_.fills;
        if (tracer_ != nullptr && entry.isPrefetch)
            tracer_->pfFilled(entry.line, entry.ready, entry.demandTouched);
        if (why_ != nullptr && entry.isPrefetch)
            why_->prefetchFilled(entry.line);
    }

    if (prefetcher != nullptr)
        prefetcher->onCacheFill(info);
}

void
Cache::drainFills(Cycle now)
{
    // O(1) on the per-cycle fast path: nothing due until the watermark.
    if (nextReady_ > now)
        return;

    // One scan splits the MSHRs into due fills and survivors; the due
    // ones install in (ready, MSHR index) order — exactly the order the
    // old repeated strictly-earliest selection produced — so eviction
    // decisions and fill hooks observe an unchanged timeline.
    drainScratch_.clear();
    Cycle next = kCycleNever;
    uint64_t remaining = inflightFills_; // early-exit as in findMshr()
    for (uint32_t i = 0; i < mshrs.size() && remaining > 0; ++i) {
        const Mshr &m = mshrs[i];
        if (!m.valid)
            continue;
        --remaining;
        if (m.ready <= now)
            drainScratch_.emplace_back(m.ready, i);
        else
            next = std::min(next, m.ready);
    }
    std::sort(drainScratch_.begin(), drainScratch_.end());
    for (const auto &[ready, index] : drainScratch_) {
        (void)ready;
        installLine(mshrs[index]);
        mshrs[index].valid = false;
        --inflightFills_;
    }
    nextReady_ = next;
}

bool
Cache::probe(Addr line) const
{
    return findLine(line) != nullptr;
}

Cache::Access
Cache::demandAccess(Addr line, Addr pc, Cycle now)
{
    now_ = now;
    if (nextReady_ <= now)
        drainFills(now);

    Access result;
    CacheOperateInfo op;
    op.line = line;
    op.triggerPc = pc;
    op.cycle = now;

    if (Line *hit = findLine(line)) {
        ++stats_.demandAccesses;
        ++stats_.demandHits;
        touchLine(*hit);
        if (hit->prefetched && !hit->used) {
            ++stats_.usefulPrefetches;
            op.hitWasPrefetch = true;
            if (tracer_ != nullptr)
                tracer_->pfFirstUse(line, now);
        }
        hit->used = true;
        if (why_ != nullptr)
            why_->demandHit(line);
        result.hit = true;
        result.ready = now + cfg.hitLatency;
        op.hit = true;
        if (prefetcher != nullptr)
            prefetcher->onCacheOperate(op);
        return result;
    }

    if (cfg.idealHit) {
        // Perfect L1I: always hit, but forward the request below so the
        // pollution of the L2/LLC is still modelled (paper §IV-B).
        ++stats_.demandAccesses;
        ++stats_.demandHits;
        ++stats_.prefetchIssued;
        fetchFromBelow(line, pc, now);
        Mshr pseudo;
        pseudo.line = line;
        pseudo.ready = now;
        pseudo.isPrefetch = false;
        pseudo.demandTouched = true;
        installLine(pseudo);
        result.hit = true;
        result.ready = now + cfg.hitLatency;
        return result;
    }

    if (Mshr *inflight = findMshr(line)) {
        ++stats_.demandAccesses;
        ++stats_.demandMisses;
        if (inflight->isPrefetch && !inflight->demandTouched) {
            // The paper's "late prefetch": a demand miss finds the access
            // bit unset in the MSHR entry allocated by a prefetch.
            ++stats_.latePrefetches;
            op.missLatePrefetch = true;
            if (tracer_ != nullptr) {
                tracer_->pfLateUse(line, now,
                                   inflight->ready > now
                                       ? inflight->ready - now
                                       : 0);
            }
        } else {
            ++stats_.mshrMerges;
        }
        if (why_ != nullptr) {
            if (op.missLatePrefetch)
                why_->recordMiss(obs::MissBlame::LatePartial, line, pc);
            else
                classifyDemandMiss(line, pc);
        }
        inflight->demandTouched = true;
        // A demanded fill is no longer wrong-path pollution.
        inflight->wrongPath = false;
        result.ready = std::max(inflight->ready, now + cfg.hitLatency);
        classifyMiss(stats_, result.ready, now);
        if (tracer_ != nullptr) {
            tracer_->demandMiss(line, now,
                                result.ready > now ? result.ready - now
                                                   : 0);
        }
        if (prefetcher != nullptr)
            prefetcher->onCacheOperate(op);
        return result;
    }

    Mshr *slot = allocMshr();
    if (slot == nullptr) {
        result.mshrFull = true;
        result.ready = now + 1;
        return result;
    }

    ++stats_.demandAccesses;
    ++stats_.demandMisses;
    // Classified before onCacheOperate below trains the prefetcher, so
    // blame() sees the table state the miss actually hit.
    if (why_ != nullptr)
        classifyDemandMiss(line, pc);
    slot->valid = true;
    ++inflightFills_;
    slot->line = line;
    slot->isPrefetch = false;
    slot->demandTouched = true;
    slot->wrongPath = false;
    slot->ready = fetchFromBelow(line, pc, now);
    nextReady_ = std::min(nextReady_, slot->ready);
    result.ready = slot->ready;
    classifyMiss(stats_, result.ready, now);
    if (tracer_ != nullptr) {
        tracer_->demandMiss(line, now,
                            result.ready > now ? result.ready - now : 0);
    }
    if (prefetcher != nullptr)
        prefetcher->onCacheOperate(op);
    return result;
}

void
Cache::speculativeAccess(Addr line, Addr pc, Cycle now)
{
    now_ = now;
    if (nextReady_ <= now)
        drainFills(now);
    ++stats_.wrongPathAccesses;

    CacheOperateInfo op;
    op.line = line;
    op.triggerPc = pc;
    op.cycle = now;
    op.speculative = true;

    if (Line *hit = findLine(line)) {
        // Touch the replacement state as real wrong-path fetch would, but
        // leave the prefetch used-bit alone: a speculative touch is not a
        // use.
        touchLine(*hit);
        op.hit = true;
        if (prefetcher != nullptr)
            prefetcher->onCacheOperate(op);
        return;
    }
    ++stats_.wrongPathMisses;
    if (findMshr(line) == nullptr && !cfg.idealHit) {
        if (Mshr *slot = allocMshr()) {
            slot->valid = true;
            ++inflightFills_;
            slot->line = line;
            slot->isPrefetch = false;
            slot->demandTouched = true; // wrong-path fills look demanded
            slot->wrongPath = true;
            slot->ready = fetchFromBelow(line, pc, now);
            nextReady_ = std::min(nextReady_, slot->ready);
        }
    }
    if (prefetcher != nullptr)
        prefetcher->onCacheOperate(op);
}

Cycle
Cache::warmFetchBelow(Addr line, Addr pc, Cycle now)
{
    if (nextLevel != nullptr)
        return nextLevel->warmAccess(line, pc, now);
    EIP_ASSERT(dram_ != nullptr, "last-level cache has no DRAM attached");
    return now + dram_->warmLatency();
}

Cycle
Cache::warmAccess(Addr line, Addr pc, Cycle now)
{
    now_ = now;
    // Fills left in flight by the previous detailed window drain on
    // their own schedule (installLine is statistics-free while warming).
    if (nextReady_ <= now)
        drainFills(now);

    CacheOperateInfo op;
    op.line = line;
    op.triggerPc = pc;
    op.cycle = now;

    if (Line *hit = findLine(line)) {
        touchLine(*hit);
        if (hit->prefetched && !hit->used)
            op.hitWasPrefetch = true;
        hit->used = true;
        op.hit = true;
        if (prefetcher != nullptr)
            prefetcher->onCacheOperate(op);
        return now + cfg.hitLatency;
    }

    if (cfg.idealHit) {
        // Mirror the timed ideal-L1I path: always hit, still pollute the
        // levels below.
        warmFetchBelow(line, pc, now);
        Mshr pseudo;
        pseudo.line = line;
        pseudo.ready = now;
        pseudo.isPrefetch = false;
        pseudo.demandTouched = true;
        installLine(pseudo);
        return now + cfg.hitLatency;
    }

    if (Mshr *inflight = findMshr(line)) {
        // A window-era fill is still in flight; demand-touch it and let
        // it drain when due (installing a second copy now would break
        // mshr_array_disjoint).
        if (inflight->isPrefetch && !inflight->demandTouched)
            op.missLatePrefetch = true;
        inflight->demandTouched = true;
        inflight->wrongPath = false;
        if (prefetcher != nullptr)
            prefetcher->onCacheOperate(op);
        return std::max(inflight->ready, now + cfg.hitLatency);
    }

    // Miss: train the prefetcher first (it records the outstanding miss),
    // then install at the synthetic latency — onCacheFill fires at the
    // cycle a timed fill would have landed, so latency learning sees the
    // same distances as detailed simulation.
    if (warmThrottle_) {
        // Data-side level: contend for a real MSHR so warming thins the
        // miss stream exactly where the timed path abandons accesses
        // (see setWarmMshrThrottle). A dropped access still trained the
        // prefetcher above, like the timed drop did.
        Mshr *slot = allocMshr();
        if (slot == nullptr) {
            if (prefetcher != nullptr)
                prefetcher->onCacheOperate(op);
            return now + cfg.hitLatency + 1;
        }
        slot->valid = true;
        ++inflightFills_;
        slot->line = line;
        slot->isPrefetch = false;
        slot->demandTouched = true;
        slot->ready = warmFetchBelow(line, pc, now);
        nextReady_ = std::min(nextReady_, slot->ready);
        if (prefetcher != nullptr)
            prefetcher->onCacheOperate(op);
        return slot->ready;
    }
    Cycle ready = warmFetchBelow(line, pc, now);
    if (prefetcher != nullptr)
        prefetcher->onCacheOperate(op);
    // The miss hook may have functionally prefetched the missing line
    // itself (enqueuePrefetch installs immediately while warming; the
    // timed path is protected by the demand MSHR allocated before its
    // hook fires). Installing a second copy would corrupt the set, so
    // adopt the prefetched copy as demand-touched instead.
    if (Line *filled = findLine(line)) {
        touchLine(*filled);
        filled->used = true;
        return ready;
    }
    Mshr pseudo;
    pseudo.line = line;
    pseudo.ready = ready;
    pseudo.isPrefetch = false;
    pseudo.demandTouched = true;
    installLine(pseudo);
    return ready;
}

bool
Cache::enqueuePrefetch(Addr line)
{
    if (warming_) {
        // Functional prefetch: skip the queue and MSHRs, install the
        // line with its prefetch bit set, and fire the issue/fill hooks
        // at the synthetic latency so confidence learning continues.
        // The same duplicate filters as the timed issue path apply.
        if (findLine(line) != nullptr || findMshr(line) != nullptr)
            return false;
        Cycle ready = warmFetchBelow(line, /*pc=*/0, now_);
        if (prefetcher != nullptr)
            prefetcher->onPrefetchIssued(line, now_);
        // The issue hook may itself have prefetched this line through a
        // re-entrant enqueuePrefetch — never install a second copy.
        if (findLine(line) != nullptr)
            return true;
        Mshr pseudo;
        pseudo.line = line;
        pseudo.ready = ready;
        pseudo.isPrefetch = true;
        pseudo.demandTouched = false;
        installLine(pseudo);
        return true;
    }
    ++stats_.prefetchRequested;
    if (tracer_ != nullptr)
        tracer_->pfRequested(line, now_);
    if (cfg.pqEntries == 0) {
        ++stats_.prefetchDroppedFull;
        if (tracer_ != nullptr)
            tracer_->pfDropped(line, now_, obs::PfDropReason::QueueFull);
        if (why_ != nullptr)
            why_->prefetchDropped(line, obs::PfDropReason::QueueFull);
        return false;
    }
    // Duplicate suppression inside the queue (small, linear scan is fine).
    for (const auto &e : pq) {
        if (e.line == line) {
            ++stats_.prefetchFiltered;
            ++stats_.prefetchDropDupQueued;
            if (tracer_ != nullptr) {
                tracer_->pfDropped(line, now_,
                                   obs::PfDropReason::DupQueued);
            }
            if (why_ != nullptr)
                why_->prefetchDropped(line, obs::PfDropReason::DupQueued);
            return false;
        }
    }
    if (pq.size() >= cfg.pqEntries) {
        ++stats_.prefetchDroppedFull;
        if (tracer_ != nullptr)
            tracer_->pfDropped(line, now_, obs::PfDropReason::QueueFull);
        if (why_ != nullptr)
            why_->prefetchDropped(line, obs::PfDropReason::QueueFull);
        return false;
    }
    pq.push_back(PqEntry{line});
    if (tracer_ != nullptr)
        tracer_->pfQueued(line, now_);
    if (why_ != nullptr)
        why_->prefetchQueued(line);
    return true;
}

void
Cache::issuePrefetches(Cycle now)
{
    uint32_t budget = cfg.pqIssuePerCycle;
    while (budget > 0 && !pq.empty()) {
        Addr line = pq.front().line;
        if (findLine(line) != nullptr) {
            ++stats_.prefetchFiltered;
            ++stats_.prefetchDropDupCached;
            if (tracer_ != nullptr)
                tracer_->pfDropped(line, now, obs::PfDropReason::DupCached);
            if (why_ != nullptr)
                why_->prefetchDropped(line, obs::PfDropReason::DupCached);
            pq.pop_front();
            continue;
        }
        if (findMshr(line) != nullptr) {
            ++stats_.prefetchFiltered;
            ++stats_.prefetchDropDupInflight;
            if (tracer_ != nullptr) {
                tracer_->pfDropped(line, now,
                                   obs::PfDropReason::DupInflight);
            }
            if (why_ != nullptr)
                why_->prefetchDropped(line,
                                      obs::PfDropReason::DupInflight);
            pq.pop_front();
            continue;
        }
        if (freeMshrs() <= cfg.pfMshrReserve) {
            // Keep demand-reserved MSHRs free; the request stays queued
            // and retries next cycle — a deferral, not a drop.
            ++stats_.prefetchMshrDeferrals;
            if (tracer_ != nullptr)
                tracer_->pfMshrDefer(line, now);
            return;
        }
        Mshr *slot = allocMshr();
        if (slot == nullptr)
            return;
        slot->valid = true;
        ++inflightFills_;
        slot->line = line;
        slot->isPrefetch = true;
        slot->demandTouched = false;
        slot->wrongPath = false;
        slot->ready = fetchFromBelow(line, /*pc=*/0, now);
        nextReady_ = std::min(nextReady_, slot->ready);
        ++stats_.prefetchIssued;
        if (tracer_ != nullptr)
            tracer_->pfIssued(line, now);
        if (prefetcher != nullptr)
            prefetcher->onPrefetchIssued(line, now);
        pq.pop_front();
        --budget;
    }
}

void
Cache::registerInvariants(check::Invariants &inv, const std::string &prefix)
{
    // MSHR occupancy == in-flight fills: every allocation site increments
    // inflightFills_ and every drained fill decrements it, so a leaked or
    // double-freed MSHR shows up as a recount mismatch.
    inv.add(prefix + ".mshr_accounting", [this](std::string &detail) {
        uint64_t valid = 0;
        for (const auto &m : mshrs)
            valid += m.valid ? 1 : 0;
        if (valid == inflightFills_)
            return true;
        detail = "valid_mshrs=" + std::to_string(valid) +
                 " inflight_fills=" + std::to_string(inflightFills_);
        return false;
    });

    // The fill watermark is exact (allocation sites min it down,
    // drainFills recomputes it), and no completed fill lingers past a
    // tick/access boundary — fills drain only there, never from probes.
    inv.add(prefix + ".no_overdue_fills", [this](std::string &detail) {
        Cycle min_ready = kCycleNever;
        for (const auto &m : mshrs) {
            if (m.valid)
                min_ready = std::min(min_ready, m.ready);
        }
        if (nextReady_ != min_ready) {
            detail = "watermark=" + std::to_string(nextReady_) +
                     " recounted_min=" + std::to_string(min_ready);
            return false;
        }
        if (min_ready <= now_) {
            detail = "fill ready at " + std::to_string(min_ready) +
                     " still undrained at cycle " + std::to_string(now_);
            return false;
        }
        return true;
    });

    // No duplicate lines among in-flight fills, and no line both resident
    // in the array and in flight (a fill for a resident line would install
    // a duplicate copy). The prefetch queue is deliberately NOT part of
    // this disjointness: queued requests are filtered against the array
    // and the MSHRs at issue time, so transient overlap there is legal.
    inv.add(prefix + ".mshr_array_disjoint", [this](std::string &detail) {
        std::vector<Addr> inflight;
        for (const auto &m : mshrs) {
            if (m.valid)
                inflight.push_back(m.line);
        }
        std::sort(inflight.begin(), inflight.end());
        for (size_t i = 1; i < inflight.size(); ++i) {
            if (inflight[i] == inflight[i - 1]) {
                detail = "duplicate in-flight line " +
                         std::to_string(inflight[i]);
                return false;
            }
        }
        for (Addr line : inflight) {
            if (findLine(line) != nullptr) {
                detail = "line " + std::to_string(line) +
                         " both resident and in flight";
                return false;
            }
        }
        return true;
    });

    // Prefetch-queue bounds and intra-queue duplicate suppression
    // (enqueuePrefetch drops duplicates before they enter).
    inv.add(prefix + ".pq_consistency", [this](std::string &detail) {
        if (cfg.pqEntries == 0 && !pq.empty()) {
            detail = "disabled queue holds " + std::to_string(pq.size()) +
                     " entries";
            return false;
        }
        if (cfg.pqEntries != 0 && pq.size() > cfg.pqEntries) {
            detail = "occupancy " + std::to_string(pq.size()) + " > " +
                     std::to_string(cfg.pqEntries);
            return false;
        }
        for (size_t i = 0; i < pq.size(); ++i) {
            for (size_t j = i + 1; j < pq.size(); ++j) {
                if (pq[i].line == pq[j].line) {
                    detail = "duplicate queued line " +
                             std::to_string(pq[i].line);
                    return false;
                }
            }
        }
        return true;
    });

    // Set-array audit, one set per call (rotating cursor): valid lines
    // map to the set they sit in, and no set holds the same line twice.
    inv.add(prefix + ".array_set_audit", [this](std::string &detail) {
        uint32_t set = auditSet_;
        auditSet_ = (auditSet_ + 1) % numSets;
        size_t base = static_cast<size_t>(set) * cfg.ways;
        for (uint32_t w = 0; w < cfg.ways; ++w) {
            const Line &entry = lines[base + w];
            // The parallel tag array must mirror the way exactly; a
            // desync would make findLine disagree with the line array.
            Addr expect = entry.valid ? entry.line : kNoTag;
            if (tags_[base + w] != expect) {
                detail = "tag array desync in set " + std::to_string(set) +
                         " way " + std::to_string(w) + ": tag=" +
                         std::to_string(tags_[base + w]) + " expected " +
                         std::to_string(expect);
                return false;
            }
            if (!entry.valid)
                continue;
            if (setIndex(entry.line) != set) {
                detail = "line " + std::to_string(entry.line) +
                         " stored in set " + std::to_string(set) +
                         " but maps to set " +
                         std::to_string(setIndex(entry.line));
                return false;
            }
            for (uint32_t v = w + 1; v < cfg.ways; ++v) {
                const Line &other = lines[base + v];
                if (other.valid && other.line == entry.line) {
                    detail = "line " + std::to_string(entry.line) +
                             " duplicated in set " + std::to_string(set);
                    return false;
                }
            }
        }
        return true;
    });

    // Stats identities: the inputs of missRatio()/coverage()/accuracy()
    // must stay mutually consistent (they all reset together at the
    // warm-up boundary, so the identities hold at every cycle).
    inv.add(prefix + ".stats_identities", [this](std::string &detail) {
        const CacheStats &s = stats_;
        if (s.demandAccesses != s.demandHits + s.demandMisses) {
            detail = "accesses=" + std::to_string(s.demandAccesses) +
                     " != hits=" + std::to_string(s.demandHits) +
                     " + misses=" + std::to_string(s.demandMisses);
            return false;
        }
        if (s.prefetchFiltered != s.prefetchDropDupQueued +
                                      s.prefetchDropDupCached +
                                      s.prefetchDropDupInflight) {
            detail = "filtered=" + std::to_string(s.prefetchFiltered) +
                     " != dup_queued=" +
                     std::to_string(s.prefetchDropDupQueued) +
                     " + dup_cached=" +
                     std::to_string(s.prefetchDropDupCached) +
                     " + dup_inflight=" +
                     std::to_string(s.prefetchDropDupInflight);
            return false;
        }
        if (s.latePrefetches > s.demandMisses) {
            // coverage()'s uncoveredMisses() would underflow.
            detail = "late=" + std::to_string(s.latePrefetches) +
                     " > misses=" + std::to_string(s.demandMisses);
            return false;
        }
        if (s.missLatency.total() != s.demandMisses) {
            detail = "latency_histogram_total=" +
                     std::to_string(s.missLatency.total()) +
                     " != misses=" + std::to_string(s.demandMisses);
            return false;
        }
        if (s.wrongPathMisses > s.wrongPathAccesses) {
            detail = "wrong_path_misses=" +
                     std::to_string(s.wrongPathMisses) + " > accesses=" +
                     std::to_string(s.wrongPathAccesses);
            return false;
        }
        return true;
    });
}

void
Cache::classifyDemandMiss(Addr line, Addr pc)
{
    obs::MissBlame verdict = why_->classifyShadow(line);
    if (verdict == obs::MissBlame::None && prefetcher != nullptr)
        verdict = prefetcher->blame(line, pc);
    if (verdict == obs::MissBlame::None) {
        verdict = why_->seenBefore(line) ? obs::MissBlame::NeverPredicted
                                         : obs::MissBlame::NotYetLearned;
    }
    why_->recordMiss(verdict, line, pc);
}

obs::EventTracer *
Prefetcher::tracer() const
{
    return owner != nullptr ? owner->tracer() : nullptr;
}

obs::MissBlame
Prefetcher::blame(Addr line, Addr pc)
{
    (void)line;
    (void)pc;
    return obs::MissBlame::None;
}

obs::MissAttribution *
Prefetcher::why() const
{
    return owner != nullptr ? owner->why() : nullptr;
}

} // namespace eip::sim
