#include "sim/cache.hh"

#include <algorithm>

#include "check/invariants.hh"
#include "obs/trace.hh"
#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::sim {

namespace {

/** Record a demand miss's consumer-observed latency (full distribution;
 *  the short/medium/long classes are derived views, see CacheStats). */
void
classifyMiss(CacheStats &stats, Cycle ready, Cycle now)
{
    uint64_t wait = ready > now ? ready - now : 0;
    stats.missLatencySum += wait;
    stats.missLatency.record(wait);
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : cfg(config), numSets(config.sets())
{
    EIP_ASSERT(isPowerOf2(numSets), "cache set count must be a power of 2");
    EIP_ASSERT(cfg.ways >= 1, "cache needs at least one way");
    lines.resize(static_cast<size_t>(numSets) * cfg.ways);
    uint32_t mshr_count = cfg.mshrEntries == 0 ? 4096 : cfg.mshrEntries;
    mshrs.resize(mshr_count);
}

Cache::Line *
Cache::findLine(Addr line)
{
    size_t base = static_cast<size_t>(setIndex(line)) * cfg.ways;
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        Line &entry = lines[base + w];
        if (entry.valid && entry.line == line)
            return &entry;
    }
    return nullptr;
}

Cache::Mshr *
Cache::findMshr(Addr line)
{
    for (auto &m : mshrs) {
        if (m.valid && m.line == line)
            return &m;
    }
    return nullptr;
}

Cache::Mshr *
Cache::allocMshr()
{
    for (auto &m : mshrs) {
        if (!m.valid)
            return &m;
    }
    return nullptr;
}

uint32_t
Cache::freeMshrs() const
{
    uint32_t free = 0;
    for (const auto &m : mshrs)
        free += m.valid ? 0 : 1;
    return free;
}

Cycle
Cache::fetchFromBelow(Addr line, Addr pc, Cycle now)
{
    if (nextLevel != nullptr)
        return nextLevel->demandAccess(line, pc, now).ready;
    EIP_ASSERT(dram_ != nullptr, "last-level cache has no DRAM attached");
    return dram_->access(now);
}

Cache::Line *
Cache::chooseVictim(size_t set_base)
{
    // Invalid ways always win.
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        if (!lines[set_base + w].valid)
            return &lines[set_base + w];
    }
    switch (cfg.replacement) {
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo: {
        // Same victim rule (smallest stamp); they differ in touchLine().
        Line *victim = &lines[set_base];
        for (uint32_t w = 1; w < cfg.ways; ++w) {
            if (lines[set_base + w].lastUse < victim->lastUse)
                victim = &lines[set_base + w];
        }
        return victim;
      }
      case ReplacementPolicy::Random: {
        // xorshift64 step.
        victimSeed ^= victimSeed << 13;
        victimSeed ^= victimSeed >> 7;
        victimSeed ^= victimSeed << 17;
        return &lines[set_base + victimSeed % cfg.ways];
      }
      case ReplacementPolicy::Srrip: {
        // Find (ageing as needed) a line with the maximum RRPV.
        while (true) {
            for (uint32_t w = 0; w < cfg.ways; ++w) {
                if (lines[set_base + w].rrpv >= 3)
                    return &lines[set_base + w];
            }
            for (uint32_t w = 0; w < cfg.ways; ++w)
                ++lines[set_base + w].rrpv;
        }
      }
    }
    return &lines[set_base];
}

void
Cache::touchLine(Line &line)
{
    switch (cfg.replacement) {
      case ReplacementPolicy::Lru:
        line.lastUse = ++lruClock;
        break;
      case ReplacementPolicy::Fifo:
      case ReplacementPolicy::Random:
        break; // no promotion on hit
      case ReplacementPolicy::Srrip:
        line.rrpv = 0;
        break;
    }
}

void
Cache::installLine(const Mshr &entry)
{
    size_t base = static_cast<size_t>(setIndex(entry.line)) * cfg.ways;
    Line *victim = chooseVictim(base);

    CacheFillInfo info;
    info.line = entry.line;
    info.cycle = entry.ready;
    info.byPrefetch = entry.isPrefetch;
    info.demandHappened = entry.demandTouched;

    if (victim->valid) {
        ++stats_.evictions;
        info.evictedValid = true;
        info.evictedLine = victim->line;
        if (victim->prefetched && !victim->used) {
            ++stats_.wrongPrefetches;
            info.evictedUnusedPrefetch = true;
            if (tracer_ != nullptr)
                tracer_->pfEvictedUnused(victim->line, entry.ready);
        }
    }

    victim->valid = true;
    victim->line = entry.line;
    victim->lastUse = ++lruClock; // LRU stamp == FIFO fill stamp here
    victim->rrpv = 2;             // SRRIP long re-reference insertion
    victim->prefetched = entry.isPrefetch;
    victim->used = entry.demandTouched;
    ++stats_.fills;
    if (tracer_ != nullptr && entry.isPrefetch)
        tracer_->pfFilled(entry.line, entry.ready, entry.demandTouched);

    if (prefetcher != nullptr)
        prefetcher->onCacheFill(info);
}

void
Cache::drainFills(Cycle now)
{
    // Process completed misses in arrival order so eviction decisions and
    // fill hooks observe a consistent timeline.
    while (true) {
        Mshr *earliest = nullptr;
        for (auto &m : mshrs) {
            if (m.valid && m.ready <= now &&
                (earliest == nullptr || m.ready < earliest->ready)) {
                earliest = &m;
            }
        }
        if (earliest == nullptr)
            return;
        installLine(*earliest);
        earliest->valid = false;
        --inflightFills_;
    }
}

bool
Cache::probe(Addr line, Cycle now)
{
    now_ = now;
    drainFills(now);
    return findLine(line) != nullptr;
}

Cache::Access
Cache::demandAccess(Addr line, Addr pc, Cycle now)
{
    now_ = now;
    drainFills(now);

    Access result;
    CacheOperateInfo op;
    op.line = line;
    op.triggerPc = pc;
    op.cycle = now;

    if (Line *hit = findLine(line)) {
        ++stats_.demandAccesses;
        ++stats_.demandHits;
        touchLine(*hit);
        if (hit->prefetched && !hit->used) {
            ++stats_.usefulPrefetches;
            op.hitWasPrefetch = true;
            if (tracer_ != nullptr)
                tracer_->pfFirstUse(line, now);
        }
        hit->used = true;
        result.hit = true;
        result.ready = now + cfg.hitLatency;
        op.hit = true;
        if (prefetcher != nullptr)
            prefetcher->onCacheOperate(op);
        return result;
    }

    if (cfg.idealHit) {
        // Perfect L1I: always hit, but forward the request below so the
        // pollution of the L2/LLC is still modelled (paper §IV-B).
        ++stats_.demandAccesses;
        ++stats_.demandHits;
        ++stats_.prefetchIssued;
        fetchFromBelow(line, pc, now);
        Mshr pseudo;
        pseudo.line = line;
        pseudo.ready = now;
        pseudo.isPrefetch = false;
        pseudo.demandTouched = true;
        installLine(pseudo);
        result.hit = true;
        result.ready = now + cfg.hitLatency;
        return result;
    }

    if (Mshr *inflight = findMshr(line)) {
        ++stats_.demandAccesses;
        ++stats_.demandMisses;
        if (inflight->isPrefetch && !inflight->demandTouched) {
            // The paper's "late prefetch": a demand miss finds the access
            // bit unset in the MSHR entry allocated by a prefetch.
            ++stats_.latePrefetches;
            op.missLatePrefetch = true;
            if (tracer_ != nullptr) {
                tracer_->pfLateUse(line, now,
                                   inflight->ready > now
                                       ? inflight->ready - now
                                       : 0);
            }
        } else {
            ++stats_.mshrMerges;
        }
        inflight->demandTouched = true;
        result.ready = std::max(inflight->ready, now + cfg.hitLatency);
        classifyMiss(stats_, result.ready, now);
        if (tracer_ != nullptr) {
            tracer_->demandMiss(line, now,
                                result.ready > now ? result.ready - now
                                                   : 0);
        }
        if (prefetcher != nullptr)
            prefetcher->onCacheOperate(op);
        return result;
    }

    Mshr *slot = allocMshr();
    if (slot == nullptr) {
        result.mshrFull = true;
        result.ready = now + 1;
        return result;
    }

    ++stats_.demandAccesses;
    ++stats_.demandMisses;
    slot->valid = true;
    ++inflightFills_;
    slot->line = line;
    slot->isPrefetch = false;
    slot->demandTouched = true;
    slot->ready = fetchFromBelow(line, pc, now);
    result.ready = slot->ready;
    classifyMiss(stats_, result.ready, now);
    if (tracer_ != nullptr) {
        tracer_->demandMiss(line, now,
                            result.ready > now ? result.ready - now : 0);
    }
    if (prefetcher != nullptr)
        prefetcher->onCacheOperate(op);
    return result;
}

void
Cache::speculativeAccess(Addr line, Addr pc, Cycle now)
{
    now_ = now;
    drainFills(now);
    ++stats_.wrongPathAccesses;

    CacheOperateInfo op;
    op.line = line;
    op.triggerPc = pc;
    op.cycle = now;
    op.speculative = true;

    if (Line *hit = findLine(line)) {
        // Touch the replacement state as real wrong-path fetch would, but
        // leave the prefetch used-bit alone: a speculative touch is not a
        // use.
        touchLine(*hit);
        op.hit = true;
        if (prefetcher != nullptr)
            prefetcher->onCacheOperate(op);
        return;
    }
    ++stats_.wrongPathMisses;
    if (findMshr(line) == nullptr && !cfg.idealHit) {
        if (Mshr *slot = allocMshr()) {
            slot->valid = true;
            ++inflightFills_;
            slot->line = line;
            slot->isPrefetch = false;
            slot->demandTouched = true; // wrong-path fills look demanded
            slot->ready = fetchFromBelow(line, pc, now);
        }
    }
    if (prefetcher != nullptr)
        prefetcher->onCacheOperate(op);
}

bool
Cache::enqueuePrefetch(Addr line)
{
    ++stats_.prefetchRequested;
    if (tracer_ != nullptr)
        tracer_->pfRequested(line, now_);
    if (cfg.pqEntries == 0) {
        ++stats_.prefetchDroppedFull;
        if (tracer_ != nullptr)
            tracer_->pfDropped(line, now_, obs::PfDropReason::QueueFull);
        return false;
    }
    // Duplicate suppression inside the queue (small, linear scan is fine).
    for (const auto &e : pq) {
        if (e.line == line) {
            ++stats_.prefetchFiltered;
            ++stats_.prefetchDropDupQueued;
            if (tracer_ != nullptr) {
                tracer_->pfDropped(line, now_,
                                   obs::PfDropReason::DupQueued);
            }
            return false;
        }
    }
    if (pq.size() >= cfg.pqEntries) {
        ++stats_.prefetchDroppedFull;
        if (tracer_ != nullptr)
            tracer_->pfDropped(line, now_, obs::PfDropReason::QueueFull);
        return false;
    }
    pq.push_back(PqEntry{line});
    if (tracer_ != nullptr)
        tracer_->pfQueued(line, now_);
    return true;
}

void
Cache::issuePrefetches(Cycle now)
{
    uint32_t budget = cfg.pqIssuePerCycle;
    while (budget > 0 && !pq.empty()) {
        Addr line = pq.front().line;
        if (findLine(line) != nullptr) {
            ++stats_.prefetchFiltered;
            ++stats_.prefetchDropDupCached;
            if (tracer_ != nullptr)
                tracer_->pfDropped(line, now, obs::PfDropReason::DupCached);
            pq.pop_front();
            continue;
        }
        if (findMshr(line) != nullptr) {
            ++stats_.prefetchFiltered;
            ++stats_.prefetchDropDupInflight;
            if (tracer_ != nullptr) {
                tracer_->pfDropped(line, now,
                                   obs::PfDropReason::DupInflight);
            }
            pq.pop_front();
            continue;
        }
        if (freeMshrs() <= cfg.pfMshrReserve) {
            // Keep demand-reserved MSHRs free; the request stays queued
            // and retries next cycle — a deferral, not a drop.
            ++stats_.prefetchMshrDeferrals;
            if (tracer_ != nullptr)
                tracer_->pfMshrDefer(line, now);
            return;
        }
        Mshr *slot = allocMshr();
        if (slot == nullptr)
            return;
        slot->valid = true;
        ++inflightFills_;
        slot->line = line;
        slot->isPrefetch = true;
        slot->demandTouched = false;
        slot->ready = fetchFromBelow(line, /*pc=*/0, now);
        ++stats_.prefetchIssued;
        if (tracer_ != nullptr)
            tracer_->pfIssued(line, now);
        if (prefetcher != nullptr)
            prefetcher->onPrefetchIssued(line, now);
        pq.pop_front();
        --budget;
    }
}

void
Cache::tick(Cycle now)
{
    now_ = now;
    drainFills(now);
    issuePrefetches(now);
    if (prefetcher != nullptr)
        prefetcher->onCycle(now);
}

void
Cache::registerInvariants(check::Invariants &inv, const std::string &prefix)
{
    // MSHR occupancy == in-flight fills: every allocation site increments
    // inflightFills_ and every drained fill decrements it, so a leaked or
    // double-freed MSHR shows up as a recount mismatch.
    inv.add(prefix + ".mshr_accounting", [this](std::string &detail) {
        uint64_t valid = 0;
        for (const auto &m : mshrs)
            valid += m.valid ? 1 : 0;
        if (valid == inflightFills_)
            return true;
        detail = "valid_mshrs=" + std::to_string(valid) +
                 " inflight_fills=" + std::to_string(inflightFills_);
        return false;
    });

    // No duplicate lines among in-flight fills, and no line both resident
    // in the array and in flight (a fill for a resident line would install
    // a duplicate copy). The prefetch queue is deliberately NOT part of
    // this disjointness: queued requests are filtered against the array
    // and the MSHRs at issue time, so transient overlap there is legal.
    inv.add(prefix + ".mshr_array_disjoint", [this](std::string &detail) {
        std::vector<Addr> inflight;
        for (const auto &m : mshrs) {
            if (m.valid)
                inflight.push_back(m.line);
        }
        std::sort(inflight.begin(), inflight.end());
        for (size_t i = 1; i < inflight.size(); ++i) {
            if (inflight[i] == inflight[i - 1]) {
                detail = "duplicate in-flight line " +
                         std::to_string(inflight[i]);
                return false;
            }
        }
        for (Addr line : inflight) {
            if (findLine(line) != nullptr) {
                detail = "line " + std::to_string(line) +
                         " both resident and in flight";
                return false;
            }
        }
        return true;
    });

    // Prefetch-queue bounds and intra-queue duplicate suppression
    // (enqueuePrefetch drops duplicates before they enter).
    inv.add(prefix + ".pq_consistency", [this](std::string &detail) {
        if (cfg.pqEntries == 0 && !pq.empty()) {
            detail = "disabled queue holds " + std::to_string(pq.size()) +
                     " entries";
            return false;
        }
        if (cfg.pqEntries != 0 && pq.size() > cfg.pqEntries) {
            detail = "occupancy " + std::to_string(pq.size()) + " > " +
                     std::to_string(cfg.pqEntries);
            return false;
        }
        for (size_t i = 0; i < pq.size(); ++i) {
            for (size_t j = i + 1; j < pq.size(); ++j) {
                if (pq[i].line == pq[j].line) {
                    detail = "duplicate queued line " +
                             std::to_string(pq[i].line);
                    return false;
                }
            }
        }
        return true;
    });

    // Set-array audit, one set per call (rotating cursor): valid lines
    // map to the set they sit in, and no set holds the same line twice.
    inv.add(prefix + ".array_set_audit", [this](std::string &detail) {
        uint32_t set = auditSet_;
        auditSet_ = (auditSet_ + 1) % numSets;
        size_t base = static_cast<size_t>(set) * cfg.ways;
        for (uint32_t w = 0; w < cfg.ways; ++w) {
            const Line &entry = lines[base + w];
            if (!entry.valid)
                continue;
            if (setIndex(entry.line) != set) {
                detail = "line " + std::to_string(entry.line) +
                         " stored in set " + std::to_string(set) +
                         " but maps to set " +
                         std::to_string(setIndex(entry.line));
                return false;
            }
            for (uint32_t v = w + 1; v < cfg.ways; ++v) {
                const Line &other = lines[base + v];
                if (other.valid && other.line == entry.line) {
                    detail = "line " + std::to_string(entry.line) +
                             " duplicated in set " + std::to_string(set);
                    return false;
                }
            }
        }
        return true;
    });

    // Stats identities: the inputs of missRatio()/coverage()/accuracy()
    // must stay mutually consistent (they all reset together at the
    // warm-up boundary, so the identities hold at every cycle).
    inv.add(prefix + ".stats_identities", [this](std::string &detail) {
        const CacheStats &s = stats_;
        if (s.demandAccesses != s.demandHits + s.demandMisses) {
            detail = "accesses=" + std::to_string(s.demandAccesses) +
                     " != hits=" + std::to_string(s.demandHits) +
                     " + misses=" + std::to_string(s.demandMisses);
            return false;
        }
        if (s.prefetchFiltered != s.prefetchDropDupQueued +
                                      s.prefetchDropDupCached +
                                      s.prefetchDropDupInflight) {
            detail = "filtered=" + std::to_string(s.prefetchFiltered) +
                     " != dup_queued=" +
                     std::to_string(s.prefetchDropDupQueued) +
                     " + dup_cached=" +
                     std::to_string(s.prefetchDropDupCached) +
                     " + dup_inflight=" +
                     std::to_string(s.prefetchDropDupInflight);
            return false;
        }
        if (s.latePrefetches > s.demandMisses) {
            // coverage()'s uncoveredMisses() would underflow.
            detail = "late=" + std::to_string(s.latePrefetches) +
                     " > misses=" + std::to_string(s.demandMisses);
            return false;
        }
        if (s.missLatency.total() != s.demandMisses) {
            detail = "latency_histogram_total=" +
                     std::to_string(s.missLatency.total()) +
                     " != misses=" + std::to_string(s.demandMisses);
            return false;
        }
        if (s.wrongPathMisses > s.wrongPathAccesses) {
            detail = "wrong_path_misses=" +
                     std::to_string(s.wrongPathMisses) + " > accesses=" +
                     std::to_string(s.wrongPathAccesses);
            return false;
        }
        return true;
    });
}

obs::EventTracer *
Prefetcher::tracer() const
{
    return owner != nullptr ? owner->tracer() : nullptr;
}

} // namespace eip::sim
