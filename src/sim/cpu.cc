#include "sim/cpu.hh"

#include <algorithm>

#include "check/invariants.hh"
#include "obs/phase.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "obs/why.hh"
#include "util/panic.hh"

namespace eip::sim {

namespace {
constexpr size_t kMaxGroupInsts = 64; ///< cap on one fetch group
} // namespace

Cpu::Cpu(const SimConfig &config)
    : cfg(config),
      l1i_(std::make_unique<Cache>(config.l1i)),
      l1d_(std::make_unique<Cache>(config.l1d)),
      l2_(std::make_unique<Cache>(config.l2)),
      llc_(std::make_unique<Cache>(config.llc)),
      dram_(std::make_unique<Dram>(config.dramLatency, config.dramJitter)),
      vmem(config.vmemSeed),
      direction(config.predictor == SimConfig::Predictor::Perceptron
          ? static_cast<DirectionPredictor *>(new PerceptronPredictor(
                config.perceptronRows, config.perceptronHistory))
          : static_cast<DirectionPredictor *>(
                new GsharePredictor(config.gshareBits))),
      btb(config.btbEntries, config.btbWays),
      ras(config.rasEntries),
      itc(config.itcEntries),
      ftq(config.ftqEntries),
      rob(config.robEntries)
{
    l1i_->setNextLevel(l2_.get());
    l1d_->setNextLevel(l2_.get());
    l2_->setNextLevel(llc_.get());
    llc_->setDram(dram_.get());

    // Warming fidelity (see setWarmMshrThrottle): the data-side levels
    // drop accesses under MSHR pressure in the timed paths, so their
    // warm misses must contend for MSHRs too. The L1I retries instead.
    l1d_->setWarmMshrThrottle(true);
    l2_->setWarmMshrThrottle(true);
    llc_->setWarmMshrThrottle(true);

    if (check::checksEnabled()) {
        checks_ = std::make_unique<check::Invariants>();
        registerInvariants();
    }
}

Cpu::~Cpu() = default;

void
Cpu::attachL1iPrefetcher(Prefetcher *pf)
{
    l1iPrefetcher = pf;
    l1i_->attachPrefetcher(pf);
    if (checks_ != nullptr && pf != nullptr)
        pf->registerInvariants(*checks_);
    if (why_ != nullptr && pf != nullptr)
        pf->enableBlame();
}

void
Cpu::registerInvariants()
{
    // The four stall buckets must partition the zero-fetch cycles —
    // promoted from the former EIP_DASSERT in fetchStage() so Release
    // builds audit it too when checking is on.
    checks_->add("cpu.fetch_stall_partition", [this](std::string &detail) {
        uint64_t sum = fetchStallLineMiss + fetchStallFtqEmptyMispredict +
                       fetchStallFtqEmptyStarved + fetchStallRobFull;
        if (sum == fetchIdleCycles)
            return true;
        detail = "bucket_sum=" + std::to_string(sum) +
                 " fetch_idle_cycles=" + std::to_string(fetchIdleCycles);
        return false;
    });

    // FTQ occupancy: the cached instruction count matches the per-group
    // remainders and respects the configured capacity.
    checks_->add("cpu.ftq_occupancy", [this](std::string &detail) {
        size_t remaining = 0;
        for (const FtqGroup &group : ftq)
            remaining += group.insts.size() - group.consumed;
        if (remaining != ftqInsts) {
            detail = "group_sum=" + std::to_string(remaining) +
                     " ftq_insts=" + std::to_string(ftqInsts);
            return false;
        }
        if (ftqInsts > cfg.ftqEntries) {
            detail = "occupancy " + std::to_string(ftqInsts) + " > " +
                     std::to_string(cfg.ftqEntries);
            return false;
        }
        size_t pending = 0;
        for (const FtqGroup &group : ftq)
            pending += group.accessPending ? 1 : 0;
        if (pending != ftqPendingAccess_) {
            detail = "pending_groups=" + std::to_string(pending) +
                     " ftq_pending_access=" +
                     std::to_string(ftqPendingAccess_);
            return false;
        }
        return true;
    });

    checks_->add("cpu.rob_occupancy", [this](std::string &detail) {
        if (rob.size() <= cfg.robEntries)
            return true;
        detail = "occupancy " + std::to_string(rob.size()) + " > " +
                 std::to_string(cfg.robEntries);
        return false;
    });

    l1i_->registerInvariants(*checks_, "l1i");
    l1d_->registerInvariants(*checks_, "l1d");
    l2_->registerInvariants(*checks_, "l2");
    llc_->registerInvariants(*checks_, "llc");
}

void
Cpu::attachTracer(obs::EventTracer *tracer)
{
    tracer_ = tracer;
    // Both traced event families are L1I-centric (prefetch lifecycle,
    // instruction-fetch stalls); the data side is not traced.
    l1i_->setTracer(tracer);
}

void
Cpu::attachWhy(obs::MissAttribution *why)
{
    why_ = why;
    // Miss attribution is L1I-only: the taxonomy explains instruction
    // misses against the instruction prefetcher.
    l1i_->setWhy(why);
    if (l1iPrefetcher != nullptr && why != nullptr)
        l1iPrefetcher->enableBlame();

    if (checks_ != nullptr && why != nullptr) {
        // The ledger's defining identity: late_partial mirrors the L1I
        // late-prefetch count and the full ledger sums to the demand
        // misses, so the seven other categories partition the uncovered
        // misses exactly (DESIGN.md §3.11).
        checks_->add("why.blame_partition", [this](std::string &detail) {
            const CacheStats &s = l1i_->stats();
            const uint64_t late =
                why_->count(obs::MissBlame::LatePartial);
            const uint64_t total = why_->total();
            if (total == s.demandMisses && late == s.latePrefetches)
                return true;
            detail = "blame_total=" + std::to_string(total) +
                     " late_partial=" + std::to_string(late) +
                     " l1i_demand_misses=" +
                     std::to_string(s.demandMisses) +
                     " l1i_late_prefetches=" +
                     std::to_string(s.latePrefetches);
            return false;
        });
    }
}

Addr
Cpu::l1iLine(Addr pc)
{
    return cfg.physicalL1I ? lineAddr(vmem.translate(pc)) : lineAddr(pc);
}

template <bool Warming>
uint8_t
Cpu::predictBranchImpl(const trace::Instruction &inst)
{
    // One body for the timed and the functional-warming front end: the
    // training and lookup sequence (including LRU touches and history
    // rolls) is identical by construction; warming only elides the
    // branch counters, so statistics stay frozen between detailed
    // windows while the predictors learn exactly as they would have.
    using trace::BranchType;
    if constexpr (!Warming)
        ++branches;

    uint8_t kind = 0; // 0 none, 1 decode-resteer, 2 execute-flush
    lastPredictedPc = inst.nextPc();
    switch (inst.branch) {
      case BranchType::Conditional: {
        bool predicted = direction->predict(inst.pc);
        direction->update(inst.pc, inst.taken);
        if (predicted != inst.taken) {
            if constexpr (!Warming)
                ++branchMispredicts;
            kind = 2;
            // The wrong path: the direction the predictor chose.
            lastPredictedPc =
                predicted ? btb.lookup(inst.pc) : inst.nextPc();
        } else if (inst.taken) {
            Addr btb_target = btb.lookup(inst.pc);
            if (btb_target != inst.target) {
                if constexpr (!Warming)
                    ++btbMisses;
                kind = std::max<uint8_t>(kind, 1);
            }
        }
        if (inst.taken)
            btb.update(inst.pc, inst.target);
        break;
      }
      case BranchType::DirectJump:
      case BranchType::DirectCall: {
        Addr btb_target = btb.lookup(inst.pc);
        if (btb_target != inst.target) {
            if constexpr (!Warming)
                ++btbMisses;
            kind = 1; // direct target is recomputed at decode
        }
        btb.update(inst.pc, inst.target);
        if (inst.branch == BranchType::DirectCall)
            ras.push(inst.nextPc());
        break;
      }
      case BranchType::IndirectJump:
      case BranchType::IndirectCall: {
        Addr predicted = itc.predict(inst.pc);
        if (predicted != inst.target) {
            if constexpr (!Warming)
                ++branchMispredicts;
            kind = 2;
            lastPredictedPc = predicted;
        }
        itc.update(inst.pc, inst.target);
        if (inst.branch == BranchType::IndirectCall)
            ras.push(inst.nextPc());
        break;
      }
      case BranchType::Return: {
        Addr predicted = ras.pop();
        if (predicted != inst.target) {
            if constexpr (!Warming)
                ++branchMispredicts;
            kind = 2;
            lastPredictedPc = predicted;
        }
        break;
      }
      case BranchType::NotBranch:
        EIP_PANIC("predictBranch called on a non-branch");
    }

    if (l1iPrefetcher != nullptr)
        l1iPrefetcher->onBranch(inst.pc, inst.branch, inst.target);
    return kind;
}

uint8_t
Cpu::predictBranch(const trace::Instruction &inst)
{
    return predictBranchImpl<false>(inst);
}

void
Cpu::predictStage(trace::InstructionSource &trace)
{
    if (predictBlockedOnBranch || now < predictStallUntil)
        return;

    for (uint32_t i = 0; i < cfg.predictWidth; ++i) {
        if (ftqInsts >= cfg.ftqEntries)
            return;

        const trace::Instruction inst = trace.next();
        uint8_t mispredict = 0;
        if (inst.isBranch())
            mispredict = predictBranch(inst);

        Addr line = l1iLine(inst.pc);
        bool append = !ftq.empty() && ftq.back().line == line &&
                      ftq.back().insts.size() < kMaxGroupInsts;
        if (!append) {
            // Reuse the ring slot in place: the previous occupant's
            // vector capacities survive, so the steady state allocates
            // nothing (see Ring::pushSlot).
            FtqGroup &group = ftq.pushSlot();
            group.line = line;
            group.ready = kCycleNever;
            group.accessPending = true;
            group.insts.clear();
            group.consumed = 0;
            group.mispredict.clear();
            ++ftqPendingAccess_;
        }
        FtqGroup &tail = ftq.back();
        tail.insts.push_back(inst);
        tail.mispredict.push_back(mispredict);
        ++ftqInsts;

        if (mispredict == 1) {
            // BTB miss on a direct branch: target produced at decode.
            predictStallUntil =
                std::max(predictStallUntil, now + cfg.decodeResteerPenalty);
            return;
        }
        if (mispredict == 2) {
            // Wrong direction / wrong indirect target: the front-end can
            // not continue until the branch resolves at execute. With
            // wrong-path modelling it keeps fetching down the predicted
            // (wrong) path meanwhile.
            predictBlockedOnBranch = true;
            if (cfg.modelWrongPath && lastPredictedPc != 0) {
                wrongPathActive = true;
                wrongPathPc = lastPredictedPc;
            }
            return;
        }
        if (inst.taken)
            return; // at most one taken branch per predict cycle
    }
}

void
Cpu::wrongPathStage()
{
    if (!wrongPathActive)
        return;
    if (!predictBlockedOnBranch) {
        wrongPathActive = false; // the branch resolved: squash
        return;
    }
    // Follow the wrong path sequentially, one line group per cycle (a
    // common wrong-path approximation: no nested control flow).
    for (uint32_t i = 0; i < cfg.wrongPathLinesPerCycle; ++i) {
        l1i_->speculativeAccess(l1iLine(wrongPathPc), wrongPathPc, now);
        wrongPathPc += kLineSize;
    }
}

void
Cpu::l1iAccessStage()
{
    // Fetch-directed prefetching: initiate the L1I access for every line
    // sitting in the FTQ (these count as demand accesses, §IV-A).
    l1iAccessBlocked_ = false;
    for (auto &group : ftq) {
        if (!group.accessPending)
            continue;
        Addr pc = group.insts.empty() ? lineToByte(group.line)
                                      : group.insts.front().pc;
        Cache::Access res = l1i_->demandAccess(group.line, pc, now);
        if (res.mshrFull) {
            // Retry next cycle, in order. Until an L1I fill frees an
            // MSHR the retries are no-ops, which is what lets the
            // scheduler skip over them (see inertWindow).
            l1iAccessBlocked_ = true;
            return;
        }
        group.ready = res.ready;
        group.accessPending = false;
        --ftqPendingAccess_;
    }
}

Cycle
Cpu::backendLatency(const trace::Instruction &inst)
{
    Cycle base = now + cfg.backendDepth;
    if (inst.isLoad) {
        Cache::Access res =
            l1d_->demandAccess(lineAddr(inst.memAddr), inst.pc, now);
        if (res.mshrFull)
            return base + 20;
        return std::max(base + 1, res.ready);
    }
    if (inst.isStore) {
        // Write-allocate; the store buffer hides the latency.
        l1d_->demandAccess(lineAddr(inst.memAddr), inst.pc, now);
        ++l1d_->stats().writeAccesses;
        return base + 1;
    }
    if (inst.isFp)
        return base + 4;
    return base + 1;
}

void
Cpu::fetchStage()
{
    uint32_t budget = cfg.fetchWidth;
    bool lineBlocked = false;
    bool robBlocked = false;
    while (budget > 0 && !ftq.empty()) {
        FtqGroup &group = ftq.front();
        if (group.accessPending || group.ready > now) {
            lineBlocked = true; // instruction line not arrived yet
            break;
        }
        while (budget > 0 && group.consumed < group.insts.size()) {
            if (rob.size() >= cfg.robEntries) {
                robBlocked = true;
                break;
            }
            const trace::Instruction &inst = group.insts[group.consumed];
            uint8_t mispredict = group.mispredict[group.consumed];
            RobEntry entry;
            entry.done = backendLatency(inst);
            entry.mispredict = mispredict;
            if (mispredict == 2) {
                // The branch's resolution time is now known: release the
                // prediction unit after the flush penalty.
                predictStallUntil = std::max(
                    predictStallUntil, entry.done + cfg.executeFlushPenalty);
                predictBlockedOnBranch = false;
            }
            rob.push_back(entry);
            ++group.consumed;
            --budget;
            --ftqInsts;
        }
        if (robBlocked)
            break;
        if (group.consumed == group.insts.size())
            ftq.pop_front();
    }

    if (budget != cfg.fetchWidth) {
        // At least one instruction fetched this cycle.
        if (tracer_ != nullptr)
            tracer_->fetchActive();
        return;
    }

    // Zero-fetch cycle: charge exactly one taxonomy bucket. Block
    // conditions take priority over emptiness (a blocked head FTQ entry
    // is the proximate cause even if the predictor is also stalled);
    // FTQ emptiness splits by whether the front end is waiting on a
    // mispredicted branch (redirect recovery) or simply under-supplied.
    ++fetchIdleCycles;
    obs::StallReason reason;
    if (lineBlocked) {
        ++fetchStallLineMiss;
        reason = obs::StallReason::LineMiss;
    } else if (robBlocked) {
        ++fetchStallRobFull;
        reason = obs::StallReason::BackendFull;
    } else if (predictBlockedOnBranch || now < predictStallUntil) {
        ++fetchStallFtqEmptyMispredict;
        reason = obs::StallReason::FtqEmptyMispredict;
    } else {
        ++fetchStallFtqEmptyStarved;
        reason = obs::StallReason::FtqEmptyStarved;
    }
    if (tracer_ != nullptr)
        tracer_->stallCycle(reason, now);
    // The partition identity (bucket sum == fetchIdleCycles) is audited
    // by the registered cpu.fetch_stall_partition invariant (src/check),
    // which also covers Release builds when --check is on.
}

void
Cpu::retireStage()
{
    uint32_t budget = cfg.retireWidth;
    while (budget > 0 && !rob.empty() && rob.front().done <= now) {
        rob.pop_front();
        ++retired;
        --budget;
    }
}

Cycle
Cpu::nextEventCycle(Cycle bound) const
{
    // Clamped to `bound` (the watchdog) so a deadlocked pipeline trips
    // the deadlock assert at exactly the same cycle as per-cycle
    // simulation; never before now + 1 (an already-due event means the
    // next cycle acts).
    Cycle t = bound;
    auto event = [&](Cycle c) { t = std::min(t, std::max(c, now + 1)); };

    event(l1i_->nextFillReady());
    event(l1d_->nextFillReady());
    event(l2_->nextFillReady());
    event(llc_->nextFillReady());

    // Only the ROB head gates retirement (in-order), so later entries'
    // completion times are not events.
    if (!rob.empty())
        event(rob.front().done);

    // The FTQ head's arrival is an event even when the ROB is full:
    // otherwise a window could straddle the cycle the stall reason
    // flips from line-miss to rob-full and bulk-charge the wrong bucket.
    if (!ftq.empty()) {
        const FtqGroup &head = ftq.front();
        if (!head.accessPending && head.ready > now)
            event(head.ready);
    }

    // The prediction unit wakes when its stall expires — relevant only
    // if it is not blocked on an unresolved branch (released by fetch
    // activity, itself an event above) and the FTQ has room.
    if (!predictBlockedOnBranch && ftqInsts < cfg.ftqEntries)
        event(predictStallUntil);

    return t;
}

Cycle
Cpu::inertWindow(Cycle bound) const
{
    // Eligibility checks ordered so the common busy-pipeline cases bail
    // out earliest. Fetch consumes instructions next cycle:
    if (!ftq.empty()) {
        const FtqGroup &head = ftq.front();
        if (!head.accessPending && head.ready <= now + 1 &&
            rob.size() < cfg.robEntries)
            return 0;
    }
    // The prediction unit runs next cycle.
    if (!predictBlockedOnBranch && ftqInsts < cfg.ftqEntries &&
        predictStallUntil <= now + 1)
        return 0;
    // A fresh FTQ group performs its L1I access next cycle. Groups stuck
    // behind a full MSHR file only retry no-ops until a fill frees an
    // entry — and that fill is already an event via nextFillReady().
    if (ftqPendingAccess_ > 0 && !l1iAccessBlocked_)
        return 0;
    // A cache with queued prefetches, or a prefetcher keeping per-cycle
    // state, acts on every tick.
    if (!l1i_->tickInert() || !l1d_->tickInert() || !l2_->tickInert() ||
        !llc_->tickInert())
        return 0;
    // Wrong-path fetch touches the hierarchy every cycle.
    if (wrongPathActive)
        return 0;

    Cycle next = nextEventCycle(bound);
    return next > now + 1 ? next - (now + 1) : 0;
}

void
Cpu::skipIdleCycles(Cycle watchdog)
{
    Cycle window = inertWindow(watchdog);
    if (window == 0)
        return;
    // Every skipped cycle is a zero-fetch cycle whose stall reason is
    // static across the window (the window ends at the first event that
    // could change it): bulk-charge the one bucket so the partition
    // identity — audited under --check — holds exactly.
    fetchIdleCycles += window;
    if (!ftq.empty()) {
        const FtqGroup &head = ftq.front();
        if (head.accessPending || head.ready > now + 1)
            fetchStallLineMiss += window;
        else
            fetchStallRobFull += window;
    } else {
        // An idle predictor with an empty FTQ makes the window 0, so a
        // skipped empty-FTQ window is always redirect recovery
        // (mispredict bucket), never starvation.
        fetchStallFtqEmptyMispredict += window;
    }
    now += window;
}

SimStats
Cpu::run(trace::InstructionSource &trace, uint64_t instructions,
         uint64_t warmup_instructions, obs::IntervalSampler *sampler,
         obs::PhaseProfiler *profiler)
{
    EIP_ASSERT(instructions > 0, "instruction budget must be positive");

    // Phase attribution happens at the three boundaries only (entry,
    // warm-up end, loop exit) — the hot loop never sees the profiler.
    if (profiler != nullptr)
        profiler->transition(warmup_instructions == 0 ? "measure"
                                                      : "warmup");

    measuring_ = warmup_instructions == 0;
    measureStartRetired_ = retired;
    measureStartCycle_ = now;
    dramStart_ = dram_->accesses();

    const uint64_t total_budget = warmup_instructions + instructions;
    // Generous watchdog: the core cannot be slower than 1 instruction per
    // 10k cycles unless the pipeline deadlocked (a bug).
    const Cycle watchdog = 10000 * total_budget + 10'000'000;

    // Event-driven skipping stands down for observers that want every
    // cycle: the tracer records per-cycle stall events and the invariant
    // registry audits strided checks against the cycle counter. Both are
    // pure observers, so results are identical either way — which the
    // eipdiff skip axis pins down.
    skipActive_ = cfg.eventSkip && tracer_ == nullptr && checks_ == nullptr;

    while (true) {
        ++now;
        retireStage();
        fetchStage();
        // Guarded stage calls: both stages are no-ops (their first check
        // fails) in the common case, and l1iAccessStage would still walk
        // the whole FTQ to find no pending access.
        if (ftqPendingAccess_ > 0)
            l1iAccessStage();
        if (wrongPathActive)
            wrongPathStage();
        predictStage(trace);
        l1i_->tick(now);
        l1d_->tick(now);
        l2_->tick(now);
        llc_->tick(now);

        if (checks_ != nullptr)
            checks_->run(now);

        if (!measuring_ && retired >= warmup_instructions) {
            measuring_ = true;
            measureStartRetired_ = retired;
            measureStartCycle_ = now;
            dramStart_ = dram_->accesses();
            l1i_->stats() = CacheStats{};
            l1d_->stats() = CacheStats{};
            l2_->stats() = CacheStats{};
            llc_->stats() = CacheStats{};
            branches = 0;
            branchMispredicts = 0;
            btbMisses = 0;
            fetchStallLineMiss = 0;
            fetchStallFtqEmptyMispredict = 0;
            fetchStallFtqEmptyStarved = 0;
            fetchStallRobFull = 0;
            fetchIdleCycles = 0;
            // The tracer's roll-ups must cover exactly the same window
            // as the stats they reconcile against.
            if (tracer_ != nullptr)
                tracer_->measurementBoundary(now);
            // The blame ledger resets with the stats it partitions; the
            // per-line shadow state persists (warm-up-learned state
            // legitimately explains measured misses).
            if (why_ != nullptr)
                why_->measurementBoundary();
            if (profiler != nullptr)
                profiler->transition("measure");
        }
        if (measuring_ && sampler != nullptr)
            sampler->tick(retired - measureStartRetired_,
                          now - measureStartCycle_);
        if (measuring_ && retired >= measureStartRetired_ + instructions)
            break;
        EIP_ASSERT(now < watchdog, "pipeline deadlock (watchdog expired)");
        if (skipActive_)
            skipIdleCycles(watchdog);
    }

    // End-of-run sweep: strided audits run once more regardless of where
    // their stride counter ended up.
    if (checks_ != nullptr)
        checks_->runAll(now);

    // Everything past the loop — stats assembly here, registry dump and
    // analysis extraction in the caller — is fill/drain bookkeeping.
    if (profiler != nullptr)
        profiler->transition("fill_drain");

    SimStats stats;
    stats.instructions = retired - measureStartRetired_;
    stats.cycles = now - measureStartCycle_;
    stats.branches = branches;
    stats.branchMispredicts = branchMispredicts;
    stats.btbMisses = btbMisses;
    stats.fetchStallLineMiss = fetchStallLineMiss;
    stats.fetchStallFtqEmptyMispredict = fetchStallFtqEmptyMispredict;
    stats.fetchStallFtqEmptyStarved = fetchStallFtqEmptyStarved;
    stats.fetchStallRobFull = fetchStallRobFull;
    stats.fetchIdleCycles = fetchIdleCycles;
    stats.l1i = l1i_->stats();
    stats.l1d = l1d_->stats();
    stats.l2 = l2_->stats();
    stats.llc = llc_->stats();
    stats.dramAccesses = dram_->accesses() - dramStart_;
    return stats;
}

uint64_t
Cpu::statsFingerprint() const
{
    uint64_t h = 1469598103934665603ULL; // FNV-1a offset basis
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    mix(retired);
    mix(branches);
    mix(branchMispredicts);
    mix(btbMisses);
    mix(fetchStallLineMiss);
    mix(fetchStallFtqEmptyMispredict);
    mix(fetchStallFtqEmptyStarved);
    mix(fetchStallRobFull);
    mix(fetchIdleCycles);
    mix(dram_->accesses());
    for (const Cache *cache :
         {l1i_.get(), l1d_.get(), l2_.get(), llc_.get()}) {
        const CacheStats &s = cache->stats();
        mix(s.demandAccesses);
        mix(s.demandHits);
        mix(s.demandMisses);
        mix(s.mshrMerges);
        mix(s.prefetchRequested);
        mix(s.prefetchFiltered);
        mix(s.prefetchIssued);
        mix(s.usefulPrefetches);
        mix(s.latePrefetches);
        mix(s.wrongPrefetches);
        mix(s.fills);
        mix(s.evictions);
        mix(s.writeAccesses);
        mix(s.wrongPathAccesses);
        mix(s.wrongPathMisses);
        mix(s.missLatencySum);
    }
    return h;
}

void
Cpu::warmFunctional(trace::InstructionSource &trace, uint64_t instructions,
                    uint64_t cpiCycles, uint64_t cpiInstructions)
{
    if (instructions == 0)
        return;
    if (cpiCycles == 0 || cpiInstructions == 0) {
        cpiCycles = 1;
        cpiInstructions = 1;
    }

    // Warming-mode invariant (DESIGN.md §3.13): statistics are frozen
    // and no cycle is attributed to any stall bucket while warming —
    // audited by an entry/exit fingerprint whenever --check is on.
    const uint64_t entry_fingerprint =
        checks_ != nullptr ? statsFingerprint() : 0;

    l1i_->setWarming(true);
    l1d_->setWarming(true);
    l2_->setWarming(true);
    llc_->setWarming(true);

    // One monotonic clock: `now` advances at the caller's measured CPI
    // (Bresenham-style integer accumulation, so the schedule stays
    // deterministic) so MSHR drains and cycle-stamped prefetcher
    // learning (timeliness distances) stay coherent with detailed
    // execution — but these cycles are charged nowhere.
    Addr last_line = ~Addr{0};
    uint64_t cpi_acc = 0;
    for (uint64_t i = 0; i < instructions; ++i) {
        const trace::Instruction inst = trace.next();
        if (inst.isBranch())
            predictBranchImpl<true>(inst);
        Addr line = l1iLine(inst.pc);
        if (line != last_line) {
            // Consecutive same-line fetches collapse to one access, the
            // same dedup the FTQ's line groups perform for the timed
            // front end.
            l1i_->warmAccess(line, inst.pc, now);
            last_line = line;
        }
        if (inst.isLoad || inst.isStore)
            l1d_->warmAccess(lineAddr(inst.memAddr), inst.pc, now);
        cpi_acc += cpiCycles;
        now += cpi_acc / cpiInstructions;
        cpi_acc %= cpiInstructions;
    }

    l1i_->setWarming(false);
    l1d_->setWarming(false);
    l2_->setWarming(false);
    llc_->setWarming(false);

    if (checks_ != nullptr) {
        EIP_ASSERT(statsFingerprint() == entry_fingerprint,
                   "functional warming mutated frozen statistics");
    }
}

void
Cpu::beginSampledMeasurement()
{
    // Mirrors run()'s warm-up boundary: reset every statistic and pin
    // the measurement origin. Warming freezes statistics afterwards, so
    // the cumulative counters equal the sum over detailed windows.
    sampledMode_ = true;
    sampledCycles_ = 0;
    measuring_ = true;
    measureStartRetired_ = retired;
    measureStartCycle_ = now;
    dramStart_ = dram_->accesses();
    l1i_->stats() = CacheStats{};
    l1d_->stats() = CacheStats{};
    l2_->stats() = CacheStats{};
    llc_->stats() = CacheStats{};
    branches = 0;
    branchMispredicts = 0;
    btbMisses = 0;
    fetchStallLineMiss = 0;
    fetchStallFtqEmptyMispredict = 0;
    fetchStallFtqEmptyStarved = 0;
    fetchStallRobFull = 0;
    fetchIdleCycles = 0;
    if (tracer_ != nullptr)
        tracer_->measurementBoundary(now);
    if (why_ != nullptr)
        why_->measurementBoundary();
}

Cpu::WindowStats
Cpu::runWindow(trace::InstructionSource &trace, uint64_t instructions)
{
    EIP_ASSERT(sampledMode_,
               "runWindow requires beginSampledMeasurement()");
    EIP_ASSERT(instructions > 0, "window budget must be positive");

    const uint64_t start_retired = retired;
    const Cycle start_cycle = now;
    const CacheStats &l1i_stats = l1i_->stats();
    const uint64_t start_misses = l1i_stats.demandMisses;
    const uint64_t start_useful = l1i_stats.usefulPrefetches;
    const uint64_t start_late = l1i_stats.latePrefetches;
    const uint64_t start_issued = l1i_stats.prefetchIssued;

    const uint64_t target = retired + instructions;
    // Same deadlock bound as run(), relative to window entry (`now`
    // already carries warming cycles).
    const Cycle watchdog = now + 10000 * instructions + 10'000'000;

    skipActive_ = cfg.eventSkip && tracer_ == nullptr && checks_ == nullptr;

    while (true) {
        ++now;
        retireStage();
        fetchStage();
        if (ftqPendingAccess_ > 0)
            l1iAccessStage();
        if (wrongPathActive)
            wrongPathStage();
        predictStage(trace);
        l1i_->tick(now);
        l1d_->tick(now);
        l2_->tick(now);
        llc_->tick(now);

        if (checks_ != nullptr)
            checks_->run(now);

        if (retired >= target)
            break;
        EIP_ASSERT(now < watchdog, "pipeline deadlock (watchdog expired)");
        if (skipActive_)
            skipIdleCycles(watchdog);
    }

    if (checks_ != nullptr)
        checks_->runAll(now);

    sampledCycles_ += now - start_cycle;

    WindowStats window;
    window.instructions = retired - start_retired;
    window.cycles = now - start_cycle;
    window.l1iDemandMisses = l1i_stats.demandMisses - start_misses;
    window.l1iUsefulPrefetches = l1i_stats.usefulPrefetches - start_useful;
    window.l1iLatePrefetches = l1i_stats.latePrefetches - start_late;
    window.l1iPrefetchIssued = l1i_stats.prefetchIssued - start_issued;
    return window;
}

SimStats
Cpu::sampledStats() const
{
    SimStats stats;
    stats.instructions = retired - measureStartRetired_;
    stats.cycles = sampledCycles_;
    stats.branches = branches;
    stats.branchMispredicts = branchMispredicts;
    stats.btbMisses = btbMisses;
    stats.fetchStallLineMiss = fetchStallLineMiss;
    stats.fetchStallFtqEmptyMispredict = fetchStallFtqEmptyMispredict;
    stats.fetchStallFtqEmptyStarved = fetchStallFtqEmptyStarved;
    stats.fetchStallRobFull = fetchStallRobFull;
    stats.fetchIdleCycles = fetchIdleCycles;
    stats.l1i = l1i_->stats();
    stats.l1d = l1d_->stats();
    stats.l2 = l2_->stats();
    stats.llc = llc_->stats();
    stats.dramAccesses = dram_->accesses() - dramStart_;
    return stats;
}

void
Cpu::registerCounters(obs::CounterRegistry &reg)
{
    // Measured-phase deltas for the counters the warm boundary resets by
    // recording a start value (rather than zeroing the counter itself).
    reg.counter("cpu.instructions",
                [this]() { return retired - measureStartRetired_; });
    reg.counter("cpu.cycles", [this]() {
        // Sampled runs: warming advances `now` without charging cycles,
        // so the measured cycle count is the in-window accumulator.
        return sampledMode_
            ? sampledCycles_
            : static_cast<uint64_t>(now - measureStartCycle_);
    });
    reg.counter("cpu.branches", &branches);
    reg.counter("cpu.branch_mispredicts", &branchMispredicts);
    reg.counter("cpu.btb_misses", &btbMisses);
    reg.counter("cpu.fetch_stall_line_miss", &fetchStallLineMiss);
    reg.counter("cpu.fetch_stall_ftq_empty", [this]() {
        return fetchStallFtqEmptyMispredict + fetchStallFtqEmptyStarved;
    });
    reg.counter("cpu.fetch_stall_ftq_empty_mispredict",
                &fetchStallFtqEmptyMispredict);
    reg.counter("cpu.fetch_stall_ftq_empty_starved",
                &fetchStallFtqEmptyStarved);
    reg.counter("cpu.fetch_stall_rob_full", &fetchStallRobFull);
    reg.counter("cpu.fetch_idle_cycles", &fetchIdleCycles);
    reg.counter("dram.accesses",
                [this]() { return dram_->accesses() - dramStart_; });

    reg.gauge("cpu.ipc", [this]() {
        uint64_t cycles = sampledMode_
            ? sampledCycles_
            : static_cast<uint64_t>(now - measureStartCycle_);
        uint64_t insts = retired - measureStartRetired_;
        return cycles == 0 ? 0.0
                           : static_cast<double>(insts) /
                                 static_cast<double>(cycles);
    });
    reg.gauge("l1i.mpki", [this]() {
        uint64_t insts = retired - measureStartRetired_;
        return insts == 0 ? 0.0
                          : 1000.0 *
                                static_cast<double>(
                                    l1i_->stats().demandMisses) /
                                static_cast<double>(insts);
    });

    registerCacheStats(reg, "l1i", l1i_->stats());
    registerCacheStats(reg, "l1d", l1d_->stats());
    registerCacheStats(reg, "l2", l2_->stats());
    registerCacheStats(reg, "llc", llc_->stats());

    if (l1iPrefetcher != nullptr)
        l1iPrefetcher->registerStats(reg);

    // Appended last so artifacts without --why keep their exact historic
    // column order and bytes.
    if (why_ != nullptr)
        why_->registerCounters(reg);
}

} // namespace eip::sim
