/**
 * @file
 * Top-level CPU model: a trace-driven out-of-order core with a decoupled
 * front-end (branch-prediction unit running ahead of fetch, fetch-directed
 * L1I accesses as lines enter the fetch target queue), a four-level memory
 * hierarchy, and a width/ROB-limited back-end. This mirrors the modified
 * ChampSim used by the paper (§IV-A).
 */

#ifndef EIP_SIM_CPU_HH
#define EIP_SIM_CPU_HH

#include <memory>
#include <vector>

#include "sim/branch.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/dram.hh"
#include "sim/stats.hh"
#include "sim/vmem.hh"
#include "trace/executor.hh"
#include "trace/instruction.hh"
#include "util/ring.hh"

namespace eip::obs {
class CounterRegistry;
class EventTracer;
class IntervalSampler;
class MissAttribution;
class PhaseProfiler;
}

namespace eip::check {
class Invariants;
}

namespace eip::sim {

/**
 * The simulated processor. Construct with a config, attach an optional L1I
 * prefetcher, then run() a workload executor for a given instruction budget.
 */
class Cpu
{
  public:
    explicit Cpu(const SimConfig &cfg);
    ~Cpu();

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /** Attach the L1I prefetcher (may be null for the no-prefetch baseline).
     *  The prefetcher is owned by the caller and must outlive the Cpu. */
    void attachL1iPrefetcher(Prefetcher *pf);

    /**
     * Attach an event tracer (see src/obs/trace.hh) to the front end and
     * the L1I. Nullable; the tracer is a pure observer (never feeds back
     * into timing), so results are identical with and without one. Owned
     * by the caller and must outlive the Cpu's last run().
     */
    void attachTracer(obs::EventTracer *tracer);

    /**
     * Attach the miss-attribution observer (see src/obs/why.hh) to the
     * L1I and arm the attached prefetcher's blame machinery. Nullable;
     * a pure observer like the tracer — but unlike the tracer its hooks
     * are all event-driven, so event-driven cycle skipping stays armed
     * and the blame ledger is identical across skip/no-skip. Owned by
     * the caller and must outlive the Cpu's last run(). When invariant
     * checking is on, also registers the why.blame_partition audit
     * (blame categories partition the L1I demand misses exactly).
     */
    void attachWhy(obs::MissAttribution *why);

    /**
     * Simulate until @p instructions have retired after a warm-up of
     * @p warmup_instructions (during which all structures train but
     * statistics are discarded). An optional @p sampler snapshots the
     * registered counters at instruction-interval boundaries of the
     * measured phase; sampling is read-only and never changes results.
     * An optional @p profiler attributes host wall time to the run's
     * coarse phases (warmup / measure / fill_drain); it is touched only
     * at the two phase boundaries, never inside the cycle loop.
     */
    SimStats run(trace::InstructionSource &trace, uint64_t instructions,
                 uint64_t warmup_instructions = 0,
                 obs::IntervalSampler *sampler = nullptr,
                 obs::PhaseProfiler *profiler = nullptr);

    /** Per-window scalar counters of one detailed sampling window (the
     *  inputs of the four estimated metrics; see src/sample). */
    struct WindowStats
    {
        uint64_t instructions = 0;
        uint64_t cycles = 0;
        uint64_t l1iDemandMisses = 0;
        uint64_t l1iUsefulPrefetches = 0;
        uint64_t l1iLatePrefetches = 0;
        uint64_t l1iPrefetchIssued = 0;

        double
        ipc() const
        {
            return cycles == 0 ? 0.0
                               : static_cast<double>(instructions) /
                                     static_cast<double>(cycles);
        }

        double
        mpki() const
        {
            return instructions == 0
                ? 0.0
                : 1000.0 * static_cast<double>(l1iDemandMisses) /
                      static_cast<double>(instructions);
        }

        /** Same semantics as CacheStats::coverage (late prefetches are
         *  excluded from the would-be-miss denominator). */
        double
        coverage() const
        {
            uint64_t uncovered = l1iDemandMisses - l1iLatePrefetches;
            uint64_t would_be = l1iUsefulPrefetches + uncovered;
            return would_be == 0
                ? 0.0
                : static_cast<double>(l1iUsefulPrefetches) /
                      static_cast<double>(would_be);
        }

        double
        accuracy() const
        {
            return l1iPrefetchIssued == 0
                ? 0.0
                : static_cast<double>(l1iUsefulPrefetches) /
                      static_cast<double>(l1iPrefetchIssued);
        }
    };

    /**
     * Functional warming (SMARTS-style sampling, DESIGN.md §3.13):
     * execute @p instructions from @p trace so every learning structure
     * — caches, replacement state, branch predictors, BTB/RAS/ITC, the
     * prefetcher's tables — updates exactly as it would under detailed
     * simulation, while no pipeline timing is modelled and no statistic,
     * stall bucket, or observer moves. `now` advances at the CPI ratio
     * @p cpiCycles / @p cpiInstructions — the sampling controller feeds
     * it the previous detailed window's measurement (1:1 before any
     * window exists) — so in-flight fills and cycle-stamped prefetcher
     * learning span the same *instruction* distances as detailed
     * execution; those cycles are never charged to any counter. The
     * rate matters: with a fixed 1 cycle/instruction clock, a high-IPC
     * workload's warm MSHR occupancy is several times shorter in
     * instruction terms than detailed simulation's, the data-side
     * throttle (Cache::setWarmMshrThrottle) never engages, and the LLC
     * enters each window holding lines the timed path would have
     * dropped. Under --check an entry/exit fingerprint audits that
     * every statistic stayed frozen.
     */
    void warmFunctional(trace::InstructionSource &trace,
                        uint64_t instructions, uint64_t cpiCycles = 1,
                        uint64_t cpiInstructions = 1);

    /**
     * Enter sampled measurement just before the first detailed window:
     * resets statistics exactly like run()'s warm-up boundary and pins
     * the measurement origin, so cumulative statistics equal the sum
     * over the detailed windows (warming freezes them in between) and
     * registered counters report the window aggregate.
     */
    void beginSampledMeasurement();

    /**
     * One detailed sampling window: full timing simulation (event
     * skipping included, same eligibility rules as run()) until
     * @p instructions retire. Requires beginSampledMeasurement() first.
     * Returns this window's scalar deltas for the streaming estimator.
     */
    WindowStats runWindow(trace::InstructionSource &trace,
                          uint64_t instructions);

    /**
     * Aggregate statistics over all detailed windows so far (cycles are
     * the accumulated in-window cycles, never warming time) — the
     * sampled-run counterpart of run()'s return value.
     */
    SimStats sampledStats() const;

    /**
     * Register every live counter of this CPU — core counters, the four
     * cache levels, DRAM, and (when attached) the L1I prefetcher's
     * custom statistics — with @p reg. Counters report the measured
     * phase (they reset at the warm-up boundary exactly like the
     * returned SimStats); prefetcher-internal statistics cover the
     * whole run including warm-up. @p reg must not outlive the Cpu.
     */
    void registerCounters(obs::CounterRegistry &reg);

    Cache &l1i() { return *l1i_; }
    Cache &l1d() { return *l1d_; }
    Cache &l2() { return *l2_; }
    Cache &llc() { return *llc_; }
    const SimConfig &config() const { return cfg; }

    /** The invariant registry of this CPU, or nullptr when checking is
     *  off (see check::checksEnabled()). Test-facing. */
    const check::Invariants *invariants() const { return checks_.get(); }
    /** Mutable view for tests that drive the fatal audit path. */
    check::Invariants *invariants() { return checks_.get(); }

    /**
     * Earliest future cycle at which any pipeline or hierarchy state can
     * change, clamped to @p bound (and never before now + 1): the
     * earliest in-flight fill across the four cache levels, the ROB
     * head's completion, the FTQ head's line arrival (included even when
     * the ROB is full, so a skip window never straddles the
     * line-miss -> rob-full stall transition), and the prediction unit's
     * stall release. See DESIGN.md §3.8.
     */
    Cycle nextEventCycle(Cycle bound = kCycleNever) const;

    /**
     * Number of cycles starting at now + 1 that are provably inert — every
     * stage is a no-op and no counter other than the stall taxonomy
     * advances — or 0 when the next cycle can act (fetch/predict/L1I
     * access eligible, wrong-path fetch live, a prefetch queued, or a
     * cycle-sensitive prefetcher attached). Skipping this many cycles and
     * bulk-charging the (static) stall bucket is bit-identical to
     * simulating them one by one.
     */
    Cycle inertWindow(Cycle bound = kCycleNever) const;

  private:
    friend class CpuTestPeer; ///< tests build pipeline states by hand
    /** One fetch group: consecutive instructions within one cache line. */
    struct FtqGroup
    {
        Addr line = 0;            ///< L1I-space line address
        Cycle ready = kCycleNever;
        bool accessPending = true;
        std::vector<trace::Instruction> insts;
        size_t consumed = 0;
        /** Per-instruction mispredict class: 0 none, 1 decode, 2 execute. */
        std::vector<uint8_t> mispredict;
    };

    struct RobEntry
    {
        Cycle done = 0;
        uint8_t mispredict = 0;
    };

    /** Register the front-end and cache-hierarchy invariants (only
     *  called when checking is enabled; see src/check). */
    void registerInvariants();
    void predictStage(trace::InstructionSource &trace);
    /** Fetch down the mispredicted path while the branch resolves. */
    void wrongPathStage();
    void l1iAccessStage();
    void fetchStage();
    void retireStage();
    /**
     * Event-driven cycle skipping: when the next inertWindow() cycles are
     * no-ops, jump `now` past them in one step, bulk-incrementing the
     * stall taxonomy. Only called when skipActive_ (requires
     * cfg.eventSkip, no tracer, no invariant checking).
     */
    void skipIdleCycles(Cycle watchdog);
    /** Compute the completion cycle of an instruction entering the ROB. */
    Cycle backendLatency(const trace::Instruction &inst);
    /** Classify the prediction of a branch; trains all predictors and
     *  leaves the (possibly wrong) predicted target in lastPredictedPc. */
    uint8_t predictBranch(const trace::Instruction &inst);
    /** Shared body of predictBranch/warming: identical training and
     *  lookup sequence; the branch counters advance only when !Warming. */
    template <bool Warming>
    uint8_t predictBranchImpl(const trace::Instruction &inst);
    /** Hash of every statistic warming must not touch (stall buckets,
     *  branch counters, per-level cache stats, DRAM accesses, retired):
     *  warmFunctional audits entry == exit under --check. */
    uint64_t statsFingerprint() const;
    /** Line address of @p pc in the L1I's address space. */
    Addr l1iLine(Addr pc);

    SimConfig cfg;
    std::unique_ptr<Cache> l1i_;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> llc_;
    std::unique_ptr<Dram> dram_;
    VirtualMemory vmem;

    std::unique_ptr<DirectionPredictor> direction;
    Btb btb;
    ReturnAddressStack ras;
    IndirectTargetCache itc;
    Prefetcher *l1iPrefetcher = nullptr;

    // Pipeline state. The FTQ holds at most one group per remaining
    // instruction (a fully-consumed group is popped the same cycle), so
    // ftqEntries bounds the group count; the ROB is pushed only below
    // robEntries. Both are therefore fixed-capacity rings.
    Cycle now = 0;
    util::Ring<FtqGroup> ftq;
    size_t ftqInsts = 0;
    /** FTQ groups whose L1I access has not happened yet (accessPending).
     *  Lets the scheduler tell fresh groups (access fires next cycle)
     *  from an MSHR-full backlog (inert until a fill) in O(1). */
    size_t ftqPendingAccess_ = 0;
    /** Last l1iAccessStage ended early on a full L1I MSHR file. */
    bool l1iAccessBlocked_ = false;
    Cycle predictStallUntil = 0;
    bool predictBlockedOnBranch = false;
    bool wrongPathActive = false;
    Addr wrongPathPc = 0;
    Addr lastPredictedPc = 0; ///< where the front-end believed it was going
    util::Ring<RobEntry> rob;
    uint64_t retired = 0;
    /** Cycle skipping armed for the current run() (cfg.eventSkip and no
     *  observer that wants every cycle: tracer or invariant checks). */
    bool skipActive_ = false;

    // Measurement-phase bookkeeping. Members (not run() locals) so that
    // registered counter closures can report measured-phase deltas live.
    bool measuring_ = false;
    uint64_t measureStartRetired_ = 0;
    Cycle measureStartCycle_ = 0;
    uint64_t dramStart_ = 0;

    // Sampled-mode bookkeeping (beginSampledMeasurement/runWindow).
    // Warming advances `now` without charging cycles anywhere, so the
    // cycle counters report the accumulated in-window cycles instead of
    // now - measureStartCycle_ while sampledMode_ is set.
    bool sampledMode_ = false;
    uint64_t sampledCycles_ = 0;

    // Raw counters (copied into SimStats).
    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;
    uint64_t btbMisses = 0;
    uint64_t fetchStallLineMiss = 0;
    uint64_t fetchStallFtqEmptyMispredict = 0;
    uint64_t fetchStallFtqEmptyStarved = 0;
    uint64_t fetchStallRobFull = 0;
    uint64_t fetchIdleCycles = 0;

    obs::EventTracer *tracer_ = nullptr;
    obs::MissAttribution *why_ = nullptr;
    /** Cycle-level consistency checks; only allocated when checking is
     *  enabled, so unchecked runs pay one null-pointer test per cycle. */
    std::unique_ptr<check::Invariants> checks_;
};

} // namespace eip::sim

#endif // EIP_SIM_CPU_HH
