/**
 * @file
 * Top-level CPU model: a trace-driven out-of-order core with a decoupled
 * front-end (branch-prediction unit running ahead of fetch, fetch-directed
 * L1I accesses as lines enter the fetch target queue), a four-level memory
 * hierarchy, and a width/ROB-limited back-end. This mirrors the modified
 * ChampSim used by the paper (§IV-A).
 */

#ifndef EIP_SIM_CPU_HH
#define EIP_SIM_CPU_HH

#include <memory>
#include <vector>

#include "sim/branch.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/dram.hh"
#include "sim/stats.hh"
#include "sim/vmem.hh"
#include "trace/executor.hh"
#include "trace/instruction.hh"
#include "util/ring.hh"

namespace eip::obs {
class CounterRegistry;
class EventTracer;
class IntervalSampler;
class MissAttribution;
class PhaseProfiler;
}

namespace eip::check {
class Invariants;
}

namespace eip::sim {

/**
 * The simulated processor. Construct with a config, attach an optional L1I
 * prefetcher, then run() a workload executor for a given instruction budget.
 */
class Cpu
{
  public:
    explicit Cpu(const SimConfig &cfg);
    ~Cpu();

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /** Attach the L1I prefetcher (may be null for the no-prefetch baseline).
     *  The prefetcher is owned by the caller and must outlive the Cpu. */
    void attachL1iPrefetcher(Prefetcher *pf);

    /**
     * Attach an event tracer (see src/obs/trace.hh) to the front end and
     * the L1I. Nullable; the tracer is a pure observer (never feeds back
     * into timing), so results are identical with and without one. Owned
     * by the caller and must outlive the Cpu's last run().
     */
    void attachTracer(obs::EventTracer *tracer);

    /**
     * Attach the miss-attribution observer (see src/obs/why.hh) to the
     * L1I and arm the attached prefetcher's blame machinery. Nullable;
     * a pure observer like the tracer — but unlike the tracer its hooks
     * are all event-driven, so event-driven cycle skipping stays armed
     * and the blame ledger is identical across skip/no-skip. Owned by
     * the caller and must outlive the Cpu's last run(). When invariant
     * checking is on, also registers the why.blame_partition audit
     * (blame categories partition the L1I demand misses exactly).
     */
    void attachWhy(obs::MissAttribution *why);

    /**
     * Simulate until @p instructions have retired after a warm-up of
     * @p warmup_instructions (during which all structures train but
     * statistics are discarded). An optional @p sampler snapshots the
     * registered counters at instruction-interval boundaries of the
     * measured phase; sampling is read-only and never changes results.
     * An optional @p profiler attributes host wall time to the run's
     * coarse phases (warmup / measure / fill_drain); it is touched only
     * at the two phase boundaries, never inside the cycle loop.
     */
    SimStats run(trace::InstructionSource &trace, uint64_t instructions,
                 uint64_t warmup_instructions = 0,
                 obs::IntervalSampler *sampler = nullptr,
                 obs::PhaseProfiler *profiler = nullptr);

    /**
     * Register every live counter of this CPU — core counters, the four
     * cache levels, DRAM, and (when attached) the L1I prefetcher's
     * custom statistics — with @p reg. Counters report the measured
     * phase (they reset at the warm-up boundary exactly like the
     * returned SimStats); prefetcher-internal statistics cover the
     * whole run including warm-up. @p reg must not outlive the Cpu.
     */
    void registerCounters(obs::CounterRegistry &reg);

    Cache &l1i() { return *l1i_; }
    Cache &l1d() { return *l1d_; }
    Cache &l2() { return *l2_; }
    Cache &llc() { return *llc_; }
    const SimConfig &config() const { return cfg; }

    /** The invariant registry of this CPU, or nullptr when checking is
     *  off (see check::checksEnabled()). Test-facing. */
    const check::Invariants *invariants() const { return checks_.get(); }
    /** Mutable view for tests that drive the fatal audit path. */
    check::Invariants *invariants() { return checks_.get(); }

    /**
     * Earliest future cycle at which any pipeline or hierarchy state can
     * change, clamped to @p bound (and never before now + 1): the
     * earliest in-flight fill across the four cache levels, the ROB
     * head's completion, the FTQ head's line arrival (included even when
     * the ROB is full, so a skip window never straddles the
     * line-miss -> rob-full stall transition), and the prediction unit's
     * stall release. See DESIGN.md §3.8.
     */
    Cycle nextEventCycle(Cycle bound = kCycleNever) const;

    /**
     * Number of cycles starting at now + 1 that are provably inert — every
     * stage is a no-op and no counter other than the stall taxonomy
     * advances — or 0 when the next cycle can act (fetch/predict/L1I
     * access eligible, wrong-path fetch live, a prefetch queued, or a
     * cycle-sensitive prefetcher attached). Skipping this many cycles and
     * bulk-charging the (static) stall bucket is bit-identical to
     * simulating them one by one.
     */
    Cycle inertWindow(Cycle bound = kCycleNever) const;

  private:
    friend class CpuTestPeer; ///< tests build pipeline states by hand
    /** One fetch group: consecutive instructions within one cache line. */
    struct FtqGroup
    {
        Addr line = 0;            ///< L1I-space line address
        Cycle ready = kCycleNever;
        bool accessPending = true;
        std::vector<trace::Instruction> insts;
        size_t consumed = 0;
        /** Per-instruction mispredict class: 0 none, 1 decode, 2 execute. */
        std::vector<uint8_t> mispredict;
    };

    struct RobEntry
    {
        Cycle done = 0;
        uint8_t mispredict = 0;
    };

    /** Register the front-end and cache-hierarchy invariants (only
     *  called when checking is enabled; see src/check). */
    void registerInvariants();
    void predictStage(trace::InstructionSource &trace);
    /** Fetch down the mispredicted path while the branch resolves. */
    void wrongPathStage();
    void l1iAccessStage();
    void fetchStage();
    void retireStage();
    /**
     * Event-driven cycle skipping: when the next inertWindow() cycles are
     * no-ops, jump `now` past them in one step, bulk-incrementing the
     * stall taxonomy. Only called when skipActive_ (requires
     * cfg.eventSkip, no tracer, no invariant checking).
     */
    void skipIdleCycles(Cycle watchdog);
    /** Compute the completion cycle of an instruction entering the ROB. */
    Cycle backendLatency(const trace::Instruction &inst);
    /** Classify the prediction of a branch; trains all predictors and
     *  leaves the (possibly wrong) predicted target in lastPredictedPc. */
    uint8_t predictBranch(const trace::Instruction &inst);
    /** Line address of @p pc in the L1I's address space. */
    Addr l1iLine(Addr pc);

    SimConfig cfg;
    std::unique_ptr<Cache> l1i_;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> llc_;
    std::unique_ptr<Dram> dram_;
    VirtualMemory vmem;

    std::unique_ptr<DirectionPredictor> direction;
    Btb btb;
    ReturnAddressStack ras;
    IndirectTargetCache itc;
    Prefetcher *l1iPrefetcher = nullptr;

    // Pipeline state. The FTQ holds at most one group per remaining
    // instruction (a fully-consumed group is popped the same cycle), so
    // ftqEntries bounds the group count; the ROB is pushed only below
    // robEntries. Both are therefore fixed-capacity rings.
    Cycle now = 0;
    util::Ring<FtqGroup> ftq;
    size_t ftqInsts = 0;
    /** FTQ groups whose L1I access has not happened yet (accessPending).
     *  Lets the scheduler tell fresh groups (access fires next cycle)
     *  from an MSHR-full backlog (inert until a fill) in O(1). */
    size_t ftqPendingAccess_ = 0;
    /** Last l1iAccessStage ended early on a full L1I MSHR file. */
    bool l1iAccessBlocked_ = false;
    Cycle predictStallUntil = 0;
    bool predictBlockedOnBranch = false;
    bool wrongPathActive = false;
    Addr wrongPathPc = 0;
    Addr lastPredictedPc = 0; ///< where the front-end believed it was going
    util::Ring<RobEntry> rob;
    uint64_t retired = 0;
    /** Cycle skipping armed for the current run() (cfg.eventSkip and no
     *  observer that wants every cycle: tracer or invariant checks). */
    bool skipActive_ = false;

    // Measurement-phase bookkeeping. Members (not run() locals) so that
    // registered counter closures can report measured-phase deltas live.
    bool measuring_ = false;
    uint64_t measureStartRetired_ = 0;
    Cycle measureStartCycle_ = 0;
    uint64_t dramStart_ = 0;

    // Raw counters (copied into SimStats).
    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;
    uint64_t btbMisses = 0;
    uint64_t fetchStallLineMiss = 0;
    uint64_t fetchStallFtqEmptyMispredict = 0;
    uint64_t fetchStallFtqEmptyStarved = 0;
    uint64_t fetchStallRobFull = 0;
    uint64_t fetchIdleCycles = 0;

    obs::EventTracer *tracer_ = nullptr;
    obs::MissAttribution *why_ = nullptr;
    /** Cycle-level consistency checks; only allocated when checking is
     *  enabled, so unchecked runs pay one null-pointer test per cycle. */
    std::unique_ptr<check::Invariants> checks_;
};

} // namespace eip::sim

#endif // EIP_SIM_CPU_HH
