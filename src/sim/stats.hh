/**
 * @file
 * Per-run simulation statistics: raw event counters plus the derived metrics
 * the paper reports (IPC, MPKI, miss ratio, coverage, accuracy).
 */

#ifndef EIP_SIM_STATS_HH
#define EIP_SIM_STATS_HH

#include <cstdint>

namespace eip::sim {

/** Event counters of one cache level. */
struct CacheStats
{
    uint64_t demandAccesses = 0;
    uint64_t demandHits = 0;
    uint64_t demandMisses = 0;       ///< includes late-prefetch misses
    uint64_t mshrMerges = 0;

    uint64_t prefetchRequested = 0;  ///< handed to the PQ by the prefetcher
    uint64_t prefetchDroppedFull = 0;///< PQ overflow
    uint64_t prefetchFiltered = 0;   ///< already cached / in flight
    uint64_t prefetchIssued = 0;     ///< sent to the next level
    uint64_t usefulPrefetches = 0;   ///< prefetched line hit before eviction
    uint64_t latePrefetches = 0;     ///< demand merged into in-flight prefetch
    uint64_t wrongPrefetches = 0;    ///< prefetched line evicted unused

    uint64_t fills = 0;
    uint64_t evictions = 0;
    uint64_t writeAccesses = 0;      ///< store writes (L1D)

    // Wrong-path traffic (zero unless the CPU models wrong-path fetch).
    uint64_t wrongPathAccesses = 0;
    uint64_t wrongPathMisses = 0;

    // Demand-miss cost classification (by observed fill latency).
    uint64_t missesShort = 0;   ///< <= 20 cycles (next level hit)
    uint64_t missesMedium = 0;  ///< <= 60 cycles (LLC-class)
    uint64_t missesLong = 0;    ///< beyond (DRAM-class)
    uint64_t missLatencySum = 0;

    double
    missRatio() const
    {
        return demandAccesses == 0
            ? 0.0
            : static_cast<double>(demandMisses) /
                  static_cast<double>(demandAccesses);
    }

    /** Fraction of would-be misses eliminated by prefetching. */
    double
    coverage() const
    {
        uint64_t would_be = usefulPrefetches + demandMisses;
        return would_be == 0
            ? 0.0
            : static_cast<double>(usefulPrefetches) /
                  static_cast<double>(would_be);
    }

    /** Fraction of issued prefetches that were useful. */
    double
    accuracy() const
    {
        return prefetchIssued == 0
            ? 0.0
            : static_cast<double>(usefulPrefetches) /
                  static_cast<double>(prefetchIssued);
    }
};

/** Whole-run statistics. */
struct SimStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;

    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;  ///< direction/indirect-target errors
    uint64_t btbMisses = 0;          ///< taken branch with unknown target

    // Front-end stall attribution (cycles with zero instructions fetched).
    uint64_t fetchStallLineMiss = 0; ///< head FTQ line not yet arrived
    uint64_t fetchStallFtqEmpty = 0; ///< FTQ drained (mispredict recovery)
    uint64_t fetchStallRobFull = 0;

    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    CacheStats llc;
    uint64_t dramAccesses = 0;

    double
    ipc() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(instructions) /
                  static_cast<double>(cycles);
    }

    /** L1I misses per kilo-instruction. */
    double
    l1iMpki() const
    {
        return instructions == 0
            ? 0.0
            : 1000.0 * static_cast<double>(l1i.demandMisses) /
                  static_cast<double>(instructions);
    }
};

} // namespace eip::sim

#endif // EIP_SIM_STATS_HH
