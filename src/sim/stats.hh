/**
 * @file
 * Per-run simulation statistics: raw event counters plus the derived metrics
 * the paper reports (IPC, MPKI, miss ratio, coverage, accuracy). Every field
 * here is also exported by name through the observability layer (see
 * registerCacheStats / registerSimStats and src/obs).
 */

#ifndef EIP_SIM_STATS_HH
#define EIP_SIM_STATS_HH

#include <cstdint>
#include <string>

#include "util/histogram.hh"

namespace eip::obs {
class CounterRegistry;
}

namespace eip::sim {

/** Demand-miss latency histogram resolution: one bucket per cycle of
 *  observed fill latency, with everything beyond in the overflow bucket
 *  (DRAM plus jitter tops out well below this). */
inline constexpr size_t kMissLatencyBuckets = 256;

/** Upper bounds (inclusive, cycles) of the legacy three-way miss cost
 *  classification derived from the histogram. */
inline constexpr uint64_t kMissShortMax = 20;  ///< next-level-hit class
inline constexpr uint64_t kMissMediumMax = 60; ///< LLC class

/** Event counters of one cache level. */
struct CacheStats
{
    uint64_t demandAccesses = 0;
    uint64_t demandHits = 0;
    uint64_t demandMisses = 0;       ///< includes late-prefetch misses
    uint64_t mshrMerges = 0;

    uint64_t prefetchRequested = 0;  ///< handed to the PQ by the prefetcher
    uint64_t prefetchDroppedFull = 0;///< PQ overflow
    uint64_t prefetchFiltered = 0;   ///< already cached / in flight /
                                     ///< queued (= sum of the three
                                     ///< drop-reason counters below)
    uint64_t prefetchDropDupQueued = 0;  ///< duplicate of a queued request
    uint64_t prefetchDropDupCached = 0;  ///< line already resident at issue
    uint64_t prefetchDropDupInflight = 0;///< line already in flight (MSHR)
    uint64_t prefetchMshrDeferrals = 0;  ///< issue attempts blocked on the
                                         ///< MSHR reserve; the request
                                         ///< stays queued and retries
    uint64_t prefetchIssued = 0;     ///< sent to the next level
    uint64_t usefulPrefetches = 0;   ///< prefetched line hit before eviction
    uint64_t latePrefetches = 0;     ///< demand merged into in-flight prefetch
    uint64_t wrongPrefetches = 0;    ///< prefetched line evicted unused

    uint64_t fills = 0;
    uint64_t evictions = 0;
    uint64_t writeAccesses = 0;      ///< store writes (L1D)

    // Wrong-path traffic (zero unless the CPU models wrong-path fetch).
    uint64_t wrongPathAccesses = 0;
    uint64_t wrongPathMisses = 0;

    /** Full demand-miss cost distribution (observed fill latency, one
     *  bucket per cycle; >= kMissLatencyBuckets in the overflow). */
    Histogram missLatency{kMissLatencyBuckets};
    uint64_t missLatencySum = 0;

    /** Demand misses the consumer waited <= kMissShortMax cycles for
     *  (next-level-hit class) — derived from the latency histogram; the
     *  three buckets reproduce the pre-histogram classification for the
     *  existing tables. */
    uint64_t
    missesShort() const
    {
        return latencyRangeCount(0, kMissShortMax);
    }

    /** Misses in (kMissShortMax, kMissMediumMax] cycles (LLC class). */
    uint64_t
    missesMedium() const
    {
        return latencyRangeCount(kMissShortMax + 1, kMissMediumMax);
    }

    /** Misses beyond kMissMediumMax cycles (DRAM class). */
    uint64_t
    missesLong() const
    {
        return latencyRangeCount(kMissMediumMax + 1, kMissLatencyBuckets - 1) +
               missLatency.overflow();
    }

    double
    missRatio() const
    {
        return demandAccesses == 0
            ? 0.0
            : static_cast<double>(demandMisses) /
                  static_cast<double>(demandAccesses);
    }

    /** Demand misses the prefetcher had not even started to service
     *  when the demand arrived (the truly unhidden ones). */
    uint64_t
    uncoveredMisses() const
    {
        return demandMisses - latePrefetches;
    }

    /**
     * Fraction of would-be misses eliminated by prefetching.
     *
     * The would-be-miss population splits three ways: timely covered
     * (counted in usefulPrefetches — the prefetched line was resident
     * before the demand), covered-in-flight (latePrefetches — the
     * demand merged into a prefetch the prefetcher already had in
     * flight, hiding part of the latency), and uncovered
     * (demandMisses - latePrefetches). A late prefetch is recorded
     * inside demandMisses AND stands for a prefetch outcome, so the
     * naive denominator usefulPrefetches + demandMisses counts that
     * event both as a prefetcher result and as a full would-be miss —
     * double-penalizing lateness that the accuracy/late counters
     * already attribute. Coverage therefore excludes in-flight-covered
     * misses from the denominator: useful / (useful + uncovered).
     * Regression-tested in tests/test_obs.cc (CoverageSemantics).
     */
    double
    coverage() const
    {
        uint64_t would_be = usefulPrefetches + uncoveredMisses();
        return would_be == 0
            ? 0.0
            : static_cast<double>(usefulPrefetches) /
                  static_cast<double>(would_be);
    }

    /** Fraction of issued prefetches that were useful. */
    double
    accuracy() const
    {
        return prefetchIssued == 0
            ? 0.0
            : static_cast<double>(usefulPrefetches) /
                  static_cast<double>(prefetchIssued);
    }

  private:
    uint64_t
    latencyRangeCount(uint64_t lo, uint64_t hi) const
    {
        uint64_t sum = 0;
        for (uint64_t b = lo; b <= hi; ++b)
            sum += missLatency.count(b);
        return sum;
    }
};

/** Whole-run statistics. */
struct SimStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;

    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;  ///< direction/indirect-target errors
    uint64_t btbMisses = 0;          ///< taken branch with unknown target

    // Front-end stall attribution. Exactly one bucket is charged per
    // zero-fetch cycle; the four buckets partition fetchIdleCycles
    // (debug-asserted every cycle, regression-tested in test_cpu.cc).
    uint64_t fetchStallLineMiss = 0; ///< head FTQ line not yet arrived
    uint64_t fetchStallFtqEmptyMispredict = 0; ///< FTQ drained while a
                                               ///< redirect/flush resolves
    uint64_t fetchStallFtqEmptyStarved = 0;    ///< FTQ drained with the
                                               ///< front end unblocked:
                                               ///< prediction under-supply
    uint64_t fetchStallRobFull = 0;  ///< back end full (decode starvation
                                     ///< downstream of a stuffed ROB)
    uint64_t fetchIdleCycles = 0;    ///< cycles with zero fetched insts

    /** Legacy two-bucket view: FTQ-empty cycles regardless of cause. */
    uint64_t
    fetchStallFtqEmpty() const
    {
        return fetchStallFtqEmptyMispredict + fetchStallFtqEmptyStarved;
    }

    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    CacheStats llc;
    uint64_t dramAccesses = 0;

    double
    ipc() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(instructions) /
                  static_cast<double>(cycles);
    }

    /** L1I misses per kilo-instruction. */
    double
    l1iMpki() const
    {
        return instructions == 0
            ? 0.0
            : 1000.0 * static_cast<double>(l1i.demandMisses) /
                  static_cast<double>(instructions);
    }
};

/**
 * Register every counter, derived metric and histogram of @p stats under
 * "<prefix>." names (e.g. "l1i.demand_misses", "l1i.coverage",
 * "l1i.miss_latency"). The registry reads @p stats live: it must not
 * outlive the object.
 */
void registerCacheStats(obs::CounterRegistry &reg, const std::string &prefix,
                        const CacheStats &stats);

/** As above for a whole SimStats ("cpu.", "dram.", per-level caches). */
void registerSimStats(obs::CounterRegistry &reg, const SimStats &stats);

} // namespace eip::sim

#endif // EIP_SIM_STATS_HH
