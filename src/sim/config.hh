/**
 * @file
 * Simulator configuration (the paper's Table III, Sunny Cove-class). All
 * sizes that the paper states explicitly — 32KB/8-way L1I (512 lines),
 * 10-entry L1I MSHR, 32-entry prefetch queue, 4-cycle L1I latency — are the
 * defaults here.
 */

#ifndef EIP_SIM_CONFIG_HH
#define EIP_SIM_CONFIG_HH

#include <cstdint>
#include <string>

namespace eip::sim {

/** Cache replacement policies. */
enum class ReplacementPolicy : uint8_t
{
    Lru,    ///< least recently used (default)
    Fifo,   ///< allocation order
    Random, ///< pseudo-random victim
    Srrip,  ///< static re-reference interval prediction (2-bit RRPV)
};

/** Configuration of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    uint32_t sizeBytes = 32 * 1024;
    uint32_t ways = 8;
    uint32_t hitLatency = 4;    ///< cycles from access to data
    uint32_t mshrEntries = 10;  ///< 0 = unlimited
    uint32_t pqEntries = 32;    ///< prefetch queue depth (0 = none)
    uint32_t pqIssuePerCycle = 2;
    /** MSHR entries prefetches may never occupy (demand-reserved), so a
     *  burst of prefetches cannot block demand misses. */
    uint32_t pfMshrReserve = 2;
    bool idealHit = false;      ///< model a perfect cache (ideal prefetcher)
    ReplacementPolicy replacement = ReplacementPolicy::Lru;

    uint32_t sets() const { return sizeBytes / 64 / ways; }
    uint32_t lines() const { return sizeBytes / 64; }
};

/** Whole-system configuration. */
struct SimConfig
{
    // Core (seven-stage decoupled front-end OoO, Sunny Cove-like).
    uint32_t fetchWidth = 6;      ///< instructions fetched per cycle
    uint32_t predictWidth = 6;    ///< instructions predicted per cycle
    uint32_t retireWidth = 8;
    uint32_t robEntries = 352;
    uint32_t ftqEntries = 48;     ///< decoupling queue (instructions)
    uint32_t backendDepth = 6;    ///< decode..execute pipeline stages
    uint32_t decodeResteerPenalty = 5;   ///< BTB miss, direct target fixed at decode
    uint32_t executeFlushPenalty = 14;   ///< mispredict detected at execute

    // Branch prediction.
    enum class Predictor : uint8_t { Gshare, Perceptron };
    Predictor predictor = Predictor::Gshare;
    uint32_t gshareBits = 16;     ///< log2 of PHT entries
    uint32_t perceptronRows = 1024;
    uint32_t perceptronHistory = 24;
    uint32_t btbEntries = 8192;
    uint32_t btbWays = 8;
    uint32_t rasEntries = 64;
    uint32_t itcEntries = 4096;   ///< indirect target cache

    // Memory hierarchy (designated initializers: unnamed fields keep
    // their CacheConfig defaults, e.g. pfMshrReserve = 2).
    CacheConfig l1i{.name = "L1I", .sizeBytes = 32 * 1024, .ways = 8,
                    .hitLatency = 4, .mshrEntries = 10, .pqEntries = 32,
                    .pqIssuePerCycle = 2};
    CacheConfig l1d{.name = "L1D", .sizeBytes = 48 * 1024, .ways = 12,
                    .hitLatency = 5, .mshrEntries = 16, .pqEntries = 16,
                    .pqIssuePerCycle = 1};
    CacheConfig l2{.name = "L2", .sizeBytes = 512 * 1024, .ways = 8,
                   .hitLatency = 14, .mshrEntries = 32, .pqEntries = 32,
                   .pqIssuePerCycle = 1};
    CacheConfig llc{.name = "LLC", .sizeBytes = 2 * 1024 * 1024, .ways = 16,
                    .hitLatency = 42, .mshrEntries = 64, .pqEntries = 0,
                    .pqIssuePerCycle = 0};
    uint32_t dramLatency = 220;
    uint32_t dramJitter = 80;     ///< extra row-miss latency (randomized)

    /**
     * Model wrong-path execution (paper §III-C1 / future work): after a
     * mispredicted branch the front-end keeps fetching down the predicted
     * (wrong) path until the branch resolves, polluting the L1I and — by
     * default — the prefetcher's training. ChampSim (and therefore the
     * paper's evaluation) does not model this; it is off by default.
     */
    bool modelWrongPath = false;
    uint32_t wrongPathLinesPerCycle = 1;

    // Address space seen by the L1I and its prefetcher (paper §III-C4/IV-E).
    bool physicalL1I = false;
    uint64_t vmemSeed = 0xF00D;

    /**
     * Event-driven cycle skipping (DESIGN.md §3.8): when the pipeline is
     * provably inert, jump the clock to the next event instead of ticking
     * empty cycles. Bit-identical results (pinned by the eipdiff skip
     * axis); auto-disabled per run() under a tracer or invariant checks.
     * The --no-skip CLI flag clears it for A/B timing.
     */
    bool eventSkip = true;

    /** Larger-L1I comparison points of Fig. 6 (keep 4-cycle latency). */
    void
    enlargeL1i(uint32_t size_kb)
    {
        l1i.sizeBytes = size_kb * 1024;
        l1i.ways = size_kb / 4; // 64KB -> 16 ways, 96KB -> 24 ways
    }

    /** Human-readable configuration dump (Table III). */
    std::string describe() const;
};

} // namespace eip::sim

#endif // EIP_SIM_CONFIG_HH
