/**
 * @file
 * Deterministic virtual-to-physical page mapping. Used for the paper's
 * physical-address experiments (§III-C4 and §IV-E): consecutive virtual
 * pages are generally not consecutive physically, which slightly reduces
 * the coverage of sequential prefetching across page boundaries.
 */

#ifndef EIP_SIM_VMEM_HH
#define EIP_SIM_VMEM_HH

#include <unordered_map>

#include "sim/types.hh"

namespace eip::sim {

/**
 * Allocates physical frames for virtual pages on first touch, in a
 * deterministic pseudo-random order (seeded). Mappings are stable for the
 * lifetime of the object.
 */
class VirtualMemory
{
  public:
    explicit VirtualMemory(uint64_t seed = 0xF00D) : seed_(seed) {}

    /** Translate a virtual byte address to a physical byte address. */
    Addr
    translate(Addr vaddr)
    {
        Addr vpage = pageAddr(vaddr);
        auto it = pageTable.find(vpage);
        if (it == pageTable.end()) {
            // Scramble a frame counter through a bijective mixer so frames
            // are unique but non-contiguous (48-bit physical space).
            Addr frame = scramble(nextFrame++) & ((Addr{1} << 36) - 1);
            it = pageTable.emplace(vpage, frame).first;
        }
        return (it->second << kPageBits) | (vaddr & (kPageSize - 1));
    }

    size_t mappedPages() const { return pageTable.size(); }

  private:
    /** splitmix64 finalizer: a bijective 64-bit mixing function. */
    Addr
    scramble(Addr x) const
    {
        x += seed_;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    uint64_t seed_;
    Addr nextFrame = 0x100000; ///< keep frames away from address zero
    std::unordered_map<Addr, Addr> pageTable;
};

} // namespace eip::sim

#endif // EIP_SIM_VMEM_HH
