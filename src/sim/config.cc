#include "sim/config.hh"

#include <sstream>

namespace eip::sim {

namespace {

void
describeCache(std::ostringstream &out, const CacheConfig &c)
{
    out << "  " << c.name << ": " << c.sizeBytes / 1024 << "KB, "
        << c.ways << "-way, " << c.sets() << " sets, latency "
        << c.hitLatency << ", MSHR " << c.mshrEntries
        << ", PQ " << c.pqEntries << "\n";
}

} // namespace

std::string
SimConfig::describe() const
{
    std::ostringstream out;
    out << "Core: fetch " << fetchWidth << "/cycle, retire " << retireWidth
        << "/cycle, ROB " << robEntries << ", FTQ " << ftqEntries
        << ", backend depth " << backendDepth
        << (modelWrongPath ? ", wrong-path modelled" : "") << "\n"
        << "Branch: "
        << (predictor == Predictor::Perceptron ? "hashed perceptron "
                                               : "gshare 2^")
        << (predictor == Predictor::Perceptron
                ? std::to_string(perceptronRows) + "x" +
                      std::to_string(perceptronHistory)
                : std::to_string(gshareBits))
        << ", BTB " << btbEntries
        << " (" << btbWays << "-way), RAS " << rasEntries << ", ITC "
        << itcEntries << ", resteer " << decodeResteerPenalty
        << ", flush " << executeFlushPenalty << "\n";
    describeCache(out, l1i);
    describeCache(out, l1d);
    describeCache(out, l2);
    describeCache(out, llc);
    out << "  DRAM: " << dramLatency << " cycles (+0.." << dramJitter
        << " jitter)\n"
        << "L1I address space: " << (physicalL1I ? "physical" : "virtual")
        << "\n";
    return out.str();
}

} // namespace eip::sim
