/**
 * @file
 * The Entangling prefetcher's History buffer (paper §III-A2/C3): a small
 * circular queue of recently seen basic-block heads with the timestamp of
 * their first L1I access and the size of their basic block. Walked
 * backwards on cache fills to locate a source whose access happened at
 * least `latency` cycles before a miss.
 */

#ifndef EIP_CORE_HISTORY_BUFFER_HH
#define EIP_CORE_HISTORY_BUFFER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::core {

/** One recorded basic-block head. */
struct HistoryEntry
{
    bool valid = false;
    sim::Addr line = 0;     ///< head line address
    uint64_t timestamp = 0; ///< wrapped to timestampBits
    uint8_t bbSize = 0;     ///< following consecutive lines (updated late)
    uint64_t generation = 0;///< detects stale slot references
};

/**
 * Circular history of basic-block heads. Slot indices are stable hardware
 * pointers (the 4-bit "position in the History buffer" the MSHR holds);
 * a generation number detects reuse of a slot.
 */
class HistoryBuffer
{
  public:
    HistoryBuffer(size_t entries, unsigned timestamp_bits)
        : slots(entries), tsBits(timestamp_bits)
    {
        EIP_ASSERT(entries > 0, "history buffer needs at least one entry");
    }

    /** Record a new head; returns the slot index written. */
    size_t
    push(sim::Addr line, sim::Cycle now)
    {
        head = (head + 1) % slots.size();
        HistoryEntry &e = slots[head];
        e.valid = true;
        e.line = line;
        e.timestamp = now & mask(tsBits);
        e.bbSize = 0;
        e.generation = ++generationCounter;
        return head;
    }

    HistoryEntry &at(size_t slot) { return slots[slot]; }
    const HistoryEntry &at(size_t slot) const { return slots[slot]; }

    /** Newest slot index. */
    size_t newest() const { return head; }

    /**
     * Walk backwards (towards older entries) starting at the entry *before*
     * @p from_slot, visiting at most @p max_steps entries. The callback
     * returns true to stop the walk (entry accepted).
     * @return pointer to the accepted entry or nullptr.
     */
    template <typename Pred>
    HistoryEntry *
    walkBackwards(size_t from_slot, size_t max_steps, Pred &&accept)
    {
        size_t slot = from_slot;
        for (size_t step = 0; step < std::min(max_steps, slots.size() - 1);
             ++step) {
            slot = (slot + slots.size() - 1) % slots.size();
            HistoryEntry &e = slots[slot];
            if (!e.valid)
                return nullptr;
            if (accept(e))
                return &e;
        }
        return nullptr;
    }

    /**
     * Elapsed cycles between a recorded (wrapped) timestamp and @p now in
     * the wrapped clock domain.
     */
    uint64_t
    age(uint64_t recorded_ts, sim::Cycle now) const
    {
        return wrappedDistance(recorded_ts, now & mask(tsBits), tsBits);
    }

    size_t capacity() const { return slots.size(); }
    unsigned timestampBits() const { return tsBits; }

    /** Storage cost: tag + timestamp + size per entry, plus head pointer. */
    uint64_t
    storageBits(unsigned tag_bits) const
    {
        return slots.size() * (tag_bits + tsBits + 6) +
               floorLog2(slots.size()) + 1;
    }

  private:
    std::vector<HistoryEntry> slots;
    unsigned tsBits;
    size_t head = 0;
    uint64_t generationCounter = 0;
};

} // namespace eip::core

#endif // EIP_CORE_HISTORY_BUFFER_HH
