/**
 * @file
 * The Entangling prefetcher's History buffer (paper §III-A2/C3): a small
 * circular queue of recently seen basic-block heads with the timestamp of
 * their first L1I access and the size of their basic block. Walked
 * backwards on cache fills to locate a source whose access happened at
 * least `latency` cycles before a miss.
 */

#ifndef EIP_CORE_HISTORY_BUFFER_HH
#define EIP_CORE_HISTORY_BUFFER_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hh"
#include "sim/types.hh"
#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::core {

/** One recorded basic-block head. */
struct HistoryEntry
{
    bool valid = false;
    sim::Addr line = 0;     ///< head line address
    uint64_t timestamp = 0; ///< wrapped to timestampBits
    uint8_t bbSize = 0;     ///< following consecutive lines (updated late)
    uint64_t generation = 0;///< detects stale slot references
    /** Unwrapped record cycle: model-level shadow of the wrapped
     *  timestamp, used to detect when an age computed in the wrapped
     *  clock domain has aliased (see checkedAge()). */
    sim::Cycle recordedAt = 0;
};

/**
 * Circular history of basic-block heads. Slot indices are stable hardware
 * pointers (the 4-bit "position in the History buffer" the MSHR holds);
 * a generation number detects reuse of a slot — holders of a slot index
 * (e.g. the basic-block register in entangling.cc) capture the generation
 * at push time and revalidate with isCurrent() before dereferencing.
 */
class HistoryBuffer
{
  public:
    HistoryBuffer(size_t entries, unsigned timestamp_bits)
        : slots(entries), tsBits(timestamp_bits)
    {
        EIP_ASSERT(entries > 0, "history buffer needs at least one entry");
    }

    /** Record a new head; returns the slot index written. */
    size_t
    push(sim::Addr line, sim::Cycle now)
    {
        head = (head + 1) % slots.size();
        HistoryEntry &e = slots[head];
        e.valid = true;
        e.line = line;
        e.timestamp = now & mask(tsBits);
        e.recordedAt = now;
        e.bbSize = 0;
        e.generation = ++generationCounter;
        return head;
    }

    HistoryEntry &at(size_t slot) { return slots[slot]; }
    const HistoryEntry &at(size_t slot) const { return slots[slot]; }

    /** Newest slot index. */
    size_t newest() const { return head; }

    /** Generation stamp of @p slot (capture at push time). */
    uint64_t generationOf(size_t slot) const
    {
        return slots[slot].generation;
    }

    /** Is @p slot still the entry pushed with @p generation? False once
     *  the slot was invalidated (merge) or reused by a newer push —
     *  the guard against dereferencing a recycled slot through a held
     *  index (the MSHR's history pointer). */
    bool
    isCurrent(size_t slot, uint64_t generation) const
    {
        const HistoryEntry &e = slots[slot];
        return e.valid && e.generation == generation;
    }

    /**
     * Walk backwards (towards older entries) starting at the entry *before*
     * @p from_slot, visiting at most @p max_steps entries. The callback
     * returns true to stop the walk (entry accepted).
     *
     * The walk deliberately STOPS at the first invalid entry instead of
     * skipping it. An invalid slot is either the cold tail of a filling
     * buffer (nothing older exists) or a hole punched by spatio-temporal
     * merging (§III-B2) — and merge holes cluster right behind the newest
     * entry, so treating one as end-of-history is the same convention the
     * merge scan itself uses (see finishBasicBlock). Skipping holes was
     * measured to reach stale far-back heads: ~25% more prefetches and
     * ~2pp normalized energy for no accuracy gain. Callers that hold a
     * slot index across pushes must still revalidate with isCurrent().
     * @return pointer to the accepted entry or nullptr.
     */
    template <typename Pred>
    HistoryEntry *
    walkBackwards(size_t from_slot, size_t max_steps, Pred &&accept)
    {
        size_t slot = from_slot;
        for (size_t step = 0; step < std::min(max_steps, slots.size() - 1);
             ++step) {
            slot = (slot + slots.size() - 1) % slots.size();
            HistoryEntry &e = slots[slot];
            if (!e.valid)
                return nullptr; // end of recorded history (see above)
            if (accept(e))
                return &e;
        }
        return nullptr;
    }

    /**
     * Elapsed cycles between a recorded (wrapped) timestamp and @p now in
     * the wrapped clock domain. Aliases when the true distance exceeds
     * the wrapped range — use checkedAge() when the unwrapped record
     * cycle is available.
     */
    uint64_t
    age(uint64_t recorded_ts, sim::Cycle now) const
    {
        return wrappedDistance(recorded_ts, now & mask(tsBits), tsBits);
    }

    /**
     * Age of an entry recorded at (unwrapped) @p recorded_at, saturated
     * at the wrapped clock's range: when now - recorded_at exceeds
     * 2^tsBits - 1 the hardware's wrapped timestamp has aliased and the
     * true age is unrepresentable, so report the maximum — "at least a
     * full period old" — instead of the aliased small value. Below the
     * saturation point this equals the wrapped-domain age() exactly.
     */
    uint64_t
    checkedAge(sim::Cycle recorded_at, sim::Cycle now) const
    {
        uint64_t period = mask(tsBits);
        uint64_t elapsed = now - recorded_at;
        if (elapsed > period)
            return period;
        EIP_DASSERT(age(recorded_at & mask(tsBits), now) == elapsed,
                    "wrapped age must match unwrapped age below the "
                    "aliasing point");
        return elapsed;
    }

    size_t capacity() const { return slots.size(); }
    unsigned timestampBits() const { return tsBits; }
    /** Total pushes so far (upper bound of any generation stamp). */
    uint64_t generations() const { return generationCounter; }

    /** Storage cost: tag + timestamp + size per entry, plus head pointer. */
    uint64_t
    storageBits(unsigned tag_bits) const
    {
        return slots.size() * (tag_bits + tsBits + 6) +
               floorLog2(slots.size()) + 1;
    }

    /**
     * Register this buffer's consistency checks with @p inv under
     * "<prefix>." names (see src/check): generations decrease strictly
     * monotonically walking backwards from the newest entry (skipping
     * holes) and never exceed the push counter, and every wrapped
     * timestamp is consistent with its unwrapped shadow.
     */
    void
    registerInvariants(check::Invariants &inv, const std::string &prefix)
    {
        // Walking the whole buffer is trivial at the paper's 16 entries;
        // stride the audit for the EPI variant's 1024-entry buffer.
        uint64_t stride = slots.size() <= 64 ? 1 : 16;
        inv.add(
            prefix + ".audit",
            [this](std::string &detail) {
                uint64_t prev_gen = UINT64_MAX;
                size_t slot = head;
                for (size_t step = 0; step + 1 < slots.size(); ++step) {
                    const HistoryEntry &e = slots[slot];
                    slot = (slot + slots.size() - 1) % slots.size();
                    if (!e.valid)
                        continue;
                    if (e.generation > generationCounter) {
                        detail = "generation " +
                                 std::to_string(e.generation) +
                                 " > pushes " +
                                 std::to_string(generationCounter);
                        return false;
                    }
                    if (e.generation >= prev_gen) {
                        detail = "generation " +
                                 std::to_string(e.generation) +
                                 " not older than its successor " +
                                 std::to_string(prev_gen);
                        return false;
                    }
                    prev_gen = e.generation;
                    if (e.timestamp !=
                        (e.recordedAt & mask(tsBits))) {
                        detail = "timestamp " +
                                 std::to_string(e.timestamp) +
                                 " != wrapped record cycle " +
                                 std::to_string(e.recordedAt &
                                                mask(tsBits));
                        return false;
                    }
                }
                return true;
            },
            stride);
    }

  private:
    std::vector<HistoryEntry> slots;
    unsigned tsBits;
    size_t head = 0;
    uint64_t generationCounter = 0;
};

} // namespace eip::core

#endif // EIP_CORE_HISTORY_BUFFER_HH
