/**
 * @file
 * The Entangled table (paper §III): a 16-way set-associative structure
 * whose entries hold a source basic-block head (10-bit partial tag), the
 * maximum observed size of its basic block, and a compressed array of
 * entangled destinations. Uses the paper's enhanced-FIFO replacement: the
 * information of the FIFO victim is relocated into a pair-less way of the
 * same set when one exists.
 */

#ifndef EIP_CORE_ENTANGLED_TABLE_HH
#define EIP_CORE_ENTANGLED_TABLE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/dest_compression.hh"
#include "sim/types.hh"

namespace eip::check {
class Invariants;
}

namespace eip::core {

/**
 * Ghost-pair set (miss attribution, DESIGN.md §3.11): a bounded,
 * deduplicated FIFO of destination lines whose predictions a table
 * discarded — the evidence behind the `pair_evicted` blame category.
 * Model-level shadow state only: it is allocated on demand (enableGhost /
 * Prefetcher::enableBlame), never consulted by prediction, and costs
 * nothing on plain runs.
 *
 * Entries are erased when the line is learned again; a line that is
 * evicted and later re-learned under a source we never see erased stays
 * resident until capacity pushes it out, so `pair_evicted` can
 * over-attribute slightly — but every miss still lands in exactly one
 * category, so the partition identity is unaffected.
 */
class GhostPairSet
{
  public:
    static constexpr size_t kDefaultCapacity = 4096;

    explicit GhostPairSet(size_t capacity = kDefaultCapacity)
        : capacity_(capacity)
    {}

    /** Remember that a prediction targeting @p line was discarded. */
    void record(sim::Addr line);
    /** The line was learned again; it is no longer a ghost. */
    void erase(sim::Addr line) { set_.erase(line); }
    bool contains(sim::Addr line) const { return set_.count(line) != 0; }
    size_t size() const { return set_.size(); }

  private:
    size_t capacity_;
    /** Insertion order; may hold stale (erased) lines — popping one is a
     *  no-op on set_, so staleness only wastes FIFO slots. */
    std::deque<sim::Addr> fifo_;
    std::unordered_set<sim::Addr> set_;
};

/** One source entry of the Entangled table. */
struct EntangledEntry
{
    bool valid = false;
    uint16_t tag = 0;      ///< 10-bit partial (truncated) line tag
    sim::Addr line = 0;    ///< full line address (model-level convenience;
                           ///< the hardware reconstructs it from context)
    uint8_t bbSize = 0;    ///< following consecutive lines (max observed)
    DestinationArray dests;
    uint64_t fifoOrder = 0;

    explicit EntangledEntry(const CompressionScheme &scheme)
        : dests(scheme)
    {}
};

/** Aggregate usage statistics exported for the Fig. 12-15 benches. */
struct EntangledTableStats
{
    uint64_t inserts = 0;
    /** Replacements that discarded the FIFO victim's information (the
     *  victim was pair-less, or no pair-less spare way existed). */
    uint64_t evictions = 0;
    uint64_t relocations = 0; ///< enhanced-FIFO victim rescues
    /** Replacements where the relocation rescued the victim but
     *  discarded the valid pair-less spare way it moved into — every
     *  relocation clobbers exactly one such entry, so this always
     *  equals relocations (a registered invariant). Kept distinct so
     *  evictions + relocationEvictions counts every entry whose
     *  information the table dropped. */
    uint64_t relocationEvictions = 0;
    uint64_t pairsAdded = 0;
    uint64_t pairsRejected = 0; ///< destination not representable
};

/**
 * The table proper. Lookups match on the set index plus the 10-bit partial
 * tag only — exactly the state the costed hardware holds — so two lines
 * mapping to the same (set, tag) alias onto one entry and a lookup can
 * return a false-positive match, as the hardware proposal accepts
 * (storageBits() charges the 10-bit tag accordingly). The full line
 * address kept per entry is model-level diagnostics for the invariant
 * auditor, never consulted by find().
 */
class EntangledTable
{
  public:
    EntangledTable(uint32_t entries, uint32_t ways,
                   const CompressionScheme &scheme);

    /** Find the entry whose (set, partial tag) matches @p line, or
     *  nullptr. May be a false positive under tag aliasing (see class
     *  comment); at most one entry per (set, tag) can exist. */
    EntangledEntry *find(sim::Addr line);
    const EntangledEntry *
    find(sim::Addr line) const
    {
        return const_cast<EntangledTable *>(this)->find(line);
    }

    /**
     * Find-or-insert the entry for @p line and raise its basic-block size
     * to @p size (sizes only ever grow, paper §III-A1).
     */
    EntangledEntry *recordBasicBlock(sim::Addr line, unsigned size);

    /**
     * Entangle @p dst_line to source @p src_line. Inserts the source entry
     * if needed. @p evict_on_full replaces the lowest-confidence
     * destination when the array is full.
     * @return true when the pair is present on return.
     */
    bool addPair(sim::Addr src_line, sim::Addr dst_line, bool evict_on_full);

    /** Does the entry for @p src_line have room for @p dst_line? Entries
     *  that do not exist count as having room. */
    bool hasRoomFor(sim::Addr src_line, sim::Addr dst_line);

    uint32_t sets() const { return numSets; }
    uint32_t ways() const { return numWays; }
    uint32_t entries() const { return numSets * numWays; }
    const EntangledTableStats &stats() const { return stats_; }

    /** Entry coordinates (set, way) of @p entry — the paper's src pointer
     *  stored in PQ/MSHR/L1I. */
    std::pair<uint32_t, uint32_t> coordsOf(const EntangledEntry &entry) const;
    EntangledEntry &entryAt(uint32_t set, uint32_t way);

    /** Total storage in bits: per-entry tag, bb size, destination payload
     *  and mode, plus per-set FIFO counters. */
    uint64_t storageBits() const;

    /**
     * Register this table's consistency checks with @p inv under
     * "<prefix>." names (see src/check): per-set tag/index/FIFO audit
     * (rotating one set per cycle) and the replacement accounting
     * identities (relocations == relocation evictions; valid entries ==
     * inserts - evictions - relocation evictions). @p inv must not
     * outlive the table.
     */
    void registerInvariants(check::Invariants &inv,
                            const std::string &prefix);

    /**
     * Arm ghost-pair tracking (miss attribution, DESIGN.md §3.11): from
     * now on, every destination with live confidence that an eviction
     * discards is recorded in a GhostPairSet, and addPair() clears the
     * ghost when a destination is re-learned. Never called on plain
     * runs, so the shadow set costs nothing when blame is off.
     */
    void enableGhost();
    bool ghostEnabled() const { return ghost_ != nullptr; }
    /** Is @p line a destination whose entangled pair was evicted and not
     *  re-learned since? Always false until enableGhost(). */
    bool
    ghostContains(sim::Addr line) const
    {
        return ghost_ != nullptr && ghost_->contains(line);
    }

    /** Iterate all valid entries (benches/tests). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &e : table) {
            if (e.valid)
                fn(e);
        }
    }

  private:
    uint32_t indexOf(sim::Addr line) const;
    uint16_t tagOf(sim::Addr line) const;
    /** Insert a fresh entry for @p line, running replacement if needed. */
    EntangledEntry *insert(sim::Addr line);

    uint32_t numSets;
    uint32_t numWays;
    unsigned setBits;
    CompressionScheme scheme_;
    std::vector<EntangledEntry> table; ///< set-major
    uint64_t fifoClock = 0;
    uint32_t auditSet_ = 0; ///< rotating cursor of the set audit
    EntangledTableStats stats_;
    /** Ghost-pair shadow set; null (and free) until enableGhost(). */
    std::unique_ptr<GhostPairSet> ghost_;
};

} // namespace eip::core

#endif // EIP_CORE_ENTANGLED_TABLE_HH
