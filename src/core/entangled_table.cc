#include "core/entangled_table.hh"

#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::core {

namespace {
constexpr unsigned kTagBits = 10; ///< paper §III-C3
} // namespace

EntangledTable::EntangledTable(uint32_t entries, uint32_t ways,
                               const CompressionScheme &scheme)
    : numSets(entries / ways), numWays(ways),
      setBits(floorLog2(entries / ways)), scheme_(scheme)
{
    EIP_ASSERT(entries % ways == 0, "entries must be a multiple of ways");
    EIP_ASSERT(isPowerOf2(numSets), "set count must be a power of two");
    table.assign(static_cast<size_t>(numSets) * numWays,
                 EntangledEntry(scheme));
}

uint32_t
EntangledTable::indexOf(sim::Addr line) const
{
    // "Indexed with a simple XOR operation of the different bits of the
    // address" — fold the whole line address down to the set index width.
    return static_cast<uint32_t>(xorFold(line, setBits)) & (numSets - 1);
}

uint16_t
EntangledTable::tagOf(sim::Addr line) const
{
    return static_cast<uint16_t>(xorFold(line >> setBits, kTagBits));
}

EntangledEntry *
EntangledTable::find(sim::Addr line)
{
    size_t base = static_cast<size_t>(indexOf(line)) * numWays;
    uint16_t tag = tagOf(line);
    for (uint32_t w = 0; w < numWays; ++w) {
        EntangledEntry &e = table[base + w];
        if (e.valid && e.tag == tag && e.line == line)
            return &e;
    }
    return nullptr;
}

EntangledEntry *
EntangledTable::insert(sim::Addr line)
{
    size_t base = static_cast<size_t>(indexOf(line)) * numWays;

    // Prefer an invalid way.
    for (uint32_t w = 0; w < numWays; ++w) {
        EntangledEntry &e = table[base + w];
        if (!e.valid) {
            e.valid = true;
            e.tag = tagOf(line);
            e.line = line;
            e.bbSize = 0;
            e.dests.clear();
            e.fifoOrder = ++fifoClock;
            ++stats_.inserts;
            return &e;
        }
    }

    // Enhanced FIFO: pick the oldest entry; if it still holds entangled
    // pairs and a pair-less way exists in the set, relocate its contents
    // there instead of losing them (paper §III-C3).
    EntangledEntry *victim = &table[base];
    for (uint32_t w = 1; w < numWays; ++w) {
        if (table[base + w].fifoOrder < victim->fifoOrder)
            victim = &table[base + w];
    }
    if (!victim->dests.empty()) {
        for (uint32_t w = 0; w < numWays; ++w) {
            EntangledEntry &spare = table[base + w];
            if (&spare != victim && spare.dests.empty()) {
                spare = *victim; // keeps the victim's fifoOrder
                ++stats_.relocations;
                break;
            }
        }
    }
    ++stats_.evictions;
    victim->valid = true;
    victim->tag = tagOf(line);
    victim->line = line;
    victim->bbSize = 0;
    victim->dests.clear();
    victim->fifoOrder = ++fifoClock;
    ++stats_.inserts;
    return victim;
}

EntangledEntry *
EntangledTable::recordBasicBlock(sim::Addr line, unsigned size)
{
    EntangledEntry *entry = find(line);
    if (entry == nullptr)
        entry = insert(line);
    if (size > entry->bbSize)
        entry->bbSize = static_cast<uint8_t>(std::min(size, 63u));
    return entry;
}

bool
EntangledTable::hasRoomFor(sim::Addr src_line, sim::Addr dst_line)
{
    EntangledEntry *entry = find(src_line);
    if (entry == nullptr)
        return true;
    return entry->dests.hasRoomFor(src_line, dst_line);
}

bool
EntangledTable::addPair(sim::Addr src_line, sim::Addr dst_line,
                        bool evict_on_full)
{
    EntangledEntry *entry = find(src_line);
    if (entry == nullptr)
        entry = insert(src_line);
    bool added = entry->dests.insert(src_line, dst_line, evict_on_full);
    if (added)
        ++stats_.pairsAdded;
    else
        ++stats_.pairsRejected;
    return added;
}

std::pair<uint32_t, uint32_t>
EntangledTable::coordsOf(const EntangledEntry &entry) const
{
    size_t pos = &entry - table.data();
    return {static_cast<uint32_t>(pos / numWays),
            static_cast<uint32_t>(pos % numWays)};
}

EntangledEntry &
EntangledTable::entryAt(uint32_t set, uint32_t way)
{
    return table[static_cast<size_t>(set) * numWays + way];
}

uint64_t
EntangledTable::storageBits() const
{
    uint64_t per_entry = kTagBits + 6 + scheme_.totalBits();
    // Per-set FIFO position counters (log2(ways) bits each).
    uint64_t per_set = floorLog2(numWays);
    return static_cast<uint64_t>(numSets) * numWays * per_entry +
           static_cast<uint64_t>(numSets) * per_set;
}

} // namespace eip::core
