#include "core/entangled_table.hh"

#include "check/invariants.hh"
#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::core {

namespace {
constexpr unsigned kTagBits = 10; ///< paper §III-C3
} // namespace

void
GhostPairSet::record(sim::Addr line)
{
    // Dedup: a re-recorded line keeps its original FIFO age.
    if (!set_.insert(line).second)
        return;
    fifo_.push_back(line);
    // Bound the FIFO, stale entries included; dropping a live ghost here
    // only forgets an old eviction (that miss falls back to the seen-set
    // categories), it never double-counts.
    while (fifo_.size() > capacity_) {
        set_.erase(fifo_.front());
        fifo_.pop_front();
    }
}

EntangledTable::EntangledTable(uint32_t entries, uint32_t ways,
                               const CompressionScheme &scheme)
    : numSets(entries / ways), numWays(ways),
      setBits(floorLog2(entries / ways)), scheme_(scheme)
{
    EIP_ASSERT(entries % ways == 0, "entries must be a multiple of ways");
    EIP_ASSERT(isPowerOf2(numSets), "set count must be a power of two");
    table.assign(static_cast<size_t>(numSets) * numWays,
                 EntangledEntry(scheme));
}

uint32_t
EntangledTable::indexOf(sim::Addr line) const
{
    // "Indexed with a simple XOR operation of the different bits of the
    // address" — fold the whole line address down to the set index width.
    return static_cast<uint32_t>(xorFold(line, setBits)) & (numSets - 1);
}

uint16_t
EntangledTable::tagOf(sim::Addr line) const
{
    // Partial tag: the kTagBits address bits directly above the set
    // index, truncated — not folded. Since find() matches tag-only
    // (the hardware stores nothing else), a folded tag would alias
    // pairs of lines anywhere in the code footprint (~N²/2^18 pairs);
    // truncation confines false positives to lines at least
    // 2^(setBits+kTagBits) lines apart — 16 MB of code for the 4K
    // configuration, beyond any realistic instruction footprint. See
    // DESIGN.md (tag aliasing) for the decision record.
    return static_cast<uint16_t>((line >> setBits) & mask(kTagBits));
}

EntangledEntry *
EntangledTable::find(sim::Addr line)
{
    size_t base = static_cast<size_t>(indexOf(line)) * numWays;
    uint16_t tag = tagOf(line);
    for (uint32_t w = 0; w < numWays; ++w) {
        EntangledEntry &e = table[base + w];
        // Tag-only match: the hardware stores just the 10-bit partial tag
        // (storageBits() charges exactly that), so lines aliasing to the
        // same (set, tag) share one entry and this can be a false
        // positive — intended, see tagOf(). Insertion always goes
        // through find() first, so (set, tag) stays unique.
        if (e.valid && e.tag == tag)
            return &e;
    }
    return nullptr;
}

EntangledEntry *
EntangledTable::insert(sim::Addr line)
{
    size_t base = static_cast<size_t>(indexOf(line)) * numWays;

    // Prefer an invalid way.
    for (uint32_t w = 0; w < numWays; ++w) {
        EntangledEntry &e = table[base + w];
        if (!e.valid) {
            e.valid = true;
            e.tag = tagOf(line);
            e.line = line;
            e.bbSize = 0;
            e.dests.clear();
            e.fifoOrder = ++fifoClock;
            ++stats_.inserts;
            return &e;
        }
    }

    // Enhanced FIFO: pick the oldest entry; if it still holds entangled
    // pairs and a pair-less way exists in the set, relocate its contents
    // there instead of losing them (paper §III-C3).
    EntangledEntry *victim = &table[base];
    for (uint32_t w = 1; w < numWays; ++w) {
        if (table[base + w].fifoOrder < victim->fifoOrder)
            victim = &table[base + w];
    }
    bool relocated = false;
    if (!victim->dests.empty()) {
        for (uint32_t w = 0; w < numWays; ++w) {
            EntangledEntry &spare = table[base + w];
            if (&spare != victim && spare.dests.empty()) {
                // Every way is valid here (the invalid-way loop above
                // would have won otherwise), so the pair-less spare holds
                // live information the relocation discards: account for
                // it, and re-stamp the relocated entry as the set's
                // newest — a relocation is a re-insertion, not a
                // continuation of the victim's residency.
                spare = *victim;
                spare.fifoOrder = ++fifoClock;
                ++stats_.relocations;
                ++stats_.relocationEvictions;
                relocated = true;
                break;
            }
        }
    }
    if (!relocated) {
        ++stats_.evictions;
        // Miss attribution: the victim's pairs are lost — any future miss
        // on one of their destinations is explained by this eviction
        // (relocation and the pair-less spare it clobbers lose no pairs).
        if (ghost_ != nullptr) {
            for (const Destination &d : victim->dests.all()) {
                if (!d.confidence.zero())
                    ghost_->record(d.line);
            }
        }
    }
    victim->valid = true;
    victim->tag = tagOf(line);
    victim->line = line;
    victim->bbSize = 0;
    victim->dests.clear();
    victim->fifoOrder = ++fifoClock;
    ++stats_.inserts;
    return victim;
}

EntangledEntry *
EntangledTable::recordBasicBlock(sim::Addr line, unsigned size)
{
    EntangledEntry *entry = find(line);
    if (entry == nullptr)
        entry = insert(line);
    if (size > entry->bbSize)
        entry->bbSize = static_cast<uint8_t>(std::min(size, 63u));
    return entry;
}

bool
EntangledTable::hasRoomFor(sim::Addr src_line, sim::Addr dst_line)
{
    EntangledEntry *entry = find(src_line);
    if (entry == nullptr)
        return true;
    return entry->dests.hasRoomFor(src_line, dst_line);
}

bool
EntangledTable::addPair(sim::Addr src_line, sim::Addr dst_line,
                        bool evict_on_full)
{
    EntangledEntry *entry = find(src_line);
    if (entry == nullptr)
        entry = insert(src_line);
    bool added = entry->dests.insert(src_line, dst_line, evict_on_full);
    if (added) {
        ++stats_.pairsAdded;
        // The destination is predictable again: clear its ghost.
        if (ghost_ != nullptr)
            ghost_->erase(dst_line);
    } else {
        ++stats_.pairsRejected;
    }
    return added;
}

void
EntangledTable::enableGhost()
{
    if (ghost_ == nullptr)
        ghost_ = std::make_unique<GhostPairSet>();
}

std::pair<uint32_t, uint32_t>
EntangledTable::coordsOf(const EntangledEntry &entry) const
{
    size_t pos = &entry - table.data();
    return {static_cast<uint32_t>(pos / numWays),
            static_cast<uint32_t>(pos % numWays)};
}

EntangledEntry &
EntangledTable::entryAt(uint32_t set, uint32_t way)
{
    return table[static_cast<size_t>(set) * numWays + way];
}

void
EntangledTable::registerInvariants(check::Invariants &inv,
                                   const std::string &prefix)
{
    // Per-set audit, rotating one set per call: tags derive from the
    // stored line, entries sit in the set their line maps to, each
    // (set, tag) appears at most once (find() matches tag-only, so a
    // duplicate would make lookups nondeterministic), and the FIFO
    // stamps are unique and no newer than the clock.
    inv.add(prefix + ".set_audit", [this](std::string &detail) {
        uint32_t set = auditSet_;
        auditSet_ = (auditSet_ + 1) % numSets;
        size_t base = static_cast<size_t>(set) * numWays;
        for (uint32_t w = 0; w < numWays; ++w) {
            const EntangledEntry &e = table[base + w];
            if (!e.valid)
                continue;
            if (e.tag != tagOf(e.line)) {
                detail = "set " + std::to_string(set) + " way " +
                         std::to_string(w) + ": tag " +
                         std::to_string(e.tag) + " != tagOf(line)=" +
                         std::to_string(tagOf(e.line));
                return false;
            }
            if (indexOf(e.line) != set) {
                detail = "line " + std::to_string(e.line) +
                         " stored in set " + std::to_string(set) +
                         " but maps to set " +
                         std::to_string(indexOf(e.line));
                return false;
            }
            if (e.fifoOrder > fifoClock) {
                detail = "set " + std::to_string(set) + " way " +
                         std::to_string(w) + ": fifoOrder " +
                         std::to_string(e.fifoOrder) + " > clock " +
                         std::to_string(fifoClock);
                return false;
            }
            for (uint32_t v = w + 1; v < numWays; ++v) {
                const EntangledEntry &other = table[base + v];
                if (!other.valid)
                    continue;
                if (other.tag == e.tag) {
                    detail = "set " + std::to_string(set) +
                             ": duplicate tag " + std::to_string(e.tag) +
                             " in ways " + std::to_string(w) + "/" +
                             std::to_string(v);
                    return false;
                }
                if (other.fifoOrder == e.fifoOrder) {
                    detail = "set " + std::to_string(set) +
                             ": duplicate fifoOrder " +
                             std::to_string(e.fifoOrder) + " in ways " +
                             std::to_string(w) + "/" + std::to_string(v);
                    return false;
                }
            }
        }
        return true;
    });

    // Every relocation clobbers exactly one valid pair-less spare way:
    // the two counters advance in lock-step. Reverting the relocation
    // accounting fix (or relocating into an invalid way) breaks this.
    inv.add(prefix + ".relocation_accounting", [this](std::string &detail) {
        if (stats_.relocations == stats_.relocationEvictions)
            return true;
        detail = "relocations=" + std::to_string(stats_.relocations) +
                 " relocation_evictions=" +
                 std::to_string(stats_.relocationEvictions);
        return false;
    });

    // Full occupancy recount (strided: the table can hold 8K+ entries):
    // inserts create valid entries, and the only ways one disappears are
    // a counted eviction or a counted relocation eviction.
    inv.add(
        prefix + ".occupancy_accounting",
        [this](std::string &detail) {
            uint64_t valid = 0;
            for (const EntangledEntry &e : table)
                valid += e.valid ? 1 : 0;
            uint64_t expected = stats_.inserts - stats_.evictions -
                                stats_.relocationEvictions;
            if (valid == expected)
                return true;
            detail = "valid=" + std::to_string(valid) +
                     " inserts=" + std::to_string(stats_.inserts) +
                     " evictions=" + std::to_string(stats_.evictions) +
                     " relocation_evictions=" +
                     std::to_string(stats_.relocationEvictions);
            return false;
        },
        /*stride=*/256);
}

uint64_t
EntangledTable::storageBits() const
{
    uint64_t per_entry = kTagBits + 6 + scheme_.totalBits();
    // Per-set FIFO position counters (log2(ways) bits each).
    uint64_t per_set = floorLog2(numWays);
    return static_cast<uint64_t>(numSets) * numWays * per_entry +
           static_cast<uint64_t>(numSets) * per_set;
}

} // namespace eip::core
