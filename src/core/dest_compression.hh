/**
 * @file
 * Compressed destination arrays of the Entangled table (paper §III-B3 and
 * Tables I/II).
 *
 * An entry's destinations share one encoding mode. Mode k (1-based) packs k
 * destinations into a fixed payload; each destination gets
 * floor(payload / k) - confBits address bits plus a confidence counter. A
 * destination stores the low bits of its line address starting at the most
 * significant bit that differs from the source — the high bits are
 * reconstructed from the source address at prefetch time.
 *
 * With the paper's virtual parameters (60-bit payload, 2-bit confidence,
 * up to 6 destinations) the address bits per mode are
 * {58, 28, 18, 13, 10, 8} (Table I); with the physical parameters (44-bit
 * payload, up to 4) they are {42, 20, 12, 9} (Table II).
 */

#ifndef EIP_CORE_DEST_COMPRESSION_HH
#define EIP_CORE_DEST_COMPRESSION_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "util/saturating_counter.hh"

namespace eip::core {

/** Compression geometry: payload width and destination limit. */
struct CompressionScheme
{
    unsigned payloadBits = 60; ///< bits shared by all destinations
    unsigned modeBits = 3;     ///< bits spent on the mode field
    unsigned confBits = 2;     ///< confidence counter width
    unsigned maxDests = 6;     ///< highest mode

    /** Table I / Table II presets. */
    static CompressionScheme virtualScheme();
    static CompressionScheme physicalScheme();

    /** Address bits available per destination in mode @p k (1-based). */
    unsigned
    addrBits(unsigned k) const
    {
        return payloadBits / k - confBits;
    }

    /**
     * The largest mode (destination capacity) whose per-destination width
     * still holds @p bits address bits, or 0 when even mode 1 cannot.
     * A far-away destination thus forces a small mode (few slots); nearby
     * destinations allow mode maxDests.
     */
    unsigned maxModeFor(unsigned bits) const;

    /** Total storage of one destination array including the mode field. */
    unsigned totalBits() const { return payloadBits + modeBits; }
};

/** One logical destination: a line address delta plus confidence. */
struct Destination
{
    sim::Addr line = 0;     ///< full reconstructed line address
    unsigned bitsNeeded = 0; ///< address bits required relative to the src
    SaturatingCounter confidence;
};

/**
 * A destination array constrained by a CompressionScheme. The array tracks
 * the current mode; inserting a destination that needs more address bits
 * than the current mode provides forces a larger mode (fewer slots), which
 * may require evicting low-confidence destinations. Removing destinations
 * recomputes the mode (paper: "upon the eviction of a dst-entangled we
 * re-compute the mode").
 */
class DestinationArray
{
  public:
    explicit DestinationArray(const CompressionScheme &scheme);

    /**
     * Insert (or refresh) destination @p dst_line for source @p src_line.
     * New pairs start at maximum confidence. When the array is full at the
     * required mode and @p evict_on_full is set, the lowest-confidence
     * destination is replaced; otherwise the insert is rejected.
     *
     * @return true when the destination is present on return.
     */
    bool insert(sim::Addr src_line, sim::Addr dst_line, bool evict_on_full);

    /** Would insert() succeed without evicting a destination? */
    bool hasRoomFor(sim::Addr src_line, sim::Addr dst_line) const;

    /** Find the destination equal to @p dst_line, or nullptr. */
    Destination *find(sim::Addr dst_line);

    /** Drop destinations whose confidence reached zero; recompute mode. */
    void dropDeadDestinations();

    /** Remove all destinations. */
    void clear();

    const std::vector<Destination> &all() const { return dests; }
    size_t size() const { return dests.size(); }
    bool empty() const { return dests.empty(); }
    unsigned mode() const { return mode_; }
    const CompressionScheme &scheme() const { return scheme_; }

    /** Address bits the current mode grants each destination. */
    unsigned
    bitsPerDest() const
    {
        return scheme_.addrBits(mode_ == 0 ? 1 : mode_);
    }

  private:
    /** Recompute the minimal mode covering all current destinations. */
    void recomputeMode();

    CompressionScheme scheme_;
    std::vector<Destination> dests;
    unsigned mode_ = 0; ///< 0 = empty array
};

} // namespace eip::core

#endif // EIP_CORE_DEST_COMPRESSION_HH
