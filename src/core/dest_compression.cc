#include "core/dest_compression.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::core {

CompressionScheme
CompressionScheme::virtualScheme()
{
    return CompressionScheme{60, 3, 2, 6};
}

CompressionScheme
CompressionScheme::physicalScheme()
{
    return CompressionScheme{44, 2, 2, 4};
}

unsigned
CompressionScheme::maxModeFor(unsigned bits) const
{
    for (unsigned k = maxDests; k >= 1; --k) {
        if (addrBits(k) >= bits)
            return k;
    }
    return 0;
}

DestinationArray::DestinationArray(const CompressionScheme &scheme)
    : scheme_(scheme)
{
    EIP_ASSERT(scheme.maxDests >= 1 && scheme.maxDests <= 16,
               "compression scheme destination limit out of range");
    dests.reserve(scheme.maxDests);
}

namespace {

/** Address bits required to encode @p dst when @p src supplies the rest. */
unsigned
requiredBits(sim::Addr src, sim::Addr dst)
{
    return std::max(1u, significantBits(src, dst));
}

} // namespace

bool
DestinationArray::hasRoomFor(sim::Addr src_line, sim::Addr dst_line) const
{
    unsigned bits = requiredBits(src_line, dst_line);
    unsigned mode_cap = scheme_.maxModeFor(bits);
    if (mode_cap == 0)
        return false; // not encodable at all (too far from the source)
    for (const auto &d : dests) {
        if (d.line == dst_line)
            return true; // refresh, no growth
    }
    // The shared mode after insertion is the most restrictive requirement
    // across all destinations; it is also the slot capacity.
    for (const auto &d : dests)
        mode_cap = std::min(mode_cap, scheme_.maxModeFor(d.bitsNeeded));
    return dests.size() + 1 <= mode_cap;
}

bool
DestinationArray::insert(sim::Addr src_line, sim::Addr dst_line,
                         bool evict_on_full)
{
    unsigned bits = requiredBits(src_line, dst_line);
    if (scheme_.maxModeFor(bits) == 0)
        return false;

    // Refresh an existing pair: reset its confidence to the maximum.
    if (Destination *existing = find(dst_line)) {
        existing->confidence.set(existing->confidence.max());
        return true;
    }

    if (!hasRoomFor(src_line, dst_line)) {
        if (!evict_on_full || dests.empty())
            return false;
        // Replace the lowest-confidence destination (paper §III-B1).
        auto victim = std::min_element(
            dests.begin(), dests.end(),
            [](const Destination &a, const Destination &b) {
                return a.confidence.value() < b.confidence.value();
            });
        dests.erase(victim);
        recomputeMode();
        if (!hasRoomFor(src_line, dst_line)) {
            // Still impossible (the new destination alone demands a wide
            // mode that cannot cover the survivors): keep shrinking.
            while (!dests.empty() &&
                   !hasRoomFor(src_line, dst_line)) {
                dests.pop_back();
                recomputeMode();
            }
            if (!hasRoomFor(src_line, dst_line))
                return false;
        }
    }

    Destination d;
    d.line = dst_line;
    d.bitsNeeded = bits;
    d.confidence = SaturatingCounter(scheme_.confBits);
    d.confidence.set(d.confidence.max());
    dests.push_back(d);
    recomputeMode();
    return true;
}

Destination *
DestinationArray::find(sim::Addr dst_line)
{
    for (auto &d : dests) {
        if (d.line == dst_line)
            return &d;
    }
    return nullptr;
}

void
DestinationArray::dropDeadDestinations()
{
    auto dead = std::remove_if(dests.begin(), dests.end(),
                               [](const Destination &d) {
                                   return d.confidence.zero();
                               });
    if (dead != dests.end()) {
        dests.erase(dead, dests.end());
        recomputeMode();
    }
}

void
DestinationArray::clear()
{
    dests.clear();
    mode_ = 0;
}

void
DestinationArray::recomputeMode()
{
    if (dests.empty()) {
        mode_ = 0;
        return;
    }
    unsigned cap = scheme_.maxDests;
    for (const auto &d : dests)
        cap = std::min(cap, scheme_.maxModeFor(d.bitsNeeded));
    EIP_ASSERT(dests.size() <= cap,
               "destination array in an unrepresentable state");
    mode_ = cap;
}

} // namespace eip::core
