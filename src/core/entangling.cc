#include "core/entangling.hh"

#include <algorithm>

#include "check/invariants.hh"
#include "obs/registry.hh"
#include "obs/why.hh"
#include "sim/cache.hh"
#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::core {

namespace {

// Hardware extension sizes (paper §III-C3): the PQ, MSHR and L1I carry the
// timing and src-entangled fields; their sizes are fixed by the baseline.
constexpr unsigned kPqEntries = 32;
constexpr unsigned kMshrEntries = 10;
constexpr unsigned kL1iLines = 512;
constexpr unsigned kMshrTimeBits = 12;
constexpr unsigned kHistPtrBits = 4;
constexpr unsigned kWayBits = 4; ///< 16-way Entangled table

} // namespace

EntanglingConfig
EntanglingConfig::preset2K(bool physical)
{
    EntanglingConfig cfg;
    cfg.tableEntries = 2048;
    cfg.mergeDistance = 15;
    cfg.physical = physical;
    return cfg;
}

EntanglingConfig
EntanglingConfig::preset4K(bool physical)
{
    EntanglingConfig cfg;
    cfg.tableEntries = 4096;
    cfg.mergeDistance = 6;
    cfg.physical = physical;
    return cfg;
}

EntanglingConfig
EntanglingConfig::preset8K(bool physical)
{
    EntanglingConfig cfg;
    cfg.tableEntries = 8192;
    cfg.mergeDistance = 5;
    cfg.physical = physical;
    return cfg;
}

EntanglingConfig
EntanglingConfig::presetSplit2K()
{
    // Budget-match the unified 2K point (~20.9KB): 1K pair entries
    // (10.2KB) + 4K bb-size entries (8.1KB) + extensions/history.
    EntanglingConfig cfg;
    cfg.tableEntries = 1024;
    cfg.tableWays = 16;
    cfg.mergeDistance = 15;
    cfg.splitBbEntries = 4096;
    return cfg;
}

EntanglingConfig
EntanglingConfig::presetEpi()
{
    EntanglingConfig cfg;
    cfg.tableEntries = 8704; // 256 sets x 34 ways
    cfg.tableWays = 34;
    cfg.historyEntries = 1024;
    cfg.mergeDistance = 5;
    return cfg;
}

EntanglingPrefetcher::EntanglingPrefetcher(const EntanglingConfig &config)
    : cfg(config),
      scheme_(config.physical ? CompressionScheme::physicalScheme()
                              : CompressionScheme::virtualScheme()),
      table_(config.tableEntries, config.tableWays, scheme_),
      bbTable(config.splitBbEntries != 0 ? config.splitBbEntries : 8,
              config.splitBbEntries != 0 ? config.splitBbWays : 8),
      history(config.historyEntries, config.timestampBits)
{}

unsigned
EntanglingPrefetcher::bbSizeOf(sim::Addr line)
{
    if (cfg.splitBbEntries != 0)
        return bbTable.lookup(line);
    EntangledEntry *e = table_.find(line);
    return e != nullptr ? e->bbSize : 0;
}

void
EntanglingPrefetcher::recordBlock(sim::Addr line, unsigned size)
{
    if (cfg.splitBbEntries != 0)
        bbTable.record(line, size);
    else
        table_.recordBasicBlock(line, size);
}

bool
EntanglingPrefetcher::tracksBasicBlocks() const
{
    return cfg.variant != EntanglingVariant::Ent;
}

bool
EntanglingPrefetcher::entangles() const
{
    return cfg.variant != EntanglingVariant::BB;
}

bool
EntanglingPrefetcher::prefetchesDstBlock() const
{
    return cfg.variant == EntanglingVariant::BBEntBB ||
           cfg.variant == EntanglingVariant::BBEntBBMerge;
}

bool
EntanglingPrefetcher::merges() const
{
    return cfg.variant == EntanglingVariant::BBEntBBMerge;
}

std::string
EntanglingPrefetcher::name() const
{
    std::string base;
    switch (cfg.variant) {
      case EntanglingVariant::BB: base = "BB"; break;
      case EntanglingVariant::BBEnt: base = "BBEnt"; break;
      case EntanglingVariant::BBEntBB: base = "BBEntBB"; break;
      case EntanglingVariant::Ent: base = "Ent"; break;
      case EntanglingVariant::BBEntBBMerge: base = "Entangling"; break;
    }
    if (cfg.historyEntries >= 1024)
        base = "EPI";
    if (cfg.splitBbEntries != 0)
        base += "-split";
    base += "-" + (cfg.tableEntries >= 1024
                       ? std::to_string(cfg.tableEntries / 1024) + "K"
                       : std::to_string(cfg.tableEntries));
    if (cfg.physical)
        base += "-phys";
    return base;
}

uint64_t
EntanglingPrefetcher::storageBits() const
{
    unsigned set_bits = floorLog2(table_.sets());
    unsigned tag_bits = cfg.physical ? 42 : 58;
    uint64_t src_bits = kWayBits + set_bits + 1; // way + set + access bit
    uint64_t pq_mshr_entry = kMshrTimeBits + kHistPtrBits + src_bits;
    uint64_t extensions = kPqEntries * pq_mshr_entry +
                          kMshrEntries * pq_mshr_entry +
                          kL1iLines * src_bits;
    uint64_t bb_bits =
        cfg.splitBbEntries != 0 ? bbTable.storageBits() : 0;
    return table_.storageBits() + bb_bits +
           history.storageBits(tag_bits) + extensions;
}

void
EntanglingPrefetcher::registerStats(obs::CounterRegistry &reg)
{
    // Trigger-side traffic and the pair lifecycle (cumulative over the
    // whole run including warm-up: table contents persist across the
    // measurement boundary, so resetting these would desynchronise them
    // from the state they describe).
    reg.counter("entangling.table_hits", &stats_.tableHits);
    reg.counter("entangling.table_misses", &stats_.tableMisses);
    reg.counter("entangling.pairs_created", &stats_.pairsCreated);
    reg.counter("entangling.merges", &stats_.merges);
    reg.counter("entangling.timely_updates", &stats_.timelyUpdates);
    reg.counter("entangling.late_updates", &stats_.lateUpdates);
    reg.counter("entangling.wrong_updates", &stats_.wrongUpdates);
    reg.counter("entangling.second_source_uses", &stats_.secondSourceUses);
    reg.counter("entangling.extra_searches", &stats_.extraSearches);

    const EntangledTableStats *t = &table_.stats();
    reg.counter("entangling.table.inserts", &t->inserts);
    reg.counter("entangling.table.evictions", &t->evictions);
    reg.counter("entangling.table.relocations", &t->relocations);
    reg.counter("entangling.table.relocation_evictions",
                &t->relocationEvictions);
    reg.counter("entangling.table.pairs_added", &t->pairsAdded);
    reg.counter("entangling.table.pairs_rejected", &t->pairsRejected);

    // Compression-format usage (Table II) and basic-block geometry.
    reg.histogram("entangling.dest_bits", &stats_.destBits);
    reg.histogram("entangling.dests_per_hit", &stats_.destsPerHit);
    reg.histogram("entangling.current_bb_size", &stats_.currentBbSize);
    reg.histogram("entangling.dst_bb_size", &stats_.dstBbSize);
}

void
EntanglingPrefetcher::registerInvariants(check::Invariants &inv)
{
    table_.registerInvariants(inv, "entangling.table");
    history.registerInvariants(inv, "entangling.history");

    // The basic-block accumulator registers stay mutually consistent:
    // a block tracked in the history points at a live slot that still
    // holds the block's head (no stale-slot dereference possible), and
    // the accumulated size respects the 6-bit field.
    inv.add("entangling.bb_register", [this](std::string &detail) {
        if (!bbValid)
            return true;
        if (bbSize > cfg.maxBasicBlockSize) {
            detail = "bb_size " + std::to_string(bbSize) + " > max " +
                     std::to_string(cfg.maxBasicBlockSize);
            return false;
        }
        if (bbInHistory && bbHistorySlot >= history.capacity()) {
            detail = "history slot " + std::to_string(bbHistorySlot) +
                     " >= capacity " + std::to_string(history.capacity());
            return false;
        }
        if (bbInHistory &&
            history.isCurrent(bbHistorySlot, bbHistoryGeneration) &&
            history.at(bbHistorySlot).line != bbHead) {
            detail = "slot " + std::to_string(bbHistorySlot) +
                     " holds line " +
                     std::to_string(history.at(bbHistorySlot).line) +
                     " but the tracked head is " + std::to_string(bbHead);
            return false;
        }
        return true;
    });

    // The shadow maps stand in for fixed-size hardware fields (PQ, MSHR,
    // L1I extensions); their pruning bound must hold or the model is
    // leaking state the hardware could not keep.
    inv.add("entangling.shadow_bounds", [this](std::string &detail) {
        if (pendingMisses.size() > 100000) {
            detail = "pending_misses=" +
                     std::to_string(pendingMisses.size());
            return false;
        }
        if (prefetchIssueTime.size() > 100000) {
            detail = "prefetch_issue_time=" +
                     std::to_string(prefetchIssueTime.size());
            return false;
        }
        if (attribution.size() > 100000) {
            detail = "attribution=" + std::to_string(attribution.size());
            return false;
        }
        return true;
    });
}

obs::MissBlame
EntanglingPrefetcher::blame(sim::Addr line, sim::Addr pc)
{
    (void)pc;
    if (table_.ghostContains(line))
        return obs::MissBlame::PairEvicted;
    return obs::MissBlame::None;
}

void
EntanglingPrefetcher::issue(sim::Addr line, const EntangledEntry *src,
                            sim::Addr dst_head)
{
    EIP_ASSERT(owner != nullptr, "prefetcher not attached to a cache");
    bool accepted = owner->enqueuePrefetch(line);
    if (accepted && src != nullptr) {
        auto [set, way] = table_.coordsOf(*src);
        attribution[line] = SrcAttribution{
            set, way, src->tag, dst_head != 0 ? dst_head : line};
        // Shadow-state bound (hardware stores this in PQ/L1I fields).
        if (attribution.size() > 100000)
            attribution.clear();
    }
}

void
EntanglingPrefetcher::updateConfidence(sim::Addr line, bool good)
{
    auto it = attribution.find(line);
    if (it == attribution.end())
        return;
    EntangledEntry &entry = table_.entryAt(it->second.set, it->second.way);
    if (entry.valid && entry.tag == it->second.srcTag) {
        if (Destination *dst = entry.dests.find(it->second.dstLine)) {
            bool is_head = line == it->second.dstLine;
            if (good) {
                dst->confidence.increment();
            } else if (is_head || dst->confidence.value() > 1) {
                // Body-line feedback demotes the pair towards probation
                // but cannot kill it: only the entangled head itself
                // going wrong or late invalidates the entangling.
                // Without the floor a useful head is lost because its
                // *block* was noisy; with it, a demoted pair dies on
                // the first wrong/late head instead.
                dst->confidence.decrement();
                // Paper: "upon the eviction of a dst-entangled we
                // re-compute the mode" — a dead destination frees its
                // slot (and possibly widens the mode) immediately
                // instead of squatting until the entry is replaced.
                if (dst->confidence.zero())
                    entry.dests.dropDeadDestinations();
            }
        }
    }
    attribution.erase(it);
}

void
EntanglingPrefetcher::finishBasicBlock()
{
    if (!bbValid)
        return;
    uint32_t size = std::min(bbSize, cfg.maxBasicBlockSize);

    // Revalidate the held slot index before dereferencing: the slot may
    // have been recycled by newer pushes (or merge-invalidated) since
    // this block started.
    bool in_history = bbInHistory &&
        history.isCurrent(bbHistorySlot, bbHistoryGeneration);

    if (merges() && in_history) {
        // Spatio-temporal merge (§III-B2): if a quasi-recent basic block
        // overlaps or is contiguous with this one, extend it instead of
        // recording a new block.
        size_t slot = bbHistorySlot;
        for (uint32_t step = 0; step < cfg.mergeDistance; ++step) {
            slot = (slot + history.capacity() - 1) % history.capacity();
            HistoryEntry &e = history.at(slot);
            if (!e.valid)
                break;
            bool mergeable = e.line <= bbHead &&
                             bbHead <= e.line + e.bbSize + 1;
            if (!mergeable)
                continue;
            uint64_t merged = (bbHead + size) - e.line;
            if (merged > cfg.maxBasicBlockSize)
                continue; // 6-bit size field would overflow
            if (merged > e.bbSize) {
                e.bbSize = static_cast<uint8_t>(merged);
                recordBlock(e.line, static_cast<unsigned>(merged));
            }
            // The merged block is not recorded in the history.
            history.at(bbHistorySlot).valid = false;
            ++stats_.merges;
            bbValid = false;
            return;
        }
    }

    if (in_history)
        history.at(bbHistorySlot).bbSize = static_cast<uint8_t>(size);
    recordBlock(bbHead, size);
    bbValid = false;
}

void
EntanglingPrefetcher::trackBasicBlock(sim::Addr line, sim::Cycle now,
                                      bool is_miss)
{
    (void)is_miss;
    if (!tracksBasicBlocks()) {
        // "Ent" ablation: every accessed line goes straight to history.
        bbHead = line;
        bbSize = 0;
        bbValid = true;
        bbHistorySlot = history.push(line, now);
        bbHistoryGeneration = history.generationOf(bbHistorySlot);
        bbInHistory = true;
        return;
    }

    if (bbValid) {
        if (line >= bbHead && line <= bbHead + bbSize)
            return; // re-access within the current block (tight loop)
        if (line == bbHead + bbSize + 1 &&
            bbSize < cfg.maxBasicBlockSize) {
            ++bbSize; // next consecutive line: the block grows
            return;
        }
        finishBasicBlock();
    }

    // A new basic block starts at this line.
    bbValid = true;
    bbHead = line;
    bbSize = 0;
    bbHistorySlot = history.push(line, now);
    bbHistoryGeneration = history.generationOf(bbHistorySlot);
    bbInHistory = true;
}

void
EntanglingPrefetcher::triggerPrefetches(sim::Addr line, sim::Cycle now)
{
    (void)now;
    EntangledEntry *entry = table_.find(line);
    unsigned own_size = cfg.splitBbEntries != 0
        ? bbTable.lookup(line)
        : (entry != nullptr ? entry->bbSize : 0);
    if (entry == nullptr && own_size == 0) {
        ++stats_.tableMisses;
        return;
    }
    ++stats_.tableHits;

    // (1) Prefetch the rest of the current basic block.
    if (tracksBasicBlocks()) {
        for (uint32_t i = 1; i <= own_size; ++i)
            issue(line + i, nullptr);
        stats_.currentBbSize.record(own_size);
    }

    // (2) Prefetch each confident destination (and its basic block).
    if (!entangles() || entry == nullptr)
        return;
    size_t found = 0;
    // Snapshot: issuing prefetches cannot invalidate this entry, but keep
    // the loop simple and bounded.
    const auto &dests = entry->dests.all();
    std::vector<sim::Addr> dst_lines;
    dst_lines.reserve(dests.size());
    for (const auto &dst : dests) {
        if (dst.confidence.zero())
            continue; // invalid pair (paper §III-B1)
        dst_lines.push_back(dst.line);
    }
    for (sim::Addr dst_line : dst_lines) {
        ++found;
        issue(dst_line, entry);
        if (prefetchesDstBlock()) {
            ++stats_.extraSearches;
            uint32_t dst_bb = bbSizeOf(dst_line);
            // Body lines carry the pair's attribution: a wrong body
            // prefetch demotes the pair towards probation (see
            // updateConfidence) — without this the destination-block
            // spray has no feedback loop at all.
            for (uint32_t i = 1; i <= dst_bb; ++i)
                issue(dst_line + i, entry, dst_line);
            stats_.dstBbSize.record(dst_bb);
        }
    }
    stats_.destsPerHit.record(found);
}

void
EntanglingPrefetcher::onCacheOperate(const sim::CacheOperateInfo &info)
{
    // Commit-time training (§III-C1): wrong-path events neither train nor
    // trigger; the hardware buffers speculative pairs until commit.
    if (info.speculative && cfg.commitTimeTraining)
        return;

    const sim::Addr line = info.line;
    const sim::Cycle now = info.cycle;

    // Confidence: a first demand hit on a prefetched line is timely; a
    // demand miss merging into an in-flight prefetch is late (Fig. 5).
    if (info.hitWasPrefetch) {
        ++stats_.timelyUpdates;
        updateConfidence(line, /*good=*/true);
    } else if (info.missLatePrefetch) {
        ++stats_.lateUpdates;
        updateConfidence(line, /*good=*/false);
    }

    trackBasicBlock(line, now, !info.hit);

    if (!info.hit) {
        PendingMiss pm;
        pm.demandCycle = now;
        pm.startCycle = now;
        if (info.missLatePrefetch) {
            auto it = prefetchIssueTime.find(line);
            if (it != prefetchIssueTime.end())
                pm.startCycle = it->second; // the PQ timestamp (§III-A2)
        }
        if (line == bbHead && bbInHistory &&
            history.isCurrent(bbHistorySlot, bbHistoryGeneration)) {
            pm.isHead = true;
            // Snapshot the candidate sources: every head older than this
            // miss, newest first (the hardware's History pointer walk).
            pm.sources.reserve(history.capacity() - 1);
            history.walkBackwards(
                bbHistorySlot, history.capacity(),
                [&](HistoryEntry &e) {
                    pm.sources.emplace_back(e.line, e.recordedAt);
                    return false; // keep walking: collect them all
                });
        }
        pendingMisses[line] = pm;
        if (pendingMisses.size() > 100000)
            pendingMisses.clear(); // shadow-state bound
    }

    triggerPrefetches(line, now);
}

void
EntanglingPrefetcher::onPrefetchIssued(sim::Addr line, sim::Cycle cycle)
{
    prefetchIssueTime[line] = cycle;
    if (prefetchIssueTime.size() > 100000)
        prefetchIssueTime.clear(); // shadow-state bound
}

void
EntanglingPrefetcher::onCacheFill(const sim::CacheFillInfo &info)
{
    const sim::Addr line = info.line;
    prefetchIssueTime.erase(line);

    // Wrong/early prefetch: an unused prefetched line leaves the cache.
    if (info.evictedUnusedPrefetch) {
        ++stats_.wrongUpdates;
        updateConfidence(info.evictedLine, /*good=*/false);
    }

    if (!info.demandHappened) {
        // Clean prefetch fill: nothing to learn yet.
        return;
    }

    auto it = pendingMisses.find(line);
    if (it == pendingMisses.end())
        return;
    PendingMiss pm = it->second;
    pendingMisses.erase(it);

    if (!entangles() || !pm.isHead || pm.sources.empty())
        return;

    // Latency of this fetch; the source must have executed at least this
    // many cycles before the demand miss for a prefetch to be timely.
    uint64_t latency = info.cycle - pm.startCycle;

    // Walk the snapshot (newest source first) for the first head that ran
    // at least `latency` cycles before the miss; fall back to the oldest
    // head remembered.
    size_t first_idx = pm.sources.size() - 1;
    for (size_t i = 0; i < pm.sources.size(); ++i) {
        if (history.checkedAge(pm.sources[i].second, pm.demandCycle) >=
            latency) {
            first_idx = i;
            break;
        }
    }
    sim::Addr first_line = pm.sources[first_idx].first;
    if (first_line == line)
        return;

    unsigned bits = std::max(1u, significantBits(first_line, line));
    if (table_.hasRoomFor(first_line, line)) {
        if (table_.addPair(first_line, line, /*evict_on_full=*/false)) {
            ++stats_.pairsCreated;
            stats_.destBits.record(bits);
        }
        return;
    }

    // First source is full: try one source further back (§III-B3), else
    // evict the first source's weakest destination.
    if (first_idx + 1 < pm.sources.size()) {
        sim::Addr second_line = pm.sources[first_idx + 1].first;
        if (second_line != line &&
            table_.hasRoomFor(second_line, line)) {
            if (table_.addPair(second_line, line,
                               /*evict_on_full=*/false)) {
                ++stats_.pairsCreated;
                ++stats_.secondSourceUses;
                stats_.destBits.record(
                    std::max(1u, significantBits(second_line, line)));
            }
            return;
        }
    }
    if (table_.addPair(first_line, line, /*evict_on_full=*/true)) {
        ++stats_.pairsCreated;
        stats_.destBits.record(bits);
    }
}

} // namespace eip::core
