/**
 * @file
 * Standalone basic-block-size table, used by the split-storage variant of
 * the Entangling prefetcher (the paper's §III-C3 closing remark: "Storing
 * basic block sizes and entangled pairs in different structures is an
 * alternative to a unified Entangled table, likely beneficial for
 * low-storage configurations. We leave this study for future work.").
 *
 * Each entry is just a 10-bit folded tag plus a 6-bit size, so a given
 * budget tracks ~5x more basic blocks than unified entries would.
 */

#ifndef EIP_CORE_BB_SIZE_TABLE_HH
#define EIP_CORE_BB_SIZE_TABLE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "util/bitops.hh"
#include "util/panic.hh"

namespace eip::core {

/** Set-associative {head -> basic-block size} store with FIFO replacement. */
class BbSizeTable
{
  public:
    BbSizeTable(uint32_t entries, uint32_t ways)
        : numSets(entries / ways), numWays(ways),
          setBits(floorLog2(entries / ways))
    {
        EIP_ASSERT(entries % ways == 0,
                   "entries must be a multiple of ways");
        EIP_ASSERT(isPowerOf2(numSets), "set count must be a power of two");
        table.resize(static_cast<size_t>(numSets) * numWays);
    }

    /** Record (or grow) the size of the block headed by @p line. */
    void
    record(sim::Addr line, unsigned size)
    {
        Entry *e = find(line);
        if (e == nullptr)
            e = insert(line);
        if (size > e->size)
            e->size = static_cast<uint8_t>(std::min(size, 63u));
    }

    /** Size of the block headed by @p line; 0 when unknown. */
    unsigned
    lookup(sim::Addr line) const
    {
        const Entry *e = const_cast<BbSizeTable *>(this)->find(line);
        return e != nullptr ? e->size : 0;
    }

    uint32_t entries() const { return numSets * numWays; }

    /** Storage: 10-bit tag + 6-bit size per entry + per-set FIFO bits. */
    uint64_t
    storageBits() const
    {
        return static_cast<uint64_t>(numSets) * numWays * (10 + 6) +
               static_cast<uint64_t>(numSets) * floorLog2(numWays);
    }

  private:
    struct Entry
    {
        bool valid = false;
        uint16_t tag = 0;
        sim::Addr line = 0; ///< full line for model-level disambiguation
        uint8_t size = 0;
        uint64_t fifoOrder = 0;
    };

    uint32_t indexOf(sim::Addr line) const
    {
        return static_cast<uint32_t>(xorFold(line, setBits)) &
               (numSets - 1);
    }

    uint16_t tagOf(sim::Addr line) const
    {
        return static_cast<uint16_t>(xorFold(line >> setBits, 10));
    }

    Entry *
    find(sim::Addr line)
    {
        size_t base = static_cast<size_t>(indexOf(line)) * numWays;
        uint16_t tag = tagOf(line);
        for (uint32_t w = 0; w < numWays; ++w) {
            Entry &e = table[base + w];
            if (e.valid && e.tag == tag && e.line == line)
                return &e;
        }
        return nullptr;
    }

    Entry *
    insert(sim::Addr line)
    {
        size_t base = static_cast<size_t>(indexOf(line)) * numWays;
        Entry *victim = &table[base];
        for (uint32_t w = 0; w < numWays; ++w) {
            Entry &e = table[base + w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.fifoOrder < victim->fifoOrder)
                victim = &e;
        }
        victim->valid = true;
        victim->tag = tagOf(line);
        victim->line = line;
        victim->size = 0;
        victim->fifoOrder = ++fifoClock;
        return victim;
    }

    uint32_t numSets;
    uint32_t numWays;
    unsigned setBits;
    std::vector<Entry> table;
    uint64_t fifoClock = 0;
};

} // namespace eip::core

#endif // EIP_CORE_BB_SIZE_TABLE_HH
