/**
 * @file
 * The cost-effective Entangling Prefetcher for Instructions (Ros &
 * Jimborean, ISCA 2021). On every L1I demand access it detects basic-block
 * boundaries, records heads in a History buffer, measures the latency of
 * every miss at fill time, and entangles the missed line (destination) with
 * the basic-block head that executed at least `latency` cycles earlier
 * (source). An access to a source then prefetches the source's whole basic
 * block plus, for each confident destination, the destination's whole
 * basic block — making the prefetch *timely* by construction.
 */

#ifndef EIP_CORE_ENTANGLING_HH
#define EIP_CORE_ENTANGLING_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/bb_size_table.hh"
#include "core/entangled_table.hh"
#include "core/history_buffer.hh"
#include "sim/prefetcher_api.hh"
#include "util/histogram.hh"

namespace eip::core {

/** Which pieces of the full proposal are active (Fig. 11 ablation). */
enum class EntanglingVariant
{
    BB,           ///< basic-block prefetch only, no entangling
    BBEnt,        ///< + entangled destination lines (line only)
    BBEntBB,      ///< + destination basic blocks
    Ent,          ///< entangle every missing line, no basic blocks
    BBEntBBMerge, ///< full proposal: + spatio-temporal merging
};

/** Configuration of one Entangling prefetcher instance. */
struct EntanglingConfig
{
    uint32_t tableEntries = 4096;
    uint32_t tableWays = 16;
    uint32_t historyEntries = 16;
    /** How far back in the history merging may look (15/6/5 for the
     *  2K/4K/8K configurations, §IV-B). */
    uint32_t mergeDistance = 6;
    bool physical = false; ///< use the Table II compression scheme
    EntanglingVariant variant = EntanglingVariant::BBEntBBMerge;
    unsigned timestampBits = 20; ///< History buffer timestamp width
    uint32_t maxBasicBlockSize = 63;

    /**
     * §III-C1 mitigation: keep speculatively computed state out of the
     * tables until the instructions commit. Modelled by ignoring accesses
     * flagged speculative (wrong-path) for both training and triggering;
     * only relevant when the CPU models wrong-path execution.
     */
    bool commitTimeTraining = false;

    /**
     * Future-work study (§III-C3): store basic-block sizes in a separate,
     * cheaper table and reserve the Entangled table for sources that hold
     * pairs. splitBbEntries sizes the side table; when 0, the unified
     * organisation of the paper is used.
     */
    uint32_t splitBbEntries = 0;
    uint32_t splitBbWays = 8;

    /** Equal-budget split preset at the 2K-unified (~20.9KB) point. */
    static EntanglingConfig presetSplit2K();

    /** The paper's three cost-effective configurations. */
    static EntanglingConfig preset2K(bool physical = false);
    static EntanglingConfig preset4K(bool physical = false);
    static EntanglingConfig preset8K(bool physical = false);
    /** The performance-oriented IPC-1 version (EPI): 1024-entry history,
     *  34-way table. */
    static EntanglingConfig presetEpi();
};

/** Statistics the analysis benches (Fig. 12-15) consume. */
struct EntanglingStats
{
    EntanglingStats()
        : destsPerHit(8), currentBbSize(64), dstBbSize(64), destBits(64)
    {}

    Histogram destsPerHit;    ///< destinations found on a table hit
    Histogram currentBbSize;  ///< prefetched lines of the current block
    Histogram dstBbSize;      ///< prefetched lines per destination block
    Histogram destBits;       ///< encoding width of inserted destinations
    uint64_t tableHits = 0;
    uint64_t tableMisses = 0;
    uint64_t pairsCreated = 0;
    uint64_t timelyUpdates = 0;
    uint64_t lateUpdates = 0;
    uint64_t wrongUpdates = 0;
    uint64_t merges = 0;
    uint64_t extraSearches = 0;   ///< dst basic-block size lookups
    uint64_t secondSourceUses = 0;
};

/**
 * The prefetcher. Implements the sim::Prefetcher hook interface; all state
 * beyond the documented hardware structures is shadow bookkeeping the real
 * hardware keeps in the PQ/MSHR/L1I extension fields (§III-C3).
 */
class EntanglingPrefetcher : public sim::Prefetcher
{
  public:
    explicit EntanglingPrefetcher(const EntanglingConfig &cfg);

    std::string name() const override;
    uint64_t storageBits() const override;

    /** Exports "entangling.*" counters (table traffic, pair lifecycle,
     *  compression-format and basic-block histograms). */
    void registerStats(obs::CounterRegistry &reg) override;

    /** Registers the Entangled-table and History-buffer audits plus the
     *  basic-block-register and shadow-state checks (see src/check). */
    void registerInvariants(check::Invariants &inv) override;

    void onCacheOperate(const sim::CacheOperateInfo &info) override;
    void onCacheFill(const sim::CacheFillInfo &info) override;
    void onPrefetchIssued(sim::Addr line, sim::Cycle cycle) override;

    /** Arms the Entangled table's ghost-pair set (DESIGN.md §3.11). */
    void enableBlame() override { table_.enableGhost(); }
    /** `pair_evicted` when @p line is a ghosted destination: its pair
     *  was evicted from the Entangled table and never re-learned. */
    obs::MissBlame blame(sim::Addr line, sim::Addr pc) override;

    const EntanglingStats &analysis() const { return stats_; }
    const EntangledTable &table() const { return table_; }
    /** Mutable table access for tests and white-box benches. */
    EntangledTable &mutableTable() { return table_; }
    const EntanglingConfig &config() const { return cfg; }

  private:
    /** Shadow of the MSHR timing extension: one in-flight miss. The
     *  candidate sources (history entries older than the miss) are
     *  snapshotted at miss time: the hardware's History-buffer pointer
     *  refers to the buffer content as of the miss, and the decoupled
     *  front-end can push enough new heads during a long miss to recycle
     *  the 16 slots before the fill arrives. */
    struct PendingMiss
    {
        sim::Cycle demandCycle = 0;
        sim::Cycle startCycle = 0;   ///< prefetch issue time for late pf
        bool isHead = false;         ///< miss is on a basic-block head
        /** (line, unwrapped record cycle) of older heads, newest first.
         *  The record cycle feeds HistoryBuffer::checkedAge(), which
         *  saturates instead of aliasing when a source is more than a
         *  full wrapped-clock period older than the miss. */
        std::vector<std::pair<sim::Addr, sim::Cycle>> sources;
    };

    /** Shadow of the PQ/L1I src-entangled extension: which pair caused a
     *  prefetched line (for confidence updates). dstLine is the pair's
     *  destination head — lines of the destination's basic block carry
     *  the head's attribution so a wrong body prefetch still demotes the
     *  pair that triggered it. */
    struct SrcAttribution
    {
        uint32_t set = 0;
        uint32_t way = 0;
        uint16_t srcTag = 0;
        sim::Addr dstLine = 0;
    };

    bool tracksBasicBlocks() const;
    bool entangles() const;
    bool prefetchesDstBlock() const;
    bool merges() const;

    /** Advance the basic-block detector with the accessed line. */
    void trackBasicBlock(sim::Addr line, sim::Cycle now, bool is_miss);
    /** The current basic block ended: record/merge it. */
    void finishBasicBlock();
    /** Look up @p line and trigger the prefetches on a hit. */
    void triggerPrefetches(sim::Addr line, sim::Cycle now);
    /** Issue one prefetch and remember its source attribution. */
    /** Request a prefetch of @p line. When @p src is set the prefetch is
     *  charged to the pair (src, dst_head) for confidence feedback;
     *  dst_head defaults to the line itself (the destination head). */
    void issue(sim::Addr line, const EntangledEntry *src,
               sim::Addr dst_head = 0);
    /** Adjust the confidence of the pair that prefetched @p line. */
    void updateConfidence(sim::Addr line, bool good);

    /** Basic-block size of @p line under either organisation. */
    unsigned bbSizeOf(sim::Addr line);
    /** Record a completed basic block under either organisation. */
    void recordBlock(sim::Addr line, unsigned size);

    EntanglingConfig cfg;
    CompressionScheme scheme_;
    EntangledTable table_;
    BbSizeTable bbTable; ///< only consulted when cfg.splitBbEntries > 0
    HistoryBuffer history;
    EntanglingStats stats_;

    // Basic-block accumulator registers (paper Fig. 4, top right).
    bool bbValid = false;
    sim::Addr bbHead = 0;
    uint32_t bbSize = 0;
    size_t bbHistorySlot = 0;
    /** Generation of bbHistorySlot at push time; the slot is only
     *  dereferenced after HistoryBuffer::isCurrent() revalidates it
     *  (slots recycle once capacity pushes happen). */
    uint64_t bbHistoryGeneration = 0;
    bool bbInHistory = false;

    // Shadow hardware extensions (bounded by MSHR/PQ/L1I sizes in HW;
    // pruned on fill/evict here).
    std::unordered_map<sim::Addr, PendingMiss> pendingMisses;
    std::unordered_map<sim::Addr, sim::Cycle> prefetchIssueTime;
    std::unordered_map<sim::Addr, SrcAttribution> attribution;
};

} // namespace eip::core

#endif // EIP_CORE_ENTANGLING_HH
