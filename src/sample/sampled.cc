#include "sample/sampled.hh"

#include "obs/phase.hh"
#include "util/panic.hh"

namespace eip::sample {

SampledResult
runSampled(sim::Cpu &cpu, trace::InstructionSource &trace,
           uint64_t instructions, uint64_t warmup, const SampleSpec &spec,
           obs::PhaseProfiler *profiler)
{
    EIP_ASSERT(spec.mode == Mode::Periodic,
               "runSampled requires a periodic sampling spec");
    const std::vector<Phase> schedule = buildSchedule(spec, instructions);
    EIP_ASSERT(!schedule.empty(), "periodic schedule produced no windows");

    Welford ipc;
    Welford mpki;
    Welford coverage;
    Welford accuracy;

    SampledResult result;
    result.summary.offset = scheduleOffset(spec);

    // The warm-up phase is functional too: a timed warm-up would cap the
    // host speedup near 2x regardless of the window fraction, and the
    // structures it exists to train are exactly the ones warming trains.
    if (warmup > 0) {
        if (profiler != nullptr)
            profiler->transition("warming");
        cpu.warmFunctional(trace, warmup);
        result.summary.warmedInstructions += warmup;
    }

    // The warm clock runs at the CPI of the most recent detailed window
    // (1:1 until one exists) so warm MSHR occupancy spans realistic
    // instruction distances — see Cpu::warmFunctional.
    uint64_t cpi_cycles = 1;
    uint64_t cpi_instructions = 1;

    bool first = true;
    for (const Phase &phase : schedule) {
        if (phase.skip > 0) {
            // Source-level fast-forward: nothing in the simulator observes
            // the skipped region, so the clock, stats and every trained
            // structure stay frozen across it.
            if (profiler != nullptr)
                profiler->transition("fast_forward");
            trace.skip(phase.skip);
            result.summary.skippedInstructions += phase.skip;
        }
        if (phase.warm > 0) {
            if (profiler != nullptr)
                profiler->transition("warming");
            cpu.warmFunctional(trace, phase.warm, cpi_cycles,
                               cpi_instructions);
            result.summary.warmedInstructions += phase.warm;
        }
        if (first) {
            cpu.beginSampledMeasurement();
            first = false;
        }
        if (profiler != nullptr)
            profiler->transition("window");
        sim::Cpu::WindowStats w = cpu.runWindow(trace, phase.window);
        if (w.cycles > 0 && w.instructions > 0) {
            cpi_cycles = w.cycles;
            cpi_instructions = w.instructions;
        }
        ipc.add(w.ipc());
        mpki.add(w.mpki());
        coverage.add(w.coverage());
        accuracy.add(w.accuracy());
        ++result.summary.windows;
        result.summary.windowInstructions += w.instructions;
    }

    if (profiler != nullptr)
        profiler->transition("fill_drain");

    result.summary.ipc = summarize(ipc);
    result.summary.l1iMpki = summarize(mpki);
    result.summary.l1iCoverage = summarize(coverage);
    result.summary.l1iAccuracy = summarize(accuracy);
    result.stats = cpu.sampledStats();
    return result;
}

} // namespace eip::sample
