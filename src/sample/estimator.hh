/**
 * @file
 * Streaming per-metric statistics for sampled simulation (SMARTS-style,
 * DESIGN.md §3.13): a Welford mean/variance accumulator fed one value
 * per detailed window, summarized as point estimate, standard error and
 * a 95% confidence interval using Student's t (window counts are small
 * — 4 to 16 — so the normal 1.96 would understate the interval).
 */

#ifndef EIP_SAMPLE_ESTIMATOR_HH
#define EIP_SAMPLE_ESTIMATOR_HH

#include <cstdint>

namespace eip::sample {

/** Welford's online mean/variance; numerically stable, O(1) per value. */
class Welford
{
  public:
    void
    add(double value)
    {
        ++n_;
        double delta = value - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (value - mean_);
    }

    uint64_t n() const { return n_; }
    double mean() const { return mean_; }

    /** Sample variance (n-1 denominator); 0 with fewer than two values. */
    double
    variance() const
    {
        return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
    }

    /** Standard error of the mean; 0 with fewer than two values. */
    double stdError() const;

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Two-sided 95% critical value of Student's t with @p df degrees of
 * freedom (exact table through 30, 1.96 asymptote beyond). df 0 returns
 * 0: a single window has no dispersion estimate and reports a
 * zero-width interval rather than a fabricated one.
 */
double tCritical95(uint64_t df);

/** One estimated metric: the triple the `sampling` artifact section
 *  reports (estimate, standard error, 95% CI half-width). */
struct MetricSummary
{
    double estimate = 0.0;
    double stdError = 0.0;
    double ci95 = 0.0; ///< half-width: the metric lies in estimate ± ci95
};

/** Collapse an accumulator into its reported triple. */
MetricSummary summarize(const Welford &w);

/**
 * Full sampling summary of one run: the schedule actually executed and
 * the four estimated metrics (the paper's reporting set: IPC, L1I MPKI,
 * coverage, accuracy).
 */
struct Summary
{
    uint64_t windows = 0;             ///< detailed windows executed
    uint64_t windowInstructions = 0;  ///< total detailed instructions
    uint64_t warmedInstructions = 0;  ///< total functionally-warmed insts
    uint64_t skippedInstructions = 0; ///< total fast-forwarded insts
    uint64_t offset = 0;              ///< seeded systematic offset used
    MetricSummary ipc;
    MetricSummary l1iMpki;
    MetricSummary l1iCoverage;
    MetricSummary l1iAccuracy;
};

} // namespace eip::sample

#endif // EIP_SAMPLE_ESTIMATOR_HH
