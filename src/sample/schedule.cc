#include "sample/schedule.hh"

#include <algorithm>

#include "util/hash.hh"
#include "util/panic.hh"

namespace eip::sample {

bool
parseMode(const std::string &text, Mode *out)
{
    if (text == "full") {
        *out = Mode::Full;
        return true;
    }
    if (text == "periodic") {
        *out = Mode::Periodic;
        return true;
    }
    return false;
}

std::string
modeName(Mode mode)
{
    return mode == Mode::Full ? "full" : "periodic";
}

void
validateSpec(const SampleSpec &spec, uint64_t instructions)
{
    if (spec.mode == Mode::Full)
        return;
    EIP_ASSERT(spec.window > 0, "sample window must be positive");
    EIP_ASSERT(spec.period >= spec.window,
               "sample period must be at least the window length");
    EIP_ASSERT(instructions > 0, "instruction budget must be positive");
}

uint64_t
scheduleOffset(const SampleSpec &spec)
{
    uint64_t slack = spec.period - spec.window;
    if (slack == 0)
        return 0;
    // Deterministic seed -> offset mix; the decimal form keeps the hash
    // function shared with every other content address in the repo.
    return util::fnv1a64("sample-offset\x1f" + std::to_string(spec.seed)) %
           (slack + 1);
}

std::vector<Phase>
buildSchedule(const SampleSpec &spec, uint64_t instructions)
{
    validateSpec(spec, instructions);
    std::vector<Phase> phases;
    if (spec.mode == Mode::Full)
        return phases;

    const uint64_t offset = scheduleOffset(spec);
    uint64_t pos = 0;
    for (uint64_t start = offset; start < instructions;
         start += spec.period) {
        uint64_t end = std::min(start + spec.window, instructions);
        const uint64_t gap = start - pos;
        const uint64_t warm =
            spec.warm == 0 ? gap : std::min(spec.warm, gap);
        phases.push_back(Phase{gap - warm, warm, end - start});
        pos = end;
    }
    return phases;
}

} // namespace eip::sample
