#include "sample/estimator.hh"

#include <cmath>

namespace eip::sample {

double
Welford::stdError() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(variance() / static_cast<double>(n_));
}

double
tCritical95(uint64_t df)
{
    // Two-sided 95% quantiles of Student's t. Sampled runs use a handful
    // of windows, where the difference from the normal 1.96 is large
    // (df=3: 3.18); beyond 30 the asymptote is within 2%.
    static constexpr double kTable[] = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df < sizeof(kTable) / sizeof(kTable[0]))
        return kTable[df];
    return 1.96;
}

MetricSummary
summarize(const Welford &w)
{
    MetricSummary s;
    s.estimate = w.mean();
    s.stdError = w.stdError();
    s.ci95 = w.n() >= 2 ? tCritical95(w.n() - 1) * s.stdError : 0.0;
    return s;
}

} // namespace eip::sample
