/**
 * @file
 * The sampling controller: drives a sim::Cpu through the alternating
 * functional-warming / detailed-window phases of a periodic schedule
 * (src/sample/schedule.hh) and feeds each window's metric vector into
 * the streaming estimators (src/sample/estimator.hh). The result pairs
 * the aggregate SimStats over the detailed windows with the per-metric
 * confidence summary that lands in the run artifact's `sampling`
 * section. See DESIGN.md §3.13.
 */

#ifndef EIP_SAMPLE_SAMPLED_HH
#define EIP_SAMPLE_SAMPLED_HH

#include "sample/estimator.hh"
#include "sample/schedule.hh"
#include "sim/cpu.hh"
#include "sim/stats.hh"
#include "trace/executor.hh"

namespace eip::obs {
class PhaseProfiler;
}

namespace eip::sample {

/** A sampled run's outputs: window-aggregate statistics plus the
 *  confidence summary. */
struct SampledResult
{
    sim::SimStats stats;
    Summary summary;
};

/**
 * Execute a sampled run: functionally warm @p warmup instructions (the
 * sampled counterpart of run()'s timed warm-up), then alternate warming
 * and detailed windows over the @p instructions measurement region per
 * @p spec (mode must be Periodic; degenerate schedules are fatal, see
 * validateSpec). The optional @p profiler is transitioned at phase
 * boundaries only ("warming" / "window" / "fill_drain").
 */
SampledResult runSampled(sim::Cpu &cpu, trace::InstructionSource &trace,
                         uint64_t instructions, uint64_t warmup,
                         const SampleSpec &spec,
                         obs::PhaseProfiler *profiler = nullptr);

} // namespace eip::sample

#endif // EIP_SAMPLE_SAMPLED_HH
