/**
 * @file
 * Deterministic sampling schedules (SMARTS-style, DESIGN.md §3.13):
 * systematic (periodic) sampling with a seeded starting offset. Every
 * period of M instructions contains one detailed window of N
 * instructions at offset o ∈ [0, M-N]; o is derived from the spec's
 * seed so two runs with the same spec sample identical regions (the
 * schedule is part of the content address) while different seeds probe
 * different phases of the workload.
 */

#ifndef EIP_SAMPLE_SCHEDULE_HH
#define EIP_SAMPLE_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eip::sample {

/** Sampling mode: Full is conventional single-interval simulation (no
 *  sampling machinery at all); Periodic is systematic SMARTS sampling. */
enum class Mode : uint8_t
{
    Full,
    Periodic,
};

/** Parse "full"/"periodic"; returns false on anything else. */
bool parseMode(const std::string &text, Mode *out);

/** Canonical spelling of a mode (inverse of parseMode). */
std::string modeName(Mode mode);

/** Sampling spec as it travels through RunSpec / the serve protocol. */
struct SampleSpec
{
    Mode mode = Mode::Full;
    uint64_t window = 0; ///< detailed instructions per window (N)
    uint64_t period = 0; ///< instructions per period (M >= N)
    uint64_t seed = 0;   ///< offset derivation seed

    /**
     * Functional-warming bound: at most this many instructions are warmed
     * immediately before each window; the rest of the gap is fast-forwarded
     * at source level (InstructionSource::skip — no microarchitectural
     * state updates at all). 0 means warm the entire gap, the classic
     * SMARTS discipline. Bounded warming trades a little training history
     * (entangled-table and BTB entries older than the bound) for the bulk
     * of the host-time win; the eipdiff sampled-vs-full leg keeps the
     * trade honest.
     */
    uint64_t warm = 0;
};

/**
 * Validate a periodic spec against an instruction budget; EIP_ASSERTs
 * (fatal) on degenerate schedules: zero-instruction windows and periods
 * shorter than their window can only produce nonsense estimates, so
 * they are configuration errors, not data points.
 */
void validateSpec(const SampleSpec &spec, uint64_t instructions);

/**
 * The seeded systematic offset o ∈ [0, period - window]: an FNV-1a mix
 * of the seed reduced into the slack. period == window leaves no slack,
 * so the offset is 0 for every seed — which is what makes a
 * window=total, period=total schedule degenerate to the full run
 * bit-for-bit (pinned by tests/test_sample.cc).
 */
uint64_t scheduleOffset(const SampleSpec &spec);

/** One alternation: fast-forward @p skip instructions (source-level, no
 *  state updates), functionally warm @p warm instructions, then simulate
 *  @p window instructions in detail. */
struct Phase
{
    uint64_t skip = 0;
    uint64_t warm = 0;
    uint64_t window = 0;
};

/**
 * Materialize the schedule over @p instructions: phase k covers the gap
 * up to the start of window k (k*period + offset) — split into a
 * fast-forward leg and a trailing warming leg per spec.warm — and runs
 * detailed until its end (clipped to the budget). Instructions after the
 * last window are neither warmed nor simulated — nothing downstream
 * observes them.
 */
std::vector<Phase> buildSchedule(const SampleSpec &spec,
                                 uint64_t instructions);

} // namespace eip::sample

#endif // EIP_SAMPLE_SCHEDULE_HH
