#include "serve/daemon.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "exec/program_cache.hh"
#include "harness/canonical.hh"
#include "obs/json.hh"
#include "obs/log.hh"
#include "obs/manifest.hh"
#include "prefetch/factory.hh"
#include "serve/socket_io.hh"
#include "serve/worker.hh"
#include "sim/config.hh"

namespace eip::serve {

namespace {

/** Cache-geometry config ids runOne accepts that are not prefetcher
 *  ids (see RunSpec::configId). */
bool
isCacheConfigId(const std::string &id)
{
    return id == "ideal" || id == "l1i-64kb" || id == "l1i-96kb";
}

/** Open a response document with the shared envelope fields. */
obs::JsonWriter
responseHead(Request::Op op, const char *status)
{
    obs::JsonWriter json;
    json.beginObject();
    json.kv("schema", obs::kServeSchema);
    json.kv("kind", "response");
    json.kv("op", opName(op));
    json.kv("status", status);
    return json;
}

} // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), gitDescribe_(obs::buildGitDescribe()),
      queue_(options_.queueDepth), cache_(options_.cacheBytes),
      metrics_(options_.metricsWindowSeconds)
{
    if (options_.spanLimit > 0)
        spans_ = std::make_unique<obs::SpanCollector>(options_.spanLimit);
    registry_.counter("serve.requests", [this] { return requests_.load(); });
    registry_.counter("serve.invalid", [this] { return invalid_.load(); });
    registry_.counter("serve.submits", [this] { return submits_.load(); });
    registry_.counter("serve.rejected_queue_full",
                      [this] { return queue_.rejected(); });
    registry_.counter("serve.served_cache",
                      [this] { return servedCache_.load(); });
    registry_.counter("serve.simulated", [this] { return simulated_.load(); });
    registry_.counter("serve.failed", [this] { return failed_.load(); });
    registry_.counter("serve.worker_crashes",
                      [this] { return workerCrashes_.load(); });
    registry_.counter("serve.queue.high_water",
                      [this] { return queue_.highWater(); });
    registry_.gauge("serve.queue.depth", [this] {
        return static_cast<double>(queue_.depth());
    });
    cache_.registerStats(registry_, "serve.cache");
    // The program cache only sees cold (forked) runs' parents — the
    // children bypass it — but its eviction stats still describe this
    // process, and the shared vocabulary keeps dashboards uniform.
    exec::ProgramCache::global().registerStats(registry_,
                                               "serve.program_cache");
    registry_.histogram("serve.request_wall_ms", &requestWallMs_);
    // Interpolated request-latency percentiles (util::Histogram's
    // type-7 estimator — the same math the manifest-side percentile
    // helper uses, so daemon and manifest numbers agree). The closures
    // re-enter histMutex_ from inside statsDump's dump(); it is
    // recursive for exactly that.
    for (const auto &[name, q] :
         {std::pair<const char *, double>{"serve.request_wall_ms.p50", 0.50},
          {"serve.request_wall_ms.p95", 0.95},
          {"serve.request_wall_ms.p99", 0.99}}) {
        const double quantile = q;
        registry_.gauge(name, [this, quantile] {
            std::lock_guard<std::recursive_mutex> lock(histMutex_);
            return requestWallMs_.percentile(quantile);
        });
    }
    // The rolling window: what the daemon is doing *now* (last N
    // seconds), as opposed to the since-start counters above.
    registry_.gauge("serve.window.seconds", [this] {
        return static_cast<double>(metrics_.windowSeconds());
    });
    registry_.gauge("serve.window.requests", [this] {
        return static_cast<double>(metrics_.view().requests);
    });
    registry_.gauge("serve.window.qps",
                    [this] { return metrics_.view().qps; });
    registry_.gauge("serve.window.hit_ratio",
                    [this] { return metrics_.view().hitRatio; });
    registry_.gauge("serve.window.p50_ms",
                    [this] { return metrics_.view().p50Ms; });
    registry_.gauge("serve.window.p95_ms",
                    [this] { return metrics_.view().p95Ms; });
    registry_.gauge("serve.window.p99_ms",
                    [this] { return metrics_.view().p99Ms; });
    if (spans_ != nullptr) {
        registry_.counter("serve.spans.recorded",
                          [this] { return spans_->recorded(); });
        registry_.counter("serve.spans.dropped",
                          [this] { return spans_->dropped(); });
    }
}

Daemon::~Daemon()
{
    stop();
}

bool
Daemon::start(std::string *error)
{
    EIP_ASSERT(!started_, "daemon started twice");
    // Warm the workload catalogue before accepting traffic: it is
    // expensive to build (harness::findWorkload docs), every submit
    // validates against it, and building it here means forked workers
    // inherit it ready-made.
    trace::Workload ignore;
    harness::findWorkload("tiny", ignore);
    listenFd_ = listenUnix(options_.socketPath, error);
    if (listenFd_ < 0)
        return false;
    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    workerThreads_.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i)
        workerThreads_.emplace_back([this] { workerLoop(); });
    EIP_LOG_INFO("eipd", "listening",
                 obs::LogField("socket", options_.socketPath),
                 obs::LogField("workers",
                               static_cast<uint64_t>(options_.workers)),
                 obs::LogField("queue_depth",
                               static_cast<uint64_t>(options_.queueDepth)),
                 obs::LogField("span_limit",
                               static_cast<uint64_t>(options_.spanLimit)));
    return true;
}

void
Daemon::requestStop()
{
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        stopRequested_ = true;
    }
    stopCv_.notify_all();
}

void
Daemon::waitStopRequested()
{
    std::unique_lock<std::mutex> lock(stopMutex_);
    stopCv_.wait(lock, [this] { return stopRequested_; });
}

void
Daemon::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    requestStop();

    // Retire the accept loop: shutdown() (not just close) is what
    // reliably wakes a thread blocked in accept() on Linux.
    ::shutdown(listenFd_, SHUT_RDWR);
    acceptThread_.join();
    ::close(listenFd_);
    listenFd_ = -1;

    // Hang up on live connections and collect their threads. No new
    // threads can appear once the accept loop is gone.
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &thread : connThreads_)
        thread.join();

    // Drain the backlog through the workers, then retire them: close()
    // makes pop() return empty only once the queue is dry, so every
    // accepted job still completes.
    queue_.close();
    for (std::thread &thread : workerThreads_)
        thread.join();

    ::unlink(options_.socketPath.c_str());
    EIP_LOG_INFO("eipd", "stopped",
                 obs::LogField("requests", requests_.load()),
                 obs::LogField("simulated", simulated_.load()),
                 obs::LogField("served_cache", servedCache_.load()),
                 obs::LogField("failed", failed_.load()));
}

void
Daemon::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listen socket shut down: we are stopping
        }
        std::lock_guard<std::mutex> lock(connMutex_);
        connFds_.push_back(fd);
        connThreads_.emplace_back([this, fd] { serveConnection(fd); });
    }
}

void
Daemon::serveConnection(int fd)
{
    LineReader reader(fd);
    std::string line;
    while (reader.readLine(line)) {
        requests_.fetch_add(1);
        Request request;
        std::string parse_error;
        std::string response;
        bool is_shutdown = false;
        if (!parseRequest(line, request, parse_error)) {
            invalid_.fetch_add(1);
            // The op could not be parsed; answer under the envelope's
            // least-specific op so the client still gets a line back.
            response = invalidResponse(Request::Op::Stats, parse_error);
        } else {
            is_shutdown = request.op == Request::Op::Shutdown;
            response = dispatch(request);
        }
        if (!sendLine(fd, response))
            break;
        if (is_shutdown)
            break;
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(connMutex_);
    for (size_t i = 0; i < connFds_.size(); ++i) {
        if (connFds_[i] == fd) {
            connFds_.erase(connFds_.begin() + i);
            break;
        }
    }
}

void
Daemon::workerLoop()
{
    while (std::optional<uint64_t> id = queue_.pop()) {
        harness::RunJob run;
        std::string key;
        bool inject_crash = false;
        uint64_t trace_id = 0;
        uint64_t submit_us = 0;
        uint64_t enqueue_us = 0;
        {
            std::lock_guard<std::mutex> lock(jobsMutex_);
            auto it = jobs_.find(*id);
            if (it == jobs_.end())
                continue;
            it->second.state = Job::State::Running;
            run = it->second.run;
            key = it->second.key;
            inject_crash = it->second.injectCrash;
            trace_id = it->second.traceId;
            submit_us = it->second.submitUs;
            enqueue_us = it->second.enqueueUs;
        }

        const uint64_t fork_start_us = obs::monotonicMicros();
        WorkerOutcome outcome =
            runForkedJob(run, inject_crash, spans_ != nullptr);
        const uint64_t fork_end_us = obs::monotonicMicros();
        double ms =
            static_cast<double>(fork_end_us - fork_start_us) / 1000.0;
        {
            std::lock_guard<std::recursive_mutex> lock(histMutex_);
            requestWallMs_.record(static_cast<size_t>(ms));
        }

        if (outcome.ok && !inject_crash)
            cache_.put(key, outcome.artifact);

        if (outcome.ok)
            simulated_.fetch_add(1);
        else
            failed_.fetch_add(1);
        if (outcome.crashed)
            workerCrashes_.fetch_add(1);

        metrics_.record(outcome.ok ? MetricsWindow::Outcome::Simulated
                                   : MetricsWindow::Outcome::Failed,
                        ms);

        if (spans_ != nullptr) {
            // queued: admission push to worker pickup; forked: the
            // whole child lifetime; the child's own phase spans ride
            // the preamble; request: submit to terminal state.
            spans_->record({trace_id, "queued", enqueue_us,
                            fork_start_us - enqueue_us, ""});
            spans_->record({trace_id, "forked", fork_start_us,
                            fork_end_us - fork_start_us, ""});
            spans_->recordChild(trace_id, outcome.childSpans);
            const char *terminal = outcome.ok        ? "done"
                                   : outcome.crashed ? "crashed"
                                                     : "failed";
            spans_->record({trace_id, "request", submit_us,
                            fork_end_us - submit_us, terminal});
        }

        if (outcome.ok) {
            EIP_LOG_INFO("eipd", "job_done", obs::LogField("job", *id),
                         obs::LogField("wall_ms", ms),
                         obs::LogField("trace", trace_id));
        } else {
            EIP_LOG_WARN("eipd", "job_failed", obs::LogField("job", *id),
                         obs::LogField("crashed", outcome.crashed),
                         obs::LogField("error", outcome.error),
                         obs::LogField("trace", trace_id));
        }

        std::lock_guard<std::mutex> lock(jobsMutex_);
        Job &job = jobs_[*id];
        if (outcome.ok) {
            job.state = Job::State::Done;
            job.artifact = std::move(outcome.artifact);
        } else {
            job.state = Job::State::Failed;
            job.error = std::move(outcome.error);
        }
    }
}

const char *
Daemon::stateName(Job::State state)
{
    switch (state) {
      case Job::State::Queued: return "queued";
      case Job::State::Running: return "running";
      case Job::State::Done: return "done";
      case Job::State::Failed: return "failed";
    }
    return "unknown";
}

std::string
Daemon::invalidResponse(Request::Op op, const std::string &error)
{
    obs::JsonWriter json = responseHead(op, "invalid");
    json.kv("error", error);
    json.endObject();
    return json.str();
}

std::string
Daemon::dispatch(const Request &request)
{
    switch (request.op) {
      case Request::Op::Submit:
        return handleSubmit(request.run);
      case Request::Op::Status:
        return handleStatus(request.job);
      case Request::Op::Fetch:
        return handleFetch(request.job);
      case Request::Op::Stats:
        return statsJson();
      case Request::Op::Metrics:
        return metricsJson();
      case Request::Op::Spans: {
          if (spans_ == nullptr)
              return invalidResponse(request.op,
                                     "span collection is disabled "
                                     "(daemon started with --span-limit 0)");
          return spansJson();
      }
      case Request::Op::Shutdown: {
          requestStop();
          EIP_LOG_INFO("eipd", "shutdown_requested");
          obs::JsonWriter json = responseHead(request.op, "ok");
          json.endObject();
          return json.str();
      }
    }
    return invalidResponse(request.op, "unhandled op");
}

std::string
Daemon::handleSubmit(const RunRequest &run)
{
    submits_.fetch_add(1);

    trace::Workload workload;
    if (!harness::findWorkload(run.workload, workload)) {
        invalid_.fetch_add(1);
        return invalidResponse(Request::Op::Submit,
                               "unknown workload '" + run.workload + "'");
    }
    if (!isCacheConfigId(run.prefetcher) &&
        !prefetch::knownPrefetcherId(run.prefetcher)) {
        invalid_.fetch_add(1);
        return invalidResponse(Request::Op::Submit,
                               "unknown prefetcher '" + run.prefetcher +
                                   "'");
    }
    if (!prefetch::knownPrefetcherId(run.dataPrefetcher)) {
        invalid_.fetch_add(1);
        return invalidResponse(Request::Op::Submit,
                               "unknown data prefetcher '" +
                                   run.dataPrefetcher + "'");
    }

    harness::RunSpec spec = toRunSpec(run);
    const std::string key = harness::resultCacheKey(
        gitDescribe_, sim::SimConfig{}, spec, workload);

    // A trace opens only once the request is semantically valid — the
    // invalid paths above never become request spans, so closed root
    // spans reconcile exactly against the outcome counters.
    const uint64_t submit_us = obs::monotonicMicros();
    const uint64_t trace_id = spans_ != nullptr ? spans_->newTrace() : 0;

    // Cache probe first: a hit answers without consuming queue space or
    // forking a worker. Fault-injected jobs never touch the cache in
    // either direction — their artifacts are garbage by design.
    if (!run.injectCrash) {
        std::optional<std::string> artifact = cache_.get(key);
        const uint64_t probe_end_us = obs::monotonicMicros();
        if (spans_ != nullptr)
            spans_->record({trace_id, "cache_lookup", submit_us,
                            probe_end_us - submit_us, ""});
        if (artifact) {
            servedCache_.fetch_add(1);
            const double ms =
                static_cast<double>(probe_end_us - submit_us) / 1000.0;
            metrics_.record(MetricsWindow::Outcome::Cache, ms);
            {
                std::lock_guard<std::recursive_mutex> lock(histMutex_);
                requestWallMs_.record(static_cast<size_t>(ms));
            }
            if (spans_ != nullptr)
                spans_->record({trace_id, "request", submit_us,
                                probe_end_us - submit_us, "cache"});
            uint64_t id;
            {
                std::lock_guard<std::mutex> lock(jobsMutex_);
                id = nextJobId_++;
                Job &job = jobs_[id];
                job.key = key;
                job.traceId = trace_id;
                job.submitUs = submit_us;
                job.state = Job::State::Done;
                job.servedFromCache = true;
                job.artifact = std::move(*artifact);
            }
            EIP_LOG_DEBUG("eipd", "cache_served",
                          obs::LogField("job", id),
                          obs::LogField("key", key),
                          obs::LogField("trace", trace_id));
            obs::JsonWriter json = responseHead(Request::Op::Submit,
                                                "accepted");
            json.kv("job", id);
            json.kv("key", key);
            json.kv("served", "cache");
            json.kv("state", "done");
            json.endObject();
            return json.str();
        }
    }

    uint64_t id;
    {
        std::lock_guard<std::mutex> lock(jobsMutex_);
        id = nextJobId_++;
        Job &job = jobs_[id];
        job.run.workload = workload;
        job.run.spec = spec;
        job.key = key;
        job.injectCrash = run.injectCrash;
        job.traceId = trace_id;
        job.submitUs = submit_us;
        // Stamped before tryPush: a worker may pop the id the moment
        // the push lands, so the job record must already be complete.
        job.enqueueUs = obs::monotonicMicros();
    }
    if (!queue_.tryPush(id)) {
        {
            std::lock_guard<std::mutex> lock(jobsMutex_);
            jobs_.erase(id);
        }
        metrics_.record(MetricsWindow::Outcome::Rejected, 0.0);
        if (spans_ != nullptr)
            spans_->record({trace_id, "request", submit_us,
                            obs::monotonicMicros() - submit_us,
                            "rejected"});
        EIP_LOG_WARN("eipd", "rejected",
                     obs::LogField("workload", run.workload),
                     obs::LogField("queue_capacity",
                                   static_cast<uint64_t>(
                                       options_.queueDepth)),
                     obs::LogField("trace", trace_id));
        obs::JsonWriter json = responseHead(Request::Op::Submit,
                                            "rejected");
        json.kv("error", "queue full");
        json.kv("queue_capacity", static_cast<uint64_t>(
                                      options_.queueDepth));
        json.endObject();
        return json.str();
    }

    EIP_LOG_DEBUG("eipd", "enqueued", obs::LogField("job", id),
                  obs::LogField("workload", run.workload),
                  obs::LogField("trace", trace_id));
    obs::JsonWriter json = responseHead(Request::Op::Submit, "accepted");
    json.kv("job", id);
    json.kv("key", key);
    json.kv("served", "queue");
    json.kv("state", "queued");
    json.endObject();
    return json.str();
}

std::string
Daemon::handleStatus(uint64_t id)
{
    std::lock_guard<std::mutex> lock(jobsMutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        invalid_.fetch_add(1);
        return invalidResponse(Request::Op::Status,
                               "unknown job " + std::to_string(id));
    }
    const Job &job = it->second;
    obs::JsonWriter json = responseHead(Request::Op::Status, "ok");
    json.kv("job", id);
    json.kv("state", stateName(job.state));
    json.kv("served_from_cache", job.servedFromCache);
    if (job.state == Job::State::Failed)
        json.kv("error", job.error);
    json.endObject();
    return json.str();
}

std::string
Daemon::handleFetch(uint64_t id)
{
    std::lock_guard<std::mutex> lock(jobsMutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        invalid_.fetch_add(1);
        return invalidResponse(Request::Op::Fetch,
                               "unknown job " + std::to_string(id));
    }
    const Job &job = it->second;
    obs::JsonWriter json = responseHead(Request::Op::Fetch, "ok");
    json.kv("job", id);
    json.kv("state", stateName(job.state));
    json.kv("served_from_cache", job.servedFromCache);
    switch (job.state) {
      case Job::State::Done:
        json.kv("key", job.key);
        // As a JSON *string* value: escape/unescape round-trips exactly,
        // so the client recovers the artifact byte for byte (including
        // the trailing newline every artifact file carries).
        json.kv("artifact", job.artifact);
        break;
      case Job::State::Failed:
        json.kv("error", job.error);
        break;
      case Job::State::Queued:
      case Job::State::Running:
        break;
    }
    json.endObject();
    return json.str();
}

obs::CounterDump
Daemon::statsDump()
{
    std::lock_guard<std::recursive_mutex> lock(histMutex_);
    return registry_.dump();
}

std::string
Daemon::statsJson()
{
    obs::JsonWriter json;
    json.beginObject();
    json.kv("schema", obs::kServeSchema);
    json.kv("kind", "stats");
    json.kv("tool", "eipd");
    json.kv("git_describe", gitDescribe_);
    json.kv("workers", options_.workers);
    json.kv("queue_capacity", static_cast<uint64_t>(options_.queueDepth));
    json.kv("cache_capacity_bytes", options_.cacheBytes);
    json.kv("span_limit", static_cast<uint64_t>(options_.spanLimit));
    obs::writeCounterSections(json, statsDump());
    json.endObject();
    return json.str();
}

std::string
Daemon::metricsJson()
{
    const MetricsWindow::View view = metrics_.view();
    obs::JsonWriter json = responseHead(Request::Op::Metrics, "ok");
    json.key("window").beginObject();
    json.kv("seconds", view.windowSeconds);
    json.kv("requests", view.requests);
    json.kv("cache_hits", view.cacheHits);
    json.kv("simulated", view.simulated);
    json.kv("failed", view.failed);
    json.kv("rejected", view.rejected);
    json.kv("qps", view.qps);
    json.kv("hit_ratio", view.hitRatio);
    json.kv("p50_ms", view.p50Ms);
    json.kv("p95_ms", view.p95Ms);
    json.kv("p99_ms", view.p99Ms);
    json.endObject();
    // The Prometheus page rides the NDJSON protocol as one escaped
    // string value; eipc metrics unescapes it back to scrape text.
    json.kv("exposition",
            prometheusText(statsDump(),
                           {{"tool", "eipd"},
                            {"git_describe", gitDescribe_}}));
    json.endObject();
    return json.str();
}

std::string
Daemon::spansJson()
{
    if (spans_ == nullptr)
        return {};
    std::string doc = spans_->toJson({{"tool", "eipd"},
                                      {"git_describe", gitDescribe_}});
    // One line on the wire, like every other response.
    if (!doc.empty() && doc.back() == '\n')
        doc.pop_back();
    return doc;
}

} // namespace eip::serve
