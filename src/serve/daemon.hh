/**
 * @file
 * The eipd job server: simulation as a service over a local Unix-domain
 * socket. One accept thread spawns a thread per connection; parsed
 * submit requests pass through a bounded admission queue (full queue =
 * explicit "rejected" response, the client's cue to back off) to a
 * small pool of dispatcher threads, each of which forks the actual
 * simulation into a throwaway child process (src/serve/worker.hh) so a
 * crashing run can never take the daemon down.
 *
 * Completed artifacts land in a content-addressed ResultCache keyed by
 * harness::resultCacheKey; a resubmitted request is answered from the
 * cache without forking, byte-identical to the cold run. Everything the
 * daemon does is observable: cache, queue and failure counters live in
 * an obs::CounterRegistry served by the "stats" op as one eip-serve/v1
 * document.
 */

#ifndef EIP_SERVE_DAEMON_HH
#define EIP_SERVE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "harness/runner.hh"
#include "obs/registry.hh"
#include "obs/span.hh"
#include "serve/metrics.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"
#include "serve/result_cache.hh"
#include "util/histogram.hh"

namespace eip::serve {

struct DaemonOptions
{
    std::string socketPath;
    /** Dispatcher threads = maximum concurrently forked simulations. */
    unsigned workers = 2;
    /** Admission queue capacity; pushes beyond it are rejected. */
    size_t queueDepth = 64;
    /** Result-cache budget in artifact bytes. */
    uint64_t cacheBytes = 64ull << 20;
    /** Request-span ring capacity; 0 disables span collection (the
     *  "spans" op then answers invalid and workers skip the preamble). */
    size_t spanLimit = 4096;
    /** Rolling metrics window length for the "metrics" op. */
    uint64_t metricsWindowSeconds = 60;
};

class Daemon
{
  public:
    explicit Daemon(DaemonOptions options);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Bind the socket and start the accept/worker threads. False with
     *  a diagnostic on socket errors (path too long, bind refused). */
    bool start(std::string *error);

    /** Note a stop request (shutdown op, signal): wakes the thread in
     *  waitStopRequested(). Safe from any thread; does not tear down. */
    void requestStop();

    /** Block until requestStop() — the owning thread's idle wait. */
    void waitStopRequested();

    /** Full teardown: retire the accept loop, hang up connections,
     *  drain queued jobs through the workers, join everything, unlink
     *  the socket. Idempotent. */
    void stop();

    const DaemonOptions &options() const { return options_; }

    /** Snapshot of every registered counter (tests, benches). */
    obs::CounterDump statsDump();

    /** The eip-serve/v1 stats document (one line, no newline). */
    std::string statsJson();

    /** The "metrics" response: window view + Prometheus exposition. */
    std::string metricsJson();

    /** The eip-trace/v1 serve span document (one line, no trailing
     *  newline), or empty when spans are disabled. */
    std::string spansJson();

    /** The live span collector (tests); nullptr when disabled. */
    obs::SpanCollector *spans() { return spans_.get(); }

  private:
    /** One tracked submit and what became of it. */
    struct Job
    {
        harness::RunJob run;
        std::string key;
        bool injectCrash = false;
        uint64_t traceId = 0;   ///< span trace id (0 when spans off)
        uint64_t submitUs = 0;  ///< request-received monotonic time
        uint64_t enqueueUs = 0; ///< admission-queue push time
        enum class State
        {
            Queued,
            Running,
            Done,
            Failed,
        } state = State::Queued;
        bool servedFromCache = false;
        std::string artifact;
        std::string error;
    };

    static const char *stateName(Job::State state);

    void acceptLoop();
    void serveConnection(int fd);
    void workerLoop();

    std::string dispatch(const Request &request);
    std::string handleSubmit(const RunRequest &run);
    std::string handleStatus(uint64_t id);
    std::string handleFetch(uint64_t id);
    std::string invalidResponse(Request::Op op, const std::string &error);

    DaemonOptions options_;
    std::string gitDescribe_;

    int listenFd_ = -1;
    bool started_ = false;
    bool stopped_ = false;

    std::thread acceptThread_;
    std::vector<std::thread> workerThreads_;
    std::mutex connMutex_;
    std::vector<std::thread> connThreads_;
    std::vector<int> connFds_; ///< live connection fds (for hangup)

    std::mutex stopMutex_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;

    BoundedQueue<uint64_t> queue_;
    ResultCache cache_;

    std::mutex jobsMutex_;
    std::unordered_map<uint64_t, Job> jobs_;
    uint64_t nextJobId_ = 1;

    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> invalid_{0};
    std::atomic<uint64_t> submits_{0};
    std::atomic<uint64_t> servedCache_{0};
    std::atomic<uint64_t> simulated_{0};
    std::atomic<uint64_t> failed_{0};
    std::atomic<uint64_t> workerCrashes_{0};

    /** Per-request wall time, bucketed in milliseconds. Guarded by
     *  histMutex_ (also held across statsJson's registry dump so a
     *  concurrent record can't tear a snapshot; recursive because the
     *  registered percentile gauges re-enter it from inside dump()). */
    std::recursive_mutex histMutex_;
    Histogram requestWallMs_{128};

    /** Request spans; allocated only when options_.spanLimit > 0 so a
     *  disabled collector is one pointer test on every hook. */
    std::unique_ptr<obs::SpanCollector> spans_;
    MetricsWindow metrics_;

    obs::CounterRegistry registry_;
};

} // namespace eip::serve

#endif // EIP_SERVE_DAEMON_HH
