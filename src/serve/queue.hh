/**
 * @file
 * The daemon's admission queue: a fixed-capacity MPMC queue with
 * non-blocking producers. A full queue rejects the push immediately —
 * the daemon turns that into an explicit 429-style "rejected" response
 * so clients see backpressure as a structured signal they can retry on,
 * instead of an unbounded backlog silently eating the daemon's memory.
 */

#ifndef EIP_SERVE_QUEUE_HH
#define EIP_SERVE_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/panic.hh"

namespace eip::serve {

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity)
    {
        EIP_ASSERT(capacity > 0, "queue capacity must be positive");
    }

    /** Admit @p value unless the queue is full (or closed). Never
     *  blocks: a false return is the backpressure signal. */
    bool
    tryPush(T value)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_) {
                ++rejected_;
                return false;
            }
            items_.push_back(std::move(value));
            if (items_.size() > highWater_)
                highWater_ = items_.size();
        }
        available_.notify_one();
        return true;
    }

    /** Next item, blocking while the queue is open and empty. Empty
     *  optional only after close() once the backlog has drained, so
     *  shutdown completes queued work instead of dropping it. */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        available_.wait(lock,
                        [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T value = std::move(items_.front());
        items_.pop_front();
        return value;
    }

    /** Stop admitting; wake every blocked consumer. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        available_.notify_all();
    }

    size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    /** Deepest backlog ever observed. */
    uint64_t
    highWater() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return highWater_;
    }

    /** Pushes refused because the queue was full (or closed). */
    uint64_t
    rejected() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return rejected_;
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable available_;
    std::deque<T> items_;
    size_t capacity_;
    bool closed_ = false;
    uint64_t highWater_ = 0;
    uint64_t rejected_ = 0;
};

} // namespace eip::serve

#endif // EIP_SERVE_QUEUE_HH
