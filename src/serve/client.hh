/**
 * @file
 * eipd client: connects to a daemon socket and speaks the eip-serve/v1
 * protocol — submit, poll, fetch, stats, shutdown. The eipc CLI, the
 * servestorm bench and the serve tests are all thin layers over this
 * class. Errors are return values, never fatals: a client embedded in
 * a bench must be able to observe a rejected (backpressured) submit and
 * retry it.
 */

#ifndef EIP_SERVE_CLIENT_HH
#define EIP_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "obs/json.hh"
#include "serve/protocol.hh"
#include "serve/socket_io.hh"

namespace eip::serve {

/** Parsed submit response. */
struct SubmitOutcome
{
    bool accepted = false;
    /** Explicit backpressure: the daemon's queue was full. Retryable. */
    bool rejected = false;
    uint64_t job = 0;
    std::string key;    ///< content address of the request
    std::string served; ///< "cache" or "queue"
    std::string state;  ///< "done" (cache hit) or "queued"
    std::string error;  ///< invalid/rejected diagnostic
};

/** Parsed status/fetch response. */
struct JobView
{
    std::string state; ///< queued / running / done / failed
    bool servedFromCache = false;
    std::string key;
    std::string artifact; ///< complete eip-run/v1 document (fetch, done)
    std::string error;    ///< failure description (failed)
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to the daemon at @p path. */
    bool connect(const std::string &path, std::string *error);
    void close();
    bool connected() const { return fd_ >= 0; }

    /** Send one request line and parse the one response line. False on
     *  transport or JSON errors. */
    bool roundTrip(const Request &request, obs::JsonValue &response,
                   std::string *error);

    /** Submit @p run. True when the daemon answered at all (check
     *  @p out for accepted vs rejected vs invalid). */
    bool submit(const RunRequest &run, SubmitOutcome &out,
                std::string *error);

    bool status(uint64_t job, JobView &out, std::string *error);

    /** Fetch the job; when done, @p out.artifact holds the exact
     *  artifact bytes. */
    bool fetch(uint64_t job, JobView &out, std::string *error);

    /** The daemon's eip-serve/v1 stats document (raw line). */
    bool stats(std::string &stats_json, std::string *error);

    /** The metrics response: @p metrics_json gets the raw response
     *  line (window + exposition), @p exposition the decoded
     *  Prometheus text page. */
    bool metrics(std::string &metrics_json, std::string &exposition,
                 std::string *error);

    /** The daemon's eip-trace/v1 serve span document (raw line).
     *  False (with the daemon's diagnostic) when spans are disabled. */
    bool spans(std::string &trace_json, std::string *error);

    bool shutdown(std::string *error);

    /** Poll status until the job reaches done/failed or
     *  @p timeout_seconds passes. False on timeout or transport error. */
    bool waitTerminal(uint64_t job, JobView &out, double timeout_seconds,
                      std::string *error);

  private:
    int fd_ = -1;
    /** One buffered reader for the connection's lifetime, so bytes the
     *  kernel delivered past a response's newline are never dropped. */
    LineReader reader_{-1};
};

} // namespace eip::serve

#endif // EIP_SERVE_CLIENT_HH
