#include "serve/socket_io.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace eip::serve {

namespace {

/** Fill @p addr for @p path; false when the path does not fit the
 *  fixed-size sun_path field (108 bytes on Linux). */
bool
unixAddress(const std::string &path, sockaddr_un &addr, std::string *error)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path empty or too long: '" + path + "'";
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

std::string
errnoText(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

} // namespace

int
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!unixAddress(path, addr, error))
        return -1;

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = errnoText("socket");
        return -1;
    }
    // A stale socket file from a dead daemon would make bind fail with
    // EADDRINUSE even though nobody is listening.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (error)
            *error = errnoText("bind");
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        if (error)
            *error = errnoText("listen");
        ::close(fd);
        ::unlink(path.c_str());
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!unixAddress(path, addr, error))
        return -1;

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = errnoText("socket");
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = "connect '" + path + "': " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    size_t sent = 0;
    while (sent < framed.size()) {
        ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

bool
LineReader::readLine(std::string &out)
{
    for (;;) {
        size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            out.assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            return true;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

} // namespace eip::serve
