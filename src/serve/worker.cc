#include "serve/worker.hh"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/artifacts.hh"
#include "obs/phase.hh"

namespace eip::serve {

namespace {

/** Write all of @p text to @p fd, looping over partial writes. Errors
 *  are ignored — the child has no better channel to report them on;
 *  the parent sees a truncated artifact and records the failure. */
void
writeAll(int fd, const std::string &text)
{
    size_t written = 0;
    while (written < text.size()) {
        ssize_t n =
            ::write(fd, text.data() + written, text.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        written += static_cast<size_t>(n);
    }
}

/** Child-side body: simulate, stream the artifact (followed by the
 *  span preamble when profiling), _exit. Never returns. */
[[noreturn]] void
childMain(int write_fd, const harness::RunJob &job, bool inject_crash,
          bool collect_spans)
{
    if (inject_crash) {
        // Mid-run fault: a recognizable artifact prefix is already on
        // the wire when the process dies, so the parent also proves it
        // discards partial output.
        writeAll(write_fd, "{\"schema\":\"eip-run/v1\"");
        std::abort();
    }
    obs::PhaseProfiler profiler;
    harness::ArtifactRun run = harness::runJobArtifact(
        job, /*use_program_cache=*/false,
        collect_spans ? &profiler : nullptr);
    writeAll(write_fd, run.json);
    if (collect_spans) {
        std::vector<obs::SpanRecord> spans;
        for (const obs::PhaseInterval &iv : profiler.intervals()) {
            obs::SpanRecord span;
            span.name = iv.name;
            span.startUs = iv.startUs;
            span.durUs = iv.endUs - iv.startUs;
            spans.push_back(std::move(span));
        }
        writeAll(write_fd, obs::spanPreambleJson(spans));
    }
    ::close(write_fd);
    ::_exit(0);
}

} // namespace

WorkerOutcome
runForkedJob(const harness::RunJob &job, bool inject_crash,
             bool collect_spans)
{
    WorkerOutcome outcome;

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        outcome.error = std::string("pipe: ") + std::strerror(errno);
        return outcome;
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        outcome.error = std::string("fork: ") + std::strerror(errno);
        ::close(pipe_fds[0]);
        ::close(pipe_fds[1]);
        return outcome;
    }

    if (pid == 0) {
        ::close(pipe_fds[0]);
        childMain(pipe_fds[1], job, inject_crash, collect_spans);
    }

    ::close(pipe_fds[1]);
    std::string payload;
    char chunk[65536];
    for (;;) {
        ssize_t n = ::read(pipe_fds[0], chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        payload.append(chunk, static_cast<size_t>(n));
    }
    ::close(pipe_fds[0]);

    // The artifact is always exactly one line; anything after its
    // newline is the optional span preamble. A payload with no newline
    // at all is a truncated artifact and falls through to the length
    // check below unchanged.
    std::string artifact;
    std::string preamble;
    if (!obs::splitWorkerPayload(payload, artifact, preamble))
        artifact = std::move(payload);
    if (!preamble.empty() &&
        !obs::parseSpanPreamble(preamble, outcome.childSpans))
        outcome.childSpans.clear(); // partial preamble: spans are lost,
                                    // the artifact still counts

    int status = 0;
    pid_t reaped;
    do {
        reaped = ::waitpid(pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);

    if (reaped != pid) {
        outcome.error = std::string("waitpid: ") + std::strerror(errno);
        return outcome;
    }
    if (WIFSIGNALED(status)) {
        outcome.crashed = true;
        outcome.error = "worker killed by signal " +
                        std::to_string(WTERMSIG(status));
        return outcome;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        outcome.error =
            "worker exited with status " +
            std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
        return outcome;
    }
    // A clean exit must still have delivered a complete document: the
    // artifact renderer always terminates with "}\n".
    if (artifact.size() < 2 ||
        artifact.compare(artifact.size() - 2, 2, "}\n") != 0) {
        outcome.error = "worker exited cleanly but delivered a truncated "
                        "artifact (" +
                        std::to_string(artifact.size()) + " bytes)";
        return outcome;
    }

    outcome.ok = true;
    outcome.artifact = std::move(artifact);
    return outcome;
}

} // namespace eip::serve
