/**
 * @file
 * Unix-domain socket transport shared by the eipd daemon and the eipc
 * client: listen/connect on a filesystem path, and line-oriented I/O
 * matching the NDJSON framing of the eip-serve/v1 protocol. All sends
 * use MSG_NOSIGNAL so a peer hanging up surfaces as an error return,
 * never as SIGPIPE.
 */

#ifndef EIP_SERVE_SOCKET_IO_HH
#define EIP_SERVE_SOCKET_IO_HH

#include <string>

namespace eip::serve {

/** Bind + listen on @p path (unlinking a stale socket first). Returns
 *  the listening fd, or -1 with a diagnostic in @p error. */
int listenUnix(const std::string &path, std::string *error);

/** Connect to the daemon at @p path. Returns the connected fd, or -1
 *  with a diagnostic in @p error. */
int connectUnix(const std::string &path, std::string *error);

/** Send @p line plus the terminating newline, looping over partial
 *  writes. False when the peer is gone. */
bool sendLine(int fd, const std::string &line);

/** Buffered reader turning a stream socket back into protocol lines. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /** Next newline-terminated line (newline stripped). False on EOF
     *  or a read error; a trailing unterminated fragment is dropped
     *  (a half-written request is not a request). */
    bool readLine(std::string &out);

  private:
    int fd_;
    std::string buffer_;
};

} // namespace eip::serve

#endif // EIP_SERVE_SOCKET_IO_HH
