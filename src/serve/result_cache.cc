#include "serve/result_cache.hh"

#include "obs/registry.hh"

namespace eip::serve {

ResultCache::ResultCache(uint64_t capacity_bytes)
    : artifacts_(capacity_bytes)
{
}

std::optional<std::string>
ResultCache::get(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::string *artifact = artifacts_.get(key))
        return *artifact;
    return std::nullopt;
}

void
ResultCache::put(const std::string &key, std::string artifact)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t weight = artifact.size();
    artifacts_.put(key, std::move(artifact), weight);
}

uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return artifacts_.hits();
}

uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return artifacts_.misses();
}

uint64_t
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return artifacts_.evictions();
}

uint64_t
ResultCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return artifacts_.size();
}

uint64_t
ResultCache::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return artifacts_.weight();
}

uint64_t
ResultCache::capacityBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return artifacts_.capacity();
}

void
ResultCache::registerStats(obs::CounterRegistry &registry,
                           const std::string &prefix) const
{
    registry.counter(prefix + ".hits", [this]() { return hits(); });
    registry.counter(prefix + ".misses", [this]() { return misses(); });
    registry.counter(prefix + ".evictions",
                     [this]() { return evictions(); });
    registry.counter(prefix + ".entries", [this]() { return entries(); });
    registry.counter(prefix + ".bytes", [this]() { return bytes(); });
}

} // namespace eip::serve
