/**
 * @file
 * Crash-isolated job execution: each simulation runs in a forked child
 * process that streams its rendered eip-run/v1 artifact back over a
 * pipe and _exit()s. A child that crashes — assertion, bad memory
 * access, injected fault — takes down only its own address space: the
 * parent reaps it, decodes the wait status into a structured error,
 * and keeps serving every other request.
 */

#ifndef EIP_SERVE_WORKER_HH
#define EIP_SERVE_WORKER_HH

#include <string>
#include <vector>

#include "harness/runner.hh"
#include "obs/span.hh"

namespace eip::serve {

/** What became of one forked job. */
struct WorkerOutcome
{
    bool ok = false;
    /** The child died on a signal (as opposed to a clean nonzero exit
     *  or a truncated artifact). */
    bool crashed = false;
    std::string artifact; ///< complete eip-run/v1 document when ok
    std::string error;    ///< structured failure description when !ok
    /** Phase spans the child recorded (program_build, warmup, measure,
     *  fill_drain, serialize — absolute monotonic timestamps), relayed
     *  over the pipe as an eip-span/v1 preamble after the artifact
     *  line. Empty unless collect_spans, or when the child died before
     *  writing it. */
    std::vector<obs::SpanRecord> childSpans;
};

/**
 * Run @p job in a forked worker and collect its artifact. With
 * @p inject_crash the child writes a deliberately truncated artifact
 * and abort()s mid-run — the fault path the crash-isolation tests
 * exercise end to end. With @p collect_spans the child profiles its
 * run phases and appends them as a one-line eip-span/v1 preamble after
 * the artifact; the artifact bytes themselves are unchanged, so cached
 * results stay byte-identical whether spans are on or off.
 *
 * The child never touches the parent's ProgramCache or any other lock
 * shared with parent threads (see runJobArtifact's fork-safety note),
 * and leaves via _exit() so no atexit handler of the embedding process
 * (bench banners, artifact writers) runs twice.
 */
WorkerOutcome runForkedJob(const harness::RunJob &job, bool inject_crash,
                           bool collect_spans = false);

} // namespace eip::serve

#endif // EIP_SERVE_WORKER_HH
