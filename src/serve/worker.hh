/**
 * @file
 * Crash-isolated job execution: each simulation runs in a forked child
 * process that streams its rendered eip-run/v1 artifact back over a
 * pipe and _exit()s. A child that crashes — assertion, bad memory
 * access, injected fault — takes down only its own address space: the
 * parent reaps it, decodes the wait status into a structured error,
 * and keeps serving every other request.
 */

#ifndef EIP_SERVE_WORKER_HH
#define EIP_SERVE_WORKER_HH

#include <string>

#include "harness/runner.hh"

namespace eip::serve {

/** What became of one forked job. */
struct WorkerOutcome
{
    bool ok = false;
    /** The child died on a signal (as opposed to a clean nonzero exit
     *  or a truncated artifact). */
    bool crashed = false;
    std::string artifact; ///< complete eip-run/v1 document when ok
    std::string error;    ///< structured failure description when !ok
};

/**
 * Run @p job in a forked worker and collect its artifact. With
 * @p inject_crash the child writes a deliberately truncated artifact
 * and abort()s mid-run — the fault path the crash-isolation tests
 * exercise end to end.
 *
 * The child never touches the parent's ProgramCache or any other lock
 * shared with parent threads (see runJobArtifact's fork-safety note),
 * and leaves via _exit() so no atexit handler of the embedding process
 * (bench banners, artifact writers) runs twice.
 */
WorkerOutcome runForkedJob(const harness::RunJob &job, bool inject_crash);

} // namespace eip::serve

#endif // EIP_SERVE_WORKER_HH
