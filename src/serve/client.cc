#include "serve/client.hh"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "obs/manifest.hh"
#include "serve/socket_io.hh"

namespace eip::serve {

namespace {

std::string
stringField(const obs::JsonValue &doc, const std::string &name)
{
    const obs::JsonValue *member = doc.find(name);
    if (member && member->type == obs::JsonValue::Type::String)
        return member->string;
    return {};
}

bool
boolField(const obs::JsonValue &doc, const std::string &name)
{
    const obs::JsonValue *member = doc.find(name);
    return member && member->type == obs::JsonValue::Type::Bool &&
           member->boolean;
}

void
fillJobView(const obs::JsonValue &doc, JobView &out)
{
    out.state = stringField(doc, "state");
    out.servedFromCache = boolField(doc, "served_from_cache");
    out.key = stringField(doc, "key");
    out.artifact = stringField(doc, "artifact");
    out.error = stringField(doc, "error");
}

} // namespace

Client::~Client()
{
    close();
}

bool
Client::connect(const std::string &path, std::string *error)
{
    close();
    fd_ = connectUnix(path, error);
    reader_ = LineReader(fd_);
    return fd_ >= 0;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::roundTrip(const Request &request, obs::JsonValue &response,
                  std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    if (!sendLine(fd_, requestJson(request))) {
        if (error)
            *error = "daemon hung up while sending";
        return false;
    }
    std::string line;
    if (!reader_.readLine(line)) {
        if (error)
            *error = "daemon hung up without responding";
        return false;
    }
    std::string parse_error;
    std::optional<obs::JsonValue> doc = obs::parseJson(line, &parse_error);
    if (!doc) {
        if (error)
            *error = "malformed response: " + parse_error;
        return false;
    }
    response = std::move(*doc);
    return true;
}

bool
Client::submit(const RunRequest &run, SubmitOutcome &out, std::string *error)
{
    Request request;
    request.op = Request::Op::Submit;
    request.run = run;
    obs::JsonValue response;
    if (!roundTrip(request, response, error))
        return false;

    const std::string status = stringField(response, "status");
    out = SubmitOutcome{};
    out.error = stringField(response, "error");
    if (status == "accepted") {
        out.accepted = true;
        const obs::JsonValue *job = response.find("job");
        out.job = job ? job->asU64() : 0;
        out.key = stringField(response, "key");
        out.served = stringField(response, "served");
        out.state = stringField(response, "state");
    } else if (status == "rejected") {
        out.rejected = true;
    }
    return true;
}

bool
Client::status(uint64_t job, JobView &out, std::string *error)
{
    Request request;
    request.op = Request::Op::Status;
    request.job = job;
    obs::JsonValue response;
    if (!roundTrip(request, response, error))
        return false;
    if (stringField(response, "status") != "ok") {
        if (error)
            *error = stringField(response, "error");
        return false;
    }
    fillJobView(response, out);
    return true;
}

bool
Client::fetch(uint64_t job, JobView &out, std::string *error)
{
    Request request;
    request.op = Request::Op::Fetch;
    request.job = job;
    obs::JsonValue response;
    if (!roundTrip(request, response, error))
        return false;
    if (stringField(response, "status") != "ok") {
        if (error)
            *error = stringField(response, "error");
        return false;
    }
    fillJobView(response, out);
    return true;
}

bool
Client::stats(std::string &stats_json, std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    Request request;
    request.op = Request::Op::Stats;
    if (!sendLine(fd_, requestJson(request))) {
        if (error)
            *error = "daemon hung up while sending";
        return false;
    }
    if (!reader_.readLine(stats_json)) {
        if (error)
            *error = "daemon hung up without responding";
        return false;
    }
    std::string parse_error;
    if (!obs::parseJson(stats_json, &parse_error)) {
        if (error)
            *error = "malformed stats document: " + parse_error;
        return false;
    }
    return true;
}

bool
Client::metrics(std::string &metrics_json, std::string &exposition,
                std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    Request request;
    request.op = Request::Op::Metrics;
    if (!sendLine(fd_, requestJson(request))) {
        if (error)
            *error = "daemon hung up while sending";
        return false;
    }
    if (!reader_.readLine(metrics_json)) {
        if (error)
            *error = "daemon hung up without responding";
        return false;
    }
    std::string parse_error;
    std::optional<obs::JsonValue> doc =
        obs::parseJson(metrics_json, &parse_error);
    if (!doc) {
        if (error)
            *error = "malformed metrics document: " + parse_error;
        return false;
    }
    if (stringField(*doc, "status") != "ok") {
        if (error)
            *error = stringField(*doc, "error");
        return false;
    }
    exposition = stringField(*doc, "exposition");
    return true;
}

bool
Client::spans(std::string &trace_json, std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    Request request;
    request.op = Request::Op::Spans;
    if (!sendLine(fd_, requestJson(request))) {
        if (error)
            *error = "daemon hung up while sending";
        return false;
    }
    if (!reader_.readLine(trace_json)) {
        if (error)
            *error = "daemon hung up without responding";
        return false;
    }
    std::string parse_error;
    std::optional<obs::JsonValue> doc =
        obs::parseJson(trace_json, &parse_error);
    if (!doc) {
        if (error)
            *error = "malformed span document: " + parse_error;
        return false;
    }
    // A span dump has no "status" — an error response does.
    if (stringField(*doc, "kind") == "response") {
        if (error)
            *error = stringField(*doc, "error");
        return false;
    }
    return true;
}

bool
Client::shutdown(std::string *error)
{
    Request request;
    request.op = Request::Op::Shutdown;
    obs::JsonValue response;
    if (!roundTrip(request, response, error))
        return false;
    if (stringField(response, "status") != "ok") {
        if (error)
            *error = stringField(response, "error");
        return false;
    }
    return true;
}

bool
Client::waitTerminal(uint64_t job, JobView &out, double timeout_seconds,
                     std::string *error)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeout_seconds);
    for (;;) {
        if (!status(job, out, error))
            return false;
        if (out.state == "done" || out.state == "failed")
            return true;
        if (std::chrono::steady_clock::now() >= deadline) {
            if (error)
                *error = "timed out waiting for job " +
                         std::to_string(job) + " (last state: " +
                         out.state + ")";
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

} // namespace eip::serve
