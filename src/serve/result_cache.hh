/**
 * @file
 * Content-addressed result cache: rendered eip-run/v1 artifacts keyed
 * by harness::resultCacheKey (build id + canonical config + canonical
 * spec + workload identity). Because artifacts are byte-deterministic
 * and timing-free, a cached body is indistinguishable from a fresh
 * simulation — serving it is correct by construction, and the warm-path
 * tests prove it with a byte-level diff.
 *
 * Capacity is bounded in artifact bytes (not entry count: one sampled
 * fig6 artifact is ~100x a tiny smoke artifact) with LRU eviction via
 * util::LruMap.
 */

#ifndef EIP_SERVE_RESULT_CACHE_HH
#define EIP_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "util/lru.hh"

namespace eip::obs {
class CounterRegistry;
}

namespace eip::serve {

class ResultCache
{
  public:
    explicit ResultCache(uint64_t capacity_bytes);

    /** The cached artifact for @p key (refreshing its recency), if any. */
    std::optional<std::string> get(const std::string &key);

    /** Store @p artifact under @p key, evicting least-recently-served
     *  entries once the byte budget is exceeded. */
    void put(const std::string &key, std::string artifact);

    uint64_t hits() const;
    uint64_t misses() const;
    uint64_t evictions() const;
    uint64_t entries() const;
    /** Current artifact bytes resident. */
    uint64_t bytes() const;
    uint64_t capacityBytes() const;

    /** Register <prefix>.hits/.misses/.evictions/.entries/.bytes with
     *  @p registry — the same eviction-stat vocabulary as
     *  exec::ProgramCache::registerStats. */
    void registerStats(obs::CounterRegistry &registry,
                       const std::string &prefix) const;

  private:
    mutable std::mutex mutex_;
    util::LruMap<std::string, std::string> artifacts_;
};

} // namespace eip::serve

#endif // EIP_SERVE_RESULT_CACHE_HH
