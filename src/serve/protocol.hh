/**
 * @file
 * The eip-serve/v1 wire vocabulary: newline-delimited JSON documents
 * over a local Unix-domain socket. Every request and response is one
 * line (obs::JsonWriter never emits raw newlines), so framing is a
 * buffered line read — no length prefixes, inspectable with socat.
 *
 * Requests carry the established eip-run/v1 run vocabulary (workload,
 * prefetcher id, instruction budgets); responses embed complete
 * eip-run/v1 artifacts as JSON string values so a fetched artifact is
 * byte-identical to the file eipsim --stats-json would have written
 * (timing fields excluded — the serving environment must not leak into
 * results).
 */

#ifndef EIP_SERVE_PROTOCOL_HH
#define EIP_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "harness/runner.hh"

namespace eip::serve {

/** The run vocabulary of one submit request (eip-run/v1 field names). */
struct RunRequest
{
    std::string workload = "tiny";
    std::string prefetcher = "none";
    std::string dataPrefetcher = "none";
    uint64_t instructions = 600000;
    uint64_t warmup = 300000;
    bool physical = false;
    bool eventSkip = true;
    uint64_t sampleInterval = 0;
    /** Sampled simulation: "full" (default) or "periodic" (SMARTS-style
     *  functional warming + detailed windows; window/period/seed as in
     *  the eipsim CLI). Result-affecting, so part of the cache key. */
    std::string sampleMode = "full";
    uint64_t sampleWindow = 0;
    uint64_t samplePeriod = 0;
    uint64_t sampleSeed = 0;
    uint64_t sampleWarm = 0;
    /** Fault injection for the crash-isolation tests: the forked worker
     *  writes a partial artifact and aborts mid-run. Never cached. */
    bool injectCrash = false;
};

/** One parsed client request. */
struct Request
{
    enum class Op
    {
        Submit,   ///< enqueue (or cache-serve) one run
        Status,   ///< job state by id
        Fetch,    ///< artifact by job id
        Stats,    ///< daemon counter dump (eip-serve/v1 stats document)
        Metrics,  ///< rolling window + Prometheus text exposition
        Spans,    ///< request-span trace (eip-trace/v1 serve document)
        Shutdown, ///< request daemon stop (queued work drains first)
    };

    Op op = Op::Stats;
    uint64_t job = 0; ///< Status/Fetch operand
    RunRequest run;   ///< Submit operand
};

/** Wire name of @p op ("submit", "status", ...). */
const char *opName(Request::Op op);

/** Inverse of opName; false on unknown names. */
bool opFromName(const std::string &name, Request::Op &out);

/** Render @p request as one eip-serve/v1 request line (no newline). */
std::string requestJson(const Request &request);

/**
 * Parse one request line. Returns false with a diagnostic in @p error
 * on malformed JSON, wrong schema/kind, unknown ops, or missing/
 * mistyped fields; field-level semantic validation (does the workload
 * exist, is the prefetcher id known) is the daemon's job.
 */
bool parseRequest(const std::string &line, Request &out, std::string &error);

/** The RunSpec a daemon executes for @p run. Counter collection is
 *  forced on (an artifact without counters has no content), the tracer
 *  stays null (single-run facility the protocol does not expose). */
harness::RunSpec toRunSpec(const RunRequest &run);

} // namespace eip::serve

#endif // EIP_SERVE_PROTOCOL_HH
