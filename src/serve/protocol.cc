#include "serve/protocol.hh"

#include "obs/json.hh"
#include "obs/manifest.hh"

namespace eip::serve {

namespace {

/** Fetch an object member as an unsigned integer; false (with a
 *  diagnostic) on wrong types, negatives, or non-integral values. */
bool
readU64(const obs::JsonValue &object, const std::string &name, uint64_t &out,
        std::string &error)
{
    const obs::JsonValue *member = object.find(name);
    if (!member)
        return true; // optional; keep the default
    if (!member->isNumber() || member->number < 0 ||
        member->number != static_cast<double>(member->asU64())) {
        error = "field '" + name + "' must be a non-negative integer";
        return false;
    }
    out = member->asU64();
    return true;
}

bool
readString(const obs::JsonValue &object, const std::string &name,
           std::string &out, std::string &error)
{
    const obs::JsonValue *member = object.find(name);
    if (!member)
        return true;
    if (member->type != obs::JsonValue::Type::String) {
        error = "field '" + name + "' must be a string";
        return false;
    }
    out = member->string;
    return true;
}

bool
readBool(const obs::JsonValue &object, const std::string &name, bool &out,
         std::string &error)
{
    const obs::JsonValue *member = object.find(name);
    if (!member)
        return true;
    if (member->type != obs::JsonValue::Type::Bool) {
        error = "field '" + name + "' must be a boolean";
        return false;
    }
    out = member->boolean;
    return true;
}

} // namespace

const char *
opName(Request::Op op)
{
    switch (op) {
      case Request::Op::Submit: return "submit";
      case Request::Op::Status: return "status";
      case Request::Op::Fetch: return "fetch";
      case Request::Op::Stats: return "stats";
      case Request::Op::Metrics: return "metrics";
      case Request::Op::Spans: return "spans";
      case Request::Op::Shutdown: return "shutdown";
    }
    return "unknown";
}

bool
opFromName(const std::string &name, Request::Op &out)
{
    for (Request::Op op :
         {Request::Op::Submit, Request::Op::Status, Request::Op::Fetch,
          Request::Op::Stats, Request::Op::Metrics, Request::Op::Spans,
          Request::Op::Shutdown}) {
        if (name == opName(op)) {
            out = op;
            return true;
        }
    }
    return false;
}

std::string
requestJson(const Request &request)
{
    obs::JsonWriter json;
    json.beginObject();
    json.kv("schema", obs::kServeSchema);
    json.kv("kind", "request");
    json.kv("op", opName(request.op));
    switch (request.op) {
      case Request::Op::Status:
      case Request::Op::Fetch:
        json.kv("job", request.job);
        break;
      case Request::Op::Submit:
        json.key("run").beginObject();
        json.kv("workload", request.run.workload);
        json.kv("prefetcher", request.run.prefetcher);
        json.kv("data_prefetcher", request.run.dataPrefetcher);
        json.kv("instructions", request.run.instructions);
        json.kv("warmup", request.run.warmup);
        json.kv("physical_l1i", request.run.physical);
        json.kv("event_skip", request.run.eventSkip);
        json.kv("sample_interval", request.run.sampleInterval);
        // Like inject_crash: emitted only when used, so full-run request
        // lines keep their historic bytes.
        if (request.run.sampleMode != "full") {
            json.kv("sample_mode", request.run.sampleMode);
            json.kv("sample_window", request.run.sampleWindow);
            json.kv("sample_period", request.run.samplePeriod);
            json.kv("sample_seed", request.run.sampleSeed);
            json.kv("sample_warm", request.run.sampleWarm);
        }
        if (request.run.injectCrash)
            json.kv("inject_crash", true);
        json.endObject();
        break;
      case Request::Op::Stats:
      case Request::Op::Metrics:
      case Request::Op::Spans:
      case Request::Op::Shutdown:
        break;
    }
    json.endObject();
    return json.str();
}

bool
parseRequest(const std::string &line, Request &out, std::string &error)
{
    std::string parse_error;
    std::optional<obs::JsonValue> doc = obs::parseJson(line, &parse_error);
    if (!doc) {
        error = "malformed JSON: " + parse_error;
        return false;
    }
    if (doc->type != obs::JsonValue::Type::Object) {
        error = "request must be a JSON object";
        return false;
    }

    const obs::JsonValue *schema = doc->find("schema");
    if (!schema || schema->type != obs::JsonValue::Type::String ||
        schema->string != obs::kServeSchema) {
        error = std::string("request schema must be '") + obs::kServeSchema +
                "'";
        return false;
    }
    const obs::JsonValue *kind = doc->find("kind");
    if (!kind || kind->type != obs::JsonValue::Type::String ||
        kind->string != "request") {
        error = "request kind must be 'request'";
        return false;
    }
    const obs::JsonValue *op = doc->find("op");
    if (!op || op->type != obs::JsonValue::Type::String) {
        error = "request is missing the 'op' field";
        return false;
    }

    Request parsed;
    if (!opFromName(op->string, parsed.op)) {
        error = "unknown op '" + op->string + "'";
        return false;
    }

    switch (parsed.op) {
      case Request::Op::Status:
      case Request::Op::Fetch: {
          const obs::JsonValue *job = doc->find("job");
          if (!job) {
              error = std::string(opName(parsed.op)) +
                      " requires a 'job' field";
              return false;
          }
          if (!readU64(*doc, "job", parsed.job, error))
              return false;
          break;
      }
      case Request::Op::Submit: {
          const obs::JsonValue *run = doc->find("run");
          if (!run || run->type != obs::JsonValue::Type::Object) {
              error = "submit requires a 'run' object";
              return false;
          }
          RunRequest &r = parsed.run;
          if (!readString(*run, "workload", r.workload, error) ||
              !readString(*run, "prefetcher", r.prefetcher, error) ||
              !readString(*run, "data_prefetcher", r.dataPrefetcher,
                          error) ||
              !readU64(*run, "instructions", r.instructions, error) ||
              !readU64(*run, "warmup", r.warmup, error) ||
              !readBool(*run, "physical_l1i", r.physical, error) ||
              !readBool(*run, "event_skip", r.eventSkip, error) ||
              !readU64(*run, "sample_interval", r.sampleInterval, error) ||
              !readString(*run, "sample_mode", r.sampleMode, error) ||
              !readU64(*run, "sample_window", r.sampleWindow, error) ||
              !readU64(*run, "sample_period", r.samplePeriod, error) ||
              !readU64(*run, "sample_seed", r.sampleSeed, error) ||
              !readU64(*run, "sample_warm", r.sampleWarm, error) ||
              !readBool(*run, "inject_crash", r.injectCrash, error)) {
              return false;
          }
          if (r.workload.empty()) {
              error = "submit workload must be non-empty";
              return false;
          }
          if (r.instructions == 0) {
              error = "submit instructions must be positive";
              return false;
          }
          // Schedule validation lives here, not in the worker: a bad
          // schedule must be a rejected request, never a daemon panic.
          if (r.sampleMode != "full" && r.sampleMode != "periodic") {
              error = "submit sample_mode must be 'full' or 'periodic'";
              return false;
          }
          if (r.sampleMode == "periodic") {
              if (r.sampleWindow == 0) {
                  error = "submit sample_window must be positive";
                  return false;
              }
              if (r.samplePeriod < r.sampleWindow) {
                  error = "submit sample_period must be at least "
                          "sample_window";
                  return false;
              }
          }
          break;
      }
      case Request::Op::Stats:
      case Request::Op::Metrics:
      case Request::Op::Spans:
      case Request::Op::Shutdown:
        break;
    }

    out = parsed;
    return true;
}

harness::RunSpec
toRunSpec(const RunRequest &run)
{
    // Deliberately not RunSpec::defaultSpec(): the daemon serves exactly
    // the budgets the request names — EIP_SIM_SCALE in the daemon's
    // environment must not silently rescale a client's experiment (and
    // would poison cache keys across differently-scaled daemons).
    harness::RunSpec spec;
    spec.configId = run.prefetcher;
    spec.instructions = run.instructions;
    spec.warmup = run.warmup;
    spec.physicalL1i = run.physical;
    spec.dataPrefetcher = run.dataPrefetcher;
    spec.eventSkip = run.eventSkip;
    spec.sampleInterval = run.sampleInterval;
    spec.sampleMode = run.sampleMode;
    spec.sampleWindow = run.sampleWindow;
    spec.samplePeriod = run.samplePeriod;
    spec.sampleSeed = run.sampleSeed;
    spec.sampleWarm = run.sampleWarm;
    spec.collectCounters = true;
    return spec;
}

} // namespace eip::serve
