/**
 * @file
 * Rolling service metrics for the eipd daemon: a time-windowed view of
 * request throughput, cache hit ratio and latency percentiles over the
 * last N seconds, plus the Prometheus text-exposition renderer that
 * turns a CounterRegistry snapshot into something standard scrapers
 * ingest. The point-in-time counters answer "what happened since
 * start"; the window answers "what is happening now" — the quantity an
 * operator actually watches during a storm.
 */

#ifndef EIP_SERVE_METRICS_HH
#define EIP_SERVE_METRICS_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hh"

namespace eip::serve {

/**
 * Thread-safe rolling window of request outcomes. Each record carries
 * its monotonic timestamp; reads prune everything older than the
 * window before computing the view, so an idle daemon decays to zero
 * QPS instead of reporting its last storm forever.
 */
class MetricsWindow
{
  public:
    enum class Outcome
    {
        Cache,     ///< served from the result cache
        Simulated, ///< cold-simulated by a forked worker
        Failed,    ///< worker failure (crash included)
        Rejected,  ///< backpressured: admission queue full
    };

    explicit MetricsWindow(uint64_t window_seconds);

    /** Record one finished request. @p latency_ms is wall time from
     *  submit to terminal state (0 for rejected — they never ran). */
    void record(Outcome outcome, double latency_ms);

    /** One consistent snapshot of the window. */
    struct View
    {
        uint64_t windowSeconds = 0;
        uint64_t requests = 0; ///< everything recorded, rejected included
        uint64_t cacheHits = 0;
        uint64_t simulated = 0;
        uint64_t failed = 0;
        uint64_t rejected = 0;
        double qps = 0.0;      ///< requests / windowSeconds
        double hitRatio = 0.0; ///< cache / (cache + simulated)
        /** Latency percentiles over completed (non-rejected) requests,
         *  interpolated (eip::percentile, the type-7 estimator). */
        double p50Ms = 0.0;
        double p95Ms = 0.0;
        double p99Ms = 0.0;
    };

    View view();

    uint64_t windowSeconds() const { return windowUs_ / 1000000ull; }

  private:
    struct Sample
    {
        uint64_t atUs;
        Outcome outcome;
        double latencyMs;
    };

    void pruneLocked(uint64_t now_us);

    const uint64_t windowUs_;
    std::mutex mutex_;
    std::deque<Sample> samples_;
};

/**
 * Render a registry snapshot (plus free-form info labels) in the
 * Prometheus text exposition format. Dotted names become underscored
 * with an `eip_` prefix (serve.cache.hits -> eip_serve_cache_hits);
 * histograms export their _count and _sum.
 */
std::string prometheusText(
    const obs::CounterDump &dump,
    const std::vector<std::pair<std::string, std::string>> &info = {});

} // namespace eip::serve

#endif // EIP_SERVE_METRICS_HH
