#include "serve/metrics.hh"

#include <cstdio>

#include "obs/span.hh"
#include "util/stats_math.hh"

namespace eip::serve {

namespace {

/** Keep a flood from growing the deque without bound inside one
 *  window; beyond this the oldest samples go early (the view is
 *  approximate during pathological storms, exact otherwise). */
constexpr size_t kMaxSamples = 1 << 16;

} // namespace

MetricsWindow::MetricsWindow(uint64_t window_seconds)
    : windowUs_((window_seconds == 0 ? 1 : window_seconds) * 1000000ull)
{
}

void
MetricsWindow::record(Outcome outcome, double latency_ms)
{
    const uint64_t now = obs::monotonicMicros();
    std::lock_guard<std::mutex> lock(mutex_);
    pruneLocked(now);
    if (samples_.size() >= kMaxSamples)
        samples_.pop_front();
    samples_.push_back({now, outcome, latency_ms});
}

void
MetricsWindow::pruneLocked(uint64_t now_us)
{
    const uint64_t horizon = now_us > windowUs_ ? now_us - windowUs_ : 0;
    while (!samples_.empty() && samples_.front().atUs < horizon)
        samples_.pop_front();
}

MetricsWindow::View
MetricsWindow::view()
{
    const uint64_t now = obs::monotonicMicros();
    std::lock_guard<std::mutex> lock(mutex_);
    pruneLocked(now);

    View v;
    v.windowSeconds = windowUs_ / 1000000ull;
    std::vector<double> latencies;
    latencies.reserve(samples_.size());
    for (const Sample &s : samples_) {
        ++v.requests;
        switch (s.outcome) {
        case Outcome::Cache:
            ++v.cacheHits;
            break;
        case Outcome::Simulated:
            ++v.simulated;
            break;
        case Outcome::Failed:
            ++v.failed;
            break;
        case Outcome::Rejected:
            ++v.rejected;
            break;
        }
        if (s.outcome != Outcome::Rejected)
            latencies.push_back(s.latencyMs);
    }
    v.qps = static_cast<double>(v.requests) /
            static_cast<double>(v.windowSeconds);
    const uint64_t looked_up = v.cacheHits + v.simulated;
    v.hitRatio = looked_up == 0 ? 0.0
                                : static_cast<double>(v.cacheHits) /
                                      static_cast<double>(looked_up);
    if (!latencies.empty()) {
        v.p50Ms = percentile(latencies, 0.50);
        v.p95Ms = percentile(latencies, 0.95);
        v.p99Ms = percentile(latencies, 0.99);
    }
    return v;
}

namespace {

std::string
promName(const std::string &dotted)
{
    std::string name = "eip_";
    for (char c : dotted) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        name.push_back(ok ? c : '_');
    }
    return name;
}

void
appendValue(std::string &out, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

} // namespace

std::string
prometheusText(const obs::CounterDump &dump,
               const std::vector<std::pair<std::string, std::string>> &info)
{
    std::string out;
    if (!info.empty()) {
        out += "# TYPE eip_build_info gauge\neip_build_info{";
        bool first = true;
        for (const auto &[key, value] : info) {
            if (!first)
                out += ",";
            first = false;
            out += key + "=\"" + value + "\"";
        }
        out += "} 1\n";
    }
    for (const auto &[name, value] : dump.counters) {
        const std::string p = promName(name);
        out += "# TYPE " + p + " counter\n" + p + " " +
               std::to_string(value) + "\n";
    }
    for (const auto &[name, value] : dump.gauges) {
        const std::string p = promName(name);
        out += "# TYPE " + p + " gauge\n" + p + " ";
        appendValue(out, value);
        out += "\n";
    }
    for (const auto &[name, h] : dump.histograms) {
        // Bucket keys are already scaled units (milliseconds for the
        // request-wall histogram); export the summary pair scrapers
        // can rate() and divide.
        const std::string p = promName(name);
        out += "# TYPE " + p + " summary\n";
        out += p + "_count " + std::to_string(h.total) + "\n";
        out += p + "_sum ";
        appendValue(out, h.mean * static_cast<double>(h.total));
        out += "\n";
    }
    return out;
}

} // namespace eip::serve
