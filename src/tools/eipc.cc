/**
 * @file
 * eipc — client for the eipd job server.
 *
 *   eipc --socket PATH submit --workload W [--prefetcher ID]
 *        [--data-prefetcher ID] [--instructions N] [--warmup N]
 *        [--physical] [--no-skip] [--sample-interval N] [--inject-crash]
 *        [--wait [--timeout SECONDS]] [--out FILE]
 *   eipc --socket PATH status --job N
 *   eipc --socket PATH fetch --job N [--out FILE]
 *   eipc --socket PATH stats [--out FILE]
 *   eipc --socket PATH shutdown
 *
 * Exit codes: 0 success, 1 transport/daemon error, 2 usage,
 * 3 request rejected (backpressure) or job failed.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "serve/client.hh"

namespace {

void
usage()
{
    std::printf(
        "usage: eipc --socket PATH <command> [options]\n"
        "commands:\n"
        "  submit    --workload W [--prefetcher ID] [--data-prefetcher ID]\n"
        "            [--instructions N] [--warmup N] [--physical]\n"
        "            [--no-skip] [--sample-interval N] [--inject-crash]\n"
        "            [--wait [--timeout SECONDS]] [--out FILE]\n"
        "  status    --job N\n"
        "  fetch     --job N [--out FILE]\n"
        "  stats     [--out FILE]\n"
        "  shutdown\n");
}

[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "eipc: %s\n", message.c_str());
    usage();
    std::exit(2);
}

uint64_t
parseU64(const std::string &flag, const char *text)
{
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (!end || *end != '\0')
        usageError(flag + " needs an unsigned integer, got '" +
                   std::string(text) + "'");
    return value;
}

/** Write @p text to @p path, or to stdout when the path is empty. */
bool
deliver(const std::string &path, const std::string &text)
{
    if (path.empty()) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        if (text.empty() || text.back() != '\n')
            std::fputc('\n', stdout);
        return true;
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    out.close();
    if (!out) {
        std::fprintf(stderr, "eipc: cannot write '%s'\n", path.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string command;
    eip::serve::RunRequest run;
    uint64_t job = 0;
    bool have_job = false;
    bool wait = false;
    double timeout_seconds = 300.0;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto operand = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError(arg + " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--socket") {
            socket_path = operand();
        } else if (arg == "--workload") {
            run.workload = operand();
        } else if (arg == "--prefetcher") {
            run.prefetcher = operand();
        } else if (arg == "--data-prefetcher") {
            run.dataPrefetcher = operand();
        } else if (arg == "--instructions") {
            run.instructions = parseU64(arg, operand());
        } else if (arg == "--warmup") {
            run.warmup = parseU64(arg, operand());
        } else if (arg == "--physical") {
            run.physical = true;
        } else if (arg == "--no-skip") {
            run.eventSkip = false;
        } else if (arg == "--sample-interval") {
            run.sampleInterval = parseU64(arg, operand());
        } else if (arg == "--inject-crash") {
            run.injectCrash = true;
        } else if (arg == "--job") {
            job = parseU64(arg, operand());
            have_job = true;
        } else if (arg == "--wait") {
            wait = true;
        } else if (arg == "--timeout") {
            timeout_seconds = std::atof(operand());
        } else if (arg == "--out") {
            out_path = operand();
        } else if (!arg.empty() && arg[0] == '-') {
            usageError("unknown option '" + arg + "'");
        } else if (command.empty()) {
            command = arg;
        } else {
            usageError("unexpected argument '" + arg + "'");
        }
    }

    if (socket_path.empty())
        usageError("--socket is required");
    if (command.empty())
        usageError("no command given");

    eip::serve::Client client;
    std::string error;
    if (!client.connect(socket_path, &error)) {
        std::fprintf(stderr, "eipc: %s\n", error.c_str());
        return 1;
    }

    if (command == "submit") {
        eip::serve::SubmitOutcome outcome;
        if (!client.submit(run, outcome, &error)) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        if (outcome.rejected) {
            std::fprintf(stderr,
                         "eipc: submit rejected (queue full) — retry later\n");
            return 3;
        }
        if (!outcome.accepted) {
            std::fprintf(stderr, "eipc: submit invalid: %s\n",
                         outcome.error.c_str());
            return 1;
        }
        std::printf("job %llu key %s served %s state %s\n",
                    static_cast<unsigned long long>(outcome.job),
                    outcome.key.c_str(), outcome.served.c_str(),
                    outcome.state.c_str());
        if (!wait && out_path.empty())
            return 0;

        eip::serve::JobView view;
        if (!client.waitTerminal(outcome.job, view, timeout_seconds,
                                 &error)) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        if (view.state == "failed") {
            std::fprintf(stderr, "eipc: job %llu failed: %s\n",
                         static_cast<unsigned long long>(outcome.job),
                         view.error.c_str());
            return 3;
        }
        if (!out_path.empty()) {
            if (!client.fetch(outcome.job, view, &error)) {
                std::fprintf(stderr, "eipc: %s\n", error.c_str());
                return 1;
            }
            if (!deliver(out_path, view.artifact))
                return 1;
        }
        std::printf("job %llu done%s\n",
                    static_cast<unsigned long long>(outcome.job),
                    view.servedFromCache ? " (served from cache)" : "");
        return 0;
    }

    if (command == "status" || command == "fetch") {
        if (!have_job)
            usageError(command + " requires --job");
        eip::serve::JobView view;
        bool ok = command == "status" ? client.status(job, view, &error)
                                      : client.fetch(job, view, &error);
        if (!ok) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        if (command == "status") {
            std::printf("job %llu state %s%s%s%s\n",
                        static_cast<unsigned long long>(job),
                        view.state.c_str(),
                        view.servedFromCache ? " (served from cache)" : "",
                        view.error.empty() ? "" : " error: ",
                        view.error.c_str());
            return view.state == "failed" ? 3 : 0;
        }
        if (view.state == "failed") {
            std::fprintf(stderr, "eipc: job %llu failed: %s\n",
                         static_cast<unsigned long long>(job),
                         view.error.c_str());
            return 3;
        }
        if (view.state != "done") {
            std::fprintf(stderr, "eipc: job %llu not done yet (state %s)\n",
                         static_cast<unsigned long long>(job),
                         view.state.c_str());
            return 1;
        }
        return deliver(out_path, view.artifact) ? 0 : 1;
    }

    if (command == "stats") {
        std::string stats;
        if (!client.stats(stats, &error)) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        return deliver(out_path, stats + "\n") ? 0 : 1;
    }

    if (command == "shutdown") {
        if (!client.shutdown(&error)) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        std::printf("shutdown requested\n");
        return 0;
    }

    usageError("unknown command '" + command + "'");
}
