/**
 * @file
 * eipc — client for the eipd job server.
 *
 *   eipc --socket PATH submit --workload W [--prefetcher ID]
 *        [--data-prefetcher ID] [--instructions N] [--warmup N]
 *        [--physical] [--no-skip] [--sample-interval N] [--inject-crash]
 *        [--wait [--timeout SECONDS]] [--out FILE]
 *   eipc --socket PATH status --job N
 *   eipc --socket PATH fetch --job N [--out FILE]
 *   eipc --socket PATH stats [--json] [--out FILE]
 *   eipc --socket PATH metrics [--prom|--json] [--out FILE]
 *   eipc --socket PATH spans [--out FILE]
 *   eipc --socket PATH shutdown
 *
 * stats and metrics render a human-readable table on stdout; --json
 * dumps the raw response document instead, and --out always writes the
 * raw bytes (smoke scripts validate those files). metrics --prom
 * prints the Prometheus text exposition (the scrape format).
 *
 * Exit codes: 0 success, 1 transport/daemon error, 2 usage,
 * 3 request rejected (backpressure) or job failed.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "serve/client.hh"
#include "util/table_printer.hh"

namespace {

void
usage()
{
    std::printf(
        "usage: eipc --socket PATH <command> [options]\n"
        "commands:\n"
        "  submit    --workload W [--prefetcher ID] [--data-prefetcher ID]\n"
        "            [--instructions N] [--warmup N] [--physical]\n"
        "            [--no-skip] [--sample-interval N] [--inject-crash]\n"
        "            [--wait [--timeout SECONDS]] [--out FILE]\n"
        "  status    --job N\n"
        "  fetch     --job N [--out FILE]\n"
        "  stats     [--json] [--out FILE]\n"
        "  metrics   [--prom|--json] [--out FILE]\n"
        "  spans     [--out FILE]\n"
        "  shutdown\n"
        "stats/metrics print a table; --json dumps the raw document,\n"
        "--out writes the raw bytes, metrics --prom the Prometheus page\n");
}

[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "eipc: %s\n", message.c_str());
    usage();
    std::exit(2);
}

uint64_t
parseU64(const std::string &flag, const char *text)
{
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (!end || *end != '\0')
        usageError(flag + " needs an unsigned integer, got '" +
                   std::string(text) + "'");
    return value;
}

/** Human-readable stats table: every counter and gauge of the daemon's
 *  stats document, one row each. Histograms are summarized by their
 *  registered percentile gauges (serve.request_wall_ms.p50/p95/p99),
 *  so the table alone answers the usual "how is the daemon doing". */
std::string
statsTable(const eip::obs::JsonValue &doc)
{
    eip::TablePrinter table;
    table.newRow();
    table.cell("kind");
    table.cell("name");
    table.cell("value");
    auto section = [&](const char *key, const char *kind, int precision) {
        const eip::obs::JsonValue *obj = doc.find(key);
        if (obj == nullptr ||
            obj->type != eip::obs::JsonValue::Type::Object)
            return;
        for (const auto &[name, value] : obj->object) {
            if (!value.isNumber())
                continue;
            table.newRow();
            table.cell(kind);
            table.cell(name);
            if (precision == 0)
                table.cell(value.asU64());
            else
                table.cell(value.number, precision);
        }
    };
    section("counters", "counter", 0);
    section("gauges", "gauge", 3);
    return table.toString();
}

/** Human-readable rolling-window table of a metrics response. */
std::string
metricsTable(const eip::obs::JsonValue &doc)
{
    eip::TablePrinter table;
    table.newRow();
    table.cell("metric");
    table.cell("value");
    const eip::obs::JsonValue *window = doc.find("window");
    if (window != nullptr &&
        window->type == eip::obs::JsonValue::Type::Object) {
        for (const auto &[name, value] : window->object) {
            if (!value.isNumber())
                continue;
            table.newRow();
            table.cell(name);
            table.cell(value.number, 3);
        }
    }
    return table.toString();
}

/** Write @p text to @p path, or to stdout when the path is empty. */
bool
deliver(const std::string &path, const std::string &text)
{
    if (path.empty()) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        if (text.empty() || text.back() != '\n')
            std::fputc('\n', stdout);
        return true;
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    out.close();
    if (!out) {
        std::fprintf(stderr, "eipc: cannot write '%s'\n", path.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string command;
    eip::serve::RunRequest run;
    uint64_t job = 0;
    bool have_job = false;
    bool wait = false;
    double timeout_seconds = 300.0;
    std::string out_path;
    bool raw_json = false;
    bool prom = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto operand = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError(arg + " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--socket") {
            socket_path = operand();
        } else if (arg == "--workload") {
            run.workload = operand();
        } else if (arg == "--prefetcher") {
            run.prefetcher = operand();
        } else if (arg == "--data-prefetcher") {
            run.dataPrefetcher = operand();
        } else if (arg == "--instructions") {
            run.instructions = parseU64(arg, operand());
        } else if (arg == "--warmup") {
            run.warmup = parseU64(arg, operand());
        } else if (arg == "--physical") {
            run.physical = true;
        } else if (arg == "--no-skip") {
            run.eventSkip = false;
        } else if (arg == "--sample-interval") {
            run.sampleInterval = parseU64(arg, operand());
        } else if (arg == "--inject-crash") {
            run.injectCrash = true;
        } else if (arg == "--job") {
            job = parseU64(arg, operand());
            have_job = true;
        } else if (arg == "--wait") {
            wait = true;
        } else if (arg == "--timeout") {
            timeout_seconds = std::atof(operand());
        } else if (arg == "--out") {
            out_path = operand();
        } else if (arg == "--json") {
            raw_json = true;
        } else if (arg == "--prom") {
            prom = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usageError("unknown option '" + arg + "'");
        } else if (command.empty()) {
            command = arg;
        } else {
            usageError("unexpected argument '" + arg + "'");
        }
    }

    if (socket_path.empty())
        usageError("--socket is required");
    if (command.empty())
        usageError("no command given");

    eip::serve::Client client;
    std::string error;
    if (!client.connect(socket_path, &error)) {
        std::fprintf(stderr, "eipc: %s\n", error.c_str());
        return 1;
    }

    if (command == "submit") {
        eip::serve::SubmitOutcome outcome;
        if (!client.submit(run, outcome, &error)) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        if (outcome.rejected) {
            std::fprintf(stderr,
                         "eipc: submit rejected (queue full) — retry later\n");
            return 3;
        }
        if (!outcome.accepted) {
            std::fprintf(stderr, "eipc: submit invalid: %s\n",
                         outcome.error.c_str());
            return 1;
        }
        std::printf("job %llu key %s served %s state %s\n",
                    static_cast<unsigned long long>(outcome.job),
                    outcome.key.c_str(), outcome.served.c_str(),
                    outcome.state.c_str());
        if (!wait && out_path.empty())
            return 0;

        eip::serve::JobView view;
        if (!client.waitTerminal(outcome.job, view, timeout_seconds,
                                 &error)) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        if (view.state == "failed") {
            std::fprintf(stderr, "eipc: job %llu failed: %s\n",
                         static_cast<unsigned long long>(outcome.job),
                         view.error.c_str());
            return 3;
        }
        if (!out_path.empty()) {
            if (!client.fetch(outcome.job, view, &error)) {
                std::fprintf(stderr, "eipc: %s\n", error.c_str());
                return 1;
            }
            if (!deliver(out_path, view.artifact))
                return 1;
        }
        std::printf("job %llu done%s\n",
                    static_cast<unsigned long long>(outcome.job),
                    view.servedFromCache ? " (served from cache)" : "");
        return 0;
    }

    if (command == "status" || command == "fetch") {
        if (!have_job)
            usageError(command + " requires --job");
        eip::serve::JobView view;
        bool ok = command == "status" ? client.status(job, view, &error)
                                      : client.fetch(job, view, &error);
        if (!ok) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        if (command == "status") {
            std::printf("job %llu state %s%s%s%s\n",
                        static_cast<unsigned long long>(job),
                        view.state.c_str(),
                        view.servedFromCache ? " (served from cache)" : "",
                        view.error.empty() ? "" : " error: ",
                        view.error.c_str());
            return view.state == "failed" ? 3 : 0;
        }
        if (view.state == "failed") {
            std::fprintf(stderr, "eipc: job %llu failed: %s\n",
                         static_cast<unsigned long long>(job),
                         view.error.c_str());
            return 3;
        }
        if (view.state != "done") {
            std::fprintf(stderr, "eipc: job %llu not done yet (state %s)\n",
                         static_cast<unsigned long long>(job),
                         view.state.c_str());
            return 1;
        }
        return deliver(out_path, view.artifact) ? 0 : 1;
    }

    if (command == "stats") {
        std::string stats;
        if (!client.stats(stats, &error)) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        if (!out_path.empty())
            return deliver(out_path, stats + "\n") ? 0 : 1;
        if (raw_json)
            return deliver("", stats + "\n") ? 0 : 1;
        auto doc = eip::obs::parseJson(stats, &error);
        if (!doc) {
            std::fprintf(stderr, "eipc: stats unparseable: %s\n",
                         error.c_str());
            return 1;
        }
        std::fputs(statsTable(*doc).c_str(), stdout);
        return 0;
    }

    if (command == "metrics") {
        std::string metrics;
        std::string exposition;
        if (!client.metrics(metrics, exposition, &error)) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        if (!out_path.empty())
            return deliver(out_path, metrics + "\n") ? 0 : 1;
        if (prom)
            return deliver("", exposition) ? 0 : 1;
        if (raw_json)
            return deliver("", metrics + "\n") ? 0 : 1;
        auto doc = eip::obs::parseJson(metrics, &error);
        if (!doc) {
            std::fprintf(stderr, "eipc: metrics unparseable: %s\n",
                         error.c_str());
            return 1;
        }
        std::fputs(metricsTable(*doc).c_str(), stdout);
        return 0;
    }

    if (command == "spans") {
        std::string trace;
        if (!client.spans(trace, &error)) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        // A serve trace is eiptrace/viewer input — always raw bytes.
        return deliver(out_path, trace + "\n") ? 0 : 1;
    }

    if (command == "shutdown") {
        if (!client.shutdown(&error)) {
            std::fprintf(stderr, "eipc: %s\n", error.c_str());
            return 1;
        }
        std::printf("shutdown requested\n");
        return 0;
    }

    usageError("unknown command '" + command + "'");
}
