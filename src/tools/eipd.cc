/**
 * @file
 * eipd — the simulation job server. Binds an eip-serve/v1 Unix-domain
 * socket, serves submit/status/fetch/stats until a client sends the
 * shutdown op, then drains queued work and exits. Pair with eipc.
 *
 *   eipd --socket /tmp/eipd.sock [--workers N] [--queue-depth N]
 *        [--cache-mb N] [--span-limit N] [--metrics-window SECS]
 *        [--log-level LEVEL]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/log.hh"
#include "serve/daemon.hh"
#include "util/env.hh"
#include "util/panic.hh"

namespace {

void
usage(const char *argv0)
{
    std::printf("usage: %s --socket PATH [options]\n", argv0);
    std::printf("  --socket PATH      Unix-domain socket to listen on "
                "(required)\n");
    std::printf("  --workers N        dispatcher threads / concurrent "
                "forked simulations (default 2)\n");
    std::printf("  --queue-depth N    admission queue capacity; further "
                "submits are rejected (default 64)\n");
    std::printf("  --cache-mb N       result cache budget in MB "
                "(default 64)\n");
    std::printf("  --span-limit N     request-span ring capacity "
                "(default 4096; 0 disables spans)\n");
    std::printf("  --metrics-window S rolling metrics window in seconds "
                "(default 60)\n");
    std::printf("  --log-level LEVEL  structured-log threshold on stderr: "
                "debug|info|warn|error|off\n");
    std::printf("                     (default info; EIP_LOG overrides "
                "the default)\n");
    std::printf("Stop with: eipc --socket PATH shutdown\n");
}

uint64_t
parsePositive(const char *flag, const char *text)
{
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (!end || *end != '\0' || value == 0) {
        std::fprintf(stderr, "eipd: %s needs a positive integer, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return value;
}

uint64_t
parseCount(const char *flag, const char *text)
{
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (!end || *end != '\0' || (value == 0 && std::strcmp(text, "0") != 0)) {
        std::fprintf(stderr, "eipd: %s needs a non-negative integer, "
                             "got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    eip::serve::DaemonOptions options;
    bool log_level_set = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto operand = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "eipd: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--socket") {
            options.socketPath = operand();
        } else if (arg == "--workers") {
            options.workers =
                static_cast<unsigned>(parsePositive("--workers", operand()));
        } else if (arg == "--queue-depth") {
            options.queueDepth = static_cast<size_t>(
                parsePositive("--queue-depth", operand()));
        } else if (arg == "--cache-mb") {
            options.cacheBytes =
                parsePositive("--cache-mb", operand()) * (1ull << 20);
        } else if (arg == "--span-limit") {
            options.spanLimit = static_cast<size_t>(
                parseCount("--span-limit", operand()));
        } else if (arg == "--metrics-window") {
            options.metricsWindowSeconds =
                parsePositive("--metrics-window", operand());
        } else if (arg == "--log-level") {
            const char *text = operand();
            auto level = eip::obs::parseLogLevel(text);
            if (!level) {
                std::fprintf(stderr, "eipd: --log-level needs one of "
                                     "debug|info|warn|error|off, got '%s'\n",
                             text);
                return 2;
            }
            eip::obs::Logger::global().setLevel(*level);
            log_level_set = true;
        } else {
            std::fprintf(stderr, "eipd: unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (options.socketPath.empty()) {
        std::fprintf(stderr, "eipd: --socket is required\n");
        usage(argv[0]);
        return 2;
    }
    // The daemon defaults to info so service logs are useful out of the
    // box; an explicit --log-level or EIP_LOG wins.
    if (!log_level_set && std::getenv("EIP_LOG") == nullptr)
        eip::obs::Logger::global().setLevel(eip::obs::LogLevel::Info);

    eip::serve::Daemon daemon(options);
    std::string error;
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "eipd: %s\n", error.c_str());
        return 1;
    }
    std::printf("eipd: listening on %s (workers=%u queue=%zu cache=%lluMB)\n",
                options.socketPath.c_str(), options.workers,
                options.queueDepth,
                static_cast<unsigned long long>(options.cacheBytes >> 20));
    std::fflush(stdout);

    daemon.waitStopRequested();
    daemon.stop();
    std::printf("eipd: shut down\n");
    return 0;
}
