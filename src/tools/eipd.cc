/**
 * @file
 * eipd — the simulation job server. Binds an eip-serve/v1 Unix-domain
 * socket, serves submit/status/fetch/stats until a client sends the
 * shutdown op, then drains queued work and exits. Pair with eipc.
 *
 *   eipd --socket /tmp/eipd.sock [--workers N] [--queue-depth N]
 *        [--cache-mb N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/daemon.hh"
#include "util/env.hh"
#include "util/panic.hh"

namespace {

void
usage(const char *argv0)
{
    std::printf("usage: %s --socket PATH [options]\n", argv0);
    std::printf("  --socket PATH      Unix-domain socket to listen on "
                "(required)\n");
    std::printf("  --workers N        dispatcher threads / concurrent "
                "forked simulations (default 2)\n");
    std::printf("  --queue-depth N    admission queue capacity; further "
                "submits are rejected (default 64)\n");
    std::printf("  --cache-mb N       result cache budget in MB "
                "(default 64)\n");
    std::printf("Stop with: eipc --socket PATH shutdown\n");
}

uint64_t
parsePositive(const char *flag, const char *text)
{
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (!end || *end != '\0' || value == 0) {
        std::fprintf(stderr, "eipd: %s needs a positive integer, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    eip::serve::DaemonOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto operand = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "eipd: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--socket") {
            options.socketPath = operand();
        } else if (arg == "--workers") {
            options.workers =
                static_cast<unsigned>(parsePositive("--workers", operand()));
        } else if (arg == "--queue-depth") {
            options.queueDepth = static_cast<size_t>(
                parsePositive("--queue-depth", operand()));
        } else if (arg == "--cache-mb") {
            options.cacheBytes =
                parsePositive("--cache-mb", operand()) * (1ull << 20);
        } else {
            std::fprintf(stderr, "eipd: unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (options.socketPath.empty()) {
        std::fprintf(stderr, "eipd: --socket is required\n");
        usage(argv[0]);
        return 2;
    }

    eip::serve::Daemon daemon(options);
    std::string error;
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "eipd: %s\n", error.c_str());
        return 1;
    }
    std::printf("eipd: listening on %s (workers=%u queue=%zu cache=%lluMB)\n",
                options.socketPath.c_str(), options.workers,
                options.queueDepth,
                static_cast<unsigned long long>(options.cacheBytes >> 20));
    std::fflush(stdout);

    daemon.waitStopRequested();
    daemon.stop();
    std::printf("eipd: shut down\n");
    return 0;
}
