/**
 * @file
 * eipsim — the command-line driver: simulate any catalogue workload or a
 * captured trace under any prefetcher and print the metrics (or JSON).
 * All logic lives in harness/cli.{hh,cc} where the tests can reach it.
 */

#include <string>
#include <vector>

#include "harness/cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return eip::harness::runCli(eip::harness::parseCli(args));
}
