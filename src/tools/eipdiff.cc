/**
 * @file
 * eipdiff — the artifact differential gate (see src/check/diff.hh).
 *
 * Runs a small configuration matrix in-process and diffs the resulting
 * eip-run/v1 / eip-suite/v1 artifacts field-by-field:
 *
 *   1. per EIP_SIM_SCALE point: the one-workload-per-category suite on
 *      1 worker vs N workers — the roll-up and every per-job artifact
 *      must match with an *empty* allow-list (the determinism contract
 *      of src/exec extended to the artifact bytes);
 *   2. per EIP_SIM_SCALE point: the same serial suite with event-driven
 *      cycle skipping disabled (--no-skip) — the skip is a pure
 *      scheduling transform (DESIGN.md §3.8), so the roll-up and every
 *      per-job artifact must match with an *empty* allow-list;
 *   3. interval sampling off vs on — only the sampling knob's own
 *      fields (manifest.sample_interval, samples) and environment
 *      timing may differ: the sampler is a pure observer;
 *   4. event tracing off vs on — nothing but environment timing may
 *      differ: the tracer is a pure observer;
 *   5. single-run skip vs no-skip with timing included — only the
 *      host-speed fields (wall clock, host MIPS) may differ;
 *   6. phase profiling off vs on — the host-side phase profiler
 *      (src/obs/phase.hh) is a pure observer: only its own manifest
 *      field (phase_ms) and environment timing may differ;
 *   7. miss attribution off vs on — the blame ledger (--why,
 *      DESIGN.md §3.11) is a pure observer: only its own artifact
 *      sections (the "why" object and the counters.why.* keys, which
 *      are appended after every historic counter) and environment
 *      timing may differ;
 *   8. miss attribution determinism: the why-enabled suite on 1 worker
 *      vs N workers vs serial no-skip — blame classification is
 *      event-driven, so the ledger (and everything else) must match
 *      with an *empty* allow-list across scheduling and skipping.
 *   9. capture vs replay — recording a workload's instruction stream to
 *      a .trc file and replaying it through the trace backend must
 *      reproduce the direct run's artifact with an *empty* allow-list
 *      (both rendered under the origin workload's manifest, so every
 *      result byte is compared; the capture's own provenance fields are
 *      pinned equal by construction).
 *  10. sampled vs full — a numeric accuracy gate rather than a field
 *      diff: per fig06 workload, a SMARTS-style sampled run (functional
 *      warming + periodic detailed windows, DESIGN.md §3.13) must
 *      bracket the full detailed run — the full IPC inside the sampled
 *      run's reported 95% CI AND relative IPC error ≤ 2%. Runs at a
 *      fixed budget rather than EIP_SIM_SCALE (warm-up has to cover the
 *      longest cold-cache transient in the suite, a property of the
 *      workload footprint, not of the budget).
 *
 * Exit code 0 when every comparison is clean, 1 on any unexplained
 * divergence, 2 on usage errors. CI runs this instead of hand-rolled
 * byte-identity checks so a knob that silently stops being inert fails
 * the build with the exact JSON path that leaked.
 */

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "check/diff.hh"
#include "harness/artifacts.hh"
#include "harness/runner.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"
#include "trace/executor.hh"
#include "trace/trace_file.hh"
#include "trace/workloads.hh"
#include "util/panic.hh"

namespace {

using namespace eip;

const char *kUsage =
    "usage: eipdiff [options]\n"
    "\n"
    "Run the determinism/inertness configuration matrix and diff the\n"
    "artifacts field-by-field. Exits non-zero on unexplained divergence.\n"
    "\n"
    "  --jobs N       worker count of the parallel suite leg (default 4)\n"
    "  --scales A,B   EIP_SIM_SCALE points for the suite legs\n"
    "                 (default \"0.05,0.1\")\n"
    "  --out DIR      where artifact files are written\n"
    "                 (default \"eipdiff-artifacts\")\n"
    "  --full         whole workload catalogue instead of one workload\n"
    "                 per category\n"
    "  --prefetcher P config id for every run (default entangling-4k)\n"
    "  --help         this text\n";

struct Options
{
    unsigned jobs = 4;
    std::vector<std::string> scales{"0.05", "0.1"};
    std::string outDir = "eipdiff-artifacts";
    bool full = false;
    std::string prefetcher = "entangling-4k";
    bool help = false;
    std::string error;
};

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= text.size()) {
        size_t comma = text.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                opt.error = std::string(flag) + " needs a value";
                return "";
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(value("--jobs").c_str(), nullptr, 10));
            if (opt.jobs < 2 && opt.error.empty())
                opt.error = "--jobs: the parallel leg needs at least 2 "
                            "workers to contrast with the serial leg";
        } else if (arg == "--scales") {
            opt.scales = splitCommas(value("--scales"));
            for (const std::string &s : opt.scales) {
                char *end = nullptr;
                double parsed = std::strtod(s.c_str(), &end);
                if (s.empty() || end == nullptr || *end != '\0' ||
                    parsed <= 0.0) {
                    opt.error = "--scales: '" + s +
                                "' is not a positive scale factor";
                    break;
                }
            }
        } else if (arg == "--out") {
            opt.outDir = value("--out");
        } else if (arg == "--full") {
            opt.full = true;
        } else if (arg == "--prefetcher") {
            opt.prefetcher = value("--prefetcher");
        } else if (arg == "--help" || arg == "-h") {
            opt.help = true;
        } else {
            opt.error = "unknown option: " + arg;
        }
        if (!opt.error.empty())
            break;
    }
    return opt;
}

/** The full catalogue (mirrors the eipsim driver's list). */
std::vector<trace::Workload>
catalogue()
{
    auto all = trace::cvpSuite(3);
    for (auto &w : trace::cloudSuite())
        all.push_back(w);
    all.push_back(trace::tinyWorkload());
    return all;
}

/** One workload per category — enough to exercise every program
 *  generator while keeping the CI gate fast. */
std::vector<trace::Workload>
onePerCategory()
{
    std::vector<trace::Workload> picked;
    for (const auto &w : catalogue()) {
        bool seen = false;
        for (const auto &p : picked)
            seen = seen || p.category == w.category;
        if (!seen)
            picked.push_back(w);
    }
    return picked;
}

void
ensureDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        EIP_FATAL(("eipdiff: cannot create output directory '" + dir +
                   "'").c_str());
}

/** Suite leg: the same batch on 1 worker and on N workers; the roll-up
 *  and every per-job artifact must be field-identical (no allow-list —
 *  per-job documents are written without timing fields exactly so this
 *  holds). */
void
diffSuiteLegs(check::DiffRunner &diff, const Options &opt,
              const std::vector<trace::Workload> &suite,
              const std::string &scale)
{
    ::setenv("EIP_SIM_SCALE", scale.c_str(), 1);
    harness::RunSpec spec = harness::RunSpec::defaultSpec();
    spec.configId = opt.prefetcher;

    std::vector<harness::RunJob> batch;
    for (const auto &w : suite)
        batch.push_back(harness::RunJob{w, spec});

    std::string serial = opt.outDir + "/suite-scale" + scale + "-j1.json";
    std::string parallel = opt.outDir + "/suite-scale" + scale + "-j" +
                           std::to_string(opt.jobs) + ".json";
    harness::runBatchWithArtifacts(batch, 1, serial);
    harness::runBatchWithArtifacts(batch, opt.jobs, parallel);

    const std::vector<std::string> kNothingAllowed;
    diff.compareFiles("suite scale=" + scale + " jobs=1 vs jobs=" +
                          std::to_string(opt.jobs),
                      serial, parallel, kNothingAllowed);
    for (size_t i = 0; i < batch.size(); ++i) {
        diff.compareFiles("per-job scale=" + scale + " " +
                              batch[i].workload.name,
                          harness::perJobArtifactPath(serial, i),
                          harness::perJobArtifactPath(parallel, i),
                          kNothingAllowed);
    }

    // Skip axis: the same serial batch with event-driven cycle skipping
    // disabled. The scheduler transform must be invisible in the
    // artifact bytes — empty allow-list, roll-up and per-job alike.
    std::vector<harness::RunJob> noskip_batch = batch;
    for (harness::RunJob &job : noskip_batch)
        job.spec.eventSkip = false;
    std::string noskip = opt.outDir + "/suite-scale" + scale +
                         "-noskip.json";
    harness::runBatchWithArtifacts(noskip_batch, 1, noskip);
    diff.compareFiles("suite scale=" + scale + " skip vs no-skip",
                      serial, noskip, kNothingAllowed);
    for (size_t i = 0; i < batch.size(); ++i) {
        diff.compareFiles("per-job scale=" + scale + " no-skip " +
                              batch[i].workload.name,
                          harness::perJobArtifactPath(serial, i),
                          harness::perJobArtifactPath(noskip, i),
                          kNothingAllowed);
    }
}

/** Single-run artifact under @p spec as the eip-run/v1 text. */
std::string
singleRunArtifact(const trace::Workload &workload,
                  const harness::RunSpec &spec)
{
    harness::RunResult result = harness::runOne(workload, spec);
    obs::RunManifest manifest =
        harness::makeManifest(workload, spec, result);
    return harness::runArtifactJson(manifest, result,
                                    /*include_timing=*/true);
}

/** Sampling leg: interval sampling must not perturb the run — only the
 *  knob's own fields and environment timing may differ. */
void
diffSamplingLeg(check::DiffRunner &diff, const Options &opt,
                const trace::Workload &workload)
{
    harness::RunSpec base = harness::RunSpec::defaultSpec();
    base.configId = opt.prefetcher;
    base.collectCounters = true;

    harness::RunSpec sampled = base;
    sampled.sampleInterval = std::max<uint64_t>(base.instructions / 4, 1);

    diff.compare("sampling off vs on (" + workload.name + ")",
                 singleRunArtifact(workload, base),
                 singleRunArtifact(workload, sampled),
                 {"manifest.sample_interval", "manifest.wall_clock_seconds",
                  "manifest.host_wall_ms", "manifest.host_mips",
                  "manifest.jobs", "samples"});
}

/** Tracing leg: the event tracer is a pure observer — nothing but
 *  environment timing may differ. */
void
diffTracingLeg(check::DiffRunner &diff, const Options &opt,
               const trace::Workload &workload)
{
    harness::RunSpec base = harness::RunSpec::defaultSpec();
    base.configId = opt.prefetcher;
    base.collectCounters = true;

    obs::EventTracer tracer{obs::TraceConfig{}};
    harness::RunSpec traced = base;
    traced.tracer = &tracer;

    diff.compare("tracing off vs on (" + workload.name + ")",
                 singleRunArtifact(workload, base),
                 singleRunArtifact(workload, traced),
                 {"manifest.wall_clock_seconds", "manifest.host_wall_ms",
                  "manifest.host_mips", "manifest.jobs"});
}

/** Single-run skip leg: with timing included in the artifact, skip vs
 *  no-skip may differ only in the host-speed fields. */
void
diffSkipSingleLeg(check::DiffRunner &diff, const Options &opt,
                  const trace::Workload &workload)
{
    harness::RunSpec base = harness::RunSpec::defaultSpec();
    base.configId = opt.prefetcher;
    base.collectCounters = true;

    harness::RunSpec noskip = base;
    noskip.eventSkip = false;

    diff.compare("skip vs no-skip (" + workload.name + ")",
                 singleRunArtifact(workload, base),
                 singleRunArtifact(workload, noskip),
                 {"manifest.wall_clock_seconds", "manifest.host_wall_ms",
                  "manifest.host_mips", "manifest.jobs"});
}

/** Profiling leg: the host-side phase profiler must not perturb the
 *  run — only its own manifest field and environment timing may
 *  differ. */
void
diffProfilingLeg(check::DiffRunner &diff, const Options &opt,
                 const trace::Workload &workload)
{
    harness::RunSpec base = harness::RunSpec::defaultSpec();
    base.configId = opt.prefetcher;
    base.collectCounters = true;

    obs::PhaseProfiler profiler;
    harness::RunSpec profiled = base;
    profiled.profiler = &profiler;

    harness::RunResult result = harness::runOne(workload, profiled);
    profiler.close();
    obs::RunManifest manifest =
        harness::makeManifest(workload, profiled, result);
    manifest.phaseMs = profiler.totalsMs();
    std::string profiled_artifact =
        harness::runArtifactJson(manifest, result, /*include_timing=*/true);

    diff.compare("profiling off vs on (" + workload.name + ")",
                 singleRunArtifact(workload, base), profiled_artifact,
                 {"manifest.wall_clock_seconds", "manifest.host_wall_ms",
                  "manifest.host_mips", "manifest.jobs",
                  "manifest.phase_ms"});
}

/** Why inertness leg: the miss-attribution observer must not perturb
 *  the run — only its own artifact surface (the "why" section and the
 *  counters.why.* keys) and environment timing may differ. */
void
diffWhyInertLeg(check::DiffRunner &diff, const Options &opt,
                const trace::Workload &workload)
{
    harness::RunSpec base = harness::RunSpec::defaultSpec();
    base.configId = opt.prefetcher;
    base.collectCounters = true;

    harness::RunSpec whyd = base;
    whyd.why = true;

    diff.compare("why off vs on (" + workload.name + ")",
                 singleRunArtifact(workload, base),
                 singleRunArtifact(workload, whyd),
                 {"manifest.wall_clock_seconds", "manifest.host_wall_ms",
                  "manifest.host_mips", "manifest.jobs", "why",
                  "counters.why.never_predicted",
                  "counters.why.not_yet_learned",
                  "counters.why.dropped_queue_full",
                  "counters.why.dropped_cross_page",
                  "counters.why.late_partial",
                  "counters.why.evicted_before_use",
                  "counters.why.pair_evicted",
                  "counters.why.wrong_path_pollution"});
}

/** Capture→replay leg: recording a workload's stream with captureTrace
 *  and replaying the .trc through the trace-backed runOne path must
 *  reproduce the direct run bit-for-bit. Both artifacts are rendered
 *  under the origin workload's manifest — the capture's provenance
 *  fields (trace_kind/bytes/digest) are facts we stamped ourselves, so
 *  pinning them equal by construction lets every *result* byte
 *  (counters, samples, stats-derived manifest fields) face a truly
 *  empty allow-list. */
void
diffCaptureReplayLeg(check::DiffRunner &diff, const Options &opt,
                     const trace::Workload &workload)
{
    harness::RunSpec spec = harness::RunSpec::defaultSpec();
    spec.configId = opt.prefetcher;
    spec.collectCounters = true;

    const std::string path =
        opt.outDir + "/capture-" + workload.name + ".trc";
    {
        trace::Program prog = trace::buildProgram(workload.program);
        trace::Executor exec(prog, workload.exec);
        // The front end runs ahead of retirement (FTQ + ROB); capture
        // enough slack that the replay never wraps inside the window.
        trace::captureTrace(path, exec,
                            spec.warmup + spec.instructions + 65536);
    }
    const trace::Workload replayed =
        trace::capturedWorkload(workload, path);

    harness::RunResult direct = harness::runOne(workload, spec);
    harness::RunResult replay = harness::runOne(replayed, spec);

    obs::RunManifest direct_m =
        harness::makeManifest(workload, spec, direct);
    obs::RunManifest replay_m =
        harness::makeManifest(workload, spec, replay);
    const std::vector<std::string> kNothingAllowed;
    diff.compare(
        "capture vs replay (" + workload.name + ")",
        harness::runArtifactJson(direct_m, direct,
                                 /*include_timing=*/false),
        harness::runArtifactJson(replay_m, replay,
                                 /*include_timing=*/false),
        kNothingAllowed);
}

/** Sampled-vs-full accuracy leg: per workload, run the same budget once
 *  fully detailed and once under the SMARTS-style periodic schedule,
 *  then assert the sampled estimate brackets the truth — the full run's
 *  IPC must fall inside the sampled run's reported 95% CI, and the
 *  relative IPC error must stay within 2%.
 *
 *  The budget is fixed, not EIP_SIM_SCALE-scaled: warm-up must cover the
 *  longest cold-cache transient in the suite (fp's LLC-sized compulsory
 *  fill runs ~6.5M instructions; measuring any part of it with warmed
 *  gaps biases IPC high by ~8% because warm-mode fills do not reproduce
 *  detailed-mode MSHR back-pressure), and that length is a property of
 *  the workload footprint, not of the budget. */
void
diffSampledLeg(check::DiffRunner &diff, const Options &opt,
               const std::vector<trace::Workload> &suite)
{
    // 10 windows of 125k insts once every 350k across a 3.5M-instruction
    // measured region, warm-up past the fp transient. Everything is
    // deterministic (seeded offset, deterministic simulator), so the
    // observed margins hold run over run.
    harness::RunSpec full = harness::RunSpec::defaultSpec();
    full.configId = opt.prefetcher;
    full.warmup = 6500000;
    full.instructions = 3500000;

    harness::RunSpec sampled = full;
    sampled.sampleMode = "periodic";
    sampled.sampleWindow = 125000;
    sampled.samplePeriod = 350000;

    for (const auto &w : suite) {
        harness::RunResult fr = harness::runOne(w, full);
        harness::RunResult sr = harness::runOne(w, sampled);
        EIP_ASSERT(sr.hasSampling && fr.stats.cycles > 0,
                   "sampled leg produced no sampling summary");

        const double full_ipc = static_cast<double>(fr.stats.instructions) /
                                static_cast<double>(fr.stats.cycles);
        const sample::MetricSummary &est = sr.sampling.ipc;
        const double err = std::fabs(est.estimate - full_ipc) / full_ipc;
        const bool in_ci = std::fabs(full_ipc - est.estimate) <= est.ci95;

        char detail[160];
        std::snprintf(detail, sizeof(detail),
                      "full %.4f vs sampled %.4f +/- %.4f, rel err %.2f%%",
                      full_ipc, est.estimate, est.ci95, err * 100.0);
        diff.check("sampled vs full (" + w.name + ")",
                   in_ci && err <= 0.02, detail);
    }
}

/** Why determinism leg: the blame ledger is classified by event-driven
 *  hooks only, so the why-enabled suite must produce field-identical
 *  artifacts — ledger included — across worker counts and with cycle
 *  skipping disabled. Empty allow-list, roll-up and per-job alike. */
void
diffWhyLegs(check::DiffRunner &diff, const Options &opt,
            const std::vector<trace::Workload> &suite,
            const std::string &scale)
{
    ::setenv("EIP_SIM_SCALE", scale.c_str(), 1);
    harness::RunSpec spec = harness::RunSpec::defaultSpec();
    spec.configId = opt.prefetcher;
    spec.why = true;

    std::vector<harness::RunJob> batch;
    for (const auto &w : suite)
        batch.push_back(harness::RunJob{w, spec});

    std::string serial = opt.outDir + "/why-scale" + scale + "-j1.json";
    std::string parallel = opt.outDir + "/why-scale" + scale + "-j" +
                           std::to_string(opt.jobs) + ".json";
    harness::runBatchWithArtifacts(batch, 1, serial);
    harness::runBatchWithArtifacts(batch, opt.jobs, parallel);

    const std::vector<std::string> kNothingAllowed;
    diff.compareFiles("why suite scale=" + scale + " jobs=1 vs jobs=" +
                          std::to_string(opt.jobs),
                      serial, parallel, kNothingAllowed);

    std::vector<harness::RunJob> noskip_batch = batch;
    for (harness::RunJob &job : noskip_batch)
        job.spec.eventSkip = false;
    std::string noskip = opt.outDir + "/why-scale" + scale +
                         "-noskip.json";
    harness::runBatchWithArtifacts(noskip_batch, 1, noskip);
    diff.compareFiles("why suite scale=" + scale + " skip vs no-skip",
                      serial, noskip, kNothingAllowed);
    for (size_t i = 0; i < batch.size(); ++i) {
        diff.compareFiles("why per-job scale=" + scale + " " +
                              batch[i].workload.name,
                          harness::perJobArtifactPath(serial, i),
                          harness::perJobArtifactPath(parallel, i),
                          kNothingAllowed);
        diff.compareFiles("why per-job scale=" + scale + " no-skip " +
                              batch[i].workload.name,
                          harness::perJobArtifactPath(serial, i),
                          harness::perJobArtifactPath(noskip, i),
                          kNothingAllowed);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    if (opt.help) {
        std::fputs(kUsage, stdout);
        return 0;
    }
    if (!opt.error.empty()) {
        std::fprintf(stderr, "error: %s\n%s", opt.error.c_str(), kUsage);
        return 2;
    }

    ensureDir(opt.outDir);
    std::vector<trace::Workload> suite =
        opt.full ? catalogue() : onePerCategory();

    check::DiffRunner diff;
    for (const std::string &scale : opt.scales)
        diffSuiteLegs(diff, opt, suite, scale);

    // Single-run legs at the first scale point; pick a server workload
    // (the paper's focus) when the suite has one.
    ::setenv("EIP_SIM_SCALE", opt.scales.front().c_str(), 1);
    trace::Workload probe = suite.front();
    for (const auto &w : suite)
        if (w.category == "srv")
            probe = w;
    diffSamplingLeg(diff, opt, probe);
    diffTracingLeg(diff, opt, probe);
    diffSkipSingleLeg(diff, opt, probe);
    diffProfilingLeg(diff, opt, probe);
    diffWhyInertLeg(diff, opt, probe);
    diffCaptureReplayLeg(diff, opt, probe);

    // Why determinism at the first scale point only: the leg runs the
    // suite three more times, so one point bounds the gate's runtime.
    diffWhyLegs(diff, opt, suite, opt.scales.front());

    // Sampled accuracy across the whole (one-per-category) suite at its
    // own fixed budget — see the leg's comment for why it ignores
    // EIP_SIM_SCALE.
    diffSampledLeg(diff, opt, suite);

    std::fputs(diff.report().c_str(), stdout);
    return diff.allClean() ? 0 : 1;
}
