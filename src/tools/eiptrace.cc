/**
 * @file
 * eiptrace — analyse an eip-trace/v1 artifact.
 *
 * Run traces (`eipsim --trace-out`): print the prefetch-lifecycle
 * funnel, the drop-reason and stall-attribution tables and the
 * per-interval lateness profile, and (with --stats) reconcile the
 * trace roll-ups against the counters of the matching eip-run/v1
 * artifact.
 *
 * Serve traces (`eipc spans`, kind "serve"): auto-detected; print the
 * per-request timeline and phase-latency breakdown, and (with --stats)
 * reconcile the terminal-state roll-ups against the daemon's serve.*
 * counters from an `eipc stats` document.
 *
 * eipwhy mode (`eiptrace eipwhy STATS.json`, also auto-detected when
 * the input is an eip-run/v1 or eip-suite/v1 stats artifact): render
 * the miss-attribution report of a `--why` run — per-workload blame
 * breakdown, partition-identity check, per-PC drill-down and the
 * entangled-table occupancy/churn timeline.
 *
 * Exits non-zero on unreadable input, any reconciliation mismatch or a
 * broken blame-partition identity, so CI can gate on it.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/manifest.hh"
#include "obs/trace_reader.hh"
#include "obs/why.hh"

namespace {

const char kUsage[] =
    "eiptrace — analyse an eip-trace/v1 event trace\n"
    "\n"
    "usage: eiptrace [eipwhy] FILE.json [options]\n"
    "  --stats FILE    reconcile the trace's roll-ups against the\n"
    "                  counters of the matching artifact (run traces:\n"
    "                  eip-run/v1; serve traces: an eipd stats\n"
    "                  document); exit 1 on any mismatch\n"
    "  --interval N    lateness bucket width in cycles (default 100000;\n"
    "                  run traces only)\n"
    "  --top N         per-PC drill-down depth of the eipwhy report\n"
    "                  (default 10)\n"
    "  --help          this text\n"
    "\n"
    "Serve traces (kind \"serve\", from `eipc spans`) are auto-detected\n"
    "and render the per-request timeline and phase-latency breakdown.\n"
    "Stats artifacts (eip-run/v1, eip-suite/v1) render the eipwhy\n"
    "miss-attribution report: per-workload blame breakdown, partition\n"
    "check, hot-PC drill-down, entangled-table churn timeline; exit 1\n"
    "when the blame ledger does not partition the demand misses.\n";

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string trace_path;
    std::string stats_path;
    uint64_t interval = 100000;
    uint64_t top = 10;
    bool why_mode = false;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--help" || args[i] == "-h") {
            std::fputs(kUsage, stdout);
            return 0;
        }
        if (args[i] == "eipwhy" && trace_path.empty() && !why_mode) {
            why_mode = true;
            continue;
        }
        if (args[i] == "--top") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "error: --top needs a number\n");
                return 2;
            }
            top = std::strtoull(args[++i].c_str(), nullptr, 10);
            continue;
        }
        if (args[i] == "--stats") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "error: --stats needs a file\n");
                return 2;
            }
            stats_path = args[++i];
        } else if (args[i] == "--interval") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "error: --interval needs a number\n");
                return 2;
            }
            interval = std::strtoull(args[++i].c_str(), nullptr, 10);
            if (interval == 0) {
                std::fprintf(stderr,
                             "error: --interval must be positive\n");
                return 2;
            }
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::fprintf(stderr, "error: unknown option %s\n%s",
                         args[i].c_str(), kUsage);
            return 2;
        } else if (trace_path.empty()) {
            trace_path = args[i];
        } else {
            std::fprintf(stderr, "error: more than one trace file\n");
            return 2;
        }
    }
    if (trace_path.empty()) {
        std::fputs(kUsage, stderr);
        return 2;
    }

    std::string text;
    if (!readFile(trace_path, &text)) {
        std::fprintf(stderr, "error: cannot read %s\n",
                     trace_path.c_str());
        return 1;
    }
    std::string parse_error;

    auto probe = eip::obs::parseJson(text, &parse_error);

    // eipwhy mode: a stats artifact (eip-run/v1 or eip-suite/v1) renders
    // the miss-attribution report. Auto-detected by schema; the explicit
    // `eipwhy` keyword makes the intent greppable in scripts.
    bool is_stats_doc = false;
    if (probe) {
        const eip::obs::JsonValue *schema = probe->find("schema");
        is_stats_doc = schema != nullptr &&
                       (schema->string == eip::obs::kRunSchema ||
                        schema->string == eip::obs::kSuiteSchema);
    }
    if (why_mode || is_stats_doc) {
        if (!probe || !is_stats_doc) {
            std::fprintf(stderr,
                         "error: %s: eipwhy needs an eip-run/v1 or "
                         "eip-suite/v1 stats artifact%s%s\n",
                         trace_path.c_str(),
                         parse_error.empty() ? "" : ": ",
                         parse_error.c_str());
            return 1;
        }
        std::string why_error;
        std::string report = eip::obs::whyReport(*probe, top, &why_error);
        std::fputs(report.c_str(), stdout);
        if (!why_error.empty()) {
            std::fprintf(stderr, "error: %s\n", why_error.c_str());
            return 1;
        }
        return 0;
    }

    // Serve traces (kind "serve") get their own report path.
    if (probe && eip::obs::isServeTrace(*probe)) {
        auto serve = eip::obs::parseServeTrace(text, &parse_error);
        if (!serve) {
            std::fprintf(stderr, "error: %s: %s\n", trace_path.c_str(),
                         parse_error.c_str());
            return 1;
        }
        for (const auto &[key, value] : serve->meta)
            std::printf("%-12s %s\n", key.c_str(), value.c_str());
        std::printf("spans        %llu recorded, %llu retained%s\n\n",
                    static_cast<unsigned long long>(serve->recorded),
                    static_cast<unsigned long long>(serve->retained),
                    serve->wrapped ? " (ring wrapped)" : "");
        std::fputs(eip::obs::serveReport(*serve).c_str(), stdout);
        if (stats_path.empty())
            return 0;
        std::string stats_text;
        if (!readFile(stats_path, &stats_text)) {
            std::fprintf(stderr, "error: cannot read %s\n",
                         stats_path.c_str());
            return 1;
        }
        auto stats = eip::obs::parseJson(stats_text, &parse_error);
        if (!stats) {
            std::fprintf(stderr, "error: %s: %s\n", stats_path.c_str(),
                         parse_error.c_str());
            return 1;
        }
        auto mismatches = eip::obs::reconcileServe(*serve, *stats);
        if (mismatches.empty()) {
            std::printf("\nreconciliation against %s: OK\n",
                        stats_path.c_str());
            return 0;
        }
        std::fprintf(stderr, "\nreconciliation against %s FAILED:\n",
                     stats_path.c_str());
        for (const auto &m : mismatches)
            std::fprintf(stderr, "  %s\n", m.c_str());
        return 1;
    }

    auto doc = eip::obs::parseTrace(text, &parse_error);
    if (!doc) {
        std::fprintf(stderr, "error: %s: %s\n", trace_path.c_str(),
                     parse_error.c_str());
        return 1;
    }

    for (const auto &[key, value] : doc->meta)
        std::printf("%-12s %s\n", key.c_str(), value.c_str());
    std::printf("events       %llu recorded, %llu retained%s\n\n",
                static_cast<unsigned long long>(doc->recorded),
                static_cast<unsigned long long>(doc->retained),
                doc->wrapped ? " (ring wrapped)" : "");
    std::fputs(eip::obs::funnelReport(*doc).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(eip::obs::dropReport(*doc).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(eip::obs::stallReport(*doc).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(eip::obs::latenessReport(*doc, interval).c_str(), stdout);

    // Internal consistency first: the retained first-use/late-use
    // events must reconcile with the document's own lifecycle roll-ups
    // (exact whenever the ring never wrapped). A mismatch means the
    // writer lost or double-counted events — fail even without --stats.
    auto event_mismatches = eip::obs::reconcileEvents(*doc);
    if (!event_mismatches.empty()) {
        std::fprintf(stderr,
                     "\nevent/roll-up reconciliation FAILED:\n");
        for (const auto &m : event_mismatches)
            std::fprintf(stderr, "  %s\n", m.c_str());
        return 1;
    }

    if (stats_path.empty())
        return 0;

    std::string run_text;
    if (!readFile(stats_path, &run_text)) {
        std::fprintf(stderr, "error: cannot read %s\n",
                     stats_path.c_str());
        return 1;
    }
    auto run = eip::obs::parseJson(run_text, &parse_error);
    if (!run) {
        std::fprintf(stderr, "error: %s: %s\n", stats_path.c_str(),
                     parse_error.c_str());
        return 1;
    }
    auto mismatches = eip::obs::reconcileWithRun(*doc, *run);
    if (mismatches.empty()) {
        std::printf("\nreconciliation against %s: OK\n",
                    stats_path.c_str());
        return 0;
    }
    std::fprintf(stderr, "\nreconciliation against %s FAILED:\n",
                 stats_path.c_str());
    for (const auto &m : mismatches)
        std::fprintf(stderr, "  %s\n", m.c_str());
    return 1;
}
