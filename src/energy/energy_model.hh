/**
 * @file
 * Cache-hierarchy energy model (paper §IV-A/Table IV). The paper models
 * energy with CACTI-P at 22nm, counting tag accesses, reads, and writes at
 * every level. We use per-event constants of CACTI-like magnitude; Table IV
 * compares prefetchers *relative* to each other and to no-prefetching, so
 * the event counts (produced by the simulator) dominate the comparison.
 */

#ifndef EIP_ENERGY_ENERGY_MODEL_HH
#define EIP_ENERGY_ENERGY_MODEL_HH

#include "sim/stats.hh"

namespace eip::energy {

/** Per-event energy of one cache level, in nanojoules. */
struct LevelEnergy
{
    double tagAccess = 0.0;
    double read = 0.0;
    double write = 0.0;
};

/** Energy breakdown of one simulation run. */
struct EnergyBreakdown
{
    double l1i = 0.0;
    double l1d = 0.0;
    double l2 = 0.0;
    double llc = 0.0;

    double total() const { return l1i + l1d + l2 + llc; }
};

/** The model: constants per level, evaluation over SimStats. */
class EnergyModel
{
  public:
    /** CACTI-P-like 22nm defaults for the Table III hierarchy. */
    EnergyModel();

    /** Energy consumed by the caches during one run. */
    EnergyBreakdown evaluate(const sim::SimStats &stats) const;

    LevelEnergy l1iCost;
    LevelEnergy l1dCost;
    LevelEnergy l2Cost;
    LevelEnergy llcCost;

  private:
    static double levelEnergy(const sim::CacheStats &s,
                              const LevelEnergy &cost);
};

} // namespace eip::energy

#endif // EIP_ENERGY_ENERGY_MODEL_HH
