#include "energy/energy_model.hh"

namespace eip::energy {

EnergyModel::EnergyModel()
{
    // CACTI-P-like magnitudes at 22nm for the Table III capacities.
    l1iCost = LevelEnergy{0.004, 0.013, 0.016}; // 32KB 8-way
    l1dCost = LevelEnergy{0.005, 0.016, 0.019}; // 48KB 12-way
    l2Cost = LevelEnergy{0.012, 0.055, 0.066};  // 512KB 8-way
    llcCost = LevelEnergy{0.030, 0.160, 0.190}; // 2MB 16-way
}

double
EnergyModel::levelEnergy(const sim::CacheStats &s, const LevelEnergy &cost)
{
    // Every demand access and every issued prefetch probes the tags; hits
    // read data; fills and store writes write data.
    double tags = static_cast<double>(s.demandAccesses + s.prefetchIssued);
    double reads = static_cast<double>(s.demandHits);
    double writes = static_cast<double>(s.fills + s.writeAccesses);
    return tags * cost.tagAccess + reads * cost.read + writes * cost.write;
}

EnergyBreakdown
EnergyModel::evaluate(const sim::SimStats &stats) const
{
    EnergyBreakdown out;
    out.l1i = levelEnergy(stats.l1i, l1iCost);
    out.l1d = levelEnergy(stats.l1d, l1dCost);
    out.l2 = levelEnergy(stats.l2, l2Cost);
    out.llc = levelEnergy(stats.llc, llcCost);
    return out;
}

} // namespace eip::energy
