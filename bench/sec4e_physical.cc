/**
 * @file
 * Section IV-E: training the L1I prefetchers with physical addresses. The
 * virtual-to-physical page scatter breaks cross-page sequentiality and
 * shrinks the compression reach, slightly reducing the gains. Prints the
 * geomean speedup of the three Entangling configurations (and NextLine as
 * a reference) under both address spaces.
 */

#include "bench_common.hh"

using namespace eip;

int
main()
{
    bench::banner("Sec. IV-E", "physical-address training");

    auto workloads = bench::suite(2);

    auto run = [&](const std::string &id, bool physical) {
        harness::RunSpec s = bench::spec(id);
        s.physicalL1i = physical;
        return harness::runSuite(workloads, s);
    };

    auto base_virt = run("none", false);
    auto base_phys = run("none", true);

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    table.cell(std::string("virtual speedup-%"));
    table.cell(std::string("physical speedup-%"));

    struct Entry
    {
        const char *virt_id;
        const char *phys_id;
    };
    const Entry entries[] = {
        {"nextline", "nextline"},
        {"entangling-2k", "entangling-2k-phys"},
        {"entangling-4k", "entangling-4k-phys"},
        {"entangling-8k", "entangling-8k-phys"},
    };
    for (const auto &e : entries) {
        auto virt = run(e.virt_id, false);
        auto phys = run(e.phys_id, true);
        table.newRow();
        table.cell(virt.front().configName);
        table.cell((harness::geomeanSpeedup(virt, base_virt) - 1.0) * 100.0,
                   2);
        table.cell((harness::geomeanSpeedup(phys, base_phys) - 1.0) * 100.0,
                   2);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper §IV-E): Entangling keeps outperforming\n"
        "its competitors with physical training; the speedups drop\n"
        "slightly versus virtual (paper: 5.62/8.10/8.87%% vs\n"
        "7.50/9.60/10.1%%), and the 8K > 4K > 2K ordering is preserved.\n");
    return 0;
}
