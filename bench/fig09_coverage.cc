/**
 * @file
 * Figure 9: per-workload prefetcher coverage (fraction of would-be misses
 * eliminated), each configuration individually sorted, as percentiles.
 */

#include "bench_common.hh"

using namespace eip;

int
main()
{
    bench::banner("Fig. 9", "prefetcher coverage across workloads");

    auto workloads = bench::suite(3);

    std::vector<std::string> names;
    std::vector<std::vector<double>> series;
    for (const auto &id : prefetch::mainLineup()) {
        auto results = harness::runSuite(workloads, bench::spec(id));
        names.push_back(results.front().configName);
        series.push_back(harness::collect(results, [](const auto &r) {
            return r.stats.l1i.coverage();
        }));
    }
    harness::printSortedSeries("coverage (sorted per config)", names,
                               series);

    std::printf(
        "\nExpected shape (paper Fig. 9): Entangling shows much higher\n"
        "coverage than the other prefetchers across the curve "
        "(Entangling-4K\n~90%% for most workloads in the paper; other "
        "prefetchers below 50%%).\n");
    return 0;
}
