/**
 * @file
 * Figures 13, 14 and 15: average number of entangled destinations found
 * on an Entangled-table hit, average basic-block size of the current
 * block, and average basic-block size of the destinations — per category,
 * for the three Entangling configurations. Also derives the paper's
 * average-prefetches-per-hit formula:
 *   bbsize + destinations * (1 + bbsize_destination).
 */

#include "bench_common.hh"

using namespace eip;

int
main()
{
    bench::banner("Fig. 13-15", "Entangled-table usage statistics");

    auto workloads = bench::suite(3);
    const char *configs[] = {"entangling-2k", "entangling-4k",
                             "entangling-8k"};
    const char *categories[] = {"crypto", "int", "fp", "srv"};

    // results[config][workload]
    std::vector<std::vector<harness::RunResult>> all;
    std::vector<std::string> names;
    for (const char *id : configs) {
        all.push_back(harness::runSuite(workloads, bench::spec(id)));
        names.push_back(all.back().front().configName);
    }

    auto categoryMean = [&](const std::vector<harness::RunResult> &results,
                            const char *cat, auto metric) {
        double sum = 0.0;
        int n = 0;
        for (const auto &r : results) {
            if (r.category == cat) {
                sum += metric(r);
                ++n;
            }
        }
        return n == 0 ? 0.0 : sum / n;
    };

    struct FigureSpec
    {
        const char *title;
        double (*metric)(const harness::RunResult &);
    };
    const FigureSpec figures[] = {
        {"Fig. 13: average number of entangled destinations per hit",
         [](const harness::RunResult &r) { return r.avgDestsPerHit; }},
        {"Fig. 14: average basic-block size (current block)",
         [](const harness::RunResult &r) { return r.avgCurrentBbSize; }},
        {"Fig. 15: average basic-block size of entangled destinations",
         [](const harness::RunResult &r) { return r.avgDstBbSize; }},
    };

    for (const auto &fig : figures) {
        std::printf("\n%s\n", fig.title);
        TablePrinter t;
        t.newRow();
        t.cell(std::string("config"));
        for (const char *cat : categories)
            t.cell(std::string(cat));
        for (size_t c = 0; c < all.size(); ++c) {
            t.newRow();
            t.cell(names[c]);
            for (const char *cat : categories)
                t.cell(categoryMean(all[c], cat, fig.metric), 2);
        }
        t.print();
    }

    std::printf("\nDerived: average prefetches per Entangled-table hit "
                "(bb + dests*(1+bb_dst))\n");
    TablePrinter t;
    t.newRow();
    t.cell(std::string("config"));
    for (const char *cat : categories)
        t.cell(std::string(cat));
    for (size_t c = 0; c < all.size(); ++c) {
        t.newRow();
        t.cell(names[c]);
        for (const char *cat : categories) {
            double bb = categoryMean(all[c], cat, [](const auto &r) {
                return r.avgCurrentBbSize;
            });
            double dests = categoryMean(all[c], cat, [](const auto &r) {
                return r.avgDestsPerHit;
            });
            double bbdst = categoryMean(all[c], cat, [](const auto &r) {
                return r.avgDstBbSize;
            });
            t.cell(bb + dests * (1.0 + bbdst), 2);
        }
    }
    t.print();

    std::printf(
        "\nExpected shape (paper Fig. 13-15/§IV-D): ~2.2-2.5 destinations\n"
        "per hit; small basic blocks; the derived prefetches-per-hit stay\n"
        "moderate (the paper reports ~9-17 across categories).\n");
    return 0;
}
