/**
 * @file
 * Table IV: average energy consumed at each cache level (in nJ) and the
 * geometric mean of the total energy normalized to no prefetching, for the
 * prefetchers the paper tabulates.
 */

#include "bench_common.hh"
#include "energy/energy_model.hh"

using namespace eip;

int
main()
{
    bench::banner("Table IV", "cache-hierarchy energy per prefetcher");

    auto workloads = bench::suite(2);
    energy::EnergyModel model;

    const std::vector<std::string> configs = {
        "none",          "nextline",      "sn4l",   "mana-2k",
        "mana-4k",       "entangling-2k", "entangling-4k", "rdip"};

    // Collect per-config per-workload energy breakdowns.
    std::vector<std::string> names;
    std::vector<std::vector<energy::EnergyBreakdown>> energies;
    for (const auto &id : configs) {
        auto results = harness::runSuite(workloads, bench::spec(id));
        names.push_back(results.front().configName);
        std::vector<energy::EnergyBreakdown> row;
        for (const auto &r : results)
            row.push_back(model.evaluate(r.stats));
        energies.push_back(std::move(row));
    }

    auto average = [](const std::vector<energy::EnergyBreakdown> &row,
                      auto field) {
        double sum = 0.0;
        for (const auto &e : row)
            sum += field(e);
        return sum / static_cast<double>(row.size());
    };

    TablePrinter table;
    table.newRow();
    table.cell(std::string("metric"));
    for (const auto &n : names)
        table.cell(n);

    const char *rows[] = {"Avg L1I energy (nJ)", "Avg L1D energy (nJ)",
                          "Avg L2 energy (nJ)", "Avg LLC energy (nJ)"};
    for (int metric = 0; metric < 4; ++metric) {
        table.newRow();
        table.cell(std::string(rows[metric]));
        for (size_t c = 0; c < names.size(); ++c) {
            double value = average(energies[c],
                                   [&](const energy::EnergyBreakdown &e) {
                                       switch (metric) {
                                         case 0: return e.l1i;
                                         case 1: return e.l1d;
                                         case 2: return e.l2;
                                         default: return e.llc;
                                       }
                                   });
            table.cell(value, 1);
        }
    }

    // Geometric mean of the normalized total energy per workload.
    table.newRow();
    table.cell(std::string("Geomean (norm. total)"));
    for (size_t c = 0; c < names.size(); ++c) {
        std::vector<double> ratios;
        for (size_t w = 0; w < workloads.size(); ++w)
            ratios.push_back(energies[c][w].total() /
                             energies[0][w].total());
        table.cell(geomean(ratios), 4);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper Table IV): prefetching raises L1I energy\n"
        "(extra accesses); among the evaluated schemes RDIP is the most\n"
        "energy-frugal (few prefetches) and Entangling is the cheapest of\n"
        "the high-coverage prefetchers, below NextLine/SN4L/MANA in\n"
        "normalized total energy. (The paper's absolute below-baseline\n"
        "totals stem from front-end re-access behaviour of its baseline\n"
        "that this model does not reproduce; the relative ordering is the\n"
        "reproduced shape.)\n");
    return 0;
}
