/**
 * @file
 * Extension study (paper §III-C1 / future work): the implications of
 * wrong-path execution. ChampSim — and therefore the paper's evaluation —
 * does not simulate the wrong path; the paper argues Entangling can avoid
 * wrong-path pollution by buffering speculative pairs until commit. This
 * bench quantifies, on our simulator:
 *   (a) how much wrong-path fetch costs each prefetcher, and
 *   (b) what the commit-time-training mitigation recovers.
 */

#include <functional>
#include <memory>

#include "bench_common.hh"
#include "core/entangling.hh"
#include "sim/cpu.hh"

using namespace eip;

namespace {

struct Row
{
    std::string name;
    double ipc_clean;  ///< no wrong path modelled (paper methodology)
    double ipc_wrong;  ///< wrong-path fetch modelled
    double acc_clean;
    double acc_wrong;
};

Row
evaluate(const std::string &label, const trace::Workload &w,
         const std::function<std::unique_ptr<sim::Prefetcher>()> &make)
{
    Row row;
    row.name = label;
    for (bool wrong_path : {false, true}) {
        sim::SimConfig cfg;
        cfg.modelWrongPath = wrong_path;
        auto pf = make();
        sim::Cpu cpu(cfg);
        if (pf != nullptr)
            cpu.attachL1iPrefetcher(pf.get());
        trace::Program prog = trace::buildProgram(w.program);
        trace::Executor exec(prog, w.exec);
        harness::RunSpec spec = harness::RunSpec::defaultSpec();
        sim::SimStats stats =
            cpu.run(exec, spec.instructions, spec.warmup);
        (wrong_path ? row.ipc_wrong : row.ipc_clean) = stats.ipc();
        (wrong_path ? row.acc_wrong : row.acc_clean) =
            stats.l1i.accuracy();
    }
    return row;
}

} // namespace

int
main()
{
    bench::banner("Extension", "wrong-path execution and §III-C1");

    // One srv workload (the class where pollution matters most).
    trace::Workload workload = bench::suite(1)[3];

    std::vector<Row> rows;
    rows.push_back(evaluate("no", workload, [] {
        return std::unique_ptr<sim::Prefetcher>{};
    }));
    rows.push_back(evaluate("NextLine", workload, [] {
        return prefetch::makePrefetcher("nextline");
    }));
    rows.push_back(evaluate("Entangling-4K", workload, [] {
        return prefetch::makePrefetcher("entangling-4k");
    }));
    rows.push_back(evaluate("Entangling-4K+commit", workload, [] {
        core::EntanglingConfig cfg = core::EntanglingConfig::preset4K();
        cfg.commitTimeTraining = true;
        return std::unique_ptr<sim::Prefetcher>(
            new core::EntanglingPrefetcher(cfg));
    }));

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    table.cell(std::string("IPC (no wrong path)"));
    table.cell(std::string("IPC (wrong path)"));
    table.cell(std::string("acc (no WP)"));
    table.cell(std::string("acc (WP)"));
    for (const auto &r : rows) {
        table.newRow();
        table.cell(r.name);
        table.cell(r.ipc_clean, 3);
        table.cell(r.ipc_wrong, 3);
        table.cell(r.acc_clean, 3);
        table.cell(r.acc_wrong, 3);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper §III-C1/IV-A): all prefetchers benefit\n"
        "from NOT modelling the wrong path (accuracy drops when it is\n"
        "modelled); Entangling tolerates wrong-path pollution well, and\n"
        "commit-time training recovers most of the difference without\n"
        "hurting the clean-path configuration.\n");
    return 0;
}
