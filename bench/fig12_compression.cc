/**
 * @file
 * Figure 12 (+ Tables I and II): in which encoding width destinations are
 * represented, per workload category. Destinations are bucketed by the
 * paper's mode widths: 8, 10, 13, 18, 28 and 58 bits (virtual scheme).
 */

#include "bench_common.hh"
#include "core/dest_compression.hh"

using namespace eip;

namespace {

void
printScheme(const char *title, const core::CompressionScheme &scheme)
{
    std::printf("%s (payload %u bits + %u mode bits)\n", title,
                scheme.payloadBits, scheme.modeBits);
    TablePrinter t;
    t.newRow();
    t.cell(std::string("mode (destinations)"));
    t.cell(std::string("address bits each"));
    for (unsigned k = 1; k <= scheme.maxDests; ++k) {
        t.newRow();
        t.cell(uint64_t{k});
        t.cell(uint64_t{scheme.addrBits(k)});
    }
    t.print();
}

} // namespace

int
main()
{
    bench::banner("Fig. 12 / Tables I-II", "destination compression");

    printScheme("Table I — virtual compression modes",
                core::CompressionScheme::virtualScheme());
    std::printf("\n");
    printScheme("Table II — physical compression modes",
                core::CompressionScheme::physicalScheme());

    // Fig. 12: fraction of inserted destinations per encoding bucket,
    // aggregated per category (mean over the category's workloads).
    auto workloads = bench::suite(3);
    const unsigned buckets[] = {8, 10, 13, 18, 28, 58};

    std::printf("\nFig. 12: destination encoding width by category "
                "(Entangling-4K)\n");
    TablePrinter table;
    table.newRow();
    table.cell(std::string("category"));
    for (unsigned b : buckets)
        table.cell(std::string("<=") + std::to_string(b) + "b");

    const char *categories[] = {"crypto", "int", "fp", "srv"};
    for (const char *cat : categories) {
        // Accumulate the per-bits fractions over the category.
        std::vector<double> fractions(64, 0.0);
        int count = 0;
        for (const auto &w : workloads) {
            if (w.category != cat)
                continue;
            auto r = harness::runOne(w, bench::spec("entangling-4k"));
            for (size_t i = 0;
                 i < r.destBitsFractions.size() && i < fractions.size(); ++i)
                fractions[i] += r.destBitsFractions[i];
            ++count;
        }
        table.newRow();
        table.cell(std::string(cat));
        unsigned lo = 0;
        for (unsigned b : buckets) {
            double share = 0.0;
            for (unsigned bits = lo; bits <= b && bits < 64; ++bits)
                share += fractions[bits] / std::max(count, 1);
            table.cell(share, 3);
            lo = b + 1;
        }
    }
    table.print();

    std::printf(
        "\nExpected shape (paper Fig. 12): almost all destinations\n"
        "compress tightly in crypto/int/fp; srv has the largest fraction\n"
        "of wide destinations but the bulk still fits 18 bits.\n");
    return 0;
}
