/**
 * @file
 * Host simulation speed: MIPS (millions of simulated instructions per
 * host second) per workload category, for a no-prefetch and an
 * Entangling-4K configuration, with event-driven cycle skipping on and
 * off. Not a paper figure — this is the measurement harness behind the
 * simulator-performance work (DESIGN.md §3.8): run it before and after
 * a core change and compare the BENCH_simspeed.json artifacts.
 *
 * Programs are pre-built through the shared cache before any timer
 * starts, so the numbers are pure simulation speed (trace synthesis
 * excluded — the same exclusion the run-manifest host_mips field makes).
 * Results (IPC etc.) are identical across all four rows by construction;
 * only host speed differs. Wall-clock noise on a busy host easily
 * reaches tens of percent: prefer interleaved repeat runs when comparing
 * two builds.
 *
 * A second table measures SMARTS-style sampled mode (DESIGN.md §3.13)
 * against the event-skip baseline at a long-run budget where sampling
 * pays off (50M instructions at scale 1; EIP_SIM_SCALE shrinks it), on
 * the synthetic categories plus the checked-in ChampSim fixture, whose
 * replayer fast-forwards in O(1) once its one-pass cache is primed.
 * Sampled-row MIPS use the instructions the schedule actually covered
 * (warmed + fast-forwarded + detailed; the tail past the last window is
 * never simulated) — the same honest numerator the run manifest reports.
 * A third table prints the speedup ratios the sampled rows achieve;
 * EXPERIMENTS.md records the committed full-scale baseline (>=5x on the
 * server and cloud categories and on the fixture).
 */

#include <chrono>

#include <sys/stat.h>

#include "bench_common.hh"

using namespace eip;

namespace {

/** Seconds of host wall-clock to run @p workload once under @p spec. */
double
timeOne(const trace::Workload &workload, const harness::RunSpec &spec,
        const trace::Program &program)
{
    auto start = std::chrono::steady_clock::now();
    harness::RunResult result = harness::runOne(workload, spec, program);
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    // Keep the result observable so the run cannot be optimized away.
    if (result.stats.instructions == 0)
        std::printf("(empty run?)\n");
    return seconds;
}

/** Host-MIPS of one run (no pre-built program: trace-backed workloads
 *  stream from their file), with the honest numerator: a sampled run
 *  only covers what its schedule executed. */
double
measureMips(const trace::Workload &workload, const harness::RunSpec &spec)
{
    auto start = std::chrono::steady_clock::now();
    harness::RunResult result = harness::runOne(workload, spec);
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    double covered = static_cast<double>(spec.warmup + spec.instructions);
    if (result.hasSampling)
        covered = static_cast<double>(
            result.sampling.warmedInstructions +
            result.sampling.skippedInstructions +
            result.sampling.windowInstructions);
    return seconds > 0.0 ? covered / seconds / 1e6 : 0.0;
}

/** The checked-in ChampSim fixture, via EIP_CHAMPSIM_FIXTURE or the
 *  usual source-tree locations relative to where the bench runs. */
bool
findFixture(trace::Workload &out)
{
    std::vector<std::string> candidates;
    const char *env = std::getenv("EIP_CHAMPSIM_FIXTURE");
    if (env != nullptr && *env != '\0')
        candidates.emplace_back(env);
    candidates.emplace_back("tests/data/fixture.champsimtrace.xz");
    candidates.emplace_back("../tests/data/fixture.champsimtrace.xz");
    candidates.emplace_back("../../tests/data/fixture.champsimtrace.xz");
    for (const std::string &path : candidates) {
        struct stat st;
        if (::stat(path.c_str(), &st) == 0 &&
            harness::findWorkload(path, out))
            return true;
    }
    return false;
}

/** The sampled-vs-full comparison at a budget where sampling pays off:
 *  8 detailed windows over a 50M-instruction run (EIP_SIM_SCALE scales
 *  the budget; the window/period/warm ratios stay fixed so the schedule
 *  shape survives scaling). */
void
sampledSpeedTables(const std::vector<trace::Workload> &workloads)
{
    double scale = util::envDouble("EIP_SIM_SCALE").value_or(1.0);
    harness::RunSpec full = harness::RunSpec::defaultSpec();
    full.configId = "entangling-4k";
    full.instructions =
        static_cast<uint64_t>(50000000 * scale);
    full.warmup = static_cast<uint64_t>(500000 * scale);

    harness::RunSpec sampled = full;
    sampled.sampleMode = "periodic";
    sampled.samplePeriod = std::max<uint64_t>(full.instructions / 8, 8);
    sampled.sampleWindow = std::max<uint64_t>(sampled.samplePeriod / 80, 4);
    sampled.sampleWarm = 4 * sampled.sampleWindow;

    std::vector<std::string> columns;
    for (const auto &w : workloads)
        columns.push_back(w.name);

    std::vector<std::vector<double>> cells(2);
    for (const auto &w : workloads) {
        cells[0].push_back(measureMips(w, full));
        cells[1].push_back(measureMips(w, sampled));
    }
    harness::printMatrix(
        "Sampled-mode host speed (MIPS; higher is faster)",
        {"entangling-4k-full", "entangling-4k-sampled"}, columns, cells);

    std::vector<std::vector<double>> speedup(1);
    for (size_t i = 0; i < workloads.size(); ++i)
        speedup[0].push_back(
            cells[0][i] > 0.0 ? cells[1][i] / cells[0][i] : 0.0);
    harness::printMatrix(
        "Sampled-mode speedup (x over the event-skip baseline)",
        {"entangling-4k-sampled"}, columns, speedup);
}

} // namespace

int
main()
{
    bench::banner("simspeed", "host simulation speed per category");

    // One workload per CVP category plus one cloud workload: enough to
    // see the per-category spread (srv's larger footprint stresses the
    // caches hardest) without turning a speed probe into a suite run.
    std::vector<trace::Workload> workloads = bench::suite(1);
    workloads.push_back(trace::cloudSuite().front());

    struct Row
    {
        const char *name;
        const char *configId;
        bool eventSkip;
    };
    const Row rows[] = {
        {"none", "none", true},
        {"none-noskip", "none", false},
        {"entangling-4k", "entangling-4k", true},
        {"entangling-4k-noskip", "entangling-4k", false},
    };

    // Pre-build every program outside the timed region.
    exec::ProgramCache &cache = exec::ProgramCache::global();
    std::vector<std::shared_ptr<const trace::Program>> programs;
    for (const auto &w : workloads)
        programs.push_back(cache.get(w.program));

    std::vector<std::string> config_names;
    std::vector<std::string> columns;
    for (const auto &w : workloads)
        columns.push_back(w.name);
    columns.emplace_back("all");

    std::vector<std::vector<double>> mips_cells;
    for (const Row &row : rows) {
        harness::RunSpec spec = bench::spec(row.configId);
        spec.eventSkip = row.eventSkip;
        double insts =
            static_cast<double>(spec.warmup + spec.instructions);

        config_names.emplace_back(row.name);
        mips_cells.emplace_back();
        double total_seconds = 0.0;
        for (size_t i = 0; i < workloads.size(); ++i) {
            double seconds = timeOne(workloads[i], spec, *programs[i]);
            total_seconds += seconds;
            mips_cells.back().push_back(
                seconds > 0.0 ? insts / seconds / 1e6 : 0.0);
        }
        double total_insts = insts * static_cast<double>(workloads.size());
        mips_cells.back().push_back(
            total_seconds > 0.0 ? total_insts / total_seconds / 1e6 : 0.0);
    }

    harness::printMatrix("Host simulation speed (MIPS; higher is faster)",
                         config_names, columns, mips_cells);

    // Sampled-vs-full at long-run budget: every synthetic category plus
    // the ChampSim fixture when it is reachable (source tree or
    // EIP_CHAMPSIM_FIXTURE; a missing fixture drops the column rather
    // than failing a speed probe).
    std::vector<trace::Workload> sampled_workloads = workloads;
    trace::Workload fixture;
    if (findFixture(fixture))
        sampled_workloads.push_back(fixture);
    else
        std::printf("\n(ChampSim fixture not found — fixture column "
                    "skipped; set EIP_CHAMPSIM_FIXTURE)\n");
    sampledSpeedTables(sampled_workloads);

    std::printf(
        "\nReading: skip rows vs their -noskip twins isolate the\n"
        "event-driven scheduler's contribution; sampled rows show the\n"
        "SMARTS schedule's win over the event-skip baseline at matched\n"
        "coverage; compare whole artifacts across builds for core-change\n"
        "speedups (EXPERIMENTS.md records the committed baseline).\n");
    return 0;
}
