/**
 * @file
 * Host simulation speed: MIPS (millions of simulated instructions per
 * host second) per workload category, for a no-prefetch and an
 * Entangling-4K configuration, with event-driven cycle skipping on and
 * off. Not a paper figure — this is the measurement harness behind the
 * simulator-performance work (DESIGN.md §3.8): run it before and after
 * a core change and compare the BENCH_simspeed.json artifacts.
 *
 * Programs are pre-built through the shared cache before any timer
 * starts, so the numbers are pure simulation speed (trace synthesis
 * excluded — the same exclusion the run-manifest host_mips field makes).
 * Results (IPC etc.) are identical across all four rows by construction;
 * only host speed differs. Wall-clock noise on a busy host easily
 * reaches tens of percent: prefer interleaved repeat runs when comparing
 * two builds.
 */

#include <chrono>

#include "bench_common.hh"

using namespace eip;

namespace {

/** Seconds of host wall-clock to run @p workload once under @p spec. */
double
timeOne(const trace::Workload &workload, const harness::RunSpec &spec,
        const trace::Program &program)
{
    auto start = std::chrono::steady_clock::now();
    harness::RunResult result = harness::runOne(workload, spec, program);
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    // Keep the result observable so the run cannot be optimized away.
    if (result.stats.instructions == 0)
        std::printf("(empty run?)\n");
    return seconds;
}

} // namespace

int
main()
{
    bench::banner("simspeed", "host simulation speed per category");

    // One workload per CVP category plus one cloud workload: enough to
    // see the per-category spread (srv's larger footprint stresses the
    // caches hardest) without turning a speed probe into a suite run.
    std::vector<trace::Workload> workloads = bench::suite(1);
    workloads.push_back(trace::cloudSuite().front());

    struct Row
    {
        const char *name;
        const char *configId;
        bool eventSkip;
    };
    const Row rows[] = {
        {"none", "none", true},
        {"none-noskip", "none", false},
        {"entangling-4k", "entangling-4k", true},
        {"entangling-4k-noskip", "entangling-4k", false},
    };

    // Pre-build every program outside the timed region.
    exec::ProgramCache &cache = exec::ProgramCache::global();
    std::vector<std::shared_ptr<const trace::Program>> programs;
    for (const auto &w : workloads)
        programs.push_back(cache.get(w.program));

    std::vector<std::string> config_names;
    std::vector<std::string> columns;
    for (const auto &w : workloads)
        columns.push_back(w.name);
    columns.emplace_back("all");

    std::vector<std::vector<double>> mips_cells;
    for (const Row &row : rows) {
        harness::RunSpec spec = bench::spec(row.configId);
        spec.eventSkip = row.eventSkip;
        double insts =
            static_cast<double>(spec.warmup + spec.instructions);

        config_names.emplace_back(row.name);
        mips_cells.emplace_back();
        double total_seconds = 0.0;
        for (size_t i = 0; i < workloads.size(); ++i) {
            double seconds = timeOne(workloads[i], spec, *programs[i]);
            total_seconds += seconds;
            mips_cells.back().push_back(
                seconds > 0.0 ? insts / seconds / 1e6 : 0.0);
        }
        double total_insts = insts * static_cast<double>(workloads.size());
        mips_cells.back().push_back(
            total_seconds > 0.0 ? total_insts / total_seconds / 1e6 : 0.0);
    }

    harness::printMatrix("Host simulation speed (MIPS; higher is faster)",
                         config_names, columns, mips_cells);

    std::printf(
        "\nReading: skip rows vs their -noskip twins isolate the\n"
        "event-driven scheduler's contribution; compare whole artifacts\n"
        "across builds for core-change speedups (EXPERIMENTS.md records\n"
        "the committed baseline).\n");
    return 0;
}
