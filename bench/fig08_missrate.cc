/**
 * @file
 * Figure 8: per-workload L1I miss ratio, each configuration individually
 * sorted (s-curves), printed as percentiles. Includes the no-prefetch
 * baseline ("no").
 */

#include "bench_common.hh"

using namespace eip;

int
main()
{
    bench::banner("Fig. 8", "L1I miss ratio across workloads");

    auto workloads = bench::suite(3);

    std::vector<std::string> configs = {"none"};
    for (const auto &id : prefetch::mainLineup())
        configs.push_back(id);

    std::vector<std::string> names;
    std::vector<std::vector<double>> series;
    for (const auto &id : configs) {
        auto results = harness::runSuite(workloads, bench::spec(id));
        names.push_back(results.front().configName);
        series.push_back(harness::collect(results, [](const auto &r) {
            return r.stats.l1i.missRatio();
        }));
    }
    harness::printSortedSeries("L1I miss ratio (sorted per config)", names,
                               series);

    std::printf(
        "\nExpected shape (paper Fig. 8): Entangling reduces the miss\n"
        "ratio drastically across the whole curve; its worst case stays\n"
        "far below the other prefetchers' worst cases (~5-10%% vs >20%%).\n");
    return 0;
}
