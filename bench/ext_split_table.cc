/**
 * @file
 * Extension study (the paper's §III-C3 closing future-work remark):
 * storing basic-block sizes and entangled pairs in separate structures
 * instead of the unified Entangled table, at matched low budgets. The
 * bb-size side table costs 16 bits/entry versus 79 for a unified entry,
 * so a split design tracks far more basic blocks per kilobyte.
 */

#include "bench_common.hh"
#include "core/entangling.hh"
#include "sim/cpu.hh"

using namespace eip;

namespace {

struct Outcome
{
    std::string name;
    double kb;
    double geo;
    double coverage_mean;
};

Outcome
evaluate(const core::EntanglingConfig &cfg,
         const std::vector<trace::Workload> &workloads,
         const std::vector<harness::RunResult> &baseline)
{
    Outcome out;
    std::vector<double> ratios, covers;
    harness::RunSpec spec = harness::RunSpec::defaultSpec();
    for (size_t i = 0; i < workloads.size(); ++i) {
        core::EntanglingPrefetcher pf(cfg);
        sim::SimConfig sim_cfg;
        sim::Cpu cpu(sim_cfg);
        cpu.attachL1iPrefetcher(&pf);
        trace::Program prog = trace::buildProgram(workloads[i].program);
        trace::Executor exec(prog, workloads[i].exec);
        sim::SimStats stats =
            cpu.run(exec, spec.instructions, spec.warmup);
        ratios.push_back(stats.ipc() / baseline[i].stats.ipc());
        covers.push_back(stats.l1i.coverage());
        if (i == 0) {
            out.name = pf.name();
            out.kb = pf.storageBits() / 8.0 / 1024.0;
        }
    }
    out.geo = geomean(ratios);
    out.coverage_mean = mean(covers);
    return out;
}

} // namespace

int
main()
{
    bench::banner("Extension",
                  "unified vs split basic-block/pair storage (low budget)");

    auto workloads = bench::suite(2);
    auto baseline = harness::runSuite(workloads, bench::spec("none"));

    std::vector<core::EntanglingConfig> configs;
    configs.push_back(core::EntanglingConfig::preset2K());
    configs.push_back(core::EntanglingConfig::presetSplit2K());
    {
        // An even smaller pair table with a large bb-size side table.
        core::EntanglingConfig tiny = core::EntanglingConfig::presetSplit2K();
        tiny.tableEntries = 512;
        tiny.splitBbEntries = 8192;
        configs.push_back(tiny);
    }
    configs.push_back(core::EntanglingConfig::preset4K());
    {
        core::EntanglingConfig split4k = core::EntanglingConfig::preset4K();
        split4k.tableEntries = 2048;
        split4k.splitBbEntries = 8192;
        split4k.mergeDistance = 15;
        configs.push_back(split4k);
    }

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    table.cell(std::string("storage-KB"));
    table.cell(std::string("speedup-%"));
    table.cell(std::string("mean coverage"));
    for (const auto &cfg : configs) {
        Outcome o = evaluate(cfg, workloads, baseline);
        table.newRow();
        table.cell(o.name);
        table.cell(o.kb, 2);
        table.cell((o.geo - 1.0) * 100.0, 2);
        table.cell(o.coverage_mean, 3);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper §III-C3 future work): at the low-budget\n"
        "point, splitting sizes from pairs buys more tracked basic blocks\n"
        "per kilobyte and matches or beats the unified organisation; the\n"
        "advantage fades at larger budgets where the unified table is no\n"
        "longer capacity-bound.\n");
    return 0;
}
