/**
 * @file
 * google-benchmark microbenchmarks of the hardware-structure models: the
 * Entangled table, the History buffer, the destination compression, the
 * cache, and the synthetic trace executor. These guard the simulation
 * speed the figure benches depend on.
 */

#include <benchmark/benchmark.h>

#include "core/entangled_table.hh"
#include "core/entangling.hh"
#include "core/history_buffer.hh"
#include "sim/cache.hh"
#include "sim/dram.hh"
#include "trace/executor.hh"
#include "trace/workloads.hh"
#include "util/rng.hh"

using namespace eip;

namespace {

void
BM_EntangledTableLookup(benchmark::State &state)
{
    core::EntangledTable table(
        static_cast<uint32_t>(state.range(0)), 16,
        core::CompressionScheme::virtualScheme());
    Rng rng(1);
    for (int i = 0; i < 2000; ++i)
        table.recordBasicBlock(rng.below(1 << 20), 3);
    uint64_t line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.find(line));
        line = (line + 97) & ((1 << 20) - 1);
    }
}
BENCHMARK(BM_EntangledTableLookup)->Arg(2048)->Arg(4096)->Arg(8192);

void
BM_EntangledTableAddPair(benchmark::State &state)
{
    core::EntangledTable table(4096, 16,
                               core::CompressionScheme::virtualScheme());
    Rng rng(2);
    for (auto _ : state) {
        sim::Addr src = rng.below(1 << 18);
        table.addPair(src, src + 1 + rng.below(128), true);
    }
}
BENCHMARK(BM_EntangledTableAddPair);

void
BM_HistoryBufferPushWalk(benchmark::State &state)
{
    core::HistoryBuffer hist(16, 20);
    uint64_t cycle = 0;
    for (auto _ : state) {
        hist.push(cycle & 0xffff, cycle);
        benchmark::DoNotOptimize(hist.walkBackwards(
            hist.newest(), 16, [&](core::HistoryEntry &e) {
                return hist.age(e.timestamp, cycle) >= 100;
            }));
        cycle += 13;
    }
}
BENCHMARK(BM_HistoryBufferPushWalk);

void
BM_DestinationInsert(benchmark::State &state)
{
    core::DestinationArray arr(core::CompressionScheme::virtualScheme());
    Rng rng(3);
    sim::Addr src = 0x40000;
    for (auto _ : state) {
        arr.insert(src, src + 1 + rng.below(200), true);
    }
}
BENCHMARK(BM_DestinationInsert);

void
BM_CacheDemandAccess(benchmark::State &state)
{
    sim::CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    cfg.ways = 8;
    cfg.mshrEntries = 10;
    sim::Cache cache(cfg);
    sim::Dram dram(200, 0);
    cache.setDram(&dram);
    Rng rng(4);
    sim::Cycle now = 0;
    for (auto _ : state) {
        now += 2;
        benchmark::DoNotOptimize(
            cache.demandAccess(rng.below(2048), 0, now));
    }
}
BENCHMARK(BM_CacheDemandAccess);

void
BM_TraceExecutor(benchmark::State &state)
{
    trace::Workload w = trace::tinyWorkload();
    trace::Program prog = trace::buildProgram(w.program);
    trace::Executor exec(prog, w.exec);
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.next());
}
BENCHMARK(BM_TraceExecutor);

void
BM_EntanglingOperateHook(benchmark::State &state)
{
    core::EntanglingPrefetcher pf(core::EntanglingConfig::preset4K());
    sim::CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    cfg.pqEntries = 32;
    sim::Cache host(cfg);
    sim::Dram dram(200, 0);
    host.setDram(&dram);
    pf.attach(host);

    Rng rng(5);
    sim::Cycle now = 0;
    for (auto _ : state) {
        now += 3;
        sim::CacheOperateInfo info;
        info.line = rng.below(1 << 14);
        info.cycle = now;
        info.hit = rng.chance(0.8);
        pf.onCacheOperate(info);
        if (!info.hit) {
            sim::CacheFillInfo fill;
            fill.line = info.line;
            fill.cycle = now + 40;
            fill.demandHappened = true;
            pf.onCacheFill(fill);
        }
        host.tick(now);
    }
}
BENCHMARK(BM_EntanglingOperateHook);

} // namespace

BENCHMARK_MAIN();
