/**
 * @file
 * Shared helpers for the figure/table benches: standard suites, run specs
 * honouring the EIP_SIM_SCALE environment knob, and common headers/format.
 *
 * Every bench regenerates one table or figure of the paper (see DESIGN.md
 * for the experiment index) and prints the series it plots. Absolute
 * numbers come from our simulator and synthetic traces; EXPERIMENTS.md
 * records how the shapes compare against the paper.
 */

#ifndef EIP_BENCH_COMMON_HH
#define EIP_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec/jobs.hh"
#include "exec/program_cache.hh"
#include "harness/artifacts.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "prefetch/factory.hh"
#include "trace/workloads.hh"
#include "util/env.hh"
#include "util/stats_math.hh"
#include "util/table_printer.hh"

namespace eip::bench {

namespace detail {

inline std::chrono::steady_clock::time_point &
benchStart()
{
    static std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    return start;
}

/** Bench name as given to banner() (for the exit-time artifact). */
inline std::string &
benchName()
{
    static std::string name;
    return name;
}

/** Job count resolved once by banner(); the exit-time report must not
 *  re-parse EIP_JOBS (a malformed value is fatal, and a fatal inside an
 *  atexit handler would re-enter exit). */
inline unsigned &
benchJobs()
{
    static unsigned jobs = 1;
    return jobs;
}

/** BENCH_<name>.json in the current directory (or EIP_BENCH_ARTIFACT_DIR):
 *  non-alphanumeric characters of the bench name become '_'. */
inline std::string
benchArtifactPath()
{
    std::string file = "BENCH_";
    for (char c : benchName()) {
        bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
        file += word ? c : '_';
    }
    file += ".json";
    const char *dir = std::getenv("EIP_BENCH_ARTIFACT_DIR");
    if (dir != nullptr && *dir != '\0')
        return std::string(dir) + "/" + file;
    return file;
}

/** atexit hook installed by banner(): every bench reports its total
 *  wall-clock and the worker count without any per-bench code, and
 *  writes its printed tables (the report log) as a machine-readable
 *  eip-bench/v1 artifact. The result tables themselves are invariant
 *  under the job count. */
inline void
printWallClock()
{
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - benchStart())
                         .count();
    const exec::ProgramCache &cache = exec::ProgramCache::global();
    std::printf("\n[wall-clock %.2fs, jobs=%u, program cache: %llu "
                "builds, %llu hits]\n",
                seconds, benchJobs(),
                static_cast<unsigned long long>(cache.builds()),
                static_cast<unsigned long long>(cache.hits()));

    obs::JsonWriter json;
    json.beginObject();
    json.kv("schema", obs::kBenchSchema);
    json.kv("bench", benchName());
    json.kv("git_describe", obs::buildGitDescribe());
    json.kv("sim_scale", util::envDouble("EIP_SIM_SCALE").value_or(1.0));
    json.key("tables").beginArray();
    for (const harness::ReportRecord &record : harness::reportLog()) {
        json.beginObject();
        json.kv("title", record.title);
        json.key("columns").beginArray();
        for (const std::string &col : record.columns)
            json.value(col);
        json.endArray();
        json.key("rows").beginArray();
        for (size_t c = 0; c < record.configs.size(); ++c) {
            json.beginObject();
            json.kv("config", record.configs[c]);
            json.key("values").beginArray();
            for (double v : record.cells[c])
                json.value(v);
            json.endArray();
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    // Environment-dependent timing last (mirrors the run manifest).
    json.kv("wall_clock_seconds", seconds);
    json.kv("jobs", benchJobs());
    json.endObject();
    harness::writeTextFile(benchArtifactPath(), json.str() + "\n");
}

} // namespace detail

/** Print the standard bench banner (and arm the exit-time wall-clock +
 *  jobs report). */
inline void
banner(const char *figure, const char *what)
{
    // Resolve the knob before arming the atexit report: a malformed
    // EIP_JOBS dies here, cleanly, with no handler installed yet.
    detail::benchJobs() = exec::defaultJobs();
    detail::benchStart() = std::chrono::steady_clock::now();
    detail::benchName() = figure;
    std::atexit(detail::printWallClock);
    std::printf("=====================================================\n");
    std::printf("%s — %s\n", figure, what);
    std::printf("(shape reproduction; see EXPERIMENTS.md for the "
                "paper-vs-measured record; jobs=%u, set EIP_JOBS to "
                "override)\n",
                detail::benchJobs());
    std::printf("=====================================================\n");
}

/** Default spec with the EIP_SIM_SCALE env knob applied. */
inline harness::RunSpec
spec(const std::string &config_id)
{
    harness::RunSpec s = harness::RunSpec::defaultSpec();
    s.configId = config_id;
    return s;
}

/** The CVP-like suite used by most figures. */
inline std::vector<trace::Workload>
suite(int seeds_per_category = 2)
{
    return trace::cvpSuite(seeds_per_category);
}

/** Normalized-IPC helper. */
inline std::vector<double>
normalizedIpc(const std::vector<harness::RunResult> &results,
              const std::vector<harness::RunResult> &baseline)
{
    std::vector<double> out;
    out.reserve(results.size());
    for (size_t i = 0; i < results.size(); ++i)
        out.push_back(results[i].stats.ipc() / baseline[i].stats.ipc());
    return out;
}

} // namespace eip::bench

#endif // EIP_BENCH_COMMON_HH
