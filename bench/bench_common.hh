/**
 * @file
 * Shared helpers for the figure/table benches: standard suites, run specs
 * honouring the EIP_SIM_SCALE environment knob, and common headers/format.
 *
 * Every bench regenerates one table or figure of the paper (see DESIGN.md
 * for the experiment index) and prints the series it plots. Absolute
 * numbers come from our simulator and synthetic traces; EXPERIMENTS.md
 * records how the shapes compare against the paper.
 */

#ifndef EIP_BENCH_COMMON_HH
#define EIP_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "prefetch/factory.hh"
#include "trace/workloads.hh"
#include "util/stats_math.hh"
#include "util/table_printer.hh"

namespace eip::bench {

/** Print the standard bench banner. */
inline void
banner(const char *figure, const char *what)
{
    std::printf("=====================================================\n");
    std::printf("%s — %s\n", figure, what);
    std::printf("(shape reproduction; see EXPERIMENTS.md for the "
                "paper-vs-measured record)\n");
    std::printf("=====================================================\n");
}

/** Default spec with the EIP_SIM_SCALE env knob applied. */
inline harness::RunSpec
spec(const std::string &config_id)
{
    harness::RunSpec s = harness::RunSpec::defaultSpec();
    s.configId = config_id;
    return s;
}

/** The CVP-like suite used by most figures. */
inline std::vector<trace::Workload>
suite(int seeds_per_category = 2)
{
    return trace::cvpSuite(seeds_per_category);
}

/** Normalized-IPC helper. */
inline std::vector<double>
normalizedIpc(const std::vector<harness::RunResult> &results,
              const std::vector<harness::RunResult> &baseline)
{
    std::vector<double> out;
    out.reserve(results.size());
    for (size_t i = 0; i < results.size(); ++i)
        out.push_back(results[i].stats.ipc() / baseline[i].stats.ipc());
    return out;
}

} // namespace eip::bench

#endif // EIP_BENCH_COMMON_HH
