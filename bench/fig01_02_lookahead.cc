/**
 * @file
 * Figures 1 and 2 (motivation): a fixed look-ahead distance cannot serve
 * all L1I misses timely.
 *
 * Fig. 1 — fraction of timely prefetches vs look-ahead distance (in taken
 * branches), measured by an oracle that tracks each miss's latency on the
 * no-prefetch baseline.
 * Fig. 2 — accuracy of a fixed-distance discontinuity prefetcher as the
 * distance grows.
 */

#include "bench_common.hh"
#include "prefetch/lookahead.hh"
#include "sim/cpu.hh"

using namespace eip;

namespace {

/** Run the no-prefetch baseline with the oracle attached. */
prefetch::LookaheadOracle
runOracle(const trace::Workload &w, const harness::RunSpec &s)
{
    prefetch::LookaheadOracle oracle;
    sim::SimConfig cfg;
    sim::Cpu cpu(cfg);
    cpu.attachL1iPrefetcher(&oracle);
    trace::Program prog = trace::buildProgram(w.program);
    trace::Executor exec(prog, w.exec);
    cpu.run(exec, s.instructions, s.warmup);
    return oracle;
}

/** Run the fixed-distance look-ahead prefetcher; returns (accuracy, ipc). */
std::pair<double, double>
runLookahead(const trace::Workload &w, unsigned distance,
             const harness::RunSpec &s)
{
    prefetch::LookaheadPrefetcher pf(distance);
    sim::SimConfig cfg;
    sim::Cpu cpu(cfg);
    cpu.attachL1iPrefetcher(&pf);
    trace::Program prog = trace::buildProgram(w.program);
    trace::Executor exec(prog, w.exec);
    sim::SimStats stats = cpu.run(exec, s.instructions, s.warmup);
    return {stats.l1i.accuracy(), stats.ipc()};
}

} // namespace

int
main()
{
    bench::banner("Fig. 1 / Fig. 2",
                  "timeliness and accuracy vs fixed look-ahead distance");

    auto workloads = bench::suite(2);
    harness::RunSpec s = bench::spec("none");

    // ---- Figure 1: oracle timely fraction per distance. ----
    std::printf("\nFig. 1: fraction of timely prefetches at look-ahead "
                "distance d (oracle, per workload)\n");
    TablePrinter fig1;
    fig1.newRow();
    fig1.cell(std::string("workload"));
    for (unsigned d = 1; d <= 10; ++d)
        fig1.cell(std::string("d=") + std::to_string(d));
    for (const auto &w : workloads) {
        prefetch::LookaheadOracle oracle = runOracle(w, s);
        fig1.newRow();
        fig1.cell(w.name);
        for (unsigned d = 1; d <= 10; ++d)
            fig1.cell(oracle.timelyFraction(d), 3);
    }
    fig1.print();
    std::printf("Expected shape: no single distance serves all misses; a "
                "tail needs d > 10 (paper Fig. 1).\n");

    // ---- Figure 2: accuracy vs distance. ----
    std::printf("\nFig. 2: accuracy of a fixed look-ahead prefetcher vs "
                "distance\n");
    TablePrinter fig2;
    fig2.newRow();
    fig2.cell(std::string("workload"));
    for (unsigned d : {1u, 2u, 4u, 6u, 8u, 10u})
        fig2.cell(std::string("d=") + std::to_string(d));
    for (const auto &w : workloads) {
        fig2.newRow();
        fig2.cell(w.name);
        for (unsigned d : {1u, 2u, 4u, 6u, 8u, 10u})
            fig2.cell(runLookahead(w, d, s).first, 3);
    }
    fig2.print();
    std::printf("Expected shape: accuracy degrades as the distance grows "
                "(paper Fig. 2, up to ~10%% loss from d=1 to d=10).\n");
    return 0;
}
