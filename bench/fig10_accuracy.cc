/**
 * @file
 * Figure 10: per-workload prefetcher accuracy (useful / issued), each
 * configuration individually sorted, as percentiles.
 */

#include "bench_common.hh"

using namespace eip;

int
main()
{
    bench::banner("Fig. 10", "prefetcher accuracy across workloads");

    auto workloads = bench::suite(3);

    std::vector<std::string> names;
    std::vector<std::vector<double>> series;
    for (const auto &id : prefetch::mainLineup()) {
        auto results = harness::runSuite(workloads, bench::spec(id));
        names.push_back(results.front().configName);
        series.push_back(harness::collect(results, [](const auto &r) {
            return r.stats.l1i.accuracy();
        }));
    }
    harness::printSortedSeries("accuracy (sorted per config)", names,
                               series);

    std::printf(
        "\nExpected shape (paper Fig. 10): Entangling achieves the\n"
        "highest accuracy (above 50%% for most workloads); NextLine the\n"
        "lowest; RDIP and MANA mostly below 50%%.\n");
    return 0;
}
