/**
 * @file
 * Figure 6: geometric-mean IPC (normalized to the no-prefetch baseline)
 * versus storage requirements, for every evaluated prefetcher plus the
 * larger-L1I configurations and the Ideal cache. Pass --config to print
 * the Table III system configuration instead.
 */

#include <cstring>

#include "bench_common.hh"
#include "sim/config.hh"

using namespace eip;

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--config") == 0) {
        std::printf("Table III — simulated system configuration\n%s",
                    sim::SimConfig{}.describe().c_str());
        return 0;
    }

    bench::banner("Fig. 6", "IPC vs storage for all prefetchers");

    auto workloads = bench::suite(3);
    auto baseline = harness::runSuite(workloads, bench::spec("none"));

    std::vector<std::string> configs = prefetch::figure6Lineup();
    configs.emplace_back("l1i-64kb");
    configs.emplace_back("l1i-96kb");
    configs.emplace_back("ideal");

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    table.cell(std::string("storage-KB"));
    table.cell(std::string("geomean-IPC(norm)"));
    table.cell(std::string("speedup-%"));

    for (const auto &id : configs) {
        auto results = harness::runSuite(workloads, bench::spec(id));
        double geo = harness::geomeanSpeedup(results, baseline);
        table.newRow();
        table.cell(results.front().configName);
        table.cell(results.front().storageKB, 2);
        table.cell(geo, 4);
        table.cell((geo - 1.0) * 100.0, 2);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper Fig. 6): Entangling-4K offers the best\n"
        "area/performance balance among <64KB prefetchers; Entangling-8K\n"
        "approaches the Ideal cache; low-budget Entangling-2K outperforms\n"
        "the MANA configurations; larger L1I alone is less effective than\n"
        "prefetching at equal budget.\n");
    return 0;
}
