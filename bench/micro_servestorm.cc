/**
 * @file
 * Request storm against an in-process eipd daemon: the fig06-shaped
 * suite (prefetcher lineup x CVP workloads) replayed three times over
 * the eip-serve/v1 socket protocol — one cold round that simulates
 * every point, then two warm rounds that mix the same hot keys with a
 * few cold extras. Publishes served-QPS and cache hit-rate per round
 * to BENCH_servestorm.json, and gates on the subsystem's two promises:
 * warm rounds are >= 90% cache-served, and every cache-served artifact
 * is bit-identical (empty eipdiff allow-list; artifacts carry no
 * timing fields by construction) both to its cold-simulated twin and
 * to an in-process harness::runJobArtifact reference.
 *
 * The daemon runs small (two dispatchers, queue depth 16) so the storm
 * also exercises backpressure: rejected submits are retried and the
 * retry count is reported alongside the throughput numbers.
 */

#include <cstdint>
#include <map>
#include <thread>

#include <unistd.h>

#include "bench_common.hh"
#include "check/diff.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"

using namespace eip;

namespace {

/** One storm point: a submit request plus its display label. */
struct Point
{
    serve::RunRequest run;
    std::string label;
};

/** The fig06 shape at storm scale: a representative slice of the
 *  Figure 6 lineup (baseline, a simple scheme, two Entangling sizes,
 *  and the two non-prefetcher cache configs) over the CVP suite. */
std::vector<Point>
stormPoints()
{
    const char *configs[] = {"none",          "nextline", "entangling-2k",
                             "entangling-4k", "ideal",    "l1i-64kb"};
    std::vector<Point> points;
    for (const trace::Workload &w : trace::cvpSuite(2)) {
        for (const char *cfg : configs) {
            serve::RunRequest run;
            run.workload = w.name;
            run.prefetcher = cfg;
            run.instructions = 60000;
            run.warmup = 30000;
            points.push_back({run, w.name + "/" + cfg});
        }
    }
    return points;
}

/** Cold extras mixed into warm round @p round: tiny-workload requests
 *  whose instruction budgets no earlier round used, so their keys miss. */
std::vector<Point>
coldExtras(int round)
{
    std::vector<Point> points;
    for (int i = 0; i < 4; ++i) {
        serve::RunRequest run;
        run.workload = "tiny";
        run.instructions = 20000 + 1000 * round + i;
        run.warmup = 10000;
        points.push_back(
            {run, "tiny/extra-r" + std::to_string(round) + "-" +
                      std::to_string(i)});
    }
    return points;
}

struct RoundOutcome
{
    double seconds = 0.0;
    uint64_t cacheServed = 0;
    uint64_t simulated = 0;
    uint64_t retries = 0; ///< backpressure rejections, all retried
    /** label -> exact artifact bytes, fetched after completion. */
    std::map<std::string, std::string> artifacts;

    double
    hitPercent() const
    {
        uint64_t total = cacheServed + simulated;
        return total == 0 ? 0.0
                          : 100.0 * static_cast<double>(cacheServed) /
                                static_cast<double>(total);
    }
};

[[noreturn]] void
die(const std::string &what, const std::string &error)
{
    std::fprintf(stderr, "servestorm: %s: %s\n", what.c_str(),
                 error.c_str());
    std::exit(1);
}

/** Fire every point at the daemon (submit-all then drain) and fetch
 *  the resulting artifacts. Rejected submits back off and retry. */
RoundOutcome
runRound(serve::Client &client, const std::vector<Point> &points)
{
    RoundOutcome outcome;
    auto start = std::chrono::steady_clock::now();

    std::vector<std::pair<uint64_t, const Point *>> jobs;
    jobs.reserve(points.size());
    for (const Point &point : points) {
        serve::SubmitOutcome submit;
        std::string error;
        for (;;) {
            if (!client.submit(point.run, submit, &error))
                die("submit " + point.label, error);
            if (!submit.rejected)
                break;
            ++outcome.retries;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        if (!submit.accepted)
            die("submit " + point.label, submit.error);
        if (submit.served == "cache")
            ++outcome.cacheServed;
        else
            ++outcome.simulated;
        jobs.emplace_back(submit.job, &point);
    }

    for (const auto &[id, point] : jobs) {
        serve::JobView view;
        std::string error;
        if (!client.waitTerminal(id, view, 120.0, &error))
            die("wait " + point->label, error);
        if (view.state != "done")
            die("job " + point->label, view.error);
        if (!client.fetch(id, view, &error))
            die("fetch " + point->label, error);
        outcome.artifacts[point->label] = view.artifact;
    }

    outcome.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    return outcome;
}

/** The artifact an in-process run (no daemon, no fork) produces for
 *  @p run — the reference the served bytes must match exactly. */
std::string
inProcessReference(const serve::RunRequest &run)
{
    trace::Workload workload;
    if (!harness::findWorkload(run.workload, workload))
        die("reference", "unknown workload " + run.workload);
    harness::RunJob job{workload, serve::toRunSpec(run)};
    return harness::runJobArtifact(job).json;
}

} // namespace

int
main()
{
    bench::banner("servestorm",
                  "eipd request storm: served-QPS and cache hit-rate");

    serve::DaemonOptions options;
    options.socketPath =
        "/tmp/eip_servestorm_" + std::to_string(getpid()) + ".sock";
    options.workers = 2;
    options.queueDepth = 16;
    serve::Daemon daemon(options);
    std::string error;
    if (!daemon.start(&error))
        die("daemon start", error);

    serve::Client client;
    if (!client.connect(options.socketPath, &error))
        die("connect", error);

    const std::vector<Point> storm = stormPoints();
    std::printf("storm: %zu points/round (workers=%u queue=%zu), "
                "1 cold + 2 warm rounds\n",
                storm.size(), options.workers, options.queueDepth);

    std::vector<std::string> round_names;
    std::vector<RoundOutcome> rounds;
    round_names.emplace_back("cold");
    rounds.push_back(runRound(client, storm));
    for (int warm = 1; warm <= 2; ++warm) {
        std::vector<Point> mixed = storm;
        for (Point &extra : coldExtras(warm))
            mixed.push_back(std::move(extra));
        round_names.push_back("warm-" + std::to_string(warm));
        rounds.push_back(runRound(client, mixed));
    }

    const std::vector<std::string> columns = {
        "points",    "seconds", "served_qps",         "cache_served",
        "simulated", "hit_pct", "backpressure_retry",
    };
    std::vector<std::vector<double>> cells;
    for (const RoundOutcome &round : rounds) {
        double points = static_cast<double>(round.cacheServed +
                                            round.simulated);
        cells.push_back({points, round.seconds,
                         round.seconds > 0.0 ? points / round.seconds : 0.0,
                         static_cast<double>(round.cacheServed),
                         static_cast<double>(round.simulated),
                         round.hitPercent(),
                         static_cast<double>(round.retries)});
    }
    harness::printMatrix("Request storm (eip-serve/v1 over AF_UNIX)",
                         round_names, columns, cells);

    // Gate 1: warm rounds are served, not simulated.
    bool ok = true;
    for (size_t r = 1; r < rounds.size(); ++r) {
        if (rounds[r].hitPercent() < 90.0) {
            std::fprintf(stderr,
                         "servestorm: %s hit rate %.1f%% below the 90%% "
                         "gate\n",
                         round_names[r].c_str(), rounds[r].hitPercent());
            ok = false;
        }
    }

    // Gate 2: cache-served bytes are bit-identical to the cold
    // simulation's, and the daemon pipeline (fork, pipe, cache, JSON
    // string round-trip) matches an in-process run exactly. Empty
    // allow-list: artifacts carry no timing fields.
    check::DiffRunner diff;
    const std::vector<std::string> no_allowances;
    for (const auto &[label, artifact] : rounds[1].artifacts) {
        auto cold = rounds[0].artifacts.find(label);
        if (cold == rounds[0].artifacts.end())
            continue; // a warm-round cold extra; no cold twin
        diff.compare("warm-vs-cold " + label, cold->second, artifact,
                     no_allowances);
    }
    for (size_t i = 0; i < storm.size(); i += 8) {
        const Point &point = storm[i];
        diff.compare("daemon-vs-inprocess " + point.label,
                     rounds[0].artifacts.at(point.label),
                     inProcessReference(point.run), no_allowances);
    }
    std::printf("\n%s", diff.report().c_str());
    if (!diff.allClean())
        ok = false;

    std::string stats = daemon.statsJson();
    std::printf("\nstats: %s\n", stats.c_str());

    if (!client.shutdown(&error))
        die("shutdown", error);
    client.close();
    daemon.waitStopRequested();
    daemon.stop();

    if (!ok) {
        std::fprintf(stderr, "servestorm: FAILED\n");
        return 1;
    }
    std::printf("\nservestorm: warm rounds cache-served and "
                "bit-identical (see BENCH_servestorm.json)\n");
    return 0;
}
