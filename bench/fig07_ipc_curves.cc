/**
 * @file
 * Figure 7: per-workload IPC normalized to the no-prefetch baseline, each
 * configuration's series individually sorted ascending (the paper's
 * s-curve layout), printed as percentiles.
 */

#include "bench_common.hh"

using namespace eip;

int
main()
{
    bench::banner("Fig. 7", "normalized IPC across workloads (s-curves)");

    auto workloads = bench::suite(3);
    auto baseline = harness::runSuite(workloads, bench::spec("none"));

    std::vector<std::string> configs = prefetch::mainLineup();
    configs.emplace_back("ideal");

    std::vector<std::string> names;
    std::vector<std::vector<double>> series;
    for (const auto &id : configs) {
        auto results = harness::runSuite(workloads, bench::spec(id));
        names.push_back(results.front().configName);
        series.push_back(bench::normalizedIpc(results, baseline));
    }
    harness::printSortedSeries("normalized IPC (sorted per config)", names,
                               series);

    std::printf(
        "\nExpected shape (paper Fig. 7): both Entangling configurations\n"
        "dominate the other prefetchers across the curve; Entangling-4K\n"
        "tracks the ideal closely for most workloads; the minimum stays\n"
        ">= 1.0 (no workload is degraded), unlike NextLine.\n");
    return 0;
}
