/**
 * @file
 * Figure 11: breakdown of the contributions to performance. For each of
 * the three Entangled-table sizes, the ablation variants are compared:
 *   BB            — prefetch the current basic block only
 *   BBEnt         — + entangled destination lines
 *   BBEntBB       — + the destinations' whole basic blocks
 *   Ent           — entangle every line, no basic blocks
 *   BBEntBB-Merge — the full proposal (+ spatio-temporal merging)
 */

#include "bench_common.hh"

using namespace eip;

int
main()
{
    bench::banner("Fig. 11", "ablation of the Entangling mechanisms");

    auto workloads = bench::suite(2);
    auto baseline = harness::runSuite(workloads, bench::spec("none"));

    const char *variants[] = {"bb", "ent", "bbent", "bbentbb", "entangling"};
    const char *labels[] = {"BB", "Ent", "BBEnt", "BBEntBB",
                            "BBEntBB-Merge"};
    const char *sizes[] = {"2k", "4k", "8k"};

    TablePrinter table;
    table.newRow();
    table.cell(std::string("variant"));
    for (const char *size : sizes)
        table.cell(std::string("speedup-") + size + "-%");

    for (size_t v = 0; v < std::size(variants); ++v) {
        table.newRow();
        table.cell(std::string(labels[v]));
        for (const char *size : sizes) {
            std::string id = std::string(variants[v]) + "-" + size;
            auto results = harness::runSuite(workloads, bench::spec(id));
            double geo = harness::geomeanSpeedup(results, baseline);
            table.cell((geo - 1.0) * 100.0, 2);
        }
    }
    table.print();

    std::printf(
        "\nExpected shape (paper Fig. 11): the key gains come from\n"
        "entangling (BBEnt >> BB); prefetching destination basic blocks\n"
        "adds further gains (BBEntBB); merging matters most for the 2K\n"
        "budget; Ent (no basic blocks) underperforms the BB-based\n"
        "variants.\n");
    return 0;
}
