/**
 * @file
 * Figure 16: normalized IPC for the CloudSuite-like applications
 * (cassandra, cloud9, nutch, streaming) under the sub-64KB prefetcher
 * line-up plus the ideal cache.
 */

#include "bench_common.hh"

using namespace eip;

int
main()
{
    bench::banner("Fig. 16", "CloudSuite-like applications");

    auto workloads = trace::cloudSuite();
    auto baseline = harness::runSuite(workloads, bench::spec("none"));

    std::vector<std::string> configs = {"nextline",      "sn4l",
                                        "mana-2k",       "mana-4k",
                                        "entangling-2k", "entangling-4k",
                                        "ideal"};

    TablePrinter table;
    table.newRow();
    table.cell(std::string("config"));
    for (const auto &w : workloads)
        table.cell(w.name);

    for (const auto &id : configs) {
        auto results = harness::runSuite(workloads, bench::spec(id));
        table.newRow();
        table.cell(results.front().configName);
        for (size_t i = 0; i < results.size(); ++i)
            table.cell(results[i].stats.ipc() / baseline[i].stats.ipc(), 3);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper Fig. 16): the Entangling prefetcher\n"
        "outperforms the other evaluated prefetchers on every CloudSuite\n"
        "application, approaching the ideal cache.\n");
    return 0;
}
