#!/usr/bin/env python3
"""Generate a small, deterministic ChampSim-format trace fixture.

Emits the 64-byte little-endian ``input_instr`` records of the public
DPC-3/IPC-1 trace format:

    uint64 ip; uint8 is_branch; uint8 branch_taken;
    uint8 destination_registers[2]; uint8 source_registers[4];
    uint64 destination_memory[2];   uint64 source_memory[4];

The generated stream walks a synthetic multi-function program so every
branch class of the ChampSim register-pattern taxonomy appears (direct /
indirect jumps and calls, conditionals taken and not-taken, returns),
instruction sizes vary (recoverable from consecutive ips), and loads and
stores are mixed in. Everything is derived from the seed — no wall
clock, no os.urandom — so the committed fixture can be regenerated
bit-identically.

The output extension picks the container: ``.champsimtrace`` (raw),
``.champsimtrace.xz``, or ``.champsimtrace.gz`` (Python's lzma/gzip
modules; no external tools needed).

Usage:
    scripts/make_champsim_fixture.py tests/data/fixture.champsimtrace.xz
    scripts/make_champsim_fixture.py out.champsimtrace --records 6000
"""

import argparse
import gzip
import lzma
import struct

REG_SP = 6
REG_FLAGS = 25
REG_IP = 26

FUNC_BASE = 0x400000
FUNC_STRIDE = 0x440
NUM_FUNCS = 128
# Function bodies span several cache lines and the visited set tops
# 50 KB — larger than a 32 KB L1I — so steady-state replay actually
# misses and the instruction prefetcher has something to learn.
SLOTS_PER_FUNC = 96
DATA_BASE = 0x10000000
MAX_STACK = 48


def pack_record(ip, is_branch=0, taken=0, dst=(), src=(), dmem=(), smem=()):
    dst = (list(dst) + [0, 0])[:2]
    src = (list(src) + [0, 0, 0, 0])[:4]
    dmem = (list(dmem) + [0, 0])[:2]
    smem = (list(smem) + [0, 0, 0, 0])[:4]
    return struct.pack("<QBB2B4B2Q4Q", ip, is_branch, taken,
                       *dst, *src, *dmem, *smem)


class Program:
    """Per-function instruction layout: (offset, size, role) triples."""

    SIZE_PATTERN = [3, 4, 2, 5, 6, 4, 7, 1, 4, 3, 5, 2]

    def __init__(self):
        self.funcs = []
        for f in range(NUM_FUNCS):
            offs, off = [], 0
            for s in range(SLOTS_PER_FUNC):
                size = self.SIZE_PATTERN[(f + s) % len(self.SIZE_PATTERN)]
                offs.append((off, size))
                off += size
            self.funcs.append(offs)

    def addr(self, func, slot):
        return FUNC_BASE + func * FUNC_STRIDE + self.funcs[func][slot][0]

    def size(self, func, slot):
        return self.funcs[func][slot][1]


def generate(count, seed):
    prog = Program()
    records = []
    func, slot = 0, 0
    root = 0  # rotates so every function is eventually visited
    stack = []  # (func, slot) return sites
    visits = {}  # per-branch-site toggle for conditional outcomes
    state = seed & 0xFFFFFFFFFFFFFFFF

    def rng():
        nonlocal state
        state = (state * 6364136223846793005 + 1442695040888963407) \
            % (1 << 64)
        return state >> 33

    while len(records) < count:
        ip = prog.addr(func, slot)
        # Slot roles, fixed per function shape (see module docstring).
        if slot % 24 == 5:
            # Conditional, skipping two slots when taken; outcome
            # alternates per site so both directions appear.
            key = (func, slot)
            visits[key] = visits.get(key, 0) + 1
            taken = visits[key] % 2
            records.append(pack_record(ip, 1, taken, dst=[REG_IP],
                                       src=[REG_FLAGS, REG_IP]))
            slot = slot + 3 if taken else slot + 1
        elif slot == 9 and len(stack) < MAX_STACK:
            # Direct call.
            callee = (func * 7 + 3) % NUM_FUNCS
            records.append(pack_record(ip, 1, 1, dst=[REG_SP, REG_IP],
                                       src=[REG_SP, REG_IP]))
            stack.append((func, slot + 1))
            func, slot = callee, 0
        elif slot == 13 and len(stack) < MAX_STACK:
            # Indirect call (reads a general register too).
            callee = (func * 13 + 5 + (rng() % 3)) % NUM_FUNCS
            records.append(pack_record(ip, 1, 1, dst=[REG_SP, REG_IP],
                                       src=[REG_SP, REG_IP, 1]))
            stack.append((func, slot + 1))
            func, slot = callee, 0
        elif slot % 24 == 17:
            # Backward conditional: loop 15 slots back every third visit.
            key = (func, slot)
            visits[key] = visits.get(key, 0) + 1
            taken = 1 if visits[key] % 3 == 0 else 0
            records.append(pack_record(ip, 1, taken, dst=[REG_IP],
                                       src=[REG_FLAGS, REG_IP]))
            slot = slot - 15 if taken else slot + 1
        elif slot == 20 and func % 11 == 0:
            # Occasional indirect jump (dispatcher-style).
            target = (func + 1 + (rng() % 5)) % NUM_FUNCS
            records.append(pack_record(ip, 1, 1, dst=[REG_IP], src=[2]))
            func, slot = target, 0
        elif slot == 21 and func % 13 == 0:
            # Occasional direct tail-jump into the next function.
            records.append(pack_record(ip, 1, 1, dst=[REG_IP]))
            func, slot = (func + 1) % NUM_FUNCS, 0
        elif slot == SLOTS_PER_FUNC - 1:
            # Return (to the caller, or restart at func 0 from the root).
            records.append(pack_record(ip, 1, 1, dst=[REG_SP, REG_IP],
                                       src=[REG_SP]))
            if stack:
                func, slot = stack.pop()
            else:
                root = (root + 1) % NUM_FUNCS
                func, slot = root, 0
        else:
            # Plain instruction; every few slots touch data memory.
            dmem, smem = (), ()
            if slot % 7 == 2:
                smem = [DATA_BASE + ((ip * 31) & 0xFFFF8)]
            elif slot % 7 == 4:
                dmem = [DATA_BASE + ((ip * 17) & 0xFFFF8)]
            records.append(pack_record(ip, dst=[1], src=[2, 3],
                                       dmem=dmem, smem=smem))
            slot += 1
    return b"".join(records)


def write(path, payload):
    if path.endswith(".xz"):
        # Fixed filter/preset so the compressed bytes are reproducible.
        data = lzma.compress(payload, preset=6)
    elif path.endswith(".gz"):
        data = gzip.compress(payload, compresslevel=6, mtime=0)
    else:
        data = payload
    with open(path, "wb") as f:
        f.write(data)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("output", help="*.champsimtrace[.xz|.gz] path")
    ap.add_argument("--records", type=int, default=24000,
                    help="number of 64-byte records (default 24000)")
    ap.add_argument("--seed", type=int, default=0xE1F,
                    help="deterministic generator seed")
    args = ap.parse_args()
    payload = generate(args.records, args.seed)
    write(args.output, payload)
    print("wrote %d records (%d raw bytes) to %s"
          % (args.records, len(payload), args.output))


if __name__ == "__main__":
    main()
