#!/usr/bin/env bash
# metrics-smoke: end-to-end exercise of the eipd flight recorder.
#
#   scripts/metrics_smoke.sh [BUILD_DIR]
#
# Starts an eipd daemon with structured logging, spans and the rolling
# metrics window enabled, drives a small storm covering every request
# outcome class (cold simulate, warm cache-serve, injected worker
# crash, queue-full rejection), then asserts the observability
# promises:
#
#   1. `eipc metrics --prom` is a well-formed Prometheus page whose
#      counters reflect the storm;
#   2. `eipc spans` returns an eip-trace/v1 serve document whose
#      terminal-state roll-ups reconcile EXACTLY against the daemon's
#      counters (`eiptrace SPANS --stats STATS` exits 0);
#   3. the daemon's stderr is pure eip-log/v1 NDJSON;
#   4. every scraped document validates against its schema;
#   5. a profiled single run (`eipsim --stats-json`) lands per-phase
#      wall time in the manifest (`phase_ms`).
#
# Artifacts land in metrics-smoke-artifacts/ (override with
# EIP_METRICS_SMOKE_DIR).
set -euo pipefail

BUILD_DIR="${1:-build}"
EIPD="$BUILD_DIR/src/tools/eipd"
EIPC="$BUILD_DIR/src/tools/eipc"
EIPSIM="$BUILD_DIR/src/tools/eipsim"
EIPTRACE="$BUILD_DIR/src/tools/eiptrace"
OUT="${EIP_METRICS_SMOKE_DIR:-metrics-smoke-artifacts}"
SOCK="${TMPDIR:-/tmp}/eip_metrics_smoke_$$.sock"
LOG="$OUT/eipd-log.ndjson"

for tool in "$EIPD" "$EIPC" "$EIPSIM" "$EIPTRACE"; do
    [ -x "$tool" ] || { echo "metrics-smoke: missing $tool" >&2; exit 1; }
done
mkdir -p "$OUT"

# Tight queue so the flood below sheds load; a wide metrics window so
# the whole storm stays inside it when we finally scrape.
"$EIPD" --socket "$SOCK" --workers 1 --queue-depth 1 \
    --metrics-window 600 --log-level info 2> "$LOG" &
EIPD_PID=$!
trap 'kill "$EIPD_PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT

# The daemon pre-warms the workload catalogue before binding, so wait
# for the socket rather than sleeping a fixed interval.
for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && break
    kill -0 "$EIPD_PID" 2>/dev/null || {
        echo "metrics-smoke: eipd died before binding" >&2; exit 1; }
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "metrics-smoke: socket never appeared" >&2; exit 1; }

submit() {
    local w="$1"
    shift
    "$EIPC" --socket "$SOCK" submit --workload "$w" \
        --prefetcher entangling-4k --instructions 60000 --warmup 20000 \
        --wait --timeout 120 "$@"
}

echo "== storm: cold, warm, crash, flood =="
submit tiny --out "$OUT/cold-tiny.json"
submit crypto-1 > /dev/null
submit tiny --out "$OUT/warm-tiny.json"    # cache-served
cmp "$OUT/cold-tiny.json" "$OUT/warm-tiny.json"

rc=0
"$EIPC" --socket "$SOCK" submit --workload tiny --inject-crash \
    --wait --timeout 120 || rc=$?
[ "$rc" -eq 3 ] || {
    echo "metrics-smoke: crash submit exited $rc, wanted 3" >&2; exit 1; }

# Flood without --wait against the one-deep queue: submission is
# microseconds, each simulation many milliseconds, so some of these
# must be rejected (exit 3) while the accepted ones complete async.
rejected=0
for i in $(seq 0 7); do
    rc=0
    "$EIPC" --socket "$SOCK" submit --workload tiny \
        --prefetcher entangling-4k --instructions $((100000 + i)) \
        --warmup 20000 > /dev/null || rc=$?
    if [ "$rc" -eq 3 ]; then
        rejected=$((rejected + 1))
    elif [ "$rc" -ne 0 ]; then
        echo "metrics-smoke: flood submit exited $rc" >&2; exit 1
    fi
done
[ "$rejected" -ge 1 ] || {
    echo "metrics-smoke: flood shed no load (queue never filled?)" >&2
    exit 1; }
echo "flood: $rejected of 8 rejected"

echo "== wait for quiescence =="
settled=0
for _ in $(seq 1 300); do
    "$EIPC" --socket "$SOCK" stats --out "$OUT/stats.json"
    if python3 - "$OUT/stats.json" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))["counters"]
terminal = (c["serve.served_cache"] + c["serve.simulated"]
            + c["serve.failed"] + c["serve.rejected_queue_full"])
sys.exit(0 if terminal == c["serve.submits"] - c["serve.invalid"] else 1)
EOF
    then settled=1; break; fi
    sleep 0.1
done
[ "$settled" -eq 1 ] || {
    echo "metrics-smoke: storm never quiesced" >&2; exit 1; }

echo "== scrape =="
"$EIPC" --socket "$SOCK" spans --out "$OUT/spans.json"
"$EIPC" --socket "$SOCK" stats --out "$OUT/stats.json"
"$EIPC" --socket "$SOCK" metrics --out "$OUT/metrics.json"
"$EIPC" --socket "$SOCK" metrics --prom > "$OUT/metrics.prom"

echo "== human-readable tables =="
"$EIPC" --socket "$SOCK" stats | grep -q "serve.requests"
"$EIPC" --socket "$SOCK" metrics | grep -q "qps"
echo "tables render"

echo "== Prometheus page reflects the storm =="
grep -q '^# TYPE eip_serve_requests counter$' "$OUT/metrics.prom"
grep -q '^eip_serve_worker_crashes 1$' "$OUT/metrics.prom"
grep -q "^eip_serve_rejected_queue_full $rejected\$" "$OUT/metrics.prom"
grep -q '^eip_build_info{' "$OUT/metrics.prom"
echo "exposition OK"

echo "== span terminals reconcile against the daemon counters =="
"$EIPTRACE" "$OUT/spans.json" --stats "$OUT/stats.json"

echo "== rolling window saw every outcome class =="
python3 - "$OUT/metrics.json" "$rejected" <<'EOF'
import json, sys
w = json.load(open(sys.argv[1]))["window"]
assert w["cache_hits"] >= 1, w
assert w["simulated"] >= 2, w
assert w["failed"] == 1, w
assert w["rejected"] == int(sys.argv[2]), w
assert w["qps"] > 0 and w["p50_ms"] > 0, w
print(f"window: {w['requests']} requests, qps {w['qps']:.2f}, "
      f"hit ratio {w['hit_ratio']:.2f}")
EOF

"$EIPC" --socket "$SOCK" shutdown
wait "$EIPD_PID"
trap - EXIT
rm -f "$SOCK"

echo "== daemon stderr is valid eip-log/v1 NDJSON =="
[ -s "$LOG" ] || { echo "metrics-smoke: empty daemon log" >&2; exit 1; }

echo "== profiled single run lands phase_ms in the manifest =="
"$EIPSIM" --workload tiny --prefetcher entangling-4k \
    --instructions 60000 --warmup 20000 --log-level warn \
    --stats-json "$OUT/profiled-run.json" > /dev/null
python3 - "$OUT/profiled-run.json" <<'EOF'
import json, sys
phases = json.load(open(sys.argv[1]))["manifest"]["phase_ms"]
# No 'serialize' here: the manifest's totals are closed before the
# document renders itself (the serve-trace spans do time it).
for phase in ("program_build", "prefetcher", "warmup", "measure",
              "fill_drain"):
    assert phase in phases, f"missing phase '{phase}' in {phases}"
print("phase_ms:", ", ".join(f"{k} {v:.2f}" for k, v in phases.items()))
EOF

echo "== schema validation =="
python3 scripts/validate_stats_json.py "$OUT"/*.json "$LOG"

echo "metrics-smoke: OK"
