#!/usr/bin/env python3
"""Host-speed trend over a series of eip-bench/v1 artifacts (stdlib only).

Aggregates the host-MIPS tables of BENCH_*.json files given in
chronological order (oldest first), prints one trend row per artifact
(per-config means plus the overall mean and its delta against the
previous artifact), and exits non-zero when the newest artifact's
overall mean host-MIPS regressed more than the threshold against its
predecessor.

Artifacts without a host-speed table (bench dumps that only record
figure data) are listed but excluded from the trend — never silently
dropped.

Usage: scripts/bench_trend.py [--threshold PCT] BENCH.json [BENCH.json...]

Exit codes: 0 no regression (or fewer than two comparable artifacts),
1 regression beyond the threshold, 2 usage/unreadable input.
"""

import json
import sys


def mips_values(doc):
    """Per-config mean host-MIPS from every host-speed table of one
    eip-bench/v1 document, or None when the document has none."""
    configs = {}
    for table in doc.get("tables", []):
        if "MIPS" not in table.get("title", ""):
            continue
        for row in table.get("rows", []):
            values = [v for v in row.get("values", [])
                      if isinstance(v, (int, float))]
            if values:
                configs.setdefault(row.get("config", "?"), []).append(
                    sum(values) / len(values))
    if not configs:
        return None
    return {config: sum(means) / len(means)
            for config, means in configs.items()}


def main(argv):
    threshold = 10.0
    paths = []
    args = iter(argv[1:])
    for arg in args:
        if arg == "--threshold":
            try:
                threshold = float(next(args))
            except (StopIteration, ValueError):
                print("bench-trend: --threshold needs a number",
                      file=sys.stderr)
                return 2
        elif arg in ("--help", "-h"):
            print(__doc__.strip())
            return 0
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    # (path, git_describe, per-config means, overall mean) per artifact.
    trend = []
    for path in paths:
        try:
            with open(path, "rb") as f:
                doc = json.load(f)
        except (OSError, ValueError) as err:
            print(f"bench-trend: {path}: unreadable: {err}",
                  file=sys.stderr)
            return 2
        if doc.get("schema") != "eip-bench/v1":
            print(f"bench-trend: {path}: schema is "
                  f"{doc.get('schema')!r}, expected eip-bench/v1",
                  file=sys.stderr)
            return 2
        configs = mips_values(doc)
        if configs is None:
            print(f"{path}: no host-speed table "
                  f"(bench {doc.get('bench')!r}) — excluded from trend")
            continue
        overall = sum(configs.values()) / len(configs)
        trend.append((path, doc.get("git_describe", "?"), configs,
                      overall))

    if not trend:
        print("bench-trend: no comparable artifacts")
        return 0

    print(f"{'artifact':<40} {'git':<18} {'mean MIPS':>10} {'delta':>8}")
    previous = None
    delta_pct = 0.0
    for path, git, configs, overall in trend:
        if previous is None or previous == 0.0:
            delta = "-"
        else:
            delta_pct = 100.0 * (overall - previous) / previous
            delta = f"{delta_pct:+.1f}%"
        print(f"{path:<40} {git:<18} {overall:>10.3f} {delta:>8}")
        for config in sorted(configs):
            print(f"  {config:<38} {'':<18} {configs[config]:>10.3f}")
        previous = overall

    if len(trend) >= 2 and delta_pct < -threshold:
        print(f"bench-trend: REGRESSION: newest mean host-MIPS is "
              f"{-delta_pct:.1f}% below its predecessor "
              f"(threshold {threshold:.1f}%)", file=sys.stderr)
        return 1
    print(f"bench-trend: OK ({len(trend)} artifacts, "
          f"threshold {threshold:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
