#!/usr/bin/env python3
"""Host-speed trend over a series of eip-bench/v1 artifacts (stdlib only).

Aggregates two metric families from BENCH_*.json files given in
chronological order (oldest first):

  host-MIPS — per-config means of every host-speed table (tables whose
              title mentions "MIPS", e.g. BENCH_simspeed.json);
  sampled host-MIPS — the same, restricted to sampled-mode rows
              (configs containing "sampled"): the SMARTS-schedule win
              is gated as its own family so a sampling-path slowdown
              cannot hide inside the full-mode mean;
  warm QPS  — mean served-QPS of the warm rounds of the eipd request
              storm (tables with a "served_qps" column and "warm-*"
              rows, e.g. BENCH_servestorm.json).

Prints one trend row per artifact and family (value plus the delta
against the previous artifact of the same family) and exits non-zero
when any family's newest artifact regressed more than the threshold
against its predecessor. This is a CI gate, not an advisory report;
set EIP_BENCH_REGRESS_OK=1 to acknowledge an expected regression (the
trend still prints, the exit code is forced to 0).

Artifacts carrying neither family are listed but excluded from the
trend — never silently dropped.

Usage: scripts/bench_trend.py [--threshold PCT] BENCH.json [BENCH.json...]

Exit codes: 0 no regression (or fewer than two comparable artifacts,
or EIP_BENCH_REGRESS_OK=1), 1 regression beyond the threshold,
2 usage/unreadable input.
"""

import json
import os
import sys


def mips_values(doc, sampled=False):
    """Per-config mean host-MIPS from every host-speed table of one
    eip-bench/v1 document, or None when the document has none. With
    @p sampled, only sampled-mode rows (config contains "sampled")
    contribute; without it, only full-mode rows do — the two families
    trend independently."""
    configs = {}
    for table in doc.get("tables", []):
        if "MIPS" not in table.get("title", ""):
            continue
        for row in table.get("rows", []):
            if ("sampled" in str(row.get("config", ""))) != sampled:
                continue
            values = [v for v in row.get("values", [])
                      if isinstance(v, (int, float))]
            if values:
                configs.setdefault(row.get("config", "?"), []).append(
                    sum(values) / len(values))
    if not configs:
        return None
    return {config: sum(means) / len(means)
            for config, means in configs.items()}


def sampled_mips_values(doc):
    return mips_values(doc, sampled=True)


def qps_values(doc):
    """Per-round warm served-QPS from the request-storm tables of one
    eip-bench/v1 document (rows named warm-*, column served_qps), or
    None when the document has none."""
    rounds = {}
    for table in doc.get("tables", []):
        columns = table.get("columns", [])
        if "served_qps" not in columns:
            continue
        qps_col = columns.index("served_qps")
        for row in table.get("rows", []):
            if not str(row.get("config", "")).startswith("warm"):
                continue
            values = row.get("values", [])
            if qps_col < len(values) and isinstance(values[qps_col],
                                                    (int, float)):
                rounds.setdefault(row["config"], []).append(
                    values[qps_col])
    if not rounds:
        return None
    return {name: sum(vals) / len(vals) for name, vals in rounds.items()}


def print_family(name, unit, trend):
    """One trend table; returns the newest artifact's delta-pct (0.0
    with fewer than two artifacts)."""
    print(f"\n{name} trend")
    print(f"{'artifact':<40} {'git':<18} {'mean ' + unit:>10} {'delta':>8}")
    previous = None
    delta_pct = 0.0
    for path, git, members, overall in trend:
        if previous is None or previous == 0.0:
            delta = "-"
        else:
            delta_pct = 100.0 * (overall - previous) / previous
            delta = f"{delta_pct:+.1f}%"
        print(f"{path:<40} {git:<18} {overall:>10.3f} {delta:>8}")
        for member in sorted(members):
            print(f"  {member:<38} {'':<18} {members[member]:>10.3f}")
        previous = overall
    return delta_pct if len(trend) >= 2 else 0.0


def main(argv):
    threshold = 10.0
    paths = []
    args = iter(argv[1:])
    for arg in args:
        if arg == "--threshold":
            try:
                threshold = float(next(args))
            except (StopIteration, ValueError):
                print("bench-trend: --threshold needs a number",
                      file=sys.stderr)
                return 2
        elif arg in ("--help", "-h"):
            print(__doc__.strip())
            return 0
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    # family -> [(path, git_describe, per-member means, overall mean)].
    families = {"host-MIPS": [], "sampled host-MIPS": [], "warm QPS": []}
    units = {"host-MIPS": "MIPS", "sampled host-MIPS": "MIPS",
             "warm QPS": "QPS"}
    for path in paths:
        try:
            with open(path, "rb") as f:
                doc = json.load(f)
        except (OSError, ValueError) as err:
            print(f"bench-trend: {path}: unreadable: {err}",
                  file=sys.stderr)
            return 2
        if doc.get("schema") != "eip-bench/v1":
            print(f"bench-trend: {path}: schema is "
                  f"{doc.get('schema')!r}, expected eip-bench/v1",
                  file=sys.stderr)
            return 2
        git = doc.get("git_describe", "?")
        matched = False
        for family, extract in (("host-MIPS", mips_values),
                                ("sampled host-MIPS", sampled_mips_values),
                                ("warm QPS", qps_values)):
            members = extract(doc)
            if members is None:
                continue
            overall = sum(members.values()) / len(members)
            families[family].append((path, git, members, overall))
            matched = True
        if not matched:
            print(f"{path}: no host-speed or request-storm table "
                  f"(bench {doc.get('bench')!r}) — excluded from trend")

    if not any(families.values()):
        print("bench-trend: no comparable artifacts")
        return 0

    regressions = []
    for family, trend in families.items():
        if not trend:
            continue
        delta_pct = print_family(family, units[family], trend)
        if delta_pct < -threshold:
            regressions.append((family, delta_pct))

    counted = sum(len(t) for t in families.values())
    if regressions:
        for family, delta_pct in regressions:
            print(f"bench-trend: REGRESSION: newest {family} is "
                  f"{-delta_pct:.1f}% below its predecessor "
                  f"(threshold {threshold:.1f}%)", file=sys.stderr)
        if os.environ.get("EIP_BENCH_REGRESS_OK") == "1":
            print("bench-trend: EIP_BENCH_REGRESS_OK=1 — regression "
                  "acknowledged, exiting 0", file=sys.stderr)
            return 0
        return 1
    print(f"\nbench-trend: OK ({counted} family entries, "
          f"threshold {threshold:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
