#!/usr/bin/env bash
# serve-smoke: end-to-end exercise of the eipd/eipc service layer.
#
#   scripts/serve_smoke.sh [BUILD_DIR]
#
# Starts an eipd daemon on a private socket, submits a small suite cold
# through eipc, resubmits it warm, and asserts the three promises the
# serve subsystem makes:
#
#   1. the warm pass is served entirely from the result cache (the
#      serve.simulated counter does not move between the two passes);
#   2. cache-served artifacts are byte-identical to cold-simulated ones
#      (cmp, not a structural diff — the cache stores exact bytes);
#   3. a fault-injected crashing worker fails in isolation: the submit
#      reports the failure and the daemon keeps serving.
#
# Every JSON the run produces (fetched artifacts, stats snapshots) is
# validated against its schema by scripts/validate_stats_json.py.
# Artifacts land in serve-smoke-artifacts/ (override with
# EIP_SERVE_SMOKE_DIR).
set -euo pipefail

BUILD_DIR="${1:-build}"
EIPD="$BUILD_DIR/src/tools/eipd"
EIPC="$BUILD_DIR/src/tools/eipc"
OUT="${EIP_SERVE_SMOKE_DIR:-serve-smoke-artifacts}"
SOCK="${TMPDIR:-/tmp}/eip_serve_smoke_$$.sock"
WORKLOADS=(tiny crypto-1 int-1 fp-1 srv-1)

for tool in "$EIPD" "$EIPC"; do
    [ -x "$tool" ] || { echo "serve-smoke: missing $tool" >&2; exit 1; }
done
mkdir -p "$OUT"

"$EIPD" --socket "$SOCK" --workers 2 --queue-depth 32 &
EIPD_PID=$!
trap 'kill "$EIPD_PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT

# The daemon pre-warms the workload catalogue before binding, so wait
# for the socket rather than sleeping a fixed interval.
for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && break
    kill -0 "$EIPD_PID" 2>/dev/null || {
        echo "serve-smoke: eipd died before binding" >&2; exit 1; }
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "serve-smoke: socket never appeared" >&2; exit 1; }

submit() {
    local w="$1" out="$2"
    "$EIPC" --socket "$SOCK" submit --workload "$w" \
        --prefetcher entangling-4k --instructions 60000 --warmup 20000 \
        --wait --timeout 120 --out "$out"
}

echo "== cold pass =="
for w in "${WORKLOADS[@]}"; do
    submit "$w" "$OUT/cold-$w.json"
done
"$EIPC" --socket "$SOCK" stats --out "$OUT/stats-cold.json"

echo "== warm pass (identical resubmission) =="
for w in "${WORKLOADS[@]}"; do
    submit "$w" "$OUT/warm-$w.json"
done
"$EIPC" --socket "$SOCK" stats --out "$OUT/stats-warm.json"

echo "== byte-identity (cache-served vs cold-simulated) =="
for w in "${WORKLOADS[@]}"; do
    cmp "$OUT/cold-$w.json" "$OUT/warm-$w.json"
    echo "identical: $w"
done

echo "== warm pass was fully cache-served =="
python3 - "$OUT/stats-cold.json" "$OUT/stats-warm.json" \
    "${#WORKLOADS[@]}" <<'EOF'
import json, sys
cold = json.load(open(sys.argv[1]))["counters"]
warm = json.load(open(sys.argv[2]))["counters"]
n = int(sys.argv[3])
simulated = warm["serve.simulated"] - cold["serve.simulated"]
served = warm["serve.served_cache"] - cold["serve.served_cache"]
assert simulated == 0, f"warm pass simulated {simulated} jobs, wanted 0"
assert served == n, f"warm pass cache-served {served} jobs, wanted {n}"
print(f"cache-served {served}/{n}, simulated {simulated}")
EOF

echo "== crash isolation (fault-injected worker) =="
rc=0
"$EIPC" --socket "$SOCK" submit --workload tiny --inject-crash \
    --wait --timeout 120 || rc=$?
[ "$rc" -eq 3 ] || {
    echo "serve-smoke: crash submit exited $rc, wanted 3" >&2; exit 1; }
# The daemon must still be serving after reaping the crashed worker.
submit tiny "$OUT/post-crash-tiny.json"
cmp "$OUT/cold-tiny.json" "$OUT/post-crash-tiny.json"
echo "daemon survived the crash; tiny still cache-served byte-identical"

echo "== schema validation =="
python3 scripts/validate_stats_json.py "$OUT"/*.json

"$EIPC" --socket "$SOCK" shutdown
wait "$EIPD_PID"
trap - EXIT
rm -f "$SOCK"
echo "serve-smoke: OK"
